//! Facade crate for the ERMIA SIGMOD'16 reproduction.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests have a single dependency. See the individual
//! crates for the real APIs:
//!
//! * [`ermia`] — the ERMIA engine (SI + SSN).
//! * [`silo`] — the Silo-OCC baseline.
//! * [`workloads`] — TPC-C / TPC-E / hybrid / micro workloads + driver.
//! * [`log`], [`index`], [`storage`], [`epoch`], [`common`] — the
//!   physical-layer substrates.

pub use ermia;
pub use ermia_common as common;
pub use ermia_epoch as epoch;
pub use ermia_index as index;
pub use ermia_log as log;
pub use ermia_storage as storage;
pub use ermia_workloads as workloads;
pub use silo_occ as silo;
