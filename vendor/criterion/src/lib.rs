//! Offline shim for the `criterion` crate.
//!
//! A minimal wall-clock micro-benchmark harness with criterion's API
//! shape: benchmark groups, `bench_function` / `bench_with_input`,
//! `iter` / `iter_batched`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros. It warms up for
//! `warm_up_time`, then runs `sample_size` samples of auto-calibrated
//! batches within `measurement_time`, reporting mean ns/iter (and
//! derived element throughput) to stdout. No statistics, plots, or
//! baseline comparisons — enough to keep `cargo bench` meaningful
//! without the real crate.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let name = id.into_id();
        let cfg = self.clone();
        run_one(&cfg, &name, None, &mut f);
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let name = format!("{}/{}", self.name, id.into_id());
        let cfg = self.criterion.clone();
        run_one(&cfg, &name, self.throughput, &mut f);
    }

    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        let cfg = self.criterion.clone();
        run_one(&cfg, &name, self.throughput, &mut |b: &mut Bencher| f(b, input));
    }

    pub fn finish(self) {}
}

fn run_one(
    cfg: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        warm_up_time: cfg.warm_up_time,
        measurement_time: cfg.measurement_time,
        sample_size: cfg.sample_size,
        total_ns: 0,
        total_iters: 0,
    };
    f(&mut bencher);
    if bencher.total_iters == 0 {
        println!("bench {name:<48} (no iterations recorded)");
        return;
    }
    let ns_per_iter = bencher.total_ns as f64 / bencher.total_iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            format!("  {per_sec:>14.0} elem/s")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 * 1e9 / ns_per_iter;
            format!("  {:>14.1} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "bench {name:<48} {ns_per_iter:>12.1} ns/iter ({} iters){rate}",
        bencher.total_iters
    );
}

pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    total_ns: u128,
    total_iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = (warm_start.elapsed().as_nanos() / u128::from(warm_iters.max(1))).max(1);
        // Split the measurement budget into sample_size batches.
        let budget = self.measurement_time.as_nanos();
        let batch = (budget / u128::from(self.sample_size as u64) / per_iter).clamp(1, 1 << 24) as u64;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.total_ns += t0.elapsed().as_nanos();
            self.total_iters += batch;
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Setup cost is excluded from timing; batches of one keep inputs
        // fresh, matching iter_batched semantics closely enough.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }
        let _ = warm_iters;
        let iters = (self.sample_size as u64).max(1) * 64;
        for _ in 0..iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total_ns += t0.elapsed().as_nanos();
            self.total_iters += 1;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        group.bench_function("counter", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("shim");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
