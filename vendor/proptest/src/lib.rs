//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait ( `prop_map`, tuples, ranges,
//! `Just`, `any`, `collection::vec`, a character-class string strategy),
//! the `proptest!` macro (including `#![proptest_config(..)]` and both
//! `name in strategy` and `name: type` parameter forms), and the
//! `prop_assert*` macros.
//!
//! Semantics: each test runs `cases` iterations with inputs drawn from a
//! deterministic per-test RNG. The seed is derived from the test name, or
//! taken from `PROPTEST_SEED` if set; failures print the seed and case
//! index so a run can be reproduced exactly. There is no shrinking — a
//! failing case is reported as-is.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    use std::fmt;

    /// Why a test case failed (shim: always a failure message).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Unused by the shim; kept so struct-update syntax from real
        /// proptest configs still compiles.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 96, max_shrink_iters: 0 }
        }
    }

    /// Deterministic SplitMix64 stream used to generate test inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)` (`bound >= 1`), unbiased by rejection.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound >= 1);
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let threshold = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < threshold {
                    return v % bound;
                }
            }
        }
    }

    /// Derive the base seed for a test: `PROPTEST_SEED` env override, or
    /// a stable hash of the test name.
    pub fn base_seed(test_name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                return v;
            }
        }
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub use test_runner::Config as ProptestConfig;
pub use test_runner::{TestCaseError, TestRng};

/// A generator of random values of one type.
///
/// Object-safe: `prop_oneof!` erases concrete strategy types behind
/// `Box<dyn Strategy<Value = V>>`.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: fmt::Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: fmt::Debug> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Full-domain strategy for primitives: `any::<T>()`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary: fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// A `&'static str` acts as a string strategy. The shim supports the
/// character-class pattern family used in this repo — `[chars]{lo,hi}`
/// (e.g. `"[a-zA-Z0-9]{0,12}"`) plus a bare `[chars]` (one char) — and
/// treats anything else as a literal string.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, lo, hi)) => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
            }
            None => (*self).to_owned(),
        }
    }
}

/// Parse `[class]` or `[class]{lo,hi}` into (expanded chars, lo, hi).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = expand_class(&rest[..close]);
    if class.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((class, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    (lo <= hi).then_some((class, lo, hi))
}

fn expand_class(class: &str) -> Vec<char> {
    let chars: Vec<char> = class.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            if a <= b {
                for c in a..=b {
                    out.push(c);
                }
            }
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

pub mod collection {
    use super::{fmt, Range, Strategy, TestRng};

    /// Vector strategy: `len` drawn from `sizes`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty size range");
        VecStrategy { element, sizes }
    }

    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.sizes.end - self.sizes.start) as u64;
            let len = self.sizes.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
    pub use crate::test_runner::TestCaseError;
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// The `proptest!` test-harness macro.
///
/// Supports an optional leading `#![proptest_config(EXPR)]`, any number
/// of test functions with attributes/doc comments, and parameters of the
/// form `name in strategy` or `name: Type` (the latter sugar for
/// `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    // Internal rules must precede the catch-all entry rule, or recursive
    // invocations would re-enter the entry rule and never terminate.

    // No more functions.
    (@fns [$config:expr]) => {};

    // One function; recurse on the rest.
    (@fns [$config:expr]
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __seed = $crate::test_runner::base_seed(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::from_seed(
                    __seed ^ (__case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
                );
                let __result = $crate::proptest!(@run __rng, [$($params)*], $body);
                match __result {
                    ::core::result::Result::Ok(())
                    | ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {}/{} failed (reproduce with PROPTEST_SEED={}): {}",
                            __case + 1, __config.cases, __seed, msg
                        );
                    }
                }
            }
        }
        $crate::proptest!(@fns [$config] $($rest)*);
    };

    // Generate bindings for each parameter, then run the body inside a
    // Result-returning closure so `prop_assert*` and `?` both work.
    (@run $rng:ident, [$($params:tt)*], $body:block) => {{
        $crate::proptest!(@bind $rng, [$($params)*]);
        let mut __closure = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
            $body
            ::core::result::Result::Ok(())
        };
        __closure()
    }};

    // Parameter binding: `name in strategy` form.
    (@bind $rng:ident, [$name:ident in $strategy:expr, $($rest:tt)*]) => {
        let $name = $crate::Strategy::generate(&$strategy, &mut $rng);
        $crate::proptest!(@bind $rng, [$($rest)*]);
    };
    (@bind $rng:ident, [$name:ident in $strategy:expr]) => {
        let $name = $crate::Strategy::generate(&$strategy, &mut $rng);
    };
    // Parameter binding: `name: Type` form.
    (@bind $rng:ident, [$name:ident : $ty:ty, $($rest:tt)*]) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::proptest!(@bind $rng, [$($rest)*]);
    };
    (@bind $rng:ident, [$name:ident : $ty:ty]) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
    };
    (@bind $rng:ident, []) => {};

    // Entry with a config item.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns [$config] $($rest)*);
    };
    // Entry without config.
    ($($rest:tt)*) => {
        $crate::proptest!(@fns [$crate::ProptestConfig::default()] $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_pattern_parses() {
        let (chars, lo, hi) = super::parse_class_pattern("[a-c0-1]{0,12}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '0', '1']);
        assert_eq!((lo, hi), (0, 12));
    }

    #[test]
    fn string_strategy_respects_pattern() {
        let mut rng = super::TestRng::from_seed(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-zA-Z0-9]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 50, ..ProptestConfig::default() })]

        /// Both parameter forms, tuples, maps, oneof, vec.
        #[test]
        fn shim_machinery_works(
            v in collection::vec(any::<u8>(), 0..8),
            pair in (0u64..100, any::<bool>()).prop_map(|(n, b)| (n * 2, b)),
            k: u16,
            pick in prop_oneof![Just(1u8), Just(2u8), 3u8..=9],
        ) {
            prop_assert!(v.len() < 8);
            prop_assert!(pair.0 < 200 && pair.0 % 2 == 0);
            prop_assert_eq!(k, k);
            prop_assert!((1..=9).contains(&pick));
            prop_assert_ne!(pick, 0);
        }

        #[test]
        fn question_mark_propagates(x in 0u32..10) {
            fn helper(x: u32) -> Result<(), TestCaseError> {
                prop_assert!(x < 10);
                Ok(())
            }
            helper(x)?;
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    #[allow(unnameable_test_items)]
    fn failure_reports_seed() {
        proptest! {
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
