//! Offline shim for the `crossbeam` crate.
//!
//! Implements the two pieces this workspace uses — `utils::CachePadded`
//! and `crossbeam::scope` — over the standard library. Scoped threads
//! delegate to `std::thread::scope`; the only semantic difference is that
//! a panicking child that was never joined panics the scope instead of
//! surfacing as `Err`, which every call site treats identically
//! (`.unwrap()` / `.expect(..)`).

use std::any::Any;

pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) a cache-line boundary so that
    /// hot atomics don't false-share.
    #[derive(Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("CachePadded").field(&self.value).finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> CachePadded<T> {
            CachePadded::new(value)
        }
    }
}

pub mod thread {
    use super::*;

    /// Mirror of `crossbeam::thread::Scope`: hands out spawns whose
    /// closures receive the scope again (for nested spawning).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Create a scope in which spawned threads may borrow from the
    /// enclosing stack frame; all children are joined before it returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn cache_padded_is_aligned_and_derefs() {
        let v = super::utils::CachePadded::new(AtomicU64::new(7));
        assert_eq!(v.load(Ordering::Relaxed), 7);
        assert_eq!(std::mem::align_of_val(&v), 128);
    }

    #[test]
    fn scope_joins_and_borrows() {
        let counter = AtomicU64::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicU64::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_returns_value() {
        let got = super::scope(|s| {
            let h = s.spawn(|_| 40 + 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(got, 42);
    }
}
