//! Offline shim for the `rand` crate (0.9-style API surface).
//!
//! Provides a deterministic, seedable generator (`rngs::StdRng`, a
//! xoshiro256** engine seeded via SplitMix64) plus the `Rng` /
//! `SeedableRng` traits with the methods the workloads use:
//! `random_range` over integer ranges, `random_bool`, and `random::<T>`.
//! The statistical quality matches the workloads' needs (benchmark key
//! skew, TPC-C NURand); it is not a cryptographic generator.

use std::ops::{Range, RangeInclusive};

/// Construct a generator from a simple seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// If the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 bits of mantissa: convert to a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniformly random value of a primitive type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types producible by [`Rng::random`].
pub trait Standard {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased bounded sample in `[0, bound)`, `bound >= 1`, by rejection:
/// accept draws below the largest multiple of `bound` that fits in u64.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound >= 1);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let threshold = u64::MAX - (u64::MAX % bound); // == floor(2^64 / bound) * bound
    loop {
        let v = rng.next_u64();
        if v < threshold {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the shim's stand-in for
    /// rand's `StdRng`; same trait surface, different stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0usize..=3);
            assert!(w <= 3);
            let x = rng.random_range(1u32..=100);
            assert!((1..=100).contains(&x));
            let y: i32 = rng.random_range(0..10);
            assert!((0..10).contains(&y));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b), "uniform sample misses values: {seen:?}");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "p=0.25 gave {hits}/100000");
        assert!(!(0..1000).any(|_| rng.random_bool(0.0)));
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
    }
}
