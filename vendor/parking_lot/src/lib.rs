//! Offline shim for the `parking_lot` crate.
//!
//! The build environment for this repository has no network access and no
//! vendored registry, so the real `parking_lot` cannot be fetched. This
//! crate implements the (small) API subset the workspace actually uses on
//! top of `std::sync` primitives: `Mutex`, `RwLock`, and `Condvar` with
//! `wait_for`. Lock poisoning is transparently swallowed — parking_lot
//! semantics — by recovering the inner guard from a `PoisonError`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutex that (like parking_lot's) has no poisoning and returns its
/// guard directly from `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds the inner std guard in an `Option` so
/// [`Condvar::wait_for`] can temporarily take ownership of it.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { guard: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard present")
    }
}

/// A readers-writer lock mirroring parking_lot's panic-free guards.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { guard }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with this crate's [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
    // std::sync::Condvar panics if used with two different mutexes;
    // parking_lot's doesn't care. We keep std semantics (every user here
    // pairs a condvar with exactly one mutex) but track misuse in debug.
    _bound: AtomicBool,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new(), _bound: AtomicBool::new(false) }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified. Mirrors `parking_lot::Condvar::wait`.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self._bound.store(true, Ordering::Relaxed);
        let inner = guard.guard.take().expect("guard present");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(inner);
    }

    /// Block until notified or `timeout` elapses. Mirrors
    /// `parking_lot::Condvar::wait_for`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self._bound.store(true, Ordering::Relaxed);
        let inner = guard.guard.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(inner);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_wakeup() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(10));
        }
        t.join().unwrap();
    }
}
