use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ermia_common::AbortReason;

use crate::{SiloConfig, SiloDb, TxnMode};

const RW: TxnMode = TxnMode::ReadWrite;
const RO: TxnMode = TxnMode::ReadOnly;

fn db() -> SiloDb {
    SiloDb::open(SiloConfig::default())
}

fn fast_db() -> SiloDb {
    SiloDb::open(SiloConfig {
        epoch_interval: Duration::from_millis(1),
        snapshot_interval: Duration::from_millis(2),
        snapshots: true,
    })
}

fn get(tx: &mut crate::SiloTxn<'_>, t: ermia_common::TableId, k: &[u8]) -> Option<Vec<u8>> {
    tx.read(t, k, |v| v.to_vec()).unwrap()
}

#[test]
fn insert_read_update_delete() {
    let db = db();
    let t = db.create_table("t");
    let mut w = db.register_worker();

    let mut tx = w.begin(RW);
    tx.insert(t, b"k", b"v1").unwrap();
    assert_eq!(get(&mut tx, t, b"k").as_deref(), Some(&b"v1"[..]), "read own insert");
    tx.commit().unwrap();

    let mut tx = w.begin(RW);
    assert_eq!(get(&mut tx, t, b"k").as_deref(), Some(&b"v1"[..]));
    tx.update(t, b"k", b"v2").unwrap();
    assert_eq!(get(&mut tx, t, b"k").as_deref(), Some(&b"v2"[..]), "read own update");
    tx.commit().unwrap();

    let mut tx = w.begin(RW);
    assert!(tx.delete(t, b"k").unwrap());
    assert_eq!(get(&mut tx, t, b"k"), None);
    tx.commit().unwrap();

    let mut tx = w.begin(RW);
    assert_eq!(get(&mut tx, t, b"k"), None);
    tx.commit().unwrap();
}

#[test]
fn uncommitted_writes_invisible() {
    let db = db();
    let t = db.create_table("t");
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();
    let mut t1 = w1.begin(RW);
    t1.insert(t, b"k", b"v").unwrap();
    let mut t2 = w2.begin(RW);
    assert_eq!(get(&mut t2, t, b"k"), None, "ABSENT pre-commit record");
    t1.commit().unwrap();
    // t2 read the absent state: its validation must now fail.
    t2.update(t, b"k", b"x").unwrap();
    assert_eq!(t2.commit().unwrap_err(), AbortReason::ReadValidation);
}

#[test]
fn writer_overwrites_reader_occ_aborts_reader() {
    // The heart of the ERMIA paper's critique: a reader whose footprint
    // is overwritten before it commits must abort.
    let db = db();
    let t = db.create_table("t");
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();
    let mut setup = w1.begin(RW);
    setup.insert(t, b"x", b"0").unwrap();
    setup.insert(t, b"y", b"0").unwrap();
    setup.commit().unwrap();

    let mut reader = w1.begin(RW);
    let _ = get(&mut reader, t, b"x");
    // Writer commits an overwrite of the reader's footprint.
    let mut writer = w2.begin(RW);
    writer.update(t, b"x", b"1").unwrap();
    writer.commit().unwrap();
    // Reader performs a write elsewhere (read-mostly) and tries to commit.
    reader.update(t, b"y", b"9").unwrap();
    assert_eq!(reader.commit().unwrap_err(), AbortReason::ReadValidation);
}

#[test]
fn write_write_conflict_one_loses() {
    let db = db();
    let t = db.create_table("t");
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();
    let mut setup = w1.begin(RW);
    setup.insert(t, b"x", b"0").unwrap();
    setup.commit().unwrap();

    let mut t1 = w1.begin(RW);
    let mut t2 = w2.begin(RW);
    let _ = get(&mut t1, t, b"x");
    let _ = get(&mut t2, t, b"x");
    t1.update(t, b"x", b"a").unwrap();
    t2.update(t, b"x", b"b").unwrap();
    let r1 = t1.commit();
    let r2 = t2.commit();
    assert!(r1.is_ok() != r2.is_ok(), "exactly one read-modify-write must win: {r1:?} {r2:?}");
}

#[test]
fn phantom_detected_via_node_set() {
    let db = db();
    let t = db.create_table("t");
    let pk = db.primary_index(t);
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();
    let mut setup = w1.begin(RW);
    for i in [10u8, 20, 30] {
        setup.insert(t, &[i], &[i]).unwrap();
    }
    setup.commit().unwrap();

    let mut t1 = w1.begin(RW);
    let mut n = 0;
    t1.scan(pk, &[0], &[100], None, |_, _| {
        n += 1;
        true
    })
    .unwrap();
    assert_eq!(n, 3);
    let mut t2 = w2.begin(RW);
    t2.insert(t, &[15], &[15]).unwrap();
    t2.commit().unwrap();
    t1.update(t, &[10], &[99]).unwrap();
    assert_eq!(t1.commit().unwrap_err(), AbortReason::Phantom);
}

#[test]
fn read_only_snapshots_survive_writers() {
    let db = fast_db();
    let t = db.create_table("t");
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();
    let mut setup = w1.begin(RW);
    for i in 0..50u32 {
        setup.insert(t, &i.to_be_bytes(), &0u64.to_le_bytes()).unwrap();
    }
    setup.commit().unwrap();
    // Let a snapshot boundary pass so the values become snapshot-visible.
    std::thread::sleep(Duration::from_millis(20));

    let pk = db.primary_index(t);
    let mut ro = w1.begin(RO);
    let mut count = 0;
    ro.scan(pk, &0u32.to_be_bytes(), &50u32.to_be_bytes(), None, |_, _| {
        count += 1;
        true
    })
    .unwrap();
    assert_eq!(count, 50);

    // Writers overwrite everything; the read-only txn keeps working and
    // commits without validation.
    let mut writer = w2.begin(RW);
    for i in 0..50u32 {
        writer.update(t, &i.to_be_bytes(), &1u64.to_le_bytes()).unwrap();
    }
    writer.commit().unwrap();

    let mut count2 = 0;
    ro.scan(pk, &0u32.to_be_bytes(), &50u32.to_be_bytes(), None, |_, v| {
        assert_eq!(v, 0u64.to_le_bytes(), "snapshot reader must see pre-update values");
        count2 += 1;
        true
    })
    .unwrap();
    assert_eq!(count2, 50);
    ro.commit().unwrap();
}

#[test]
fn snapshot_chain_serves_old_values_after_multiple_updates() {
    let db = fast_db();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    let mut setup = w.begin(RW);
    setup.insert(t, b"k", b"gen-0").unwrap();
    setup.commit().unwrap();
    std::thread::sleep(Duration::from_millis(20));

    let mut ro = w.begin(RO);
    // Updates across several snapshot epochs.
    let mut w2 = db.register_worker();
    for gen in 1..4 {
        let mut tx = w2.begin(RW);
        tx.update(t, b"k", format!("gen-{gen}").as_bytes()).unwrap();
        tx.commit().unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(get(&mut ro, t, b"k").as_deref(), Some(&b"gen-0"[..]));
    ro.commit().unwrap();
}

#[test]
fn abort_rolls_back_speculative_insert() {
    let db = db();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    {
        let mut tx = w.begin(RW);
        tx.insert(t, b"ghost", b"1").unwrap();
        tx.abort();
    }
    let mut check = w.begin(RW);
    assert_eq!(get(&mut check, t, b"ghost"), None);
    check.commit().unwrap();
}

#[test]
fn revive_deleted_record() {
    let db = db();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    let mut tx = w.begin(RW);
    tx.insert(t, b"k", b"v1").unwrap();
    tx.commit().unwrap();
    let mut tx = w.begin(RW);
    tx.delete(t, b"k").unwrap();
    tx.commit().unwrap();
    let mut tx = w.begin(RW);
    tx.insert(t, b"k", b"v2").unwrap();
    tx.commit().unwrap();
    let mut tx = w.begin(RW);
    assert_eq!(get(&mut tx, t, b"k").as_deref(), Some(&b"v2"[..]));
    tx.commit().unwrap();
}

#[test]
fn duplicate_live_insert_dooms() {
    let db = db();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    let mut tx = w.begin(RW);
    tx.insert(t, b"k", b"v").unwrap();
    tx.commit().unwrap();
    let mut tx = w.begin(RW);
    assert_eq!(tx.insert(t, b"k", b"x").unwrap_err(), AbortReason::DuplicateKey);
}

#[test]
fn secondary_index_roundtrip() {
    let db = db();
    let t = db.create_table("t");
    let sec = db.create_secondary_index(t, "t.sec");
    let mut w = db.register_worker();
    let mut tx = w.begin(RW);
    let h = tx.insert(t, b"pk-1", b"data").unwrap();
    tx.insert_secondary(sec, b"sk-1", h).unwrap();
    tx.commit().unwrap();
    let mut tx = w.begin(RW);
    let via = tx.read_secondary(sec, b"sk-1", |v| v.to_vec()).unwrap();
    assert_eq!(via.as_deref(), Some(&b"data"[..]));
    tx.commit().unwrap();
}

#[test]
fn concurrent_transfers_preserve_invariant() {
    const ACCOUNTS: u64 = 16;
    const TRANSFERS: u64 = 1500;
    let db = db();
    let t = db.create_table("accounts");
    let mut w = db.register_worker();
    let mut setup = w.begin(RW);
    for i in 0..ACCOUNTS {
        setup.insert(t, &i.to_be_bytes(), &100i64.to_le_bytes()).unwrap();
    }
    setup.commit().unwrap();

    crossbeam::scope(|s| {
        for tidx in 0..3u64 {
            let db = db.clone();
            s.spawn(move |_| {
                let mut w = db.register_worker();
                let mut state = tidx.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                let mut done = 0;
                while done < TRANSFERS {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (state >> 33) % ACCOUNTS;
                    let to = (state >> 13) % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let mut tx = w.begin(RW);
                    let r = (|| -> ermia_common::OpResult<()> {
                        let fb = tx
                            .read(t, &from.to_be_bytes(), |v| {
                                i64::from_le_bytes(v.try_into().unwrap())
                            })?
                            .unwrap();
                        let tb = tx
                            .read(t, &to.to_be_bytes(), |v| {
                                i64::from_le_bytes(v.try_into().unwrap())
                            })?
                            .unwrap();
                        tx.update(t, &from.to_be_bytes(), &(fb - 1).to_le_bytes())?;
                        tx.update(t, &to.to_be_bytes(), &(tb + 1).to_le_bytes())?;
                        Ok(())
                    })();
                    match r {
                        Ok(()) => {
                            if tx.commit().is_ok() {
                                done += 1;
                            }
                        }
                        Err(_) => tx.abort(),
                    }
                }
            });
        }
    })
    .unwrap();

    let mut check = w.begin(RW);
    let mut total = 0i64;
    for i in 0..ACCOUNTS {
        total += check
            .read(t, &i.to_be_bytes(), |v| i64::from_le_bytes(v.try_into().unwrap()))
            .unwrap()
            .unwrap();
    }
    check.commit().unwrap();
    assert_eq!(total, (ACCOUNTS as i64) * 100, "money must be conserved");
}

#[test]
fn commit_tids_are_monotonic_per_worker() {
    let db = db();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    let mut setup = w.begin(RW);
    setup.insert(t, b"k", b"0").unwrap();
    setup.commit().unwrap();
    let word = AtomicU64::new(0);
    for i in 0..100u32 {
        let mut tx = w.begin(RW);
        tx.update(t, b"k", &i.to_le_bytes()).unwrap();
        tx.commit().unwrap();
        // Observe the record's TID word: strictly increasing.
        let mut check = w.begin(RW);
        let _ = get(&mut check, t, b"k");
        check.commit().unwrap();
        let _ = word.load(Ordering::Relaxed);
    }
    let (commits, aborts) = db.txn_counts();
    assert_eq!(aborts, 0);
    assert!(commits >= 201);
}

#[test]
fn concurrent_insert_conflicts_instead_of_reviving() {
    // An in-flight insert's pure-ABSENT record must not be "revived" by
    // a second inserter of the same key (that aliasing caused a real
    // use-after-free before the fix).
    let db = db();
    let t = db.create_table("t");
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();
    let mut t1 = w1.begin(RW);
    t1.insert(t, b"k", b"first").unwrap();
    let mut t2 = w2.begin(RW);
    assert_eq!(t2.insert(t, b"k", b"second").unwrap_err(), AbortReason::DuplicateKey);
    drop(t2);
    t1.commit().unwrap();
    let mut check = w1.begin(RW);
    assert_eq!(get(&mut check, t, b"k").as_deref(), Some(&b"first"[..]));
    check.commit().unwrap();
}

#[test]
fn insert_abort_then_other_insert_succeeds() {
    let db = db();
    let t = db.create_table("t");
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();
    {
        let mut t1 = w1.begin(RW);
        t1.insert(t, b"k", b"doomed").unwrap();
        t1.abort();
    }
    let mut t2 = w2.begin(RW);
    t2.insert(t, b"k", b"winner").unwrap();
    t2.commit().unwrap();
    let mut check = w1.begin(RW);
    assert_eq!(get(&mut check, t, b"k").as_deref(), Some(&b"winner"[..]));
    check.commit().unwrap();
}

#[test]
fn own_delete_then_ops_within_txn() {
    let db = db();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    let mut setup = w.begin(RW);
    setup.insert(t, b"k", b"v0").unwrap();
    setup.commit().unwrap();

    let mut tx = w.begin(RW);
    assert!(tx.delete(t, b"k").unwrap());
    assert_eq!(get(&mut tx, t, b"k"), None);
    assert!(!tx.update(t, b"k", b"x").unwrap(), "update after own delete misses");
    assert!(!tx.delete(t, b"k").unwrap(), "double delete misses");
    // Re-insert within the same transaction revives the buffered entry.
    tx.insert(t, b"k", b"v1").unwrap();
    assert_eq!(get(&mut tx, t, b"k").as_deref(), Some(&b"v1"[..]));
    tx.commit().unwrap();
    let mut check = w.begin(RW);
    assert_eq!(get(&mut check, t, b"k").as_deref(), Some(&b"v1"[..]));
    check.commit().unwrap();
}

#[test]
fn scan_sees_own_pending_writes() {
    let db = db();
    let t = db.create_table("t");
    let pk = db.primary_index(t);
    let mut w = db.register_worker();
    let mut setup = w.begin(RW);
    for i in 0..5u8 {
        setup.insert(t, &[i], &[i]).unwrap();
    }
    setup.commit().unwrap();

    let mut tx = w.begin(RW);
    tx.update(t, &[2], &[99]).unwrap();
    tx.delete(t, &[3]).unwrap();
    let mut seen = Vec::new();
    tx.scan(pk, &[0], &[10], None, |k, v| {
        seen.push((k[0], v[0]));
        true
    })
    .unwrap();
    assert_eq!(seen, vec![(0, 0), (1, 1), (2, 99), (4, 4)]);
    tx.abort();
}

#[test]
fn read_only_without_snapshots_still_validates() {
    let db = SiloDb::open(SiloConfig { snapshots: false, ..SiloConfig::default() });
    let t = db.create_table("t");
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();
    let mut setup = w1.begin(RW);
    setup.insert(t, b"k", b"0").unwrap();
    setup.commit().unwrap();

    let mut ro = w1.begin(RO);
    let _ = get(&mut ro, t, b"k");
    let mut writer = w2.begin(RW);
    writer.update(t, b"k", b"1").unwrap();
    writer.commit().unwrap();
    // Without snapshots the "read-only" txn validated its read set.
    assert_eq!(ro.commit().unwrap_err(), AbortReason::ReadValidation);
}
