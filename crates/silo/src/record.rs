//! Silo records: single-version, in-place update, TID-word protected.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// TID word layout: `[ epoch (24) | sequence (37) | flags (3) ]`.
pub const TID_LOCK: u64 = 0b001;
/// Record is logically absent (pre-commit insert, or deleted).
pub const TID_ABSENT: u64 = 0b010;
const FLAG_BITS: u32 = 3;
const SEQ_BITS: u32 = 37;

/// Compose a TID word from an epoch and sequence number (flags clear).
#[inline]
pub fn pack_tid(epoch: u64, seq: u64) -> u64 {
    debug_assert!(seq < (1 << SEQ_BITS));
    (epoch << (SEQ_BITS + FLAG_BITS)) | (seq << FLAG_BITS)
}

/// The (epoch, seq) pair of a word, ignoring flags.
#[inline]
pub fn unpack_tid(word: u64) -> (u64, u64) {
    (word >> (SEQ_BITS + FLAG_BITS), (word >> FLAG_BITS) & ((1 << SEQ_BITS) - 1))
}

/// Immutable payload buffer; swapped atomically on update, retired via
/// the epoch manager so optimistic readers never chase freed memory.
pub struct DataBuf {
    /// Snapshot epoch in which this value was created.
    pub snap_epoch: u64,
    pub bytes: Box<[u8]>,
}

impl DataBuf {
    pub fn alloc(snap_epoch: u64, bytes: &[u8]) -> *mut DataBuf {
        Box::into_raw(Box::new(DataBuf { snap_epoch, bytes: bytes.to_vec().into_boxed_slice() }))
    }
}

/// A snapshot-chain entry: a displaced value readable by read-only
/// snapshot transactions.
pub struct SnapVersion {
    pub buf: *mut DataBuf,
    pub next: AtomicPtr<SnapVersion>,
}

// SAFETY: the raw `buf` pointer is uniquely owned by the chain entry;
// entries move between threads only when retired through the epoch
// manager, at which point the retiring closure is the sole owner.
unsafe impl Send for SnapVersion {}
unsafe impl Sync for SnapVersion {}

/// A Silo record. Under normal circumstances the system maintains only
/// a single committed version of an object (plus the read-only snapshot
/// chain when enabled).
pub struct Record {
    pub tid_word: AtomicU64,
    pub data: AtomicPtr<DataBuf>,
    /// Read-only snapshot chain (newest first).
    pub snaps: AtomicPtr<SnapVersion>,
    /// Last snapshot epoch for which a value was pushed (lock-protected).
    pub last_push: AtomicU64,
}

impl Record {
    /// Allocate a record in the ABSENT (pre-commit) state.
    pub fn alloc_absent(snap_epoch: u64, bytes: &[u8]) -> *mut Record {
        Box::into_raw(Box::new(Record {
            tid_word: AtomicU64::new(TID_ABSENT),
            data: AtomicPtr::new(DataBuf::alloc(snap_epoch, bytes)),
            snaps: AtomicPtr::new(std::ptr::null_mut()),
            last_push: AtomicU64::new(0),
        }))
    }

    /// Optimistic stable read: returns `(word, data)` where `word` was
    /// identical before and after the data pointer was fetched. The
    /// returned reference is valid under the caller's epoch guard.
    #[inline]
    pub fn stable_read(&self) -> (u64, *mut DataBuf) {
        loop {
            let w1 = self.tid_word.load(Ordering::Acquire);
            if w1 & TID_LOCK != 0 {
                std::thread::yield_now();
                continue;
            }
            let buf = self.data.load(Ordering::Acquire);
            if self.tid_word.load(Ordering::Acquire) == w1 {
                return (w1, buf);
            }
        }
    }

    /// Try to lock (phase 1). Fails if already locked.
    #[inline]
    pub fn try_lock(&self) -> bool {
        let w = self.tid_word.load(Ordering::Relaxed);
        if w & TID_LOCK != 0 {
            return false;
        }
        self.tid_word
            .compare_exchange(w, w | TID_LOCK, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Spin-lock (phase 1 on the sorted write set cannot deadlock).
    #[inline]
    pub fn lock(&self) {
        let mut spins = 0u32;
        while !self.try_lock() {
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Release without changing the TID (validation-failure path).
    #[inline]
    pub fn unlock(&self) {
        let w = self.tid_word.load(Ordering::Relaxed);
        debug_assert!(w & TID_LOCK != 0);
        self.tid_word.store(w & !TID_LOCK, Ordering::Release);
    }

    /// Release installing a new word (phase 3; also clears/sets ABSENT).
    #[inline]
    pub fn unlock_with(&self, word: u64) {
        debug_assert!(word & TID_LOCK == 0);
        self.tid_word.store(word, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_pack_roundtrip() {
        let w = pack_tid(5, 1234);
        assert_eq!(unpack_tid(w), (5, 1234));
        assert_eq!(w & TID_LOCK, 0);
        assert_eq!(w & TID_ABSENT, 0);
    }

    #[test]
    fn tid_order_epoch_dominates() {
        assert!(pack_tid(2, 0) > pack_tid(1, u32::MAX as u64));
    }

    #[test]
    fn stable_read_and_lock() {
        let r = Record::alloc_absent(0, b"hello");
        let rr = unsafe { &*r };
        rr.unlock_with(pack_tid(1, 1));
        let (w, buf) = rr.stable_read();
        assert_eq!(w, pack_tid(1, 1));
        assert_eq!(unsafe { (*buf).bytes.as_ref() }, b"hello");
        assert!(rr.try_lock());
        assert!(!rr.try_lock());
        rr.unlock();
        let (w2, _) = rr.stable_read();
        assert_eq!(w2, w);
        unsafe {
            drop(Box::from_raw(rr.data.load(Ordering::Relaxed)));
            drop(Box::from_raw(r));
        }
    }
}
