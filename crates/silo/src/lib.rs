//! A Silo-style lightweight-OCC engine: the baseline comparator.
//!
//! Faithful reimplementation of the concurrency control of *Silo*
//! (Tu et al., SOSP 2013), the system the ERMIA paper compares against
//! (§4): a single-version, in-place-update store with epoch-based
//! optimistic concurrency control.
//!
//! * Records carry a **TID word** (epoch | sequence | status bits).
//!   Reads are optimistic: snapshot the word, read the data, re-check
//!   the word.
//! * Transactions buffer writes privately and validate at commit:
//!   **phase 1** locks the write set in pointer order; **phase 2**
//!   validates that no read-set record changed (and no scanned leaf
//!   changed — the node-set phantom check ERMIA inherits); **phase 3**
//!   installs the writes under a freshly computed commit TID.
//! * **Read-only snapshots**: committed overwrites push the displaced
//!   value onto a per-record snapshot chain tagged with the snapshot
//!   epoch; declared read-only transactions read these chains without
//!   any validation, exactly Silo's mechanism for supporting large
//!   read-only transactions. Snapshots are unusable by any transaction
//!   that performs writes — which is precisely why read-*mostly*
//!   transactions starve under this design (the phenomenon the ERMIA
//!   paper studies).
//!
//! The contention behaviour the evaluation measures — writers always
//! win, readers abort at commit when overwritten — emerges entirely
//! from this protocol.
//!
//! Durability: the real Silo logs per-epoch to per-worker logs; this
//! reproduction omits Silo's logger (the evaluation compares CC and
//! physical-layer behaviour; if anything the omission flatters Silo,
//! making the baseline conservative for ERMIA's claims).

mod db;
mod record;
mod txn;

pub use db::{SiloConfig, SiloDb, SiloWorker};
pub use record::{Record, TID_ABSENT, TID_LOCK};
pub use txn::{SiloTxn, TxnMode};

pub use ermia_common::{AbortReason, IndexId, OpResult, TableId, TxResult};

#[cfg(test)]
mod tests;
