//! The Silo database: catalog, epoch advancement, snapshot epochs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ermia_common::{IndexId, TableId};
use ermia_epoch::{EpochHandle, EpochManager, Ticker};
use ermia_index::BTree;
use parking_lot::RwLock;

use crate::txn::{SiloTxn, TxnMode};

/// Configuration.
#[derive(Clone, Debug)]
pub struct SiloConfig {
    /// Global epoch advance interval (Silo uses 40 ms; we default lower
    /// so short benchmark runs cross several epochs).
    pub epoch_interval: Duration,
    /// Enable read-only snapshots ("for Silo, read-only snapshots are
    /// enabled to handle read-only transactions", §4.1).
    pub snapshots: bool,
    /// Snapshot epoch advance interval.
    pub snapshot_interval: Duration,
}

impl Default for SiloConfig {
    fn default() -> SiloConfig {
        SiloConfig {
            epoch_interval: Duration::from_millis(10),
            snapshots: true,
            snapshot_interval: Duration::from_millis(25),
        }
    }
}

pub(crate) struct SiloTable {
    #[allow(dead_code)]
    pub id: TableId,
    pub primary: Arc<BTree>,
    pub primary_index: IndexId,
}

pub(crate) struct SiloIndex {
    pub tree: Arc<BTree>,
}

pub(crate) struct SiloCatalog {
    pub tables: Vec<Arc<SiloTable>>,
    pub indexes: Vec<Arc<SiloIndex>>,
    pub table_names: HashMap<String, TableId>,
    pub index_names: HashMap<String, IndexId>,
}

pub(crate) struct SiloInner {
    pub cfg: SiloConfig,
    // `stop` is reserved for cooperative shutdown of future background
    // services; the epoch thread uses the Services-owned flag.
    pub catalog: RwLock<SiloCatalog>,
    /// Silo's global epoch (commit TID high bits).
    pub global_epoch: AtomicU64,
    /// Snapshot epoch for read-only transactions.
    pub snap_epoch: AtomicU64,
    /// RCU reclamation of data buffers / records / snapshot entries.
    pub rcu: EpochManager,
    pub commits: AtomicU64,
    pub aborts: AtomicU64,
    #[allow(dead_code)]
    pub stop: AtomicBool,
    /// Active read-only snapshot epochs (snap → refcount): the snapshot
    /// chains may be trimmed only behind the oldest of these.
    pub ro_active: parking_lot::Mutex<std::collections::BTreeMap<u64, u32>>,
}

impl Drop for SiloInner {
    fn drop(&mut self) {
        // Free every record (data buffer + snapshot chain). Single
        // ownership at teardown; the trees free their own nodes/keys.
        let catalog = self.catalog.get_mut();
        let mgr = EpochManager::new("silo-teardown");
        let h = mgr.register();
        let g = h.pin();
        for table in &catalog.tables {
            table.primary.scan(
                &g,
                &[],
                &[0xFF; 64],
                |_| {},
                |_k, val| {
                    unsafe {
                        let rec = val as *mut crate::record::Record;
                        drop(Box::from_raw((*rec).data.load(Ordering::Relaxed)));
                        let mut snap = (*rec).snaps.load(Ordering::Relaxed);
                        while !snap.is_null() {
                            let next = (*snap).next.load(Ordering::Relaxed);
                            drop(Box::from_raw((*snap).buf));
                            drop(Box::from_raw(snap));
                            snap = next;
                        }
                        drop(Box::from_raw(rec));
                    }
                    ermia_index::ScanControl::Continue
                },
            );
        }
    }
}

/// A Silo-style OCC database.
#[derive(Clone)]
pub struct SiloDb {
    pub(crate) inner: Arc<SiloInner>,
    _services: Arc<Services>,
}

struct Services {
    _rcu_ticker: Ticker,
    _epoch_thread: Option<std::thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl Drop for Services {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self._epoch_thread.take() {
            let _ = t.join();
        }
    }
}

impl SiloDb {
    pub fn open(cfg: SiloConfig) -> SiloDb {
        let rcu = EpochManager::new("silo-rcu");
        let inner = Arc::new(SiloInner {
            catalog: RwLock::new(SiloCatalog {
                tables: Vec::new(),
                indexes: Vec::new(),
                table_names: HashMap::new(),
                index_names: HashMap::new(),
            }),
            // Start at 1: epoch 0 means "never committed".
            global_epoch: AtomicU64::new(1),
            snap_epoch: AtomicU64::new(1),
            rcu: rcu.clone(),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            ro_active: parking_lot::Mutex::new(std::collections::BTreeMap::new()),
            cfg,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let epoch_thread = {
            let inner = Arc::clone(&inner);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("silo-epochs".into())
                .spawn(move || {
                    let mut last_snap = std::time::Instant::now();
                    while !stop.load(Ordering::Acquire) {
                        std::thread::sleep(inner.cfg.epoch_interval);
                        inner.global_epoch.fetch_add(1, Ordering::SeqCst);
                        if inner.cfg.snapshots
                            && last_snap.elapsed() >= inner.cfg.snapshot_interval
                        {
                            inner.snap_epoch.fetch_add(1, Ordering::SeqCst);
                            last_snap = std::time::Instant::now();
                        }
                    }
                })
                .expect("spawn silo epoch thread")
        };
        let services = Arc::new(Services {
            _rcu_ticker: Ticker::start(rcu, Duration::from_millis(2)),
            _epoch_thread: Some(epoch_thread),
            stop,
        });
        SiloDb { inner, _services: services }
    }

    /// Create (or look up) a table.
    pub fn create_table(&self, name: &str) -> TableId {
        {
            let c = self.inner.catalog.read();
            if let Some(&id) = c.table_names.get(name) {
                return id;
            }
        }
        let mut c = self.inner.catalog.write();
        if let Some(&id) = c.table_names.get(name) {
            return id;
        }
        let id = TableId(c.tables.len() as u32);
        let index_id = IndexId(c.indexes.len() as u32);
        let tree = Arc::new(BTree::new());
        c.indexes.push(Arc::new(SiloIndex { tree: Arc::clone(&tree) }));
        c.tables.push(Arc::new(SiloTable { id, primary: tree, primary_index: index_id }));
        c.table_names.insert(name.to_owned(), id);
        id
    }

    /// Create (or look up) a secondary index (maps secondary key →
    /// record pointer of the primary record; keys must be immutable).
    pub fn create_secondary_index(&self, _table: TableId, name: &str) -> IndexId {
        {
            let c = self.inner.catalog.read();
            if let Some(&id) = c.index_names.get(name) {
                return id;
            }
        }
        let mut c = self.inner.catalog.write();
        if let Some(&id) = c.index_names.get(name) {
            return id;
        }
        let id = IndexId(c.indexes.len() as u32);
        c.indexes.push(Arc::new(SiloIndex { tree: Arc::new(BTree::new()) }));
        c.index_names.insert(name.to_owned(), id);
        id
    }

    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.inner.catalog.read().table_names.get(name).copied()
    }

    pub fn index_id(&self, name: &str) -> Option<IndexId> {
        self.inner.catalog.read().index_names.get(name).copied()
    }

    pub fn primary_index(&self, table: TableId) -> IndexId {
        self.inner.catalog.read().tables[table.0 as usize].primary_index
    }

    pub(crate) fn table(&self, id: TableId) -> Arc<SiloTable> {
        Arc::clone(&self.inner.catalog.read().tables[id.0 as usize])
    }

    pub(crate) fn index(&self, id: IndexId) -> Arc<SiloIndex> {
        Arc::clone(&self.inner.catalog.read().indexes[id.0 as usize])
    }

    /// Register the calling thread.
    pub fn register_worker(&self) -> SiloWorker {
        SiloWorker {
            db: self.clone(),
            rcu_handle: self.inner.rcu.register(),
            last_tid: 0,
        }
    }

    pub fn txn_counts(&self) -> (u64, u64) {
        (self.inner.commits.load(Ordering::Relaxed), self.inner.aborts.load(Ordering::Relaxed))
    }

    pub fn current_epoch(&self) -> u64 {
        self.inner.global_epoch.load(Ordering::Acquire)
    }

    pub fn snapshot_epoch(&self) -> u64 {
        self.inner.snap_epoch.load(Ordering::Acquire)
    }
}

/// Per-thread handle.
pub struct SiloWorker {
    pub(crate) db: SiloDb,
    pub(crate) rcu_handle: EpochHandle,
    /// Highest commit TID this worker has issued (commit TIDs must be
    /// monotonic per worker).
    pub(crate) last_tid: u64,
}

impl SiloWorker {
    /// Begin a transaction.
    pub fn begin(&mut self, mode: TxnMode) -> SiloTxn<'_> {
        SiloTxn::begin(self, mode)
    }

    pub fn database(&self) -> &SiloDb {
        &self.db
    }
}
