//! The Silo OCC transaction protocol (SOSP'13 §3, as summarized in the
//! ERMIA paper §2 and §4).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use ermia_common::{AbortReason, IndexId, OpResult, TableId, TxResult};
use ermia_epoch::Guard;
use ermia_index::{BTree, InsertOutcome, LeafSnapshot, ScanControl};

use crate::db::{SiloDb, SiloWorker};
use crate::record::{pack_tid, unpack_tid, DataBuf, Record, SnapVersion, TID_ABSENT, TID_LOCK};

/// Transaction mode. Declared read-only transactions read epoch-based
/// snapshots without validation — but become unusable the moment the
/// workload wants them to write ("unusable by transactions that perform
/// any writes", §5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnMode {
    ReadWrite,
    ReadOnly,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WriteKind {
    /// Fresh record we created and indexed (ABSENT until commit).
    Insert,
    /// Revival of an existing ABSENT (deleted) record.
    Revive,
    Update,
    Delete,
}

struct WriteOp {
    record: *mut Record,
    tree: Arc<BTree>,
    key: Box<[u8]>,
    new_data: Vec<u8>,
    kind: WriteKind,
}

struct SecondaryIns {
    tree: Arc<BTree>,
    key: Box<[u8]>,
}

/// An in-flight Silo transaction.
pub struct SiloTxn<'w> {
    db: &'w SiloDb,
    guard: Guard<'w>,
    mode: TxnMode,
    /// Snapshot epoch (read-only transactions).
    snap: u64,
    reads: Vec<(*mut Record, u64)>,
    writes: Vec<WriteOp>,
    secondary: Vec<SecondaryIns>,
    node_set: Vec<(Arc<BTree>, LeafSnapshot)>,
    last_tid: &'w mut u64,
    doomed: Option<AbortReason>,
    finished: bool,
}

impl<'w> SiloTxn<'w> {
    pub(crate) fn begin(worker: &'w mut SiloWorker, mode: TxnMode) -> SiloTxn<'w> {
        let SiloWorker { db, rcu_handle, last_tid } = worker;
        let guard = rcu_handle.pin();
        let snap = db.inner.snap_epoch.load(Ordering::Acquire);
        if mode == TxnMode::ReadOnly && db.inner.cfg.snapshots {
            *db.inner.ro_active.lock().entry(snap).or_insert(0) += 1;
        }
        SiloTxn {
            db,
            guard,
            mode,
            snap,
            reads: Vec::new(),
            writes: Vec::new(),
            secondary: Vec::new(),
            node_set: Vec::new(),
            last_tid,
            doomed: None,
            finished: false,
        }
    }

    fn snapshot_reads(&self) -> bool {
        self.mode == TxnMode::ReadOnly && self.db.inner.cfg.snapshots
    }

    #[inline]
    fn check_doomed(&self) -> OpResult<()> {
        match self.doomed {
            Some(r) => Err(r),
            None => Ok(()),
        }
    }

    #[inline]
    fn doom(&mut self, r: AbortReason) -> AbortReason {
        self.doomed = Some(r);
        r
    }

    fn write_entry(&self, rec: *mut Record) -> Option<usize> {
        self.writes.iter().position(|w| w.record == rec)
    }

    /// Indices of node-set entries for `tree` that are currently valid —
    /// captured just before one of our own inserts so the refresh below
    /// can tell self-inflicted version bumps from genuine concurrent
    /// phantoms (real Silo attributes its own structural changes too).
    fn valid_node_entries(&self, tree: &Arc<BTree>) -> Vec<usize> {
        self.node_set
            .iter()
            .enumerate()
            .filter(|(_, (t2, snap))| Arc::ptr_eq(t2, tree) && t2.validate(snap))
            .map(|(i, _)| i)
            .collect()
    }

    /// Re-stamp entries that were valid before our own insert and are
    /// stale now; entries already stale beforehand stay stale and fail
    /// phase-2 validation.
    fn refresh_node_set(&mut self, valid_before: &[usize]) {
        for &i in valid_before {
            let (tree, snap) = &mut self.node_set[i];
            if !tree.validate(snap) {
                tree.refresh_snapshot(snap);
            }
        }
    }

    /// Read a record by primary key.
    pub fn read<R>(
        &mut self,
        table: TableId,
        key: &[u8],
        f: impl FnOnce(&[u8]) -> R,
    ) -> OpResult<Option<R>> {
        self.check_doomed()?;
        let t = self.db.table(table);
        self.read_via(&t.primary, key, f)
    }

    /// Read through a secondary index.
    pub fn read_secondary<R>(
        &mut self,
        index: IndexId,
        key: &[u8],
        f: impl FnOnce(&[u8]) -> R,
    ) -> OpResult<Option<R>> {
        self.check_doomed()?;
        let idx = self.db.index(index);
        let tree = Arc::clone(&idx.tree);
        self.read_via(&tree, key, f)
    }

    fn read_via<R>(
        &mut self,
        tree: &Arc<BTree>,
        key: &[u8],
        f: impl FnOnce(&[u8]) -> R,
    ) -> OpResult<Option<R>> {
        let (val, snap) = tree.get(&self.guard, key);
        let Some(val) = val else {
            if !self.snapshot_reads() {
                self.node_set.push((Arc::clone(tree), snap));
            }
            return Ok(None);
        };
        let rec = val as *mut Record;
        if self.snapshot_reads() {
            return Ok(self.read_snapshot(rec).map(f));
        }
        // Read own pending writes first.
        if let Some(i) = self.write_entry(rec) {
            let w = &self.writes[i];
            return Ok(match w.kind {
                WriteKind::Delete => None,
                _ => Some(f(&w.new_data)),
            });
        }
        let r = unsafe { &*rec };
        let (word, buf) = r.stable_read();
        self.reads.push((rec, word));
        if word & TID_ABSENT != 0 {
            return Ok(None);
        }
        // SAFETY: buffer pinned by our guard; word re-validated by
        // stable_read.
        let bytes = unsafe { &(*buf).bytes };
        Ok(Some(f(bytes)))
    }

    /// Snapshot read for declared read-only transactions: the newest
    /// value created before this transaction's snapshot epoch.
    fn read_snapshot(&self, rec: *mut Record) -> Option<&[u8]> {
        let r = unsafe { &*rec };
        let (word, buf) = r.stable_read();
        let cur = unsafe { &*buf };
        if cur.snap_epoch < self.snap && word & TID_ABSENT == 0 {
            return Some(&cur.bytes);
        }
        // Walk the snapshot chain for an old-enough value.
        let mut entry = r.snaps.load(Ordering::Acquire);
        while !entry.is_null() {
            let e = unsafe { &*entry };
            let b = unsafe { &*e.buf };
            if b.snap_epoch < self.snap {
                return Some(&b.bytes);
            }
            entry = e.next.load(Ordering::Acquire);
        }
        None
    }

    /// Buffer an update; returns false if the key is absent.
    pub fn update(&mut self, table: TableId, key: &[u8], value: &[u8]) -> OpResult<bool> {
        self.check_doomed()?;
        debug_assert_eq!(self.mode, TxnMode::ReadWrite, "read-only transactions cannot write");
        let t = self.db.table(table);
        let (val, snap) = t.primary.get(&self.guard, key);
        let Some(val) = val else {
            self.node_set.push((Arc::clone(&t.primary), snap));
            return Ok(false);
        };
        let rec = val as *mut Record;
        if let Some(i) = self.write_entry(rec) {
            let entry = &mut self.writes[i];
            if entry.kind == WriteKind::Delete {
                // Deleted earlier in this transaction: a miss.
                return Ok(false);
            }
            entry.new_data = value.to_vec();
            return Ok(true);
        }
        let r = unsafe { &*rec };
        let (word, _) = r.stable_read();
        if word & TID_ABSENT != 0 {
            self.reads.push((rec, word));
            return Ok(false);
        }
        self.writes.push(WriteOp {
            record: rec,
            tree: Arc::clone(&t.primary),
            key: key.to_vec().into_boxed_slice(),
            new_data: value.to_vec(),
            kind: WriteKind::Update,
        });
        Ok(true)
    }

    /// Buffer a delete; returns false on miss. Deleted records stay in
    /// the index as ABSENT entries (revivable by inserts).
    pub fn delete(&mut self, table: TableId, key: &[u8]) -> OpResult<bool> {
        self.check_doomed()?;
        let t = self.db.table(table);
        let (val, snap) = t.primary.get(&self.guard, key);
        let Some(val) = val else {
            self.node_set.push((Arc::clone(&t.primary), snap));
            return Ok(false);
        };
        let rec = val as *mut Record;
        if let Some(i) = self.write_entry(rec) {
            if self.writes[i].kind == WriteKind::Delete {
                return Ok(false); // already deleted by us
            }
            self.writes[i].kind = WriteKind::Delete;
            return Ok(true);
        }
        let r = unsafe { &*rec };
        let (word, _) = r.stable_read();
        if word & TID_ABSENT != 0 {
            self.reads.push((rec, word));
            return Ok(false);
        }
        self.writes.push(WriteOp {
            record: rec,
            tree: Arc::clone(&t.primary),
            key: key.to_vec().into_boxed_slice(),
            new_data: Vec::new(),
            kind: WriteKind::Delete,
        });
        Ok(true)
    }

    /// Insert a record; returns an opaque handle usable with
    /// [`SiloTxn::insert_secondary`]. Inserting over a deleted (ABSENT)
    /// record revives it; a live duplicate dooms the transaction.
    pub fn insert(&mut self, table: TableId, key: &[u8], value: &[u8]) -> OpResult<u64> {
        self.check_doomed()?;
        let t = self.db.table(table);
        let snap_epoch = self.db.inner.snap_epoch.load(Ordering::Acquire);
        let rec = Record::alloc_absent(snap_epoch, value);
        let valid_before = self.valid_node_entries(&t.primary);
        match t.primary.insert(&self.guard, key, rec as u64) {
            InsertOutcome::Inserted => {
                self.refresh_node_set(&valid_before);
                self.writes.push(WriteOp {
                    record: rec,
                    tree: Arc::clone(&t.primary),
                    key: key.to_vec().into_boxed_slice(),
                    new_data: value.to_vec(),
                    kind: WriteKind::Insert,
                });
                Ok(rec as u64)
            }
            InsertOutcome::Duplicate(existing) => {
                // Our speculative record never escaped.
                unsafe {
                    drop(Box::from_raw((*rec).data.load(Ordering::Relaxed)));
                    drop(Box::from_raw(rec));
                }
                let existing = existing as *mut Record;
                // Re-insert over our own buffered delete: revive in place.
                if let Some(i) = self.write_entry(existing) {
                    let entry = &mut self.writes[i];
                    if entry.kind == WriteKind::Delete {
                        entry.kind = WriteKind::Update;
                        entry.new_data = value.to_vec();
                        return Ok(existing as u64);
                    }
                    return Err(self.doom(AbortReason::DuplicateKey));
                }
                let er = unsafe { &*existing };
                let (word, _) = er.stable_read();
                // Revivable = ABSENT *with a commit TID* (a committed
                // delete). A pure-ABSENT word is another transaction's
                // in-flight insert: reviving it would alias a record its
                // owner may yet unlink and retire on abort.
                if word & TID_ABSENT != 0 && word >> 3 != 0 {
                    // Revive the deleted record; the read-set entry makes
                    // competing revivals conflict at validation.
                    self.reads.push((existing, word));
                    self.writes.push(WriteOp {
                        record: existing,
                        tree: Arc::clone(&t.primary),
                        key: key.to_vec().into_boxed_slice(),
                        new_data: value.to_vec(),
                        kind: WriteKind::Revive,
                    });
                    Ok(existing as u64)
                } else {
                    Err(self.doom(AbortReason::DuplicateKey))
                }
            }
        }
    }

    /// Add a secondary-index entry for a handle returned by
    /// [`SiloTxn::insert`].
    pub fn insert_secondary(&mut self, index: IndexId, key: &[u8], handle: u64) -> OpResult<()> {
        self.check_doomed()?;
        let idx = self.db.index(index);
        let tree = Arc::clone(&idx.tree);
        let valid_before = self.valid_node_entries(&tree);
        match tree.insert(&self.guard, key, handle) {
            InsertOutcome::Inserted => {
                self.refresh_node_set(&valid_before);
                self.secondary.push(SecondaryIns {
                    tree: Arc::clone(&idx.tree),
                    key: key.to_vec().into_boxed_slice(),
                });
                Ok(())
            }
            InsertOutcome::Duplicate(_) => Err(self.doom(AbortReason::DuplicateKey)),
        }
    }

    /// Range scan (ascending, inclusive bounds) over any index.
    pub fn scan(
        &mut self,
        index: IndexId,
        low: &[u8],
        high: &[u8],
        limit: Option<usize>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> OpResult<usize> {
        self.check_doomed()?;
        let idx = self.db.index(index);
        let tree = Arc::clone(&idx.tree);
        let snapshot = self.snapshot_reads();

        let mut delivered = 0usize;
        let mut resume: Vec<u8> = low.to_vec();
        loop {
            let cap = limit.map_or(usize::MAX, |l| (l - delivered) * 2 + 64);
            let mut items: Vec<(Vec<u8>, u64)> = Vec::new();
            let mut truncated = false;
            {
                let node_set = &mut self.node_set;
                tree.scan(
                    &self.guard,
                    &resume,
                    high,
                    |snap| {
                        if !snapshot {
                            node_set.push((Arc::clone(&tree), snap));
                        }
                    },
                    |k, v| {
                        items.push((k.to_vec(), v));
                        if items.len() >= cap {
                            truncated = true;
                            ScanControl::Stop
                        } else {
                            ScanControl::Continue
                        }
                    },
                );
            }
            let mut stopped = false;
            for (k, val) in &items {
                let rec = *val as *mut Record;
                let keep_going = if snapshot {
                    match self.read_snapshot(rec) {
                        Some(bytes) => {
                            delivered += 1;
                            f(k, bytes)
                        }
                        None => true,
                    }
                } else if let Some(i) = self.write_entry(rec) {
                    match self.writes[i].kind {
                        WriteKind::Delete => true,
                        _ => {
                            // Deliver own pending write; clone to end the
                            // borrow of self.writes.
                            let data = self.writes[i].new_data.clone();
                            delivered += 1;
                            f(k, &data)
                        }
                    }
                } else {
                    let r = unsafe { &*rec };
                    let (word, buf) = r.stable_read();
                    self.reads.push((rec, word));
                    if word & TID_ABSENT != 0 {
                        true
                    } else {
                        let bytes = unsafe { &(*buf).bytes };
                        delivered += 1;
                        f(k, bytes)
                    }
                };
                if !keep_going || limit.is_some_and(|l| delivered >= l) {
                    stopped = true;
                    break;
                }
            }
            if stopped || !truncated {
                return Ok(delivered);
            }
            let (last, _) = items.last().expect("truncated implies items");
            resume.clear();
            resume.extend_from_slice(last);
            resume.push(0);
        }
    }

    /// Commit: lock write set → validate read + node sets → install.
    pub fn commit(mut self) -> TxResult<()> {
        if let Some(r) = self.doomed {
            self.do_abort();
            return Err(r);
        }
        if self.snapshot_reads() || (self.writes.is_empty() && self.reads.is_empty() && self.node_set.is_empty()) {
            // Snapshot transactions commit without validation.
            self.db.inner.commits.fetch_add(1, Ordering::Relaxed);
            self.finish();
            return Ok(());
        }

        // Phase 1: lock the write set in pointer order (deadlock-free).
        let mut order: Vec<usize> = (0..self.writes.len()).collect();
        order.sort_unstable_by_key(|&i| self.writes[i].record as usize);
        for &i in &order {
            unsafe { (*self.writes[i].record).lock() };
        }
        std::sync::atomic::fence(Ordering::SeqCst);
        let epoch = self.db.inner.global_epoch.load(Ordering::SeqCst);

        // Phase 2: validate reads and node set.
        let mut valid = true;
        let mut reason = AbortReason::ReadValidation;
        for &(rec, observed) in &self.reads {
            let cur = unsafe { (*rec).tid_word.load(Ordering::Acquire) };
            let in_ws = self.writes.iter().any(|w| w.record == rec);
            let ok = if in_ws {
                (cur & !TID_LOCK) == (observed & !TID_LOCK)
            } else {
                cur == observed // a lock bit or changed TID both fail
            };
            if !ok {
                valid = false;
                break;
            }
        }
        if valid {
            for (tree, snap) in &self.node_set {
                if !tree.validate(snap) {
                    valid = false;
                    reason = AbortReason::Phantom;
                    break;
                }
            }
        }
        if !valid {
            for &i in &order {
                unsafe { (*self.writes[i].record).unlock() };
            }
            self.rollback_inserts();
            self.db.inner.aborts.fetch_add(1, Ordering::Relaxed);
            self.finish();
            return Err(reason);
        }

        // Phase 3: compute the commit TID and install.
        let mut max_word = *self.last_tid;
        for &(_, w) in &self.reads {
            max_word = max_word.max(w & !(TID_LOCK | TID_ABSENT));
        }
        for w in &self.writes {
            let cur = unsafe { (*w.record).tid_word.load(Ordering::Relaxed) };
            max_word = max_word.max(cur & !(TID_LOCK | TID_ABSENT));
        }
        let (mut ep, mut seq) = unpack_tid(max_word);
        if ep < epoch {
            ep = epoch;
            seq = 0;
        }
        let commit_word = pack_tid(ep, seq + 1);
        *self.last_tid = commit_word;

        let snap_now = self.db.inner.snap_epoch.load(Ordering::Acquire);
        let snapshots = self.db.inner.cfg.snapshots;
        for w in &self.writes {
            let r = unsafe { &*w.record };
            match w.kind {
                WriteKind::Insert | WriteKind::Revive => {
                    let new_buf = DataBuf::alloc(snap_now, &w.new_data);
                    let old = r.data.swap(new_buf, Ordering::AcqRel);
                    unsafe { self.guard.defer_drop(old) };
                    r.unlock_with(commit_word);
                }
                WriteKind::Update => {
                    let new_buf = DataBuf::alloc(snap_now, &w.new_data);
                    let old = r.data.swap(new_buf, Ordering::AcqRel);
                    if !self.preserve_snapshot(r, old, snap_now, snapshots) {
                        // Not needed by any snapshot: retire directly.
                        unsafe { self.guard.defer_drop(old) };
                    }
                    r.unlock_with(commit_word);
                }
                WriteKind::Delete => {
                    // The record stays indexed (ABSENT); snapshots keep
                    // reading the pre-delete value from the chain.
                    let old = r.data.load(Ordering::Acquire);
                    if self.preserve_snapshot(r, old, snap_now, snapshots) {
                        // The chain now owns `old`; give the record a
                        // fresh (empty) current buffer.
                        r.data.store(DataBuf::alloc(snap_now, &[]), Ordering::Release);
                    }
                    // else: the buffer stays as the (unreadable) current
                    // data — never freed while referenced.
                    r.unlock_with(commit_word | TID_ABSENT);
                }
            }
        }
        self.db.inner.commits.fetch_add(1, Ordering::Relaxed);
        self.finish();
        Ok(())
    }

    /// On overwrite, push the displaced value onto the snapshot chain
    /// (at most once per snapshot epoch); returns whether the chain took
    /// ownership of `old`. Also trims chain entries old enough that no
    /// reasonable snapshot reader needs them.
    fn preserve_snapshot(&self, r: &Record, old: *mut DataBuf, snap_now: u64, enabled: bool) -> bool {
        if !enabled {
            return false;
        }
        if r.last_push.load(Ordering::Relaxed) < snap_now {
            let entry = Box::into_raw(Box::new(SnapVersion {
                buf: old,
                next: std::sync::atomic::AtomicPtr::new(r.snaps.load(Ordering::Acquire)),
            }));
            r.snaps.store(entry, Ordering::Release);
            r.last_push.store(snap_now, Ordering::Relaxed);
            // Trim: a snapshot reader at epoch S needs the *newest*
            // entry with snap_epoch < S. With horizon = the oldest
            // active read-only snapshot, everything strictly after the
            // first entry below the horizon is unreachable.
            let horizon = self
                .db
                .inner
                .ro_active
                .lock()
                .keys()
                .next()
                .copied()
                .unwrap_or(snap_now);
            let mut cur = unsafe { &*entry }.next.load(Ordering::Acquire);
            let mut prev = entry;
            while !cur.is_null() {
                let c = unsafe { &*cur };
                let b = unsafe { &*c.buf };
                let next = c.next.load(Ordering::Acquire);
                if b.snap_epoch < horizon {
                    // `cur` is the newest entry any active (or future)
                    // snapshot below the horizon can need; cut after it.
                    c.next.store(std::ptr::null_mut(), Ordering::Release);
                    let mut dead = next;
                    while !dead.is_null() {
                        let d = unsafe { &*dead };
                        let dn = d.next.load(Ordering::Acquire);
                        unsafe {
                            self.guard.defer_drop(d.buf);
                            self.guard.defer_drop(dead);
                        }
                        dead = dn;
                    }
                    break;
                }
                prev = cur;
                cur = next;
            }
            let _ = prev;
            true
        } else {
            false
        }
    }

    /// Abort explicitly.
    pub fn abort(mut self) {
        self.do_abort();
    }

    fn do_abort(&mut self) {
        if self.finished {
            return;
        }
        self.rollback_inserts();
        self.db.inner.aborts.fetch_add(1, Ordering::Relaxed);
        self.finish();
    }

    /// Mark finished and deregister the read-only snapshot (if any).
    fn finish(&mut self) {
        self.finished = true;
        if self.mode == TxnMode::ReadOnly && self.db.inner.cfg.snapshots {
            let mut active = self.db.inner.ro_active.lock();
            if let Some(count) = active.get_mut(&self.snap) {
                *count -= 1;
                if *count == 0 {
                    active.remove(&self.snap);
                }
            }
        }
    }

    fn rollback_inserts(&mut self) {
        for w in self.writes.drain(..) {
            if w.kind == WriteKind::Insert {
                // Our speculative ABSENT record: unindex and retire.
                w.tree.remove(&self.guard, &w.key);
                let rec = w.record;
                unsafe {
                    let buf = (*rec).data.load(Ordering::Relaxed);
                    self.guard.defer_drop(buf);
                    self.guard.defer_drop(rec);
                }
            }
        }
        for s in self.secondary.drain(..) {
            s.tree.remove(&self.guard, &s.key);
        }
    }
}

impl Drop for SiloTxn<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.do_abort();
        }
    }
}
