//! Golden names for the replication telemetry surface: the replica's
//! `/metrics` exposition must carry the `ermia_repl_*` families with
//! the right kinds, and the flight recorders on both sides must record
//! the shipping events.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ermia::{Database, DbConfig};
use ermia_repl::{Replica, ReplicaConfig};
use ermia_server::{Client, Server, ServerConfig, WireIsolation};
use ermia_telemetry::parse_exposition;

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ermia-repl-metrics-{}-{}-{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn replica_metrics_expose_the_repl_families() {
    let primary_dir = tmpdir("primary");
    let mut cfg = DbConfig::durable(&primary_dir);
    cfg.log.segment_size = 8192;
    let db = Database::open(cfg).unwrap();
    let srv = Server::start(&db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = srv.local_addr().to_string();
    let mut c = Client::connect(addr.as_str()).unwrap();
    let t = c.open_table("kv").unwrap();
    for i in 0..200u32 {
        c.begin(WireIsolation::Snapshot).unwrap();
        c.put(t, &i.to_be_bytes(), &[0x7A; 64]).unwrap();
        c.commit(true).unwrap();
    }

    let replica_dir = tmpdir("replica");
    let mut replica = Replica::bootstrap(ReplicaConfig::new(addr, &replica_dir)).unwrap();
    replica.catch_up().unwrap();
    let stats = replica.stats();
    assert!(stats.shipped_segments() >= 1, "several 8 KiB segments must have shipped");
    assert_eq!(stats.lag_bytes(), 0, "caught up means zero lag");
    assert!(stats.applied_lsn() > 0);
    assert!(stats.rounds() >= 1);

    // The replica's exposition carries the repl families, golden names
    // and kinds, next to the regular engine surface.
    let rsrv = replica.serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut rc = Client::connect(rsrv.local_addr()).unwrap();
    let text = rc.metrics().unwrap();
    let exp = parse_exposition(&text).expect("replica exposition must parse");
    for name in
        ["ermia_repl_lag_bytes", "ermia_repl_shipped_segments_total", "ermia_repl_applied_lsn"]
    {
        assert!(exp.has(name), "replica exposition is missing {name}:\n{text}");
    }
    assert_eq!(exp.kind("ermia_repl_lag_bytes"), Some("gauge"));
    assert_eq!(exp.kind("ermia_repl_shipped_segments_total"), Some("counter"));
    assert_eq!(exp.kind("ermia_repl_applied_lsn"), Some("gauge"));
    assert_eq!(exp.value("ermia_repl_lag_bytes"), Some(0.0));
    assert!(exp.value("ermia_repl_shipped_segments_total").unwrap() >= 1.0);
    assert!(exp.value("ermia_repl_applied_lsn").unwrap() > 0.0);

    // Flight events: the replica ring records applies; the primary ring
    // records the chunks it shipped.
    let rdump = rc.dump_events(256).unwrap();
    assert!(rdump.contains("repl-applied"), "replica apply events missing:\n{rdump}");
    let mut pc = Client::connect(srv.local_addr()).unwrap();
    let pdump = pc.dump_events(256).unwrap();
    assert!(pdump.contains("repl-segment-shipped"), "primary ship events missing:\n{pdump}");

    rsrv.shutdown();
    srv.shutdown();
    drop(replica);
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}
