//! Replica-correctness oracle, end to end over the wire.
//!
//! A journal records every write the primary acked durable (sync
//! commit). After the replica catches up, the oracle demands exact
//! agreement: every journaled key is visible on the replica with its
//! journaled value, and a full scan surfaces *only* journaled pairs —
//! no unissued values, no duplicates, no resurrections. A mid-stream
//! disconnect + resubscribe must resume from the applied offset without
//! gaps or repeats.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ermia::{Database, DbConfig, IsolationLevel};
use ermia_repl::{Replica, ReplicaConfig};
use ermia_server::{Client, ClientError, ErrorCode, Server, ServerConfig, WireIsolation};

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ermia-repl-oracle-{}-{}-{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sync-committed write: the ack means the commit block is durable on
/// the primary, which is exactly the contract the replica must honor.
fn sync_put(c: &mut Client, t: u32, key: &[u8], value: &[u8]) -> u64 {
    c.begin(WireIsolation::Snapshot).unwrap();
    c.put(t, key, value).unwrap();
    c.commit(true).unwrap()
}

fn key(i: u32) -> Vec<u8> {
    format!("key-{i:06}").into_bytes()
}

#[test]
fn replica_oracle_exact_agreement_with_acked_writes() {
    let primary_dir = tmpdir("primary");
    let mut cfg = DbConfig::durable(&primary_dir);
    cfg.log.segment_size = 8192; // force rotations while shipping
    cfg.large_value_threshold = 4096; // exercise the blob side file
    let db = Database::open(cfg).unwrap();
    let srv = Server::start(&db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = srv.local_addr().to_string();
    let mut c = Client::connect(addr.as_str()).unwrap();
    let t = c.open_table("kv").unwrap();

    let mut journal: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();

    // Phase 1: writes that will only reach the replica via the
    // checkpoint image — the log below it gets truncated away.
    for i in 0..150u32 {
        let v = format!("v1-{i}").into_bytes();
        sync_put(&mut c, t, &key(i), &v);
        journal.insert(key(i), v);
    }
    // One large value: diverted to the blob store, so the replica must
    // ship blobs.dat for the indirect record to resolve.
    let big = vec![0xB5u8; 16 << 10];
    sync_put(&mut c, t, b"big-ckpt", &big);
    journal.insert(b"big-ckpt".to_vec(), big);

    db.checkpoint().unwrap();
    let removed = db.truncate_log().unwrap();
    assert!(removed > 0, "truncation must bite so bootstrap needs the checkpoint");

    // Phase 2: post-checkpoint writes, shipped as raw log. Overwrites
    // prove the replica applies in order (latest value wins).
    for i in 100..250u32 {
        let v = format!("v2-{i}").into_bytes();
        sync_put(&mut c, t, &key(i), &v);
        journal.insert(key(i), v);
    }
    let big2 = vec![0x5Bu8; 20 << 10];
    sync_put(&mut c, t, b"big-log", &big2);
    journal.insert(b"big-log".to_vec(), big2);

    // Bootstrap the replica: checkpoint + segments + blobs over the wire.
    let replica_dir = tmpdir("replica");
    let mut replica = Replica::bootstrap(ReplicaConfig::new(addr.clone(), &replica_dir)).unwrap();
    replica.catch_up().unwrap();
    assert!(replica.applied_lsn() > 0);

    // Mid-stream disconnect: sever every shipping connection (the
    // primary drops the old retention pins), write more on the primary,
    // then resubscribe — resumption is from the applied offset, so the
    // new writes and only the new writes arrive.
    let applied_before = replica.applied_lsn();
    replica.reconnect().unwrap();
    for i in 200..300u32 {
        let v = format!("v3-{i}").into_bytes();
        sync_put(&mut c, t, &key(i), &v);
        journal.insert(key(i), v);
    }
    replica.catch_up().unwrap();
    assert!(
        replica.applied_lsn() > applied_before,
        "resubscribe must resume applying past the disconnect point"
    );

    // Serve the replica and interrogate it over the unchanged protocol.
    let rsrv = replica.serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut rc = Client::connect(rsrv.local_addr()).unwrap();
    let rt = rc.open_table("kv").unwrap();
    assert_eq!(rt, t, "replayed DDL must reproduce dense table ids");

    // Health: replica role, applied frontier visible.
    let health = rc.health().unwrap();
    assert_eq!(health.role, 1, "the replica must report the replica role");
    assert!(health.applied_lsn > 0, "the applied LSN must be on the Health frame");

    // Oracle check 1: every acked-durable write is visible with its
    // exact journaled value.
    for (k, v) in &journal {
        let got = rc.get(rt, k).unwrap();
        assert_eq!(
            got.as_deref(),
            Some(&v[..]),
            "journaled key {:?} wrong on replica",
            String::from_utf8_lossy(k)
        );
    }
    // Keys never issued are absent.
    assert_eq!(rc.get(rt, b"never-written").unwrap(), None);

    // Oracle check 2: a full scan of the replica surfaces exactly the
    // journal — nothing unissued, nothing duplicated, nothing lost.
    let serving = replica.serving();
    let idx = serving.primary_index(ermia_common::TableId(t));
    let mut w = serving.register_worker();
    let mut tx = w.begin(IsolationLevel::Snapshot);
    let mut scanned: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    tx.scan(idx, &[], &[0xFF; 12], None, |k, v| {
        assert!(
            scanned.insert(k.to_vec(), v.to_vec()).is_none(),
            "duplicate key {:?} in replica scan",
            String::from_utf8_lossy(k)
        );
        true
    })
    .unwrap();
    tx.commit().unwrap();
    assert_eq!(scanned, journal, "replica scan must be exactly the acked journal");

    // Writes bounce with the read-only service code.
    rc.begin(WireIsolation::Snapshot).unwrap();
    match rc.put(rt, b"nope", b"x") {
        Err(ClientError::Server { code: ErrorCode::DegradedReadOnly, .. }) => {}
        other => panic!("replica writes must bounce read-only, got {other:?}"),
    }
    rc.abort().unwrap();

    // The shipper's retention pin kept the primary writable + truncatable
    // underneath: primary service is unaffected.
    sync_put(&mut c, t, b"post", b"x");

    rsrv.shutdown();
    srv.shutdown();
    drop(replica);
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

/// Same oracle against a 2-shard primary: per-shard shipping, replayed
/// routing, and cross-shard 2PC outcomes (a replica only shows a
/// cross-shard write once the decide record shipped).
#[test]
fn sharded_replica_replicates_cross_shard_commits() {
    let primary_dir = tmpdir("sharded-primary");
    let mut cfg = DbConfig::durable(&primary_dir);
    cfg.log.segment_size = 16 << 10;
    let db = ermia::ShardedDb::open(cfg, 2).unwrap();
    let srv = Server::start_sharded(&db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = srv.local_addr().to_string();
    let mut c = Client::connect(addr.as_str()).unwrap();
    let t = c.open_table("kv").unwrap();

    let mut journal: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    // Multi-key transactions: most straddle both shards, so commits go
    // through 2PC and ship as prepare + decide records.
    for i in 0..120u32 {
        c.begin(WireIsolation::Snapshot).unwrap();
        for j in 0..3u32 {
            let k = format!("x-{i:04}-{j}").into_bytes();
            let v = format!("v-{i}-{j}").into_bytes();
            c.put(t, &k, &v).unwrap();
            journal.insert(k, v);
        }
        c.commit(true).unwrap();
    }

    let replica_dir = tmpdir("sharded-replica");
    let mut rcfg = ReplicaConfig::new(addr, &replica_dir);
    rcfg.shards = 2;
    let mut replica = Replica::bootstrap(rcfg).unwrap();
    replica.catch_up().unwrap();

    let rsrv = replica.serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut rc = Client::connect(rsrv.local_addr()).unwrap();
    let rt = rc.open_table("kv").unwrap();
    for (k, v) in &journal {
        assert_eq!(
            rc.get(rt, k).unwrap().as_deref(),
            Some(&v[..]),
            "cross-shard key {:?} wrong on replica",
            String::from_utf8_lossy(k)
        );
    }
    let health = rc.health().unwrap();
    assert_eq!(health.role, 1);

    rsrv.shutdown();
    srv.shutdown();
    drop(replica);
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

#[test]
fn replica_routes_with_shipped_shard_policies() {
    // A prefix-hash table colocates every key sharing a 4-byte prefix
    // on one shard. The full-key default would scatter the same keys,
    // so a replica that fell back to the default policy would look on
    // the wrong shard and return not-found for most of them.
    let primary_dir = tmpdir("policy-primary");
    let mut cfg = DbConfig::durable(&primary_dir);
    cfg.log.segment_size = 16 << 10;
    let db = ermia::ShardedDb::open(cfg, 2).unwrap();
    let t = db.create_table_with_policy("orders", ermia::ShardPolicy::Hash { prefix: Some(4) });
    db.create_secondary_index(t, "orders-by-owner", ermia::IndexRouting::OwnerPrefix(4));
    let srv = Server::start_sharded(&db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = srv.local_addr().to_string();
    let mut c = Client::connect(addr.as_str()).unwrap();
    let t_wire = c.open_table("orders").unwrap();
    assert_eq!(t_wire, t.0);

    let mut journal: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    for group in 0..8u32 {
        for item in 0..6u32 {
            let k = format!("{group:04}-item-{item:02}").into_bytes();
            let v = format!("val-{group}-{item}").into_bytes();
            sync_put(&mut c, t_wire, &k, &v);
            journal.insert(k, v);
        }
    }

    // The shipped schema carries the routing descriptors on the wire.
    let mut probe = Client::connect(addr.as_str()).unwrap();
    let status = probe.subscribe(0, 0).unwrap();
    let table_entry = status.schema.iter().find(|d| d.secondary.is_none()).unwrap();
    assert_eq!(
        (table_entry.route_tag, table_entry.route_arg),
        (1, 4),
        "table entry must ship Hash{{prefix: Some(4)}}"
    );
    let index_entry = status.schema.iter().find(|d| d.secondary.is_some()).unwrap();
    assert_eq!(
        (index_entry.route_tag, index_entry.route_arg),
        (1, 4),
        "secondary entry must ship OwnerPrefix(4)"
    );
    drop(probe);

    let replica_dir = tmpdir("policy-replica");
    let mut rcfg = ReplicaConfig::new(addr, &replica_dir);
    rcfg.shards = 2;
    let mut replica = Replica::bootstrap(rcfg).unwrap();
    replica.catch_up().unwrap();

    let rsrv = replica.serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut rc = Client::connect(rsrv.local_addr()).unwrap();
    let rt = rc.open_table("orders").unwrap();
    assert_eq!(rt, t_wire);
    for (k, v) in &journal {
        assert_eq!(
            rc.get(rt, k).unwrap().as_deref(),
            Some(&v[..]),
            "prefix-routed key {:?} wrong or missing on replica",
            String::from_utf8_lossy(k)
        );
    }

    rsrv.shutdown();
    srv.shutdown();
    drop(replica);
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

#[test]
fn replica_open_table_is_lookup_only() {
    // OpenTable on a replica must never allocate: a locally created
    // table would take a dense id the primary later assigns to a
    // different table, silently corrupting log replay.
    let primary_dir = tmpdir("roddl-primary");
    let db = Database::open(DbConfig::durable(&primary_dir)).unwrap();
    let srv = Server::start(&db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = srv.local_addr().to_string();
    let mut c = Client::connect(addr.as_str()).unwrap();
    let t = c.open_table("kv").unwrap();
    sync_put(&mut c, t, b"k", b"v");

    let replica_dir = tmpdir("roddl-replica");
    let mut replica = Replica::bootstrap(ReplicaConfig::new(addr.clone(), &replica_dir)).unwrap();
    replica.catch_up().unwrap();
    let rsrv = replica.serve("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut rc = Client::connect(rsrv.local_addr()).unwrap();

    // Existing tables resolve by name; unknown names bounce instead of
    // allocating an id the primary never issued.
    assert_eq!(rc.open_table("kv").unwrap(), t);
    match rc.open_table("typo") {
        Err(ClientError::Server { code: ErrorCode::UnknownTable, .. }) => {}
        other => panic!("replica OpenTable must refuse local DDL, got {other:?}"),
    }
    assert_eq!(replica.serving().table_count(), 1, "the refused open must not grow the catalog");

    // The name the replica refused stays available to the primary: the
    // id it assigns replicates over and resolves identically.
    let t2 = c.open_table("typo").unwrap();
    sync_put(&mut c, t2, b"k2", b"v2");
    replica.catch_up().unwrap();
    assert_eq!(rc.open_table("typo").unwrap(), t2);
    assert_eq!(rc.get(t2, b"k2").unwrap().as_deref(), Some(&b"v2"[..]));

    rsrv.shutdown();
    srv.shutdown();
    drop(replica);
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

#[test]
fn fetch_chunk_edge_offsets_and_tiny_frames_do_not_panic() {
    // Offsets near u64::MAX exercised the `offset + len` sum; a frame
    // limit below the 4 KiB reply headroom exercised the
    // `max_frame_len - 4096` clamp. Both used to overflow in debug.
    let dir = tmpdir("fetch-edge");
    let db = Database::open(DbConfig::durable(&dir)).unwrap();
    let tiny = ServerConfig { max_frame_len: 2048, ..ServerConfig::default() };
    let srv = Server::start(&db, "127.0.0.1:0", tiny).unwrap();
    let mut c = Client::connect(srv.local_addr()).unwrap();
    let t = c.open_table("kv").unwrap();
    sync_put(&mut c, t, b"k", b"v");
    let status = c.subscribe(0, 0).unwrap();
    assert!(status.durable_lsn > 0);

    for offset in [u64::MAX, u64::MAX - 8, u64::MAX / 2] {
        let data = c.fetch_chunk(0, 1, offset, u32::MAX).unwrap();
        assert!(data.is_empty(), "no log data lives at offset {offset:#x}");
    }
    // A sane fetch still makes progress under the tiny frame limit.
    let data = c.fetch_chunk(0, 1, 0, u32::MAX).unwrap();
    assert!(!data.is_empty(), "log bytes below the durable frontier must ship");

    srv.shutdown();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
