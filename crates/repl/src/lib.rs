//! # ermia-repl — hot backup and log-shipping replication
//!
//! The replica side of the backup/replication subsystem (the primary
//! side — retention pins, `Subscribe`/`FetchChunk` serving — lives in
//! the engine and the server crate):
//!
//! * [`Replica::bootstrap`] connects to a primary, streams the latest
//!   checkpoint plus every durable log segment (and the blob side file)
//!   into a fresh local data directory laid out exactly like a
//!   primary's, and replays it through the engine's incremental
//!   [`LogApplier`](ermia::LogApplier). The local directory is a
//!   restartable backup at every point in time.
//! * [`Replica::poll`] runs one shipping round per shard: re-pin at the
//!   applied offset, mirror newly durable bytes, apply them, resolve
//!   cross-shard 2PC outcomes, and advance the serving snapshot cut.
//! * The serving handle ([`Replica::serving`]) is a sharded database of
//!   read-only snapshot views: reads see a transaction-consistent,
//!   monotonically advancing cut; writes abort with `ReadOnlyMode`
//!   (surfaced over the wire as `DegradedReadOnly`). [`Replica::serve`]
//!   exposes it over the unchanged wire protocol.
//!
//! ## Cut safety
//!
//! The replica publishes a cut `c = (applied, 0)` only once replay has
//! passed the installed checkpoint's stamp floor: the fuzzy checkpoint
//! records just the newest committed version per key at walk time, so
//! between the checkpoint's begin LSN and its floor the restored image
//! is not yet transaction-consistent. Below the floor the cut stays
//! `NULL` (an empty but consistent snapshot). Once published, the cut
//! only covers fully replayed commit blocks, so every version with a
//! stamp below it is present and none above it are visible.

use std::fmt;
use std::fs;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ermia::{Database, DbConfig, DdlEntry, IndexRouting, LogApplier, ShardPolicy, ShardedDb};
use ermia_common::lsn::NUM_SEGMENTS;
use ermia_common::Lsn;
use ermia_server::{Client, ClientError, ReplStatus, Server, ServerConfig, WireDdl};
use ermia_telemetry::{EventKind, EventRing, Sample, SpanKind, SpanRing, TraceContext};

/// Chunk source tags of the `FetchChunk` frame.
const SRC_CHECKPOINT: u8 = 0;
const SRC_LOG: u8 = 1;
const SRC_BLOB: u8 = 2;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why replication stopped.
#[derive(Debug)]
pub enum ReplError {
    /// Transport or server-side failure talking to the primary.
    Client(ClientError),
    /// Local filesystem / engine failure.
    Io(io::Error),
    /// The primary truncated log the replica had not shipped yet (the
    /// retention pin was lost, e.g. across a long disconnect). The
    /// replica cannot catch up incrementally and must re-bootstrap.
    RetentionLost { shard: u32, have: u64, earliest: u64 },
    /// Primary and replica disagree on the log segment size; shipped
    /// segment files would not line up.
    SegmentSizeMismatch { local: u64, primary: u64 },
    /// The primary answered something structurally valid but
    /// semantically impossible.
    Protocol(String),
}

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplError::Client(e) => write!(f, "primary connection: {e}"),
            ReplError::Io(e) => write!(f, "replica io: {e}"),
            ReplError::RetentionLost { shard, have, earliest } => write!(
                f,
                "shard {shard}: primary truncated to {earliest:#x} but replica only has {have:#x}; re-bootstrap required"
            ),
            ReplError::SegmentSizeMismatch { local, primary } => {
                write!(f, "segment size mismatch: local {local}, primary {primary}")
            }
            ReplError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<ClientError> for ReplError {
    fn from(e: ClientError) -> ReplError {
        ReplError::Client(e)
    }
}

impl From<io::Error> for ReplError {
    fn from(e: io::Error) -> ReplError {
        ReplError::Io(e)
    }
}

pub type ReplResult<T> = Result<T, ReplError>;

// ---------------------------------------------------------------------------
// Configuration / stats
// ---------------------------------------------------------------------------

/// How to bootstrap a replica.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// Primary server address (`host:port`).
    pub primary: String,
    /// Fresh local data directory; one `shard-N` subdirectory per shard
    /// is created under it, each laid out exactly like a primary data
    /// directory (segments, checkpoints, blobs) so it doubles as a
    /// promotable backup.
    pub dir: PathBuf,
    /// Shard count of the primary engine (1 for a plain server).
    pub shards: usize,
    /// Bytes requested per `FetchChunk`. The server additionally clamps
    /// replies to its frame limit.
    pub chunk_len: u32,
}

impl ReplicaConfig {
    pub fn new(primary: impl Into<String>, dir: impl Into<PathBuf>) -> ReplicaConfig {
        ReplicaConfig {
            primary: primary.into(),
            dir: dir.into(),
            shards: 1,
            chunk_len: 256 << 10,
        }
    }
}

/// Shared, atomically-updated replication counters; exported as
/// `ermia_repl_*` metrics on the serving database's registry.
#[derive(Default)]
pub struct ReplStats {
    lag_bytes: AtomicU64,
    shipped_segments: AtomicU64,
    applied_lsn: AtomicU64,
    rounds: AtomicU64,
}

impl ReplStats {
    /// Bytes between the primary's durable frontier and the replica's
    /// applied offset, as of the last poll (worst shard).
    pub fn lag_bytes(&self) -> u64 {
        self.lag_bytes.load(Ordering::Relaxed)
    }

    /// Log segments fully mirrored from the primary (bootstrap files +
    /// rotations observed while tailing).
    pub fn shipped_segments(&self) -> u64 {
        self.shipped_segments.load(Ordering::Relaxed)
    }

    /// Minimum applied log offset across shards.
    pub fn applied_lsn(&self) -> u64 {
        self.applied_lsn.load(Ordering::Relaxed)
    }

    /// Completed poll rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }
}

/// What one [`Replica::poll`] round accomplished.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplProgress {
    /// Log + blob bytes mirrored this round (all shards).
    pub shipped_bytes: u64,
    /// Commit blocks replayed this round (all shards).
    pub applied_blocks: u64,
    /// Worst-shard lag after the round, measured against the primary's
    /// durable frontier at subscribe time.
    pub lag_bytes: u64,
    /// Cross-shard transactions resolved from other shards' decide
    /// records this round.
    pub resolved: u64,
}

// ---------------------------------------------------------------------------
// Per-shard state
// ---------------------------------------------------------------------------

struct ShardState {
    shard: u32,
    client: Client,
    /// The applying handle: full read-write engine access, used only by
    /// the shipping loop (replay, checkpoint install, DDL).
    db: Database,
    /// The serving handle: a snapshot view whose cut advances with
    /// replay. Cloned into the serving [`ShardedDb`].
    view: Database,
    applier: LogApplier,
    /// Checkpoint stamp floor: the cut stays unpublished until replay
    /// passes it (see crate docs).
    floor: Lsn,
    /// Log bytes mirrored into local segment files so far.
    shipped: u64,
    /// Blob side-file bytes mirrored so far.
    blob_shipped: u64,
    blob_file: fs::File,
    segment_size: u64,
    /// The primary's schema listing as of the last status, DDL applied.
    /// Routing (shard policies, secondary-index rules) rides along on
    /// each entry and is re-installed whenever this changes.
    schema: Vec<WireDdl>,
    ring: Arc<EventRing>,
    /// Service span ring of the applying database's tracer: shipping
    /// rounds record infra `repl-ship` spans here, alongside the
    /// `repl-apply` spans the engine stitches to shipped trace ids.
    span_ring: Arc<SpanRing>,
}

impl ShardState {
    fn bootstrap(cfg: &ReplicaConfig, stats: &ReplStats, shard: u32) -> ReplResult<ShardState> {
        let mut client = Client::connect(cfg.primary.as_str()).map_err(ReplError::Client)?;
        let status = client.subscribe(shard, 0)?;
        let dir = cfg.dir.join(format!("shard-{shard}"));
        fs::create_dir_all(&dir)?;

        // Stream the checkpoint payload, if the primary has one.
        let mut from = 0u64;
        let mut ckpt: Option<(Lsn, Vec<u8>)> = None;
        if let Some((begin_raw, len)) = status.checkpoint {
            let mut payload = Vec::with_capacity(len as usize);
            while (payload.len() as u64) < len {
                let chunk =
                    client.fetch_chunk(shard, SRC_CHECKPOINT, payload.len() as u64, cfg.chunk_len)?;
                if chunk.is_empty() {
                    return Err(ReplError::Protocol(format!(
                        "checkpoint truncated at {} of {len} bytes",
                        payload.len()
                    )));
                }
                payload.extend_from_slice(&chunk);
            }
            let begin = Lsn::from_raw(begin_raw);
            from = begin.offset();
            ckpt = Some((begin, payload));
        } else if status.earliest > 0 {
            return Err(ReplError::RetentionLost { shard, have: 0, earliest: status.earliest });
        }

        // Mirror every durable segment as a primary-named file so the
        // local `Database::open` reconstructs the identical segment
        // table (same starts, same modulo numbers, same LSNs).
        let mut shipped = from;
        for &(index, start, durable_end) in &status.segments {
            let full_end = start + status.segment_size;
            let name = format!("log-{:02x}-{:x}-{:x}", index % NUM_SEGMENTS, start, full_end);
            let file = fs::File::create(dir.join(name))?;
            // Sparse full-size file: unwritten tail reads as zeros, which
            // is how the scanner detects the first hole.
            file.set_len(full_end - start)?;
            let mut off = start;
            while off < durable_end {
                let data = client.fetch_chunk(shard, SRC_LOG, off, cfg.chunk_len)?;
                if data.is_empty() {
                    break;
                }
                file.write_all_at(&data, off - start)?;
                off += data.len() as u64;
            }
            file.sync_data()?;
            shipped = shipped.max(off);
            stats.shipped_segments.fetch_add(1, Ordering::Relaxed);
        }

        // Mirror the blob side file: indirect (large-object) log records
        // carry only a fixed-size pointer into it.
        let blob_file = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(dir.join("blobs.dat"))?;
        let mut blob_shipped = 0u64;
        loop {
            let data = client.fetch_chunk(shard, SRC_BLOB, blob_shipped, cfg.chunk_len)?;
            if data.is_empty() {
                break;
            }
            blob_file.write_all_at(&data, blob_shipped)?;
            blob_shipped += data.len() as u64;
        }

        // Open the mirrored directory as a normal durable database and
        // rebuild state: schema first (dense ids must match the
        // primary's), then the checkpoint image, then log replay.
        let mut dbcfg = DbConfig::durable(&dir);
        dbcfg.log.segment_size = status.segment_size;
        let db = Database::open(dbcfg)?;
        db.set_role_replica();
        for ddl in &status.schema {
            db.apply_ddl(&to_ddl(ddl));
        }
        let mut floor = Lsn::NULL;
        if let Some((begin, payload)) = &ckpt {
            db.store_checkpoint(*begin, payload)?;
            let (_, f) = db.install_checkpoint(payload)?;
            floor = f;
        }
        let mut applier = LogApplier::new(from);
        let blocks = applier.apply_available(&db)?;

        let view = db.replica_view();
        let ring = db.telemetry().flight().ring();
        let span_ring = Arc::clone(db.telemetry().tracer().svc_ring());
        if blocks > 0 {
            ring.record(EventKind::ReplApplied, applier.applied_offset(), blocks);
        }
        Ok(ShardState {
            shard,
            client,
            db,
            view,
            applier,
            floor,
            shipped,
            blob_shipped,
            blob_file,
            segment_size: status.segment_size,
            schema: status.schema,
            ring,
            span_ring,
        })
    }

    /// Subscribe (re-pinning retention at the applied offset), with one
    /// transparent reconnect on a severed transport — the resubscribe
    /// resumes from `applied`, so a dropped connection costs at most the
    /// unapplied tail, never a gap or a duplicate.
    fn subscribe(&mut self) -> ReplResult<ReplStatus> {
        let from = self.applier.applied_offset();
        match self.client.subscribe(self.shard, from) {
            Ok(s) => Ok(s),
            Err(ClientError::Io(_)) | Err(ClientError::Frame(_)) => {
                self.client.reconnect().map_err(ReplError::Client)?;
                Ok(self.client.subscribe(self.shard, from)?)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// One shipping round: mirror newly durable log + blob bytes, then
    /// replay them. Returns (shipped bytes, replayed blocks, lag).
    fn poll(&mut self, chunk_len: u32, stats: &ReplStats) -> ReplResult<(u64, u64, u64)> {
        let status = self.subscribe()?;
        if status.segment_size != self.segment_size {
            return Err(ReplError::SegmentSizeMismatch {
                local: self.segment_size,
                primary: status.segment_size,
            });
        }
        if status.earliest > self.shipped {
            return Err(ReplError::RetentionLost {
                shard: self.shard,
                have: self.shipped,
                earliest: status.earliest,
            });
        }
        // New tables/indexes since the last round (idempotent by name;
        // entries are in creation order so dense ids stay aligned).
        for ddl in &status.schema {
            self.db.apply_ddl(&to_ddl(ddl));
        }
        self.schema = status.schema.clone();

        let t0 = self.span_ring.now_ns();
        let mut shipped_bytes = self.ship_blobs(chunk_len)?;
        shipped_bytes += self.ship_log(&status, chunk_len, stats)?;
        if shipped_bytes > 0 {
            // Infra span (no trace id): rounds that moved bytes show up
            // on the replica's timeline next to the stitched apply spans.
            self.span_ring.record(
                &TraceContext::UNTRACED,
                SpanKind::ReplShip,
                t0,
                self.span_ring.now_ns(),
                shipped_bytes,
                self.shard as u64,
            );
        }
        let blocks = self.applier.apply_available(&self.db)?;
        let applied = self.applier.applied_offset();
        if blocks > 0 {
            self.ring.record(EventKind::ReplApplied, applied, blocks);
        }
        Ok((shipped_bytes, blocks, status.durable_lsn.saturating_sub(applied)))
    }

    fn ship_blobs(&mut self, chunk_len: u32) -> ReplResult<u64> {
        let start = self.blob_shipped;
        loop {
            let data = self.client.fetch_chunk(self.shard, SRC_BLOB, self.blob_shipped, chunk_len)?;
            if data.is_empty() {
                break;
            }
            self.blob_file.write_all_at(&data, self.blob_shipped)?;
            self.blob_shipped += data.len() as u64;
        }
        Ok(self.blob_shipped - start)
    }

    fn ship_log(
        &mut self,
        status: &ReplStatus,
        chunk_len: u32,
        stats: &ReplStats,
    ) -> ReplResult<u64> {
        let durable = status.durable_lsn;
        let mut cursor = self.shipped;
        let mut shipped_bytes = 0u64;
        let mut touched: Option<Arc<ermia_log::Segment>> = None;
        while cursor < durable {
            // The primary segment holding `cursor`, or — if `cursor`
            // sits in a rotation dead zone — the next one above it.
            let covering = status.segments.iter().find(|&&(_, s, e)| cursor >= s && cursor < e);
            let (_, p_start, p_end) = match covering {
                Some(&seg) => seg,
                None => {
                    match status.segments.iter().map(|&(_, s, _)| s).filter(|&s| s > cursor).min() {
                        Some(next) => {
                            cursor = next;
                            continue;
                        }
                        None => break,
                    }
                }
            };
            // Make the local segment table cover `cursor`, rotating in
            // lock-step with the primary.
            let local = match self.db.log().segments().lookup(cursor) {
                Some(seg) => seg,
                None => {
                    let cur = self.db.log().segments().current();
                    if p_start < cur.end {
                        return Err(ReplError::Protocol(format!(
                            "primary segment start {p_start:#x} overlaps local tail {:#x}",
                            cur.end
                        )));
                    }
                    stats.shipped_segments.fetch_add(1, Ordering::Relaxed);
                    self.db.log().segments().open_next(cur.index, p_start)?
                }
            };
            let want = (p_end.min(durable) - cursor).min(chunk_len as u64) as u32;
            let data = self.client.fetch_chunk(self.shard, SRC_LOG, cursor, want)?;
            if data.is_empty() {
                break;
            }
            // Crossing a rotation: sync the finished segment before
            // writing on, so a crash after later syncs cannot leave a
            // hole behind them. The cursor never revisits a segment
            // within a round.
            if let Some(prev) = &touched {
                if prev.index != local.index {
                    if let Some(io) = &prev.io {
                        io.sync_data()?;
                    }
                }
            }
            let io = local.io.as_ref().expect("durable replica segments are file-backed");
            io.write_all_at(&data, local.file_pos(cursor))?;
            cursor += data.len() as u64;
            shipped_bytes += data.len() as u64;
            touched = Some(local);
        }
        if let Some(seg) = touched {
            if let Some(io) = &seg.io {
                io.sync_data()?;
            }
        }
        self.shipped = self.shipped.max(cursor);
        Ok(shipped_bytes)
    }

    /// Advance the serving cut to the applied frontier, once replay has
    /// passed the checkpoint floor.
    fn publish(&self) {
        let applied = self.applier.applied_offset();
        if applied > self.floor.offset() {
            self.view.advance_view(Lsn::from_parts(applied, 0));
        }
        self.db.set_applied_lsn(applied);
    }
}

fn to_ddl(w: &WireDdl) -> DdlEntry {
    DdlEntry { table: w.table.clone(), secondary: w.secondary.clone() }
}

// ---------------------------------------------------------------------------
// Replica
// ---------------------------------------------------------------------------

/// A log-shipping read replica: one shipping connection per primary
/// shard, a local mirrored data directory, and a sharded serving handle
/// of read-only snapshot views.
pub struct Replica {
    shards: Vec<ShardState>,
    serving: ShardedDb,
    stats: Arc<ReplStats>,
    chunk_len: u32,
    telemetry_group: u64,
}

impl Replica {
    /// Connect to the primary and build a replica from its latest
    /// checkpoint plus all durable log. `cfg.dir` must be fresh: the
    /// bootstrap lays it out as an exact mirror of the primary's data
    /// directories.
    pub fn bootstrap(cfg: ReplicaConfig) -> ReplResult<Replica> {
        let stats = Arc::new(ReplStats::default());
        let mut shards = Vec::with_capacity(cfg.shards.max(1));
        for shard in 0..cfg.shards.max(1) as u32 {
            shards.push(ShardState::bootstrap(&cfg, &stats, shard)?);
        }
        let serving = ShardedDb::from_shards(shards.iter().map(|s| s.view.clone()).collect());

        // Export the shipping counters on the serving database's metric
        // registry, where a replica-side server (`Replica::serve`) and
        // its `/metrics` endpoint will pick them up.
        let registry = serving.telemetry().registry();
        let telemetry_group = registry.group();
        let col_stats = Arc::clone(&stats);
        registry.register_collector(telemetry_group, move |out| {
            out.push(Sample::gauge(
                "ermia_repl_lag_bytes",
                "Bytes between the primary durable frontier and the replica applied offset (worst shard).",
                col_stats.lag_bytes.load(Ordering::Relaxed) as f64,
            ));
            out.push(Sample::counter(
                "ermia_repl_shipped_segments_total",
                "Log segments shipped from the primary.",
                col_stats.shipped_segments.load(Ordering::Relaxed),
            ));
            out.push(Sample::gauge(
                "ermia_repl_applied_lsn",
                "Minimum applied log offset across replica shards.",
                col_stats.applied_lsn.load(Ordering::Relaxed) as f64,
            ));
        });

        let mut replica =
            Replica { shards, serving, stats, chunk_len: cfg.chunk_len, telemetry_group };
        replica.refresh_serving_routing();
        replica.resolve_cross_shard()?;
        replica.publish();
        Ok(replica)
    }

    /// One shipping round across every shard. Safe to call from a
    /// dedicated tailing thread; the serving handle observes cut
    /// advances atomically.
    pub fn poll(&mut self) -> ReplResult<ReplProgress> {
        let mut progress = ReplProgress::default();
        // Full comparison, not a count: `create_table_with_policy` on an
        // existing table changes routing without adding an entry.
        let before_schema = self.shards.first().map(|s| s.schema.clone()).unwrap_or_default();
        for sh in &mut self.shards {
            let (shipped, blocks, lag) = sh.poll(self.chunk_len, &self.stats)?;
            progress.shipped_bytes += shipped;
            progress.applied_blocks += blocks;
            progress.lag_bytes = progress.lag_bytes.max(lag);
        }
        progress.resolved = self.resolve_cross_shard()?;
        self.publish();
        if self.shards.first().map(|s| &s.schema) != Some(&before_schema) {
            self.refresh_serving_routing();
        }
        self.stats.lag_bytes.store(progress.lag_bytes, Ordering::Relaxed);
        self.stats.rounds.fetch_add(1, Ordering::Relaxed);
        Ok(progress)
    }

    /// Poll until a round ends with zero lag and nothing shipped — the
    /// replica has caught up with the primary's durable frontier as of
    /// that round. Under continuous primary load this chases the tail
    /// and returns at the first quiescent instant.
    pub fn catch_up(&mut self) -> ReplResult<ReplProgress> {
        loop {
            let p = self.poll()?;
            if p.lag_bytes == 0 && p.shipped_bytes == 0 {
                return Ok(p);
            }
        }
    }

    /// Apply decide records shipped on one shard to prepared-but-
    /// undecided cross-shard transactions pending on another. A replica
    /// only makes a 2PC write visible once the coordinator's decision
    /// has shipped — mirroring crash recovery's in-doubt resolution.
    fn resolve_cross_shard(&mut self) -> ReplResult<u64> {
        let mut todo: Vec<(usize, (u32, u64), bool)> = Vec::new();
        for (i, sh) in self.shards.iter().enumerate() {
            for key in sh.applier.pending_keys() {
                if let Some(&commit) =
                    self.shards.iter().find_map(|s| s.applier.decides().get(&key))
                {
                    todo.push((i, key, commit));
                }
            }
        }
        let mut resolved = 0u64;
        for (i, key, commit) in todo {
            let sh = &mut self.shards[i];
            if sh.applier.resolve(&sh.db, key, commit)? {
                resolved += 1;
            }
        }
        Ok(resolved)
    }

    fn publish(&self) {
        for sh in &self.shards {
            sh.publish();
        }
        let applied = self.applied_lsn();
        self.stats.applied_lsn.store(applied, Ordering::Relaxed);
    }

    /// Rebuild the serving routing snapshot from the replayed catalog
    /// plus the routing shipped with the schema, so reads route exactly
    /// like the primary placed the keys (non-default policies included).
    /// Schemas are identical across shards; shard 0's listing is used.
    fn refresh_serving_routing(&self) {
        let mut policies = Vec::new();
        let mut secondaries = Vec::new();
        if let Some(sh) = self.shards.first() {
            for ddl in &sh.schema {
                match &ddl.secondary {
                    None => {
                        if let Some(id) = self.serving.table_id(&ddl.table) {
                            policies
                                .push((id, ShardPolicy::from_wire(ddl.route_tag, ddl.route_arg)));
                        }
                    }
                    Some(name) => {
                        if let Some(id) = self.serving.index_id(name) {
                            secondaries
                                .push((id, IndexRouting::from_wire(ddl.route_tag, ddl.route_arg)));
                        }
                    }
                }
            }
        }
        self.serving.refresh_routing_with(&policies, &secondaries);
    }

    /// The read-only serving handle: snapshot views over every shard,
    /// routed like the primary. Hand it to [`Server::start_sharded`] or
    /// embed it directly.
    pub fn serving(&self) -> &ShardedDb {
        &self.serving
    }

    /// Serve the replica's snapshots over the standard wire protocol.
    /// Reads behave exactly as against a primary; writes abort with the
    /// read-only code.
    pub fn serve(&self, addr: &str, cfg: ServerConfig) -> io::Result<Server> {
        Server::start_sharded(&self.serving, addr, cfg)
    }

    /// Shared replication counters (also exported as metrics).
    pub fn stats(&self) -> Arc<ReplStats> {
        Arc::clone(&self.stats)
    }

    /// Minimum applied log offset across shards.
    pub fn applied_lsn(&self) -> u64 {
        self.shards.iter().map(|s| s.applier.applied_offset()).min().unwrap_or(0)
    }

    /// Force-drop and re-dial every shipping connection (the primary
    /// drops the old retention pins with the old connections). The next
    /// [`Replica::poll`] resubscribes from each shard's applied offset.
    pub fn reconnect(&mut self) -> ReplResult<()> {
        for sh in &mut self.shards {
            sh.client.reconnect().map_err(ReplError::Client)?;
        }
        Ok(())
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.serving.telemetry().registry().unregister_group(self.telemetry_group);
        for sh in &self.shards {
            sh.db.telemetry().flight().retire(&sh.ring);
        }
    }
}
