//! Degraded read-only mode, dirty-directory restart, and torn-checkpoint
//! recovery — the engine-level half of the crash/chaos story.
//!
//! * A poisoned log must flip the database to [`DbState::Degraded`]:
//!   reads keep committing, writes abort with `ReadOnlyMode` at the
//!   operation (not hidden inside commit), `/metrics` reports
//!   `ermia_db_state 1`, and [`Database::resume`] brings full service
//!   back once the operator repairs the storage.
//! * Restart on a dirty data directory (stale lockfile from a SIGKILLed
//!   owner, leftover tmp files) must recover cleanly with no leaked
//!   transaction slots and a live epoch timeline; a *live* foreign owner
//!   must be refused.
//! * A corrupted (torn) checkpoint must be rejected by checksum so
//!   recovery falls back to the previous checkpoint and replays the log
//!   to the acknowledged frontier.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ermia::{AbortReason, Database, DbConfig, DbState, IsolationLevel};
use ermia_log::{FaultInjector, FaultPlan, LogConfig};

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ermia-degraded-{}-{}-{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn faulty_cfg(dir: PathBuf, injector: &FaultInjector) -> DbConfig {
    let mut cfg = DbConfig::durable(dir);
    cfg.log = LogConfig {
        dir: cfg.log.dir.clone(),
        segment_size: 4096,
        buffer_size: 64 << 10,
        fsync: true,
        flush_interval: Duration::from_micros(50),
        io_factory: Arc::new(injector.clone()),
        wait_durable_timeout: Duration::from_secs(5),
    };
    cfg
}

fn clean_cfg(dir: PathBuf) -> DbConfig {
    let mut cfg = DbConfig::durable(dir);
    cfg.log.segment_size = 4096;
    cfg.log.buffer_size = 64 << 10;
    cfg
}

/// Commit `key -> value` synchronously; returns the commit result.
fn put(db: &Database, table: ermia::TableId, key: u64, value: &str) -> Result<(), AbortReason> {
    let mut w = db.register_worker();
    let mut tx = w.begin(IsolationLevel::Snapshot);
    tx.upsert_or(table, key, value)?;
    tx.commit().map(|_| ())
}

/// Small helper trait so `put` reads naturally above.
trait UpsertOr {
    fn upsert_or(&mut self, table: ermia::TableId, key: u64, value: &str)
        -> Result<(), AbortReason>;
}

impl UpsertOr for ermia::Transaction<'_> {
    fn upsert_or(
        &mut self,
        table: ermia::TableId,
        key: u64,
        value: &str,
    ) -> Result<(), AbortReason> {
        let kb = key.to_be_bytes();
        if !self.update(table, &kb, value.as_bytes())? {
            self.insert(table, &kb, value.as_bytes())?;
        }
        Ok(())
    }
}

/// The full degraded-mode contract, live: poison mid-load, reads keep
/// committing with zero errors, writes get the typed abort, the gauge
/// flips, resume restores write service, and post-resume writes are
/// durable across a restart.
#[test]
fn degraded_mode_serves_reads_rejects_writes_and_resumes() {
    let dir = tmpdir("live");
    let injector = FaultInjector::new(FaultPlan {
        enospc_after_bytes: Some(4096),
        ..FaultPlan::default()
    });
    let db = Database::open(faulty_cfg(dir.clone(), &injector)).unwrap();
    let table = db.create_table("kv");

    // Load until the byte budget poisons the log.
    let mut acked = Vec::new();
    for key in 0..1000u64 {
        match put(&db, table, key, "pre") {
            Ok(()) => acked.push(key),
            Err(reason) => {
                assert!(
                    matches!(reason, AbortReason::LogFailure | AbortReason::ReadOnlyMode),
                    "poison-window abort must be typed, got {reason:?}"
                );
                break;
            }
        }
    }
    assert!(!acked.is_empty(), "some writes must ack before ENOSPC");
    // The poison hook runs on the flusher thread; the failed commit has
    // already observed the poison, so the state flip is bounded by the
    // hook body itself. Give it a moment, then it must hold.
    for _ in 0..100 {
        if db.state() == DbState::Degraded {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(db.state(), DbState::Degraded, "poisoned log must degrade the database");

    // Reads keep committing — zero errors across the whole acked set.
    {
        let mut w = db.register_worker();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        for key in &acked {
            let got = tx
                .read(table, &key.to_be_bytes(), |v| v.to_vec())
                .expect("degraded reads must not error");
            assert_eq!(got.as_deref(), Some(&b"pre"[..]));
        }
        tx.commit().expect("read-only txns commit in degraded mode");
    }

    // Writes abort with the typed reason, at the operation.
    {
        let mut w = db.register_worker();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        let err = tx.update(table, &0u64.to_be_bytes(), b"nope").unwrap_err();
        assert_eq!(err, AbortReason::ReadOnlyMode);
        assert!(tx.is_doomed(), "a refused write dooms the transaction");
        tx.abort();
    }

    // The gauge and the flight recorder both tell the story.
    let metrics = db.telemetry().render_prometheus();
    assert!(
        metrics.contains("ermia_db_state 1"),
        "metrics must report the degraded state:\n{metrics}"
    );
    assert!(db.telemetry().dump_events(64).contains("db-degraded"));

    // Resume fails while the disk is still full, then succeeds after the
    // operator repairs it.
    assert!(db.resume().is_err(), "resume must fail while the fault persists");
    assert_eq!(db.state(), DbState::Degraded);
    injector.repair();
    db.resume().expect("resume after repair");
    assert_eq!(db.state(), DbState::Active);
    assert!(db.telemetry().render_prometheus().contains("ermia_db_state 0"));
    assert!(db.telemetry().dump_events(64).contains("db-resumed"));

    // Write service is back, synchronously durable.
    for key in 0..16u64 {
        put(&db, table, key, "post").expect("post-resume writes commit");
    }
    drop(db);

    // Restart: acked pre-poison keys (unless later overwritten) and all
    // post-resume keys must survive; the degrade window lost nothing
    // that was acknowledged.
    let db = Database::open(clean_cfg(dir.clone())).unwrap();
    let table = db.create_table("kv");
    db.recover().expect("recovery after resume lifecycle");
    let mut w = db.register_worker();
    let mut tx = w.begin(IsolationLevel::Snapshot);
    for key in &acked {
        let want: &[u8] = if *key < 16 { b"post" } else { b"pre" };
        let got = tx.read(table, &key.to_be_bytes(), |v| v.to_vec()).expect("read");
        assert_eq!(got.as_deref(), Some(want), "key {key} lost or stale after restart");
    }
    tx.commit().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Restart on a dirty directory: stale lockfile from a dead pid plus
/// leftover tmp junk must not block recovery, and the recovered database
/// must hold zero transaction slots and keep advancing epochs.
#[test]
fn dirty_dir_restart_recovers_with_clean_runtime_state() {
    let dir = tmpdir("dirty");
    {
        let db = Database::open(clean_cfg(dir.clone())).unwrap();
        let table = db.create_table("kv");
        for key in 0..20u64 {
            put(&db, table, key, "v").unwrap();
        }
        // Drop cleanly but then fake the SIGKILL aftermath below.
    }
    // A dead owner's lockfile (pid far beyond /proc's range) and junk
    // tmp files a crash could leave behind.
    std::fs::write(dir.join("ermia.lock"), "999999999\n").unwrap();
    std::fs::write(dir.join("segment-in-flight.tmp"), b"junk").unwrap();
    std::fs::create_dir_all(dir.join("checkpoints")).unwrap();
    std::fs::write(dir.join("checkpoints").join("chk-tmp"), b"torn checkpoint image").unwrap();

    let db = Database::open(clean_cfg(dir.clone())).unwrap();
    let table = db.create_table("kv");
    db.recover().expect("recovery on a dirty directory");
    let mut w = db.register_worker();
    let mut tx = w.begin(IsolationLevel::Snapshot);
    for key in 0..20u64 {
        assert_eq!(
            tx.read(table, &key.to_be_bytes(), |v| v.to_vec()).unwrap().as_deref(),
            Some(&b"v"[..])
        );
    }
    tx.commit().unwrap();
    drop(w);
    assert_eq!(db.tid_slots_in_use(), 0, "no transaction slots may leak across recovery");
    let advances_before = db.epoch_stats().advances;
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        db.epoch_stats().advances > advances_before,
        "epoch timeline must stay live after a dirty-dir recovery"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A live foreign owner must be refused; our own pid must not be.
#[test]
fn live_foreign_lock_refused_same_pid_allowed() {
    let dir = tmpdir("lock");
    std::fs::create_dir_all(&dir).unwrap();
    // Pid 1 is always alive.
    std::fs::write(dir.join("ermia.lock"), "1\n").unwrap();
    let err = match Database::open(clean_cfg(dir.clone())) {
        Ok(_) => panic!("open must refuse a directory locked by a live process"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("locked by live process"), "got: {err}");

    std::fs::write(dir.join("ermia.lock"), format!("{}\n", std::process::id())).unwrap();
    let db = Database::open(clean_cfg(dir.clone())).expect("same-pid reopen is allowed");
    drop(db);
    assert!(!dir.join("ermia.lock").exists(), "lockfile removed on clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupting the newest checkpoint must push recovery back to the
/// previous one, and log replay from there must still reach the acked
/// frontier — no acknowledged commit is lost to a torn checkpoint.
#[test]
fn torn_checkpoint_falls_back_and_replays_to_acked_frontier() {
    let dir = tmpdir("chk");
    {
        let db = Database::open(clean_cfg(dir.clone())).unwrap();
        let table = db.create_table("kv");
        for key in 0..10u64 {
            put(&db, table, key, "batch-a").unwrap();
        }
        db.checkpoint().expect("first checkpoint");
        for key in 10..20u64 {
            put(&db, table, key, "batch-b").unwrap();
        }
        db.checkpoint().expect("second checkpoint");
    }
    // Tear the *newest* checkpoint payload: flip bytes in the middle so
    // its checksum fails verification.
    let chk_dir = dir.join("checkpoints");
    let mut payloads: Vec<PathBuf> = std::fs::read_dir(&chk_dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            (name.starts_with("chk-") && name.ends_with(".bin")).then_some(p)
        })
        .collect();
    payloads.sort();
    assert_eq!(payloads.len(), 2, "two checkpoints on disk");
    let newest = payloads.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    bytes[mid + 1] ^= 0xFF;
    std::fs::write(newest, bytes).unwrap();

    let db = Database::open(clean_cfg(dir.clone())).unwrap();
    let table = db.create_table("kv");
    db.recover().expect("recovery falls back past the torn checkpoint");
    let mut w = db.register_worker();
    let mut tx = w.begin(IsolationLevel::Snapshot);
    for key in 0..10u64 {
        assert_eq!(
            tx.read(table, &key.to_be_bytes(), |v| v.to_vec()).unwrap().as_deref(),
            Some(&b"batch-a"[..]),
            "batch-a key {key} lost"
        );
    }
    for key in 10..20u64 {
        assert_eq!(
            tx.read(table, &key.to_be_bytes(), |v| v.to_vec()).unwrap().as_deref(),
            Some(&b"batch-b"[..]),
            "batch-b key {key} must be replayed from the log past the old checkpoint"
        );
    }
    tx.commit().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A fuzzy checkpoint must never *publish* committed-but-not-yet-durable
/// versions. Version stamps advance as soon as post-commit runs — before
/// the log block reaches disk — so the walk can capture state the log
/// cannot back. If such a snapshot were published and a crash then
/// erased the log tail, recovery would restore a version stamped *above*
/// the recovered log end: invisible to every snapshot, and shadowing the
/// older acked-durable version the checkpoint no longer carries. The
/// acked write is gone — the exact violation the chaos harness's
/// durability oracle caught at scale. The contract: `checkpoint()` waits
/// for the log to become durable past everything it captured, and when
/// the log cannot catch up it fails without publishing a marker.
#[test]
fn checkpoint_withholds_nondurable_tail_so_acked_writes_survive_crash() {
    let dir = tmpdir("ckpt-durable");
    let mut cfg = clean_cfg(dir.clone());
    // The durability barrier must give up quickly once the tail is stuck.
    cfg.log.wait_durable_timeout = Duration::from_millis(200);
    let db = Database::open(cfg).unwrap();
    let table = db.create_table("kv");

    // v1 is acked and durable: synchronous commit + explicit sync. The
    // checkpoint of this state publishes fine.
    put(&db, table, 7, "v1-acked-durable").unwrap();
    db.log().sync().expect("v1 durable");
    db.checkpoint().expect("all-durable checkpoint publishes");

    // Freeze durability, then commit v2 without waiting: its versions are
    // CLSN-stamped in memory, its block filled in the ring — but nothing
    // more ever reaches disk, as if SIGKILL lands before the next flush.
    let durable_before = db.log().durable_offset();
    db.log().halt_flusher_for_test();
    {
        let mut w = db.register_worker();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        tx.upsert_or(table, 7, "v2-in-memory-only").unwrap();
        tx.commit_deferred().expect("deferred commit fills the buffer");
    }
    assert_eq!(db.log().durable_offset(), durable_before, "flusher is halted");

    // The walk sees v2's stamp but the log will never back it: the
    // durability barrier must refuse to publish this snapshot.
    db.checkpoint().expect_err("checkpoint must not publish an unbackable snapshot");
    drop(db); // flusher already gone: the unflushed tail dies with us

    let db = Database::open(clean_cfg(dir.clone())).unwrap();
    let table = db.create_table("kv");
    db.recover().expect("recovery");
    let mut w = db.register_worker();
    let mut tx = w.begin(IsolationLevel::Snapshot);
    assert_eq!(
        tx.read(table, &7u64.to_be_bytes(), |v| v.to_vec()).unwrap().as_deref(),
        Some(&b"v1-acked-durable"[..]),
        "acked v1 must survive; a checkpoint that captured non-durable v2 loses the key"
    );
    tx.commit().unwrap();
    drop(w);
    assert_eq!(db.tid_slots_in_use(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
