//! End-to-end crash-recovery torture: full database stack against the
//! fault-injecting storage backend, checked against an in-memory model.
//!
//! Each seed drives a randomized single-threaded workload of committed
//! transactions (upserts and deletes over a small key space) with
//! `synchronous_commit` on, while a [`FaultPlan`] crashes the log at an
//! arbitrary point. After the "crash" the database is reopened with the
//! clean file backend and recovered, and the recovered state must equal
//! the model after every acknowledged transaction — plus at most the one
//! in-flight transaction whose commit failed, since its block may or may
//! not have reached disk before the fault (but must apply atomically or
//! not at all).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ermia::{AbortReason, Database, DbConfig, IsolationLevel};
use ermia_log::{FaultInjector, FaultPlan, LogConfig, TornWrite};

/// SplitMix64: deterministic per-seed randomness without external deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ermia-core-torture-{}-{}-{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const KEYS: u64 = 32;
const TABLE: &str = "torture";

fn faulty_cfg(dir: PathBuf, injector: &FaultInjector) -> DbConfig {
    let mut cfg = DbConfig::durable(dir);
    cfg.log = LogConfig {
        dir: cfg.log.dir.clone(),
        segment_size: 4096,
        buffer_size: 64 << 10,
        fsync: true,
        flush_interval: Duration::from_micros(50),
        io_factory: Arc::new(injector.clone()),
        wait_durable_timeout: Duration::from_secs(5),
    };
    cfg
}

fn clean_cfg(dir: PathBuf) -> DbConfig {
    let mut cfg = DbConfig::durable(dir);
    // Same segment size as the faulty life so the reopened segment table
    // lines up with the files on disk.
    cfg.log.segment_size = 4096;
    cfg.log.buffer_size = 64 << 10;
    cfg
}

type Model = BTreeMap<u64, Vec<u8>>;

enum Action {
    Insert(Vec<u8>),
    Update(Vec<u8>),
    Delete,
}

/// Apply transaction `txn`'s randomized ops to `model`, returning the op
/// list so the same mutations can be replayed against the database. The
/// verb for each op (insert vs update vs delete) is decided against the
/// *evolving* state, so delete-then-reinsert of one key within a single
/// transaction is generated — the case that trips naive replay.
fn mutate_model(rng: &mut Rng, seed: u64, txn: u64, model: &mut Model) -> Vec<(u64, Action)> {
    let nops = 1 + rng.below(4);
    let mut ops = Vec::new();
    for op in 0..nops {
        let key = rng.below(KEYS);
        if model.contains_key(&key) && rng.below(4) == 0 {
            model.remove(&key);
            ops.push((key, Action::Delete));
        } else {
            let value = format!("s{seed}-t{txn}-o{op}-k{key}").into_bytes();
            let existed = model.insert(key, value.clone()).is_some();
            ops.push((key, if existed { Action::Update(value) } else { Action::Insert(value) }));
        }
    }
    ops
}

struct TortureRun {
    /// Model state after every acknowledged (commit Ok) transaction.
    acked_model: Model,
    /// Model state if the final, unacknowledged in-flight transaction
    /// also reached disk (None when the run ended cleanly).
    inflight_model: Option<Model>,
    acked: u64,
}

/// First life: run the workload against the injector until the first
/// commit failure (or `max_txns`), tracking the model in lockstep.
fn run_faulty_life(dir: PathBuf, injector: &FaultInjector, seed: u64, max_txns: u64) -> TortureRun {
    let db = Database::open(faulty_cfg(dir, injector)).expect("first open is fault-free");
    let table = db.create_table(TABLE);
    let mut w = db.register_worker();
    let mut rng = Rng(seed ^ 0xDB);
    let mut model = Model::new();
    let mut acked = 0u64;
    let mut inflight_model = None;
    for txn in 0..max_txns {
        let mut next = model.clone();
        let ops = mutate_model(&mut rng, seed, txn, &mut next);
        let mut tx = w.begin(IsolationLevel::Snapshot);
        let mut op_failed = false;
        for (key, action) in &ops {
            let kb = key.to_be_bytes();
            let ok = match action {
                Action::Insert(v) => tx.insert(table, &kb, v).is_ok(),
                Action::Update(v) => tx.update(table, &kb, v).is_ok(),
                Action::Delete => tx.delete(table, &kb).is_ok(),
            };
            if !ok {
                op_failed = true;
                break;
            }
        }
        if op_failed {
            // Single-threaded snapshot txns only fail operations once the
            // log is poisoned; the txn never reached the log.
            tx.abort();
            inflight_model = None;
            break;
        }
        match tx.commit() {
            Ok(_) => {
                model = next;
                acked += 1;
            }
            Err(reason) => {
                assert_eq!(
                    reason,
                    AbortReason::LogFailure,
                    "seed {seed}: single-threaded txn can only die of log failure"
                );
                // The block may or may not have reached disk: keep both
                // candidate end states.
                inflight_model = Some(next);
                break;
            }
        }
    }
    TortureRun { acked_model: model, inflight_model, acked }
}

/// Second life: reopen with the real file backend, recover, and read the
/// whole key space back.
fn recover_state(dir: PathBuf) -> Model {
    let db = Database::open(clean_cfg(dir)).expect("reopen after crash");
    let table = db.create_table(TABLE);
    db.recover().expect("recovery replays the durable prefix");
    let mut w = db.register_worker();
    let mut tx = w.begin(IsolationLevel::Snapshot);
    let mut state = Model::new();
    for key in 0..KEYS {
        if let Some(v) = tx.read(table, &key.to_be_bytes(), |v| v.to_vec()).expect("read") {
            state.insert(key, v);
        }
    }
    tx.commit().expect("read-only txn commits");
    state
}

fn check_seed(tag: &str, seed: u64, plan: FaultPlan) {
    let dir = tmpdir(tag);
    let injector = FaultInjector::new(plan);
    let run = run_faulty_life(dir.clone(), &injector, seed, 120);
    let recovered = recover_state(dir.clone());
    let matches_acked = recovered == run.acked_model;
    let matches_inflight = run.inflight_model.as_ref() == Some(&recovered);
    assert!(
        matches_acked || matches_inflight,
        "seed {seed}: recovered state matches neither the {}-txn acked model \
         nor the acked+inflight model\nrecovered: {recovered:?}\nacked: {:?}\ninflight: {:?}",
        run.acked,
        run.acked_model,
        run.inflight_model
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash the storage after a seed-chosen number of writes; the recovered
/// database must be exactly the acked model (± the one in-flight txn).
#[test]
fn crash_point_recovers_model() {
    for seed in 0..8u64 {
        let mut rng = Rng(seed);
        let plan =
            FaultPlan { crash_after_writes: Some(2 + rng.below(80)), ..FaultPlan::default() };
        check_seed("crash", seed, plan);
    }
}

/// Tear a write mid-block; recovery must truncate at the torn block and
/// land on a model state, never on a half-applied transaction.
#[test]
fn torn_write_recovers_model() {
    for seed in 0..8u64 {
        let mut rng = Rng(seed ^ 0x7EA1);
        let plan = FaultPlan {
            torn_write: Some(TornWrite {
                at_write: 2 + rng.below(60),
                keep_bytes: rng.below(64) as usize,
            }),
            ..FaultPlan::default()
        };
        check_seed("torn", seed, plan);
    }
}

/// A failed fsync must poison the log and abort the committing txn with
/// `LogFailure`; everything acked before it survives recovery.
#[test]
fn fsync_failure_recovers_acked_prefix() {
    for seed in 0..4u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let plan = FaultPlan { fail_sync_at: Some(1 + rng.below(40)), ..FaultPlan::default() };
        check_seed("fsync", seed, plan);
    }
}

/// No faults: every transaction acks and the recovered state is exactly
/// the final model.
#[test]
fn clean_run_recovers_everything() {
    let dir = tmpdir("clean");
    let injector = FaultInjector::new(FaultPlan::default());
    let run = run_faulty_life(dir.clone(), &injector, 42, 80);
    assert_eq!(run.acked, 80, "fault-free run acks every txn");
    assert!(run.inflight_model.is_none());
    let recovered = recover_state(dir.clone());
    assert_eq!(recovered, run.acked_model);
    let _ = std::fs::remove_dir_all(&dir);
}
