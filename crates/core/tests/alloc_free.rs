//! Proof of the allocation-free transaction hot path.
//!
//! A counting global allocator tracks, per thread, every allocator call.
//! After warmup (scratch capacities grown, version cache fed by the GC),
//! a read/write transaction must complete begin + reads + update + async
//! commit with **zero** allocator traffic on the worker thread.
//!
//! Counting is thread-local so the background flusher, ticker, and GC
//! threads don't pollute the measurement — their allocations are their
//! own business; the claim under test is about the worker's hot path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use ermia::{Database, DbConfig, IsolationLevel, ShardedDb};

struct CountingAlloc;

thread_local! {
    // Const-initialized and droppable-free, so TLS access from inside the
    // allocator cannot itself allocate or recurse.
    static ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
    static TRAP: Cell<bool> = const { Cell::new(false) };
}

fn alloc_calls() -> u64 {
    ALLOC_CALLS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.with(|c| c.set(c.get() + 1));
        // Diagnostic tripwire: when armed, the first counted allocation
        // panics so `RUST_BACKTRACE=1` points straight at the code that
        // regressed the hot path (disarmed first — the panic machinery
        // itself allocates).
        if TRAP.with(|t| t.get()) {
            TRAP.with(|t| t.set(false));
            panic!("hot-path allocation of {} bytes", layout.size());
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_transactions_do_not_allocate() {
    // Default config: asynchronous commit (the paper's group-commit
    // pipeline acknowledges without waiting), GC on. Telemetry stays
    // explicitly ON: the zero-allocation guarantee must hold with the
    // metric counters and flight-recorder events live, not just with
    // them compiled out — a telemetry regression that allocates on the
    // hot path fails this test.
    let cfg = DbConfig { telemetry: true, ..DbConfig::in_memory() };
    assert!(cfg.telemetry, "this guard is only meaningful with telemetry on");
    let db = Database::open(cfg).unwrap();
    let t = db.create_table("t");
    let mut w = db.register_worker();

    let mut tx = w.begin(IsolationLevel::Snapshot);
    tx.insert(t, b"read-target", b"some reasonably sized payload").unwrap();
    tx.insert(t, b"write-target", b"initial").unwrap();
    tx.commit().unwrap();

    const MEASURED_TXNS: usize = 16;

    // Warmup phase 1: grow every scratch capacity and pile up dead
    // versions for the GC to retire. Recycling is flow-balanced (one
    // update retires one old version, a couple of epochs later), so a
    // tight measured loop outruns the GC unless the pool is pre-stocked.
    for i in 0..300u32 {
        let mut tx = w.begin(IsolationLevel::Snapshot);
        let _ = tx.read(t, b"read-target", |v| v.len()).unwrap();
        assert!(tx.update(t, b"write-target", &[i as u8; 24]).unwrap());
        tx.commit().unwrap();
    }
    // Warmup phase 2: wait for the GC to turn that garbage into a
    // comfortable reserve of recycled nodes.
    let mut stocked = false;
    for _ in 0..200 {
        std::thread::sleep(std::time::Duration::from_millis(10));
        if db.version_pool_size() >= 4 * MEASURED_TXNS {
            stocked = true;
            break;
        }
    }
    assert!(stocked, "GC never stocked the version pool (pooled: {})", db.version_pool_size());
    // Warmup phase 3: one more transaction triggers a batch refill of the
    // worker's local cache, so the measured window is served entirely
    // from memory the worker already owns.
    let mut tx = w.begin(IsolationLevel::Snapshot);
    assert!(tx.update(t, b"write-target", b"refill").unwrap());
    tx.commit().unwrap();
    assert!(w.versions_reused() > 0, "warmup never reached the reuse path");
    let reused_before = w.versions_reused();
    let before = alloc_calls();
    TRAP.with(|t| t.set(true));
    for i in 0..MEASURED_TXNS {
        let mut tx = w.begin(IsolationLevel::Snapshot);
        let _ = tx.read(t, b"read-target", |v| v.len()).unwrap();
        assert!(tx.update(t, b"write-target", &[i as u8; 24]).unwrap());
        tx.commit().unwrap();
    }
    // Disarm before touching anything else: the harness itself allocates
    // (test-event channel), and the tripwire must only police the loop.
    TRAP.with(|t| t.set(false));
    let allocs = alloc_calls() - before;
    assert_eq!(
        allocs, 0,
        "steady-state begin+read+update+commit hit the allocator {allocs} times \
         over {MEASURED_TXNS} transactions"
    );
    assert!(
        w.versions_reused() > reused_before,
        "measured transactions were not on the reuse path"
    );
}

/// The same steady-state claim with tracing armed to sample **every**
/// transaction: begin mints a trace id, each read/update records a span,
/// and commit records the commit spans — all into preallocated seqlock
/// ring slots, so the hot path must still be allocation-free. (With
/// tracing *off* — `trace_sample_n: 0`, the default — the test above
/// already covers the disabled branch.) The slow-op threshold is pushed
/// out of reach because worst-K retention intentionally allocates; it
/// runs at most K times per threshold-crossing op, never per txn.
#[test]
fn fully_sampled_tracing_stays_alloc_free() {
    let cfg = DbConfig {
        telemetry: true,
        trace_sample_n: 1,
        trace_slow_us: u64::MAX,
        ..DbConfig::in_memory()
    };
    let db = ShardedDb::open(cfg, 1).unwrap();
    let t = db.create_table("t");
    let mut w = db.register_worker();

    let mut tx = w.begin(IsolationLevel::Snapshot);
    tx.insert(t, b"read-target", b"some reasonably sized payload").unwrap();
    tx.insert(t, b"write-target", b"initial").unwrap();
    tx.commit().unwrap();

    const MEASURED_TXNS: usize = 16;

    // Same three warmup phases as above: grow scratch capacities, let
    // the GC stock the version pool, then one refill transaction.
    for i in 0..300u32 {
        let mut tx = w.begin(IsolationLevel::Snapshot);
        let _ = tx.read(t, b"read-target", |v| v.len()).unwrap();
        assert!(tx.update(t, b"write-target", &[i as u8; 24]).unwrap());
        tx.commit().unwrap();
    }
    let mut stocked = false;
    for _ in 0..200 {
        std::thread::sleep(std::time::Duration::from_millis(10));
        if db.shard(0).version_pool_size() >= 4 * MEASURED_TXNS {
            stocked = true;
            break;
        }
    }
    assert!(
        stocked,
        "GC never stocked the version pool (pooled: {})",
        db.shard(0).version_pool_size()
    );
    let mut tx = w.begin(IsolationLevel::Snapshot);
    assert!(tx.update(t, b"write-target", b"refill").unwrap());
    tx.commit().unwrap();

    let before = alloc_calls();
    TRAP.with(|t| t.set(true));
    for i in 0..MEASURED_TXNS {
        let mut tx = w.begin(IsolationLevel::Snapshot);
        let _ = tx.read(t, b"read-target", |v| v.len()).unwrap();
        assert!(tx.update(t, b"write-target", &[i as u8; 24]).unwrap());
        tx.commit().unwrap();
    }
    TRAP.with(|t| t.set(false));
    let allocs = alloc_calls() - before;
    assert_eq!(
        allocs, 0,
        "fully sampled begin+read+update+commit hit the allocator {allocs} times \
         over {MEASURED_TXNS} transactions"
    );
    // Prove the sampler actually fired: the worker's span ring must hold
    // spans from the measured window.
    let spans = db.telemetry().tracer().dump_spans(4096);
    assert!(!spans.is_empty(), "tracing was armed but recorded no spans");
}
