//! Worker threads: per-thread engine state.
//!
//! When a transaction enters the system it joins three epoch-based
//! resource managers — log, TID, and garbage collection (§3.1
//! *Initialization*). A [`Worker`] holds the thread's registrations with
//! all three plus reusable scratch buffers, so beginning a transaction is
//! allocation-free in the steady state.

use ermia_epoch::EpochHandle;
use ermia_log::TxLogBuffer;

use crate::config::IsolationLevel;
use crate::database::Database;
use crate::profile::Breakdown;
use crate::transaction::Transaction;

/// Per-thread handle for running transactions against a [`Database`].
pub struct Worker {
    pub(crate) db: Database,
    pub(crate) gc_handle: EpochHandle,
    pub(crate) rcu_handle: EpochHandle,
    pub(crate) tid_handle: EpochHandle,
    pub(crate) scratch: Scratch,
}

/// Mutable per-thread scratch reused across transactions.
pub(crate) struct Scratch {
    pub tid_hint: usize,
    pub logbuf: TxLogBuffer,
    pub breakdown: Breakdown,
}

impl Worker {
    pub(crate) fn new(db: Database) -> Worker {
        let gc_handle = db.inner.gc_epoch.register();
        let rcu_handle = db.inner.rcu_epoch.register();
        let tid_handle = db.inner.tid_epoch.register();
        // Scatter TID probe cursors across the table.
        let tid_hint = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            (h.finish() as usize) % ermia_common::ids::TID_TABLE_CAPACITY
        };
        Worker {
            db,
            gc_handle,
            rcu_handle,
            tid_handle,
            scratch: Scratch { tid_hint, logbuf: TxLogBuffer::new(), breakdown: Breakdown::default() },
        }
    }

    /// Begin a transaction at the given isolation level.
    pub fn begin(&mut self, isolation: IsolationLevel) -> Transaction<'_> {
        Transaction::begin(self, isolation)
    }

    /// The accumulated per-component time breakdown (when
    /// [`DbConfig::profile`](crate::DbConfig) is on).
    pub fn breakdown(&self) -> Breakdown {
        self.scratch.breakdown
    }

    pub fn reset_breakdown(&mut self) {
        self.scratch.breakdown = Breakdown::default();
    }

    /// The owning database.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Fold this worker's breakdown into the database aggregate so
        // the Fig. 11 harness can read it after the run.
        if self.db.inner.cfg.profile {
            self.db.inner.breakdown.lock().add(&self.scratch.breakdown);
        }
    }
}
