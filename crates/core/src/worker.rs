//! Worker threads: per-thread engine state.
//!
//! When a transaction enters the system it joins the epoch-based
//! resource manager (§3.1 *Initialization*; the paper's three timescales
//! share one unified timeline here). A [`Worker`] holds the thread's
//! registration plus reusable scratch buffers — the transaction's read
//! set, write set, node set, key arena, log buffer, and version cache
//! all live here and are recycled across transactions, so beginning and
//! committing a transaction is allocation-free in the steady state.

use std::sync::Arc;

use ermia_epoch::EpochHandle;
use ermia_index::{BTree, LeafSnapshot};
use ermia_log::TxLogBuffer;
use ermia_storage::{Version, VersionCache};
use ermia_telemetry::{EventRing, Slab};

use crate::config::IsolationLevel;
use crate::database::Database;
use crate::metrics::{PROFILE_FAMILY, TXN_FAMILY};
use crate::profile::Breakdown;
use crate::transaction::{SecondaryEntry, Transaction, WriteEntry};

/// Per-thread handle for running transactions against a [`Database`].
pub struct Worker {
    pub(crate) db: Database,
    pub(crate) epoch_handle: EpochHandle,
    pub(crate) scratch: Scratch,
}

/// This worker's share of the telemetry layer: a [`TXN_FAMILY`] slab for
/// outcome counters and the chain-length histogram, plus a flight-recorder
/// event ring. Present iff `cfg.telemetry`; every hot-path touch is one
/// relaxed increment (or one seqlock-protected slot write for events)
/// against memory only this thread writes.
pub(crate) struct WorkerTelemetry {
    pub slab: Arc<Slab>,
    pub ring: Arc<EventRing>,
}

/// Mutable per-thread scratch reused across transactions.
///
/// The transaction working sets are *taken* out of here at begin
/// (`std::mem::take` — a pointer move, no allocation), filled during the
/// transaction, then cleared and returned at release so their capacity
/// survives. Key bytes for the write set are bump-copied into `keys`,
/// replacing a per-write boxed copy.
pub(crate) struct Scratch {
    pub tid_hint: usize,
    pub logbuf: TxLogBuffer,
    /// This worker's Fig. 11 breakdown counters (the
    /// [`PROFILE_FAMILY`] slab). Registered with the telemetry registry
    /// (merged on read) only when profiling is on — otherwise a detached
    /// slab, so a workload churning short-lived workers never grows the
    /// registry for counters nobody reads. Written only by this thread,
    /// so profiling never takes a lock on the transaction path.
    pub breakdown: Arc<Slab>,
    /// Txn outcome counters + flight ring, when `cfg.telemetry`.
    pub telemetry: Option<WorkerTelemetry>,
    pub reads: Vec<*mut Version>,
    pub writes: Vec<WriteEntry>,
    pub secondary: Vec<SecondaryEntry>,
    pub node_set: Vec<(Arc<BTree>, LeafSnapshot)>,
    /// Reused index scratch for `valid_node_entries`.
    pub valid_idx: Vec<usize>,
    /// Bump arena backing the write/secondary sets' key bytes.
    pub keys: Vec<u8>,
    /// Per-worker cache over the database's shared version pool.
    pub versions: VersionCache,
}

// SAFETY: the raw `Version` pointers held here are only dereferenced by
// the owning worker thread while its transaction is live (under an epoch
// pin); between transactions every set is empty and the version cache
// holds only quiesced nodes it exclusively owns. Moving the Worker to
// another thread at rest therefore transfers sole ownership.
unsafe impl Send for Scratch {}

impl Worker {
    pub(crate) fn new(db: Database) -> Worker {
        let epoch_handle = db.inner.epoch.register();
        // Scatter TID probe cursors across the table.
        let tid_hint = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            (h.finish() as usize) % ermia_common::ids::TID_TABLE_CAPACITY
        };
        let versions = VersionCache::new(Arc::clone(&db.inner.versions));
        let registry = db.inner.telemetry.registry();
        // The breakdown slab always exists (the transaction path bumps it
        // unconditionally — cheaper than a branch), but it only joins the
        // registry when profiling is on.
        let breakdown = if db.inner.cfg.profile {
            registry.register_slab(&PROFILE_FAMILY)
        } else {
            Arc::new(Slab::new(&PROFILE_FAMILY))
        };
        let telemetry = db.inner.cfg.telemetry.then(|| WorkerTelemetry {
            slab: registry.register_slab(&TXN_FAMILY),
            ring: db.inner.telemetry.flight().ring(),
        });
        Worker {
            db,
            epoch_handle,
            scratch: Scratch {
                tid_hint,
                logbuf: TxLogBuffer::new(),
                breakdown,
                telemetry,
                reads: Vec::new(),
                writes: Vec::new(),
                secondary: Vec::new(),
                node_set: Vec::new(),
                valid_idx: Vec::new(),
                keys: Vec::new(),
                versions,
            },
        }
    }

    /// Begin a transaction at the given isolation level.
    pub fn begin(&mut self, isolation: IsolationLevel) -> Transaction<'_> {
        Transaction::begin(self, isolation)
    }

    /// The accumulated per-component time breakdown (when
    /// [`DbConfig::profile`](crate::DbConfig) is on).
    pub fn breakdown(&self) -> Breakdown {
        crate::profile::breakdown_from_counters(&self.scratch.breakdown.counter_snapshot())
    }

    /// Zero this worker's breakdown counters. The slab is the same one
    /// [`Database::breakdown`] aggregates while the worker is live, so a
    /// worker-level reset also removes this worker's not-yet-retired
    /// share from the database-wide breakdown (counts already folded in
    /// by retired workers are unaffected). Benchmarks rely on this to
    /// discard warm-up measurements from both views at once.
    pub fn reset_breakdown(&mut self) {
        self.scratch.breakdown.reset();
    }

    /// Versions served from the worker's reuse cache instead of the
    /// allocator (steady-state write paths should climb this).
    pub fn versions_reused(&self) -> u64 {
        self.scratch.versions.reused()
    }

    /// The owning database.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Retire this worker's telemetry: counts fold into the registry's
        // retained aggregate (so database-wide totals stay complete) and
        // the live sets stop growing with every worker ever created.
        let registry = self.db.inner.telemetry.registry();
        if self.db.inner.cfg.profile {
            registry.retire_slab(&PROFILE_FAMILY, &self.scratch.breakdown);
        }
        if let Some(t) = &self.scratch.telemetry {
            registry.retire_slab(&TXN_FAMILY, &t.slab);
            self.db.inner.telemetry.flight().retire(&t.ring);
        }
    }
}
