//! Worker threads: per-thread engine state.
//!
//! When a transaction enters the system it joins the epoch-based
//! resource manager (§3.1 *Initialization*; the paper's three timescales
//! share one unified timeline here). A [`Worker`] holds the thread's
//! registration plus reusable scratch buffers — the transaction's read
//! set, write set, node set, key arena, log buffer, and version cache
//! all live here and are recycled across transactions, so beginning and
//! committing a transaction is allocation-free in the steady state.

use ermia_epoch::EpochHandle;
use ermia_index::{BTree, LeafSnapshot};
use ermia_log::TxLogBuffer;
use ermia_storage::{Version, VersionCache};

use crate::config::IsolationLevel;
use crate::database::Database;
use crate::profile::{Breakdown, BreakdownSlab};
use crate::transaction::{SecondaryEntry, Transaction, WriteEntry};

/// Per-thread handle for running transactions against a [`Database`].
pub struct Worker {
    pub(crate) db: Database,
    pub(crate) epoch_handle: EpochHandle,
    pub(crate) scratch: Scratch,
}

/// Mutable per-thread scratch reused across transactions.
///
/// The transaction working sets are *taken* out of here at begin
/// (`std::mem::take` — a pointer move, no allocation), filled during the
/// transaction, then cleared and returned at release so their capacity
/// survives. Key bytes for the write set are bump-copied into `keys`,
/// replacing a per-write boxed copy.
pub(crate) struct Scratch {
    pub tid_hint: usize,
    pub logbuf: TxLogBuffer,
    /// This worker's breakdown counters. The slab is shared with the
    /// database's registry (merged on read) but written only here, so
    /// profiling never takes a lock on the transaction path.
    pub breakdown: std::sync::Arc<BreakdownSlab>,
    pub reads: Vec<*mut Version>,
    pub writes: Vec<WriteEntry>,
    pub secondary: Vec<SecondaryEntry>,
    pub node_set: Vec<(std::sync::Arc<BTree>, LeafSnapshot)>,
    /// Reused index scratch for `valid_node_entries`.
    pub valid_idx: Vec<usize>,
    /// Bump arena backing the write/secondary sets' key bytes.
    pub keys: Vec<u8>,
    /// Per-worker cache over the database's shared version pool.
    pub versions: VersionCache,
}

// SAFETY: the raw `Version` pointers held here are only dereferenced by
// the owning worker thread while its transaction is live (under an epoch
// pin); between transactions every set is empty and the version cache
// holds only quiesced nodes it exclusively owns. Moving the Worker to
// another thread at rest therefore transfers sole ownership.
unsafe impl Send for Scratch {}

impl Worker {
    pub(crate) fn new(db: Database) -> Worker {
        let epoch_handle = db.inner.epoch.register();
        // Scatter TID probe cursors across the table.
        let tid_hint = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            (h.finish() as usize) % ermia_common::ids::TID_TABLE_CAPACITY
        };
        let versions = VersionCache::new(std::sync::Arc::clone(&db.inner.versions));
        // The slab always exists (the transaction path bumps it
        // unconditionally — cheaper than a branch), but it only joins the
        // database registry when profiling is on: otherwise a workload
        // churning short-lived workers would grow the registry without
        // bound for counters nobody reads.
        let breakdown = std::sync::Arc::new(BreakdownSlab::default());
        if db.inner.cfg.profile {
            db.inner.breakdown.lock().register(&breakdown);
        }
        Worker {
            db,
            epoch_handle,
            scratch: Scratch {
                tid_hint,
                logbuf: TxLogBuffer::new(),
                breakdown,
                reads: Vec::new(),
                writes: Vec::new(),
                secondary: Vec::new(),
                node_set: Vec::new(),
                valid_idx: Vec::new(),
                keys: Vec::new(),
                versions,
            },
        }
    }

    /// Begin a transaction at the given isolation level.
    pub fn begin(&mut self, isolation: IsolationLevel) -> Transaction<'_> {
        Transaction::begin(self, isolation)
    }

    /// The accumulated per-component time breakdown (when
    /// [`DbConfig::profile`](crate::DbConfig) is on).
    pub fn breakdown(&self) -> Breakdown {
        self.scratch.breakdown.snapshot()
    }

    /// Zero this worker's breakdown counters. The slab is the same one
    /// [`Database::breakdown`] aggregates while the worker is live, so a
    /// worker-level reset also removes this worker's not-yet-retired
    /// share from the database-wide breakdown (counts already folded in
    /// by retired workers are unaffected). Benchmarks rely on this to
    /// discard warm-up measurements from both views at once.
    pub fn reset_breakdown(&mut self) {
        self.scratch.breakdown.reset();
    }

    /// Versions served from the worker's reuse cache instead of the
    /// allocator (steady-state write paths should climb this).
    pub fn versions_reused(&self) -> u64 {
        self.scratch.versions.reused()
    }

    /// The owning database.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Retire the slab: its counts fold into the registry's retained
        // aggregate, so `Database::breakdown` stays complete while the
        // live set stops growing with every worker ever created.
        // `retire` is a no-op when profiling is off (never registered).
        if self.db.inner.cfg.profile {
            self.db.inner.breakdown.lock().retire(&self.scratch.breakdown);
        }
    }
}

