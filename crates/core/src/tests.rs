use std::sync::atomic::{AtomicU64, Ordering};

use ermia_common::AbortReason;

use crate::{Database, DbConfig, IsolationLevel};

fn db() -> Database {
    Database::open(DbConfig::in_memory()).unwrap()
}

const SI: IsolationLevel = IsolationLevel::Snapshot;
const SSN: IsolationLevel = IsolationLevel::Serializable;

fn get(tx: &mut crate::Transaction<'_>, t: ermia_common::TableId, k: &[u8]) -> Option<Vec<u8>> {
    tx.read(t, k, |v| v.to_vec()).unwrap()
}

#[test]
fn insert_read_update_delete_roundtrip() {
    let db = db();
    let t = db.create_table("t");
    let mut w = db.register_worker();

    let mut tx = w.begin(SSN);
    tx.insert(t, b"k1", b"v1").unwrap();
    tx.commit().unwrap();

    let mut tx = w.begin(SSN);
    assert_eq!(get(&mut tx, t, b"k1").as_deref(), Some(&b"v1"[..]));
    assert!(tx.update(t, b"k1", b"v2").unwrap());
    assert_eq!(get(&mut tx, t, b"k1").as_deref(), Some(&b"v2"[..]), "read-your-writes");
    tx.commit().unwrap();

    let mut tx = w.begin(SSN);
    assert_eq!(get(&mut tx, t, b"k1").as_deref(), Some(&b"v2"[..]));
    assert!(tx.delete(t, b"k1").unwrap());
    assert_eq!(get(&mut tx, t, b"k1"), None, "deleted in own snapshot");
    tx.commit().unwrap();

    let mut tx = w.begin(SSN);
    assert_eq!(get(&mut tx, t, b"k1"), None);
    tx.commit().unwrap();
}

#[test]
fn update_missing_key_returns_false() {
    let db = db();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    let mut tx = w.begin(SSN);
    assert!(!tx.update(t, b"nope", b"x").unwrap());
    assert!(!tx.delete(t, b"nope").unwrap());
    tx.commit().unwrap();
}

#[test]
fn snapshot_isolation_basic() {
    let db = db();
    let t = db.create_table("t");
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();

    let mut setup = w1.begin(SI);
    setup.insert(t, b"x", b"0").unwrap();
    setup.commit().unwrap();

    // Reader begins first; writer commits afterwards; reader must keep
    // seeing the old value (repeatable snapshot).
    let mut reader = w1.begin(SI);
    assert_eq!(get(&mut reader, t, b"x").as_deref(), Some(&b"0"[..]));

    let mut writer = w2.begin(SI);
    assert!(writer.update(t, b"x", b"1").unwrap());
    // Uncommitted: invisible to the reader.
    assert_eq!(get(&mut reader, t, b"x").as_deref(), Some(&b"0"[..]));
    writer.commit().unwrap();
    // Committed after the reader began: still invisible.
    assert_eq!(get(&mut reader, t, b"x").as_deref(), Some(&b"0"[..]));
    reader.commit().unwrap();

    // A fresh snapshot sees the new value.
    let mut tx = w1.begin(SI);
    assert_eq!(get(&mut tx, t, b"x").as_deref(), Some(&b"1"[..]));
    tx.commit().unwrap();
}

#[test]
fn first_updater_wins() {
    let db = db();
    let t = db.create_table("t");
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();

    let mut setup = w1.begin(SI);
    setup.insert(t, b"x", b"0").unwrap();
    setup.commit().unwrap();

    let mut t1 = w1.begin(SI);
    let mut t2 = w2.begin(SI);
    assert!(t1.update(t, b"x", b"a").unwrap());
    // t2 hits t1's uncommitted head version — the write lock — and is
    // doomed immediately (early abort, not at commit).
    let err = t2.update(t, b"x", b"b").unwrap_err();
    assert_eq!(err, AbortReason::WriteWriteConflict);
    assert!(t2.is_doomed());
    // Further operations fail fast with the original reason.
    assert_eq!(t2.read(t, b"x", |_| ()).unwrap_err(), AbortReason::WriteWriteConflict);
    assert_eq!(t2.commit().unwrap_err(), AbortReason::WriteWriteConflict);
    t1.commit().unwrap();
}

#[test]
fn committed_head_newer_than_snapshot_blocks_update() {
    let db = db();
    let t = db.create_table("t");
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();

    let mut setup = w1.begin(SI);
    setup.insert(t, b"x", b"0").unwrap();
    setup.commit().unwrap();

    let mut t1 = w1.begin(SI); // snapshot before t2's commit
    let mut t2 = w2.begin(SI);
    t2.update(t, b"x", b"1").unwrap();
    t2.commit().unwrap();
    // t1's snapshot predates the committed head: lost-update prevention.
    assert_eq!(t1.update(t, b"x", b"2").unwrap_err(), AbortReason::WriteWriteConflict);
}

#[test]
fn abort_rolls_back_everything() {
    let db = db();
    let t = db.create_table("t");
    let idx = db.create_secondary_index(t, "t.sec");
    let mut w = db.register_worker();

    let mut setup = w.begin(SI);
    setup.insert(t, b"old", b"1").unwrap();
    setup.commit().unwrap();

    let mut tx = w.begin(SI);
    let oid = tx.insert(t, b"new", b"2").unwrap();
    tx.insert_secondary(idx, b"sec-new", oid).unwrap();
    tx.update(t, b"old", b"changed").unwrap();
    tx.abort();

    let mut check = w.begin(SI);
    assert_eq!(get(&mut check, t, b"new"), None, "insert rolled back");
    assert_eq!(get(&mut check, t, b"old").as_deref(), Some(&b"1"[..]), "update rolled back");
    assert_eq!(check.read_secondary(idx, b"sec-new", |v| v.to_vec()).unwrap(), None);
    check.commit().unwrap();
}

#[test]
fn dropping_transaction_aborts() {
    let db = db();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    {
        let mut tx = w.begin(SI);
        tx.insert(t, b"ghost", b"1").unwrap();
        // dropped without commit
    }
    let mut check = w.begin(SI);
    assert_eq!(get(&mut check, t, b"ghost"), None);
    check.commit().unwrap();
    let (commits, aborts) = db.txn_counts();
    assert_eq!(commits, 1);
    assert_eq!(aborts, 1);
}

#[test]
fn reinsert_after_delete_revives() {
    let db = db();
    let t = db.create_table("t");
    let mut w = db.register_worker();

    let mut tx = w.begin(SI);
    tx.insert(t, b"k", b"v1").unwrap();
    tx.commit().unwrap();
    let mut tx = w.begin(SI);
    tx.delete(t, b"k").unwrap();
    tx.commit().unwrap();
    let mut tx = w.begin(SI);
    tx.insert(t, b"k", b"v2").unwrap();
    tx.commit().unwrap();
    let mut tx = w.begin(SI);
    assert_eq!(get(&mut tx, t, b"k").as_deref(), Some(&b"v2"[..]));
    tx.commit().unwrap();
}

#[test]
fn duplicate_insert_dooms() {
    let db = db();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    let mut tx = w.begin(SI);
    tx.insert(t, b"k", b"v").unwrap();
    tx.commit().unwrap();
    let mut tx = w.begin(SI);
    assert_eq!(tx.insert(t, b"k", b"v2").unwrap_err(), AbortReason::DuplicateKey);
}

#[test]
fn write_skew_prevented_by_ssn_allowed_by_si() {
    // Classic write skew: constraint x + y >= 0, both start at 50.
    // T1 reads both, sets x = x - 90; T2 reads both, sets y = y - 90.
    // Under SI both commit (non-serializable); under SSN one aborts.
    for (iso, expect_both) in [(SI, true), (SSN, false)] {
        let db = db();
        let t = db.create_table("t");
        let mut w1 = db.register_worker();
        let mut w2 = db.register_worker();
        let mut setup = w1.begin(SI);
        setup.insert(t, b"x", b"50").unwrap();
        setup.insert(t, b"y", b"50").unwrap();
        setup.commit().unwrap();

        let mut t1 = w1.begin(iso);
        let mut t2 = w2.begin(iso);
        let _ = get(&mut t1, t, b"x");
        let _ = get(&mut t1, t, b"y");
        let _ = get(&mut t2, t, b"x");
        let _ = get(&mut t2, t, b"y");
        t1.update(t, b"x", b"-40").unwrap();
        t2.update(t, b"y", b"-40").unwrap();
        let r1 = t1.commit();
        let r2 = t2.commit();
        if expect_both {
            assert!(r1.is_ok() && r2.is_ok(), "SI permits write skew");
        } else {
            assert!(
                r1.is_ok() != r2.is_ok(),
                "SSN must abort exactly one of the write-skew pair: {r1:?} {r2:?}"
            );
            let failed = r1.err().or(r2.err()).expect("one side aborted");
            assert_eq!(failed, AbortReason::SsnExclusion);
        }
    }
}

#[test]
fn phantom_prevented_under_ssn() {
    let db = db();
    let t = db.create_table("t");
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();
    let pk = db.primary_index(t);

    let mut setup = w1.begin(SI);
    for i in [10u8, 20, 30] {
        setup.insert(t, &[i], &[i]).unwrap();
    }
    setup.commit().unwrap();

    // t1 scans [0, 100], then t2 inserts 15 into the range and commits,
    // then t1 writes something (so it is not read-only) and commits.
    let mut t1 = w1.begin(SSN);
    let mut n = 0;
    t1.scan(pk, &[0], &[100], None, |_, _| {
        n += 1;
        true
    })
    .unwrap();
    assert_eq!(n, 3);
    let mut t2 = w2.begin(SSN);
    t2.insert(t, &[15], &[15]).unwrap();
    t2.commit().unwrap();

    t1.insert(t, &[200], &[200]).unwrap();
    assert_eq!(t1.commit().unwrap_err(), AbortReason::Phantom);
}

#[test]
fn scan_sees_consistent_snapshot() {
    let db = db();
    let t = db.create_table("t");
    let pk = db.primary_index(t);
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();

    let mut setup = w1.begin(SI);
    for i in 0..20u8 {
        setup.insert(t, &[i], &[i]).unwrap();
    }
    setup.commit().unwrap();

    let mut reader = w1.begin(SI);
    // Interleave: writer updates half the range and inserts new keys.
    let mut writer = w2.begin(SI);
    for i in 0..10u8 {
        writer.update(t, &[i], &[100 + i]).unwrap();
    }
    writer.insert(t, &[50], &[50]).unwrap();
    writer.commit().unwrap();

    let mut seen = Vec::new();
    reader
        .scan(pk, &[0], &[99], None, |k, v| {
            seen.push((k.to_vec(), v.to_vec()));
            true
        })
        .unwrap();
    // The reader's snapshot: original 20 keys, original values, no 50.
    assert_eq!(seen.len(), 20);
    for (k, v) in &seen {
        assert_eq!(k, v, "reader must see pre-update values");
    }
    reader.commit().unwrap();
}

#[test]
fn scan_limit_stops_early() {
    let db = db();
    let t = db.create_table("t");
    let pk = db.primary_index(t);
    let mut w = db.register_worker();
    let mut setup = w.begin(SI);
    for i in 0..100u8 {
        setup.insert(t, &[i], &[i]).unwrap();
    }
    setup.commit().unwrap();
    let mut tx = w.begin(SI);
    let n = tx.scan(pk, &[0], &[255], Some(7), |_, _| true).unwrap();
    assert_eq!(n, 7);
    tx.commit().unwrap();
}

#[test]
fn secondary_index_read_and_scan() {
    let db = db();
    let t = db.create_table("people");
    let by_name = db.create_secondary_index(t, "people.by_name");
    let mut w = db.register_worker();

    let mut tx = w.begin(SI);
    let o1 = tx.insert(t, b"id-1", b"alice-data").unwrap();
    tx.insert_secondary(by_name, b"alice", o1).unwrap();
    let o2 = tx.insert(t, b"id-2", b"bob-data").unwrap();
    tx.insert_secondary(by_name, b"bob", o2).unwrap();
    tx.commit().unwrap();

    let mut tx = w.begin(SI);
    let data = tx.read_secondary(by_name, b"alice", |v| v.to_vec()).unwrap();
    assert_eq!(data.as_deref(), Some(&b"alice-data"[..]));
    let mut names = Vec::new();
    tx.scan(by_name, b"a", b"z", None, |k, _| {
        names.push(k.to_vec());
        true
    })
    .unwrap();
    assert_eq!(names, vec![b"alice".to_vec(), b"bob".to_vec()]);
    tx.commit().unwrap();
}

#[test]
fn long_reader_survives_concurrent_writers() {
    // The paper's headline behaviour: under multi-versioning,
    // read-write conflicts never abort readers.
    let db = db();
    let t = db.create_table("t");
    let pk = db.primary_index(t);
    let mut w = db.register_worker();
    let mut setup = w.begin(SI);
    for i in 0..200u32 {
        setup.insert(t, &i.to_be_bytes(), &0u64.to_le_bytes()).unwrap();
    }
    setup.commit().unwrap();

    let stop = AtomicU64::new(0);
    crossbeam::scope(|s| {
        // Writers hammer the range.
        for _ in 0..2 {
            let db = db.clone();
            let stop = &stop;
            s.spawn(move |_| {
                let mut w = db.register_worker();
                let mut i = 0u32;
                while stop.load(Ordering::Relaxed) == 0 {
                    let mut tx = w.begin(SI);
                    let k = (i % 200).to_be_bytes();
                    let ok = tx.update(t, &k, &(i as u64).to_le_bytes());
                    if ok.is_ok() {
                        let _ = tx.commit();
                    }
                    i += 1;
                }
            });
        }
        // A long reader scans the whole table repeatedly; every scan must
        // succeed and see a consistent snapshot.
        let dbr = db.clone();
        let stopr = &stop;
        s.spawn(move |_| {
            let mut w = dbr.register_worker();
            for _ in 0..30 {
                let mut tx = w.begin(SI);
                let mut count = 0;
                tx.scan(pk, &0u32.to_be_bytes(), &200u32.to_be_bytes(), None, |_, _| {
                    count += 1;
                    true
                })
                .expect("reader must never be doomed under SI");
                assert_eq!(count, 200);
                tx.commit().expect("reader commit must succeed");
            }
            stopr.store(1, Ordering::Relaxed);
        });
    })
    .unwrap();
}

#[test]
fn concurrent_transfers_preserve_invariant() {
    // N accounts, random transfers; total balance must be conserved.
    const ACCOUNTS: u64 = 16;
    const TRANSFERS: u64 = 2000;
    let db = db();
    let t = db.create_table("accounts");
    let mut w = db.register_worker();
    let mut setup = w.begin(SI);
    for i in 0..ACCOUNTS {
        setup.insert(t, &i.to_be_bytes(), &100i64.to_le_bytes()).unwrap();
    }
    setup.commit().unwrap();

    crossbeam::scope(|s| {
        for tidx in 0..3u64 {
            let db = db.clone();
            s.spawn(move |_| {
                let mut w = db.register_worker();
                let mut state = tidx.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                let mut done = 0;
                while done < TRANSFERS {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let from = (state >> 33) % ACCOUNTS;
                    let to = (state >> 13) % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let mut tx = w.begin(SI);
                    let r = (|| -> ermia_common::OpResult<()> {
                        let fb = tx
                            .read(t, &from.to_be_bytes(), |v| {
                                i64::from_le_bytes(v.try_into().unwrap())
                            })?
                            .unwrap();
                        let tb = tx
                            .read(t, &to.to_be_bytes(), |v| {
                                i64::from_le_bytes(v.try_into().unwrap())
                            })?
                            .unwrap();
                        tx.update(t, &from.to_be_bytes(), &(fb - 1).to_le_bytes())?;
                        tx.update(t, &to.to_be_bytes(), &(tb + 1).to_le_bytes())?;
                        Ok(())
                    })();
                    match r {
                        Ok(()) => {
                            if tx.commit().is_ok() {
                                done += 1;
                            }
                        }
                        Err(_) => tx.abort(),
                    }
                }
            });
        }
    })
    .unwrap();

    let mut check = w.begin(SI);
    let mut total = 0i64;
    for i in 0..ACCOUNTS {
        total += check
            .read(t, &i.to_be_bytes(), |v| i64::from_le_bytes(v.try_into().unwrap()))
            .unwrap()
            .unwrap();
    }
    check.commit().unwrap();
    assert_eq!(total, (ACCOUNTS as i64) * 100, "money must be conserved");
}

#[test]
fn read_only_commit_is_cheap() {
    let db = db();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    let mut setup = w.begin(SI);
    setup.insert(t, b"k", b"v").unwrap();
    setup.commit().unwrap();

    let allocs_before = db.log().stats().allocations.load(Ordering::Relaxed);
    for _ in 0..10 {
        let mut tx = w.begin(SSN);
        let _ = get(&mut tx, t, b"k");
        tx.commit().unwrap();
    }
    let allocs_after = db.log().stats().allocations.load(Ordering::Relaxed);
    assert_eq!(allocs_before, allocs_after, "read-only commits allocate no log space");
}

#[test]
fn per_op_logging_mode() {
    let cfg = DbConfig { per_op_logging: true, ..DbConfig::in_memory() };
    let db = Database::open(cfg).unwrap();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    let before = db.log().stats().allocations.load(Ordering::Relaxed);
    let mut tx = w.begin(SI);
    for i in 0..5u8 {
        tx.insert(t, &[i], &[i]).unwrap();
    }
    tx.commit().unwrap();
    let after = db.log().stats().allocations.load(Ordering::Relaxed);
    // 5 per-op round trips + 1 commit block.
    assert_eq!(after - before, 6);
}

#[test]
fn checkpoint_and_recovery_roundtrip() {
    let dir = std::env::temp_dir().join(format!("ermia-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let schema = |db: &Database| {
        let t = db.create_table("t");
        let idx = db.create_secondary_index(t, "t.sec");
        (t, idx)
    };
    {
        let db = Database::open(DbConfig::durable(&dir)).unwrap();
        let (t, idx) = schema(&db);
        let mut w = db.register_worker();
        let mut tx = w.begin(SI);
        for i in 0..50u32 {
            let oid = tx.insert(t, &i.to_be_bytes(), format!("val-{i}").as_bytes()).unwrap();
            tx.insert_secondary(idx, &(1000 + i).to_be_bytes(), oid).unwrap();
        }
        tx.commit().unwrap();
        db.checkpoint().unwrap();
        // Post-checkpoint work that must come back via log replay.
        let mut tx = w.begin(SI);
        tx.update(t, &7u32.to_be_bytes(), b"updated-after-checkpoint").unwrap();
        tx.insert(t, &999u32.to_be_bytes(), b"post-checkpoint-insert").unwrap();
        tx.delete(t, &9u32.to_be_bytes()).unwrap();
        tx.commit().unwrap();
        db.log().sync().unwrap();
    }
    // Reopen: re-declare schema, recover, verify.
    {
        let db = Database::open(DbConfig::durable(&dir)).unwrap();
        let (t, idx) = schema(&db);
        let stats = db.recover().unwrap();
        assert!(stats.checkpoint_records >= 50);
        assert!(stats.replayed_records >= 3);

        let mut w = db.register_worker();
        let mut tx = w.begin(SI);
        assert_eq!(get(&mut tx, t, &0u32.to_be_bytes()).as_deref(), Some(&b"val-0"[..]));
        assert_eq!(
            get(&mut tx, t, &7u32.to_be_bytes()).as_deref(),
            Some(&b"updated-after-checkpoint"[..])
        );
        assert_eq!(
            get(&mut tx, t, &999u32.to_be_bytes()).as_deref(),
            Some(&b"post-checkpoint-insert"[..])
        );
        assert_eq!(get(&mut tx, t, &9u32.to_be_bytes()), None, "delete must replay");
        let via_sec = tx.read_secondary(idx, &1003u32.to_be_bytes(), |v| v.to_vec()).unwrap();
        assert_eq!(via_sec.as_deref(), Some(&b"val-3"[..]));
        tx.commit().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_without_checkpoint_replays_whole_log() {
    let dir = std::env::temp_dir().join(format!("ermia-recovery-nochk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(DbConfig::durable(&dir)).unwrap();
        let t = db.create_table("t");
        let mut w = db.register_worker();
        let mut tx = w.begin(SI);
        tx.insert(t, b"a", b"1").unwrap();
        tx.insert(t, b"b", b"2").unwrap();
        tx.commit().unwrap();
        db.log().sync().unwrap();
    }
    {
        let db = Database::open(DbConfig::durable(&dir)).unwrap();
        let t = db.create_table("t");
        let stats = db.recover().unwrap();
        assert_eq!(stats.checkpoint_records, 0);
        assert_eq!(stats.replayed_records, 2);
        let mut w = db.register_worker();
        let mut tx = w.begin(SI);
        assert_eq!(get(&mut tx, t, b"a").as_deref(), Some(&b"1"[..]));
        assert_eq!(get(&mut tx, t, b"b").as_deref(), Some(&b"2"[..]));
        tx.commit().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gc_reclaims_old_versions() {
    let cfg = DbConfig {
        gc_interval: std::time::Duration::from_millis(1),
        ..DbConfig::in_memory()
    };
    let db = Database::open(cfg).unwrap();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    let mut tx = w.begin(SI);
    tx.insert(t, b"hot", b"0").unwrap();
    tx.commit().unwrap();
    // Pile up versions.
    for i in 0..500u32 {
        let mut tx = w.begin(SI);
        tx.update(t, b"hot", &i.to_le_bytes()).unwrap();
        tx.commit().unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(100));
    let stats = db.epoch_stats();
    // The unified epoch manager must have retired old versions — either
    // freed outright or parked in the reuse pool.
    assert!(
        stats.freed > 0 || db.version_pool_size() > 0,
        "gc must reclaim old versions: {stats:?}"
    );
    // And the table still reads correctly.
    let mut tx = w.begin(SI);
    assert_eq!(get(&mut tx, t, b"hot").as_deref(), Some(&499u32.to_le_bytes()[..]));
    tx.commit().unwrap();
}

#[test]
fn ssn_allows_serializable_histories() {
    // Simple non-conflicting updates must never be aborted by SSN.
    let db = db();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    let mut setup = w.begin(SI);
    for i in 0..10u8 {
        setup.insert(t, &[i], &[0]).unwrap();
    }
    setup.commit().unwrap();
    for round in 0..50u8 {
        let mut tx = w.begin(SSN);
        let i = round % 10;
        let _ = get(&mut tx, t, &[i]);
        tx.update(t, &[i], &[round]).unwrap();
        tx.commit().expect("sequential updates are serializable");
    }
}

#[test]
fn long_reader_sees_stable_value_despite_gc() {
    // A reader's snapshot version must survive GC while the reader lives.
    let cfg = DbConfig { gc_interval: std::time::Duration::from_millis(1), ..DbConfig::in_memory() };
    let db = Database::open(cfg).unwrap();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    let mut w2 = db.register_worker();
    let mut setup = w.begin(SI);
    setup.insert(t, b"k", &0u64.to_le_bytes()).unwrap();
    setup.commit().unwrap();

    let mut reader = w.begin(SI);
    let v0 = reader.read(t, b"k", |v| u64::from_le_bytes(v.try_into().unwrap())).unwrap().unwrap();
    // Hammer updates so GC has plenty to truncate.
    for i in 1..300u64 {
        let mut tx = w2.begin(SI);
        tx.update(t, b"k", &i.to_le_bytes()).unwrap();
        tx.commit().unwrap();
        if i % 50 == 0 {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
    // The reader still sees its snapshot value.
    let v1 = reader.read(t, b"k", |v| u64::from_le_bytes(v.try_into().unwrap())).unwrap().unwrap();
    assert_eq!(v0, v1);
    reader.commit().unwrap();
}

#[test]
fn scan_resume_across_collection_cap() {
    // A tight limit forces the two-phase scan to resume collection; the
    // delivered sequence must still be exact and ordered.
    let db = db();
    let t = db.create_table("t");
    let pk = db.primary_index(t);
    let mut w = db.register_worker();
    let mut setup = w.begin(SI);
    for i in 0..500u32 {
        setup.insert(t, &i.to_be_bytes(), &i.to_le_bytes()).unwrap();
    }
    setup.commit().unwrap();
    // Delete every other row so visibility filtering forces resumption.
    let mut tx = w.begin(SI);
    for i in (0..500u32).step_by(2) {
        tx.delete(t, &i.to_be_bytes()).unwrap();
    }
    tx.commit().unwrap();

    let mut tx = w.begin(SI);
    let mut got = Vec::new();
    let n = tx
        .scan(pk, &0u32.to_be_bytes(), &500u32.to_be_bytes(), Some(100), |k, _| {
            got.push(u32::from_be_bytes(k.try_into().unwrap()));
            true
        })
        .unwrap();
    assert_eq!(n, 100);
    let expect: Vec<u32> = (0..500).filter(|i| i % 2 == 1).take(100).collect();
    assert_eq!(got, expect);
    tx.commit().unwrap();
}

#[test]
fn update_then_delete_then_insert_same_txn() {
    let db = db();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    let mut setup = w.begin(SI);
    setup.insert(t, b"k", b"v0").unwrap();
    setup.commit().unwrap();

    let mut tx = w.begin(SI);
    assert!(tx.update(t, b"k", b"v1").unwrap());
    assert!(tx.delete(t, b"k").unwrap());
    assert_eq!(get(&mut tx, t, b"k"), None);
    assert!(!tx.update(t, b"k", b"v2").unwrap(), "update after own delete misses");
    assert!(!tx.delete(t, b"k").unwrap(), "double delete misses");
    tx.insert(t, b"k", b"v3").unwrap();
    assert_eq!(get(&mut tx, t, b"k").as_deref(), Some(&b"v3"[..]));
    tx.commit().unwrap();

    let mut check = w.begin(SI);
    assert_eq!(get(&mut check, t, b"k").as_deref(), Some(&b"v3"[..]));
    check.commit().unwrap();
}

#[test]
fn ssn_aborts_propagate_reason_through_commit() {
    // A doomed transaction's commit returns the original reason, and
    // counters attribute it as an abort.
    let db = db();
    let t = db.create_table("t");
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();
    let mut setup = w1.begin(SI);
    setup.insert(t, b"x", b"0").unwrap();
    setup.commit().unwrap();

    let (c0, a0) = db.txn_counts();
    let mut t1 = w1.begin(SI);
    let mut t2 = w2.begin(SI);
    t1.update(t, b"x", b"a").unwrap();
    assert!(t2.update(t, b"x", b"b").is_err());
    assert_eq!(t2.commit().unwrap_err(), AbortReason::WriteWriteConflict);
    t1.commit().unwrap();
    let (c1, a1) = db.txn_counts();
    assert_eq!(c1 - c0, 1);
    assert_eq!(a1 - a0, 1);
}

#[test]
fn secondary_scan_respects_snapshot() {
    let db = db();
    let t = db.create_table("t");
    let sec = db.create_secondary_index(t, "t.sec");
    let mut w1 = db.register_worker();
    let mut w2 = db.register_worker();
    let mut setup = w1.begin(SI);
    for i in 0..10u32 {
        let oid = setup.insert(t, &i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        setup.insert_secondary(sec, &(100 + i).to_be_bytes(), oid).unwrap();
    }
    setup.commit().unwrap();

    let mut reader = w1.begin(SI);
    // Writer adds a new record + secondary entry after the reader began.
    let mut writer = w2.begin(SI);
    let oid = writer.insert(t, &99u32.to_be_bytes(), &99u32.to_le_bytes()).unwrap();
    writer.insert_secondary(sec, &105u32.to_be_bytes(), oid).unwrap_err(); // dup key
    writer.abort();
    let mut writer = w2.begin(SI);
    let oid = writer.insert(t, &99u32.to_be_bytes(), &99u32.to_le_bytes()).unwrap();
    writer.insert_secondary(sec, &150u32.to_be_bytes(), oid).unwrap();
    writer.commit().unwrap();

    // The reader's secondary scan must not see the new entry's record.
    let mut count = 0;
    reader
        .scan(sec, &100u32.to_be_bytes(), &200u32.to_be_bytes(), None, |_, _| {
            count += 1;
            true
        })
        .unwrap();
    assert_eq!(count, 10, "snapshot scan must exclude post-begin inserts");
    reader.commit().unwrap();
}

#[test]
fn epoch_stats_visible_through_database() {
    let db = db();
    let stats = db.epoch_stats();
    // The ticker advances the unified timeline in the background.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let later = db.epoch_stats();
    assert!(later.epoch > stats.epoch, "unified epoch must tick");
}

#[test]
fn large_values_divert_to_blobs_and_recover() {
    let dir = std::env::temp_dir().join(format!("ermia-blob-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let big = vec![0xCDu8; 32 * 1024];
    {
        let mut cfg = DbConfig::durable(&dir);
        cfg.large_value_threshold = 1024;
        let db = Database::open(cfg).unwrap();
        let t = db.create_table("t");
        let mut w = db.register_worker();
        let mut tx = w.begin(SI);
        tx.insert(t, b"small", b"tiny-value").unwrap();
        tx.insert(t, b"large", &big).unwrap();
        tx.commit().unwrap();
        db.log().sync().unwrap();
        assert!(db.inner.blobs.size() >= big.len() as u64, "big value must hit the blob store");
        // The log block must be small: it carries a 12-byte reference,
        // not 32 KiB.
        assert!(db.log().tail_lsn().offset() < 4096);
    }
    {
        let db = Database::open(DbConfig::durable(&dir)).unwrap();
        let t = db.create_table("t");
        db.recover().unwrap();
        let mut w = db.register_worker();
        let mut tx = w.begin(SI);
        assert_eq!(get(&mut tx, t, b"small").as_deref(), Some(&b"tiny-value"[..]));
        assert_eq!(get(&mut tx, t, b"large"), Some(big));
        tx.commit().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn log_truncation_after_checkpoint() {
    let dir = std::env::temp_dir().join(format!("ermia-truncate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut cfg = DbConfig::durable(&dir);
        cfg.log.segment_size = 8192; // force frequent rotations
        let db = Database::open(cfg).unwrap();
        let t = db.create_table("t");
        let mut w = db.register_worker();
        for i in 0..200u32 {
            let mut tx = w.begin(SI);
            tx.insert(t, &i.to_be_bytes(), &[0xAB; 128]).unwrap();
            tx.commit().unwrap();
        }
        db.log().sync().unwrap();
        let before = db.log().segments().all().len();
        assert!(before > 2, "need several segments to make truncation meaningful");
        db.checkpoint().unwrap();
        // Post-checkpoint work so the tail segment stays live.
        let mut tx = w.begin(SI);
        tx.insert(t, b"after", b"x").unwrap();
        tx.commit().unwrap();
        db.log().sync().unwrap();
        let removed = db.truncate_log().unwrap();
        assert!(removed > 0, "old segments must be retired");
        assert!(db.log().segments().all().len() < before);
    }
    // Recovery still works from checkpoint + surviving tail.
    {
        let mut cfg = DbConfig::durable(&dir);
        cfg.log.segment_size = 8192;
        let db = Database::open(cfg).unwrap();
        let t = db.create_table("t");
        let stats = db.recover().unwrap();
        assert!(stats.checkpoint_records >= 200);
        let mut w = db.register_worker();
        let mut tx = w.begin(SI);
        assert_eq!(get(&mut tx, t, &0u32.to_be_bytes()).as_deref(), Some(&[0xABu8; 128][..]));
        assert_eq!(get(&mut tx, t, b"after").as_deref(), Some(&b"x"[..]));
        tx.commit().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scratch_reuse_leaves_no_residue_across_transactions() {
    // All transactions below share one worker, so they recycle the same
    // scratch sets and key arena. An aborted transaction's writes must
    // vanish entirely and never bleed into the next transaction.
    let db = db();
    let t = db.create_table("t");
    let idx = db.create_secondary_index(t, "t.sec");
    let mut w = db.register_worker();

    let mut tx = w.begin(SSN);
    let oid = tx.insert(t, b"a", b"1").unwrap();
    tx.insert_secondary(idx, b"sec-a", oid).unwrap();
    tx.commit().unwrap();

    // Fill every working set, then abort.
    let mut tx = w.begin(SSN);
    let oid_b = tx.insert(t, b"b", b"2").unwrap();
    tx.insert_secondary(idx, b"sec-b", oid_b).unwrap();
    assert!(tx.update(t, b"a", b"1-dirty").unwrap());
    tx.abort();

    let mut tx = w.begin(SSN);
    assert_eq!(get(&mut tx, t, b"a").as_deref(), Some(&b"1"[..]));
    assert_eq!(get(&mut tx, t, b"b"), None, "aborted insert must not resurface");
    assert_eq!(tx.read_secondary(idx, b"sec-b", |v| v.to_vec()).unwrap(), None);
    assert_eq!(
        tx.read_secondary(idx, b"sec-a", |v| v.to_vec()).unwrap().as_deref(),
        Some(&b"1"[..])
    );
    // A fresh write on the recycled write set commits cleanly.
    assert!(tx.update(t, b"a", b"1-clean").unwrap());
    tx.commit().unwrap();

    let mut tx = w.begin(SSN);
    assert_eq!(get(&mut tx, t, b"a").as_deref(), Some(&b"1-clean"[..]));
    tx.commit().unwrap();
}

#[test]
fn version_nodes_recycle_through_worker_cache() {
    // Update churn retires old versions through the GC into the shared
    // pool; the worker's cache must start serving them back instead of
    // allocating.
    let db = db();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    let mut tx = w.begin(SI);
    tx.insert(t, b"hot", b"0").unwrap();
    tx.commit().unwrap();

    let mut reused = 0;
    for _round in 0..100 {
        for i in 0..20u32 {
            let mut tx = w.begin(SI);
            tx.update(t, b"hot", &i.to_le_bytes()).unwrap();
            tx.commit().unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        reused = w.versions_reused();
        if reused > 0 {
            break;
        }
    }
    assert!(reused > 0, "worker cache never served a recycled version");
}

#[test]
fn breakdown_survives_worker_churn_without_growing_registry() {
    // Short-lived workers must not grow the slab registry (or leak their
    // slabs): a retiring worker folds its counts into the retained
    // aggregate and leaves the live set, so `Database::breakdown` stays
    // complete *and* O(current workers).
    let cfg = DbConfig { profile: true, ..DbConfig::in_memory() };
    let db = Database::open(cfg).unwrap();
    let t = db.create_table("t");
    for i in 0..8u32 {
        let mut w = db.register_worker();
        let mut tx = w.begin(SI);
        tx.insert(t, &i.to_be_bytes(), b"v").unwrap();
        tx.commit().unwrap();
    }
    assert_eq!(db.breakdown().txns, 8, "retired workers' counts are retained");
    let reg = db.telemetry().registry();
    assert_eq!(reg.live_slabs(&crate::metrics::PROFILE_FAMILY), 0, "no live slabs after churn");

    // With profiling off, worker churn must not register anything at all.
    let db = Database::open(DbConfig::in_memory()).unwrap();
    let t = db.create_table("t");
    for i in 0..8u32 {
        let mut w = db.register_worker();
        let mut tx = w.begin(SI);
        tx.insert(t, &i.to_be_bytes(), b"v").unwrap();
        tx.commit().unwrap();
    }
    let reg = db.telemetry().registry();
    assert_eq!(
        reg.live_slabs(&crate::metrics::PROFILE_FAMILY),
        0,
        "profiling off: never registered"
    );
}

#[test]
fn log_retention_handle_clamps_truncation_until_dropped() {
    // A backup shipper pins the log; truncation must stall behind the
    // pin and resume — retiring the same segments — once it drops.
    let dir = std::env::temp_dir().join(format!("ermia-retention-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = DbConfig::durable(&dir);
    cfg.log.segment_size = 8192;
    let db = Database::open(cfg).unwrap();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    for i in 0..200u32 {
        let mut tx = w.begin(SI);
        tx.insert(t, &i.to_be_bytes(), &[0xCD; 128]).unwrap();
        tx.commit().unwrap();
    }
    db.log().sync().unwrap();
    let before = db.log().segments().all().len();
    assert!(before > 2, "need several segments for truncation to bite");
    let pin = db.pin_log(0);
    db.checkpoint().unwrap();

    // Pinned at 0: nothing may be retired even though the checkpoint
    // would allow it.
    assert_eq!(db.truncate_log().unwrap(), 0, "retention pin must clamp truncation");
    assert_eq!(db.log().segments().all().len(), before);

    // Advancing the pin releases the prefix below it.
    let mid = db.log().segments().all()[1].start;
    pin.advance(mid);
    let partial = db.truncate_log().unwrap();
    assert!(partial >= 1, "advancing the pin must release the shipped prefix");
    assert!(db.log().segments().all().len() < before);

    // Dropping the handle resumes full truncation up to the checkpoint.
    let left = db.log().segments().all().len();
    drop(pin);
    let resumed = db.truncate_log().unwrap();
    assert!(resumed >= 1, "truncation must resume after the handle drops");
    assert!(db.log().segments().all().len() < left);

    // Data is intact throughout.
    let mut tx = w.begin(SI);
    assert_eq!(get(&mut tx, t, &0u32.to_be_bytes()).as_deref(), Some(&[0xCD_u8; 128][..]));
    tx.commit().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fork_is_a_frozen_consistent_cut() {
    // A fork shares version chains with the primary: it must keep
    // serving the cut-time values while the primary overwrites them,
    // and it must refuse writes.
    let cfg = DbConfig { gc_interval: std::time::Duration::from_millis(1), ..DbConfig::in_memory() };
    let db = Database::open(cfg).unwrap();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    for i in 0..50u32 {
        let mut tx = w.begin(SI);
        tx.insert(t, &i.to_be_bytes(), b"v1").unwrap();
        tx.commit().unwrap();
    }

    let fork = db.fork();
    assert_eq!(db.fork_count(), 1, "live forks are counted");

    // The primary keeps committing: overwrites and fresh keys, enough
    // churn that GC would reclaim the old versions were they unpinned.
    for round in 0..6u32 {
        for i in 0..50u32 {
            let mut tx = w.begin(SI);
            tx.update(t, &i.to_be_bytes(), b"v2").unwrap();
            tx.commit().unwrap();
        }
        let mut tx = w.begin(SI);
        tx.insert(t, &(1000 + round).to_be_bytes(), b"new").unwrap();
        tx.commit().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(3));
    }

    // The fork still reads the cut: old values present, new keys absent.
    let mut fw = fork.register_worker();
    let mut tx = fw.begin(SI);
    for i in 0..50u32 {
        assert_eq!(get(&mut tx, t, &i.to_be_bytes()).as_deref(), Some(&b"v1"[..]), "key {i}");
    }
    assert_eq!(get(&mut tx, t, &1000u32.to_be_bytes()), None, "post-fork keys are invisible");
    tx.commit().unwrap();

    // Writes through the fork abort with the read-only reason.
    let mut tx = fw.begin(SI);
    match tx.update(t, &0u32.to_be_bytes(), b"nope") {
        Err(e) => assert_eq!(e, AbortReason::ReadOnlyMode),
        Ok(_) => panic!("fork writes must bounce"),
    }
    tx.abort();

    // The primary sees its own latest state, unaffected.
    let mut tx = w.begin(SI);
    assert_eq!(get(&mut tx, t, &0u32.to_be_bytes()).as_deref(), Some(&b"v2"[..]));
    tx.commit().unwrap();

    drop(fw);
    drop(fork);
    assert_eq!(db.fork_count(), 0, "dropping the fork releases its count and GC pin");
}

#[test]
fn snapshot_cut_is_durable_and_transaction_consistent() {
    let dir = std::env::temp_dir().join(format!("ermia-cut-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(DbConfig::durable(&dir)).unwrap();
    let t = db.create_table("t");
    let mut w = db.register_worker();
    let mut last = crate::Lsn::NULL;
    for i in 0..32u32 {
        let mut tx = w.begin(SI);
        tx.insert(t, &i.to_be_bytes(), b"x").unwrap();
        last = tx.commit().unwrap();
    }
    let cut = db.snapshot_cut().unwrap();
    assert!(cut.raw() > last.raw(), "the cut covers every finished commit");
    assert!(
        db.log().durable_offset() >= cut.offset(),
        "the log must be durable through the cut"
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
