//! The `Database`: catalog, resource managers, lifecycle.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ermia_common::{IndexId, Lsn, TableId};
use ermia_epoch::{EpochManager, Ticker};
use ermia_index::BTree;
use ermia_log::{CheckpointStore, LogManager};
use ermia_storage::{GarbageCollector, GcPassHook, GcStats, OidArray, TidManager, VersionPool};
use ermia_telemetry::{EventKind, EventRing, Telemetry};
use parking_lot::{Mutex, RwLock};

use crate::config::DbConfig;
use crate::worker::Worker;

/// Service state of a [`Database`].
///
/// A database starts `Active`. When the log flusher dies on an
/// unrecoverable I/O error it poisons the log and the database drops to
/// `Degraded`: read-only transactions keep committing (snapshot reads
/// need no log space), but every write operation aborts with
/// [`ermia_common::AbortReason::ReadOnlyMode`] the moment it is issued.
/// An operator brings the database back with [`Database::resume`], which
/// re-probes the storage backend and re-arms the flusher.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum DbState {
    /// Normal read-write service.
    Active = 0,
    /// The log is poisoned; reads commit, writes abort.
    Degraded = 1,
}

impl DbState {
    fn from_u8(v: u8) -> DbState {
        match v {
            0 => DbState::Active,
            _ => DbState::Degraded,
        }
    }
}

/// Replication role of a database node.
///
/// A database opens as `Primary`. A log-shipping replica (see the
/// `ermia-repl` crate) marks its local database `Replica` so health
/// reporting and load balancers can tell the nodes apart; the role does
/// not by itself change engine behavior — read-only enforcement comes
/// from serving through snapshot views ([`Database::fork`] /
/// [`Database::replica_view`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum NodeRole {
    /// Accepts writes; the source of the log.
    Primary = 0,
    /// Applies a shipped log; serves read-only snapshots.
    Replica = 1,
}

impl NodeRole {
    pub fn from_u8(v: u8) -> NodeRole {
        match v {
            0 => NodeRole::Primary,
            _ => NodeRole::Replica,
        }
    }
}

/// One schema-reproducing DDL statement (see [`Database::schema_ddl`]).
/// `secondary: None` declares a table (with its primary index);
/// `Some(name)` declares a secondary index on `table`. Replaying entries
/// in order reproduces identical dense table/index ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DdlEntry {
    pub table: String,
    pub secondary: Option<String>,
}

/// A set of (id, offset) pins with O(n) minimum — n is the handful of
/// live forks/shippers, never the transaction path.
pub(crate) struct PinSet {
    next: AtomicU64,
    pins: Mutex<Vec<(u64, u64)>>,
}

impl PinSet {
    fn new() -> PinSet {
        PinSet { next: AtomicU64::new(1), pins: Mutex::new(Vec::new()) }
    }

    fn pin(&self, offset: u64) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.pins.lock().push((id, offset));
        id
    }

    fn update(&self, id: u64, offset: u64) {
        let mut pins = self.pins.lock();
        if let Some(p) = pins.iter_mut().find(|(i, _)| *i == id) {
            p.1 = offset;
        }
    }

    fn release(&self, id: u64) {
        self.pins.lock().retain(|(i, _)| *i != id);
    }

    fn min(&self) -> Option<u64> {
        self.pins.lock().iter().map(|&(_, o)| o).min()
    }

    /// Fold the minimum pinned offset into `h` and record the result in
    /// `used` before releasing the pin-table lock. Because [`PinSet::pin`]
    /// takes the same lock, once `pin` returns every horizon a concurrent
    /// GC pass could still be sweeping with is already visible in `used`;
    /// later horizon reads see the new pin. [`Database::fork`] relies on
    /// both halves of this ordering.
    fn fold_and_publish(&self, h: u64, used: &AtomicU64) -> u64 {
        let pins = self.pins.lock();
        let h = pins.iter().map(|&(_, o)| o).min().map_or(h, |m| h.min(m));
        used.fetch_max(h, Ordering::AcqRel);
        h
    }
}

/// A retention handle pinning the log against [`Database::truncate_log`].
///
/// While alive, no segment at or above the pinned offset is retired, so
/// a backup shipper or replica subscriber can keep reading sealed
/// segments without racing truncation. Dropping the handle releases the
/// pin; the next `truncate_log` resumes retiring normally.
pub struct LogRetention {
    inner: Arc<DbInner>,
    id: u64,
}

impl LogRetention {
    /// Move the pin forward (typically to the subscriber's applied
    /// offset) so truncation can reclaim everything already shipped.
    pub fn advance(&self, offset: u64) {
        self.inner.log_pins.update(self.id, offset);
    }
}

impl Drop for LogRetention {
    fn drop(&mut self) {
        self.inner.log_pins.release(self.id);
    }
}

/// Shared state of a snapshot view handle ([`Database::fork`] /
/// [`Database::replica_view`]): the visibility cut, plus a GC pin that
/// keeps version chains below the cut reachable for as long as any
/// handle clone is alive.
pub(crate) struct ViewState {
    /// Raw LSN used as the begin timestamp of every transaction started
    /// through this handle. Frozen for forks; advanced by a replica as
    /// it applies shipped log.
    pub(crate) cut: AtomicU64,
    inner: Arc<DbInner>,
    gc_pin: u64,
    /// True for user-visible forks (counted in `ermia_fork_count`).
    counted: bool,
}

impl Drop for ViewState {
    fn drop(&mut self) {
        self.inner.gc_pins.release(self.gc_pin);
        if self.counted {
            self.inner.fork_count.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Exclusive-ownership lockfile on a durable data directory.
///
/// Holds `ermia.lock` containing the owning pid. Acquisition rules, in
/// order: no file — create and own; file with our own pid — a same-
/// process reopen, take ownership again; file with a dead pid (the
/// previous owner was SIGKILLed — the chaos-harness restart path) or
/// unparseable content — stale, replace it; file with a live foreign
/// pid — refuse to open. Dropped with the database, removing the file.
pub(crate) struct DirLock {
    path: PathBuf,
}

impl DirLock {
    fn acquire(dir: &Path) -> std::io::Result<DirLock> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("ermia.lock");
        if let Ok(contents) = std::fs::read_to_string(&path) {
            match contents.trim().parse::<u32>() {
                Ok(pid) if pid == std::process::id() => {}
                Ok(pid) if Path::new(&format!("/proc/{pid}")).exists() => {
                    return Err(std::io::Error::other(format!(
                        "data directory {} is locked by live process {pid}",
                        dir.display()
                    )));
                }
                // Dead pid or garbage: the previous owner is gone.
                _ => {}
            }
        }
        std::fs::write(&path, format!("{}\n", std::process::id()))?;
        Ok(DirLock { path })
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A table: an indirection array plus its primary index.
pub struct Table {
    pub id: TableId,
    pub name: String,
    pub oids: Arc<OidArray>,
    /// Primary index: encoded key → OID.
    pub primary: Arc<BTree>,
    pub primary_index: IndexId,
}

/// An index registration (primary or secondary). All indexes map keys to
/// OIDs of their owning table, so record updates never touch them (§3.2).
pub struct IndexInfo {
    pub id: IndexId,
    pub name: String,
    pub table: TableId,
    pub tree: Arc<BTree>,
    pub is_primary: bool,
}

pub(crate) struct Catalog {
    pub tables: Vec<Arc<Table>>,
    pub indexes: Vec<Arc<IndexInfo>>,
    pub table_names: HashMap<String, TableId>,
    pub index_names: HashMap<String, IndexId>,
}

pub(crate) struct DbInner {
    pub cfg: DbConfig,
    pub log: LogManager,
    pub tid: TidManager,
    pub catalog: RwLock<Catalog>,
    /// The unified epoch manager. The paper's three timescales (gc, rcu,
    /// tid) were tracked separately, but every transaction pinned all
    /// three in lockstep at the same boundaries, so one timeline is
    /// semantically equivalent and makes begin/end one pin instead of
    /// three. Resources of every timescale retire through it.
    pub epoch: EpochManager,
    /// Recycled version nodes: the GC releases quiesced nodes here and
    /// workers' per-thread caches draw from it, keeping the steady-state
    /// write path off the allocator.
    pub versions: Arc<VersionPool>,
    pub checkpoints: Option<CheckpointStore>,
    /// Large-object side storage (§3.3 feature 4).
    pub blobs: ermia_log::BlobStore,
    /// Commits since the last checkpoint (stats).
    pub commits: AtomicU64,
    pub aborts: AtomicU64,
    /// The unified telemetry layer: per-worker metric slabs (txn
    /// outcomes, the Fig. 11 breakdown), database-level collectors over
    /// the subsystem atomics, and the flight-recorder event rings.
    /// Workers write their own slabs with relaxed adds; locks guard only
    /// registration, retirement, and reads, never the transaction path.
    pub telemetry: Arc<Telemetry>,
    /// GC statistics, owned here (not by the collector) so counts
    /// survive the GC restarts that DDL triggers.
    pub gc_stats: Arc<GcStats>,
    /// Flight-recorder ring for background services (GC passes,
    /// checkpoints, epoch advances); workers get their own rings.
    pub svc_ring: Arc<EventRing>,
    /// Service state ([`DbState`] as u8): flipped to `Degraded` by the
    /// log's poison hook, back to `Active` by [`Database::resume`]. Read
    /// with a relaxed load on every write operation's admission check.
    pub state: AtomicU8,
    /// Replication role ([`NodeRole`] as u8); set once by the replica
    /// process, read by health reporting.
    pub role: AtomicU8,
    /// Log offset a replica has applied through (0 on a primary).
    pub applied: AtomicU64,
    /// Snapshot-view pins (raw LSNs) clamping the GC horizon: versions
    /// a live fork can still read are not reclaimable.
    pub gc_pins: PinSet,
    /// Highest horizon (raw LSN) any GC pass has swept with, published
    /// inside the pin-table critical section (see
    /// [`PinSet::fold_and_publish`]). [`Database::fork`] refuses to pick
    /// a cut below it: a pass that already read its horizon may still be
    /// unlinking versions a lower cut would need.
    pub gc_horizon_used: AtomicU64,
    /// Retention pins (log offsets) clamping [`Database::truncate_log`].
    pub log_pins: PinSet,
    /// Live fork handles (gauge `ermia_fork_count`).
    pub fork_count: AtomicU64,
    /// Pid lockfile on the data directory (`None` for in-memory
    /// databases); held only for its Drop, which removes the file.
    pub _dir_lock: Option<DirLock>,
}

/// A memory-optimized multi-version database (the paper's ERMIA engine).
///
/// Cheap to clone and share across threads. Each worker thread calls
/// [`Database::register_worker`] once and runs transactions through its
/// [`Worker`].
#[derive(Clone)]
pub struct Database {
    pub(crate) inner: Arc<DbInner>,
    // Background services; dropped (stopped) with the last Database clone.
    _services: Arc<Services>,
    /// When set, this handle is a read-only snapshot view: transactions
    /// begin at the view's cut instead of the log tail, and every write
    /// operation aborts with `ReadOnlyMode`.
    pub(crate) view: Option<Arc<ViewState>>,
}

struct Services {
    _tickers: Vec<Ticker>,
    _gc: parking_lot::Mutex<Option<GarbageCollector>>,
}

impl Database {
    /// Open a database. If the log directory already contains segments,
    /// call [`Database::recover`] after re-declaring the schema.
    pub fn open(cfg: DbConfig) -> std::io::Result<Database> {
        // Take the directory lock before touching any file in it: a live
        // foreign owner means refusing here, a dead one (SIGKILL) means
        // this open *is* the restart-recovery path.
        let dir_lock = match &cfg.log.dir {
            Some(dir) => Some(DirLock::acquire(dir)?),
            None => None,
        };
        let log = LogManager::open(cfg.log.clone())?;
        let checkpoints = match &cfg.log.dir {
            Some(dir) => Some(CheckpointStore::new(dir.join("checkpoints"))?),
            None => None,
        };
        let blobs = match &cfg.log.dir {
            Some(dir) => ermia_log::BlobStore::open(dir)?,
            None => ermia_log::BlobStore::in_memory(),
        };
        let telemetry = Arc::new(Telemetry::new());
        telemetry.tracer().set_slow_threshold_ns(cfg.trace_slow_us.saturating_mul(1_000));
        let svc_ring = telemetry.flight().ring();
        let inner = Arc::new(DbInner {
            log,
            tid: TidManager::new(),
            catalog: RwLock::new(Catalog {
                tables: Vec::new(),
                indexes: Vec::new(),
                table_names: HashMap::new(),
                index_names: HashMap::new(),
            }),
            epoch: EpochManager::new("unified"),
            versions: Arc::new(VersionPool::default()),
            checkpoints,
            blobs,
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            telemetry,
            gc_stats: Arc::new(GcStats::default()),
            svc_ring,
            state: AtomicU8::new(DbState::Active as u8),
            role: AtomicU8::new(NodeRole::Primary as u8),
            applied: AtomicU64::new(0),
            gc_pins: PinSet::new(),
            gc_horizon_used: AtomicU64::new(0),
            log_pins: PinSet::new(),
            fork_count: AtomicU64::new(0),
            _dir_lock: dir_lock,
            cfg,
        });
        crate::metrics::register_db_collectors(&inner);
        {
            // Degrade to read-only the instant the flusher poisons the
            // log: reads keep committing off the snapshot, writes are
            // refused at admission with `AbortReason::ReadOnlyMode`.
            let weak = Arc::downgrade(&inner);
            inner.log.set_poison_hook(move || {
                if let Some(db) = weak.upgrade() {
                    db.state.store(DbState::Degraded as u8, Ordering::Release);
                    db.svc_ring.record(
                        EventKind::DbDegraded,
                        db.log.durable_offset(),
                        0,
                    );
                }
            });
        }
        if inner.cfg.telemetry {
            // Record epoch transitions in the service ring. The hook runs
            // after the advance, outside the epoch manager's locks; the
            // Weak keeps the manager (owned by DbInner) from keeping its
            // owner alive.
            let weak = Arc::downgrade(&inner);
            inner.epoch.set_advance_hook(move |epoch| {
                if let Some(db) = weak.upgrade() {
                    db.svc_ring.record(EventKind::EpochAdvance, epoch, 0);
                }
            });
        }
        let cfg = &inner.cfg;
        // One ticker drives the unified timeline at the fastest of the
        // old per-timescale cadences (the tid valve's 1ms).
        let tick = cfg.rcu_epoch_interval.min(Duration::from_millis(1));
        let mut tickers = vec![Ticker::start(inner.epoch.clone(), tick)];
        tickers.shrink_to_fit();
        let services = Arc::new(Services { _tickers: tickers, _gc: parking_lot::Mutex::new(None) });
        let db = Database { inner, _services: services, view: None };
        if db.inner.cfg.enable_gc {
            db.start_gc();
        }
        Ok(db)
    }

    fn start_gc(&self) {
        let inner = Arc::clone(&self.inner);
        let horizon = move || {
            // Versions below every active transaction's begin stamp are
            // reclaimable; fall back to the log tail when idle. Live
            // snapshot views (forks, replica serving handles) clamp the
            // horizon so versions their cut can still read stay linked
            // even while no view transaction is in flight.
            let tail = inner.log.tail_lsn();
            let h = inner.tid.min_active_begin(tail);
            // Clamp by live pins and publish the result under the
            // pin-table lock, so fork() can bound what any in-flight
            // pass might still be sweeping with.
            Lsn::from_raw(inner.gc_pins.fold_and_publish(h.raw(), &inner.gc_horizon_used))
        };
        // The GC sweeps whatever tables exist at each pass; re-arm when
        // tables are created (cheap: GC restart on DDL).
        let arrays: Vec<Arc<OidArray>> =
            self.inner.catalog.read().tables.iter().map(|t| Arc::clone(&t.oids)).collect();
        let on_pass: Option<GcPassHook> = self.inner.cfg.telemetry.then(|| {
            let ring = Arc::clone(&self.inner.svc_ring);
            Box::new(move |reclaimed: u64, passes: u64| {
                ring.record(EventKind::GcPass, reclaimed, passes);
            }) as GcPassHook
        });
        let gc = GarbageCollector::start_with(
            arrays,
            self.inner.epoch.clone(),
            horizon,
            self.inner.cfg.gc_interval,
            Some(Arc::clone(&self.inner.versions)),
            Arc::clone(&self.inner.gc_stats),
            on_pass,
        );
        *self._services._gc.lock() = Some(gc);
    }

    /// Create (or look up, by name) a table with its primary index.
    pub fn create_table(&self, name: &str) -> TableId {
        {
            let catalog = self.inner.catalog.read();
            if let Some(&id) = catalog.table_names.get(name) {
                return id;
            }
        }
        let mut catalog = self.inner.catalog.write();
        if let Some(&id) = catalog.table_names.get(name) {
            return id;
        }
        let id = TableId(catalog.tables.len() as u32);
        let index_id = IndexId(catalog.indexes.len() as u32);
        let tree = Arc::new(BTree::new());
        let table = Arc::new(Table {
            id,
            name: name.to_owned(),
            oids: Arc::new(OidArray::new()),
            primary: Arc::clone(&tree),
            primary_index: index_id,
        });
        catalog.indexes.push(Arc::new(IndexInfo {
            id: index_id,
            name: format!("{name}.primary"),
            table: id,
            tree,
            is_primary: true,
        }));
        catalog.table_names.insert(name.to_owned(), id);
        catalog.tables.push(table);
        drop(catalog);
        if self.inner.cfg.enable_gc {
            self.start_gc(); // re-arm with the new array
        }
        id
    }

    /// Create (or look up) a secondary index on `table`. Secondary keys
    /// must be immutable fields of the record: entries map to OIDs and
    /// are not versioned, so updates must never change them.
    pub fn create_secondary_index(&self, table: TableId, name: &str) -> IndexId {
        {
            let catalog = self.inner.catalog.read();
            if let Some(&id) = catalog.index_names.get(name) {
                return id;
            }
        }
        let mut catalog = self.inner.catalog.write();
        if let Some(&id) = catalog.index_names.get(name) {
            return id;
        }
        let id = IndexId(catalog.indexes.len() as u32);
        catalog.indexes.push(Arc::new(IndexInfo {
            id,
            name: name.to_owned(),
            table,
            tree: Arc::new(BTree::new()),
            is_primary: false,
        }));
        catalog.index_names.insert(name.to_owned(), id);
        id
    }

    /// Number of tables in the catalog. Table ids are dense, so an id is
    /// valid iff it is below this count — front-ends use this to validate
    /// untrusted ids before calling [`Transaction`] operations, which
    /// index the catalog directly.
    pub fn table_count(&self) -> usize {
        self.inner.catalog.read().tables.len()
    }

    /// Look up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.inner.catalog.read().table_names.get(name).copied()
    }

    /// Look up a (secondary) index id by name.
    pub fn index_id(&self, name: &str) -> Option<IndexId> {
        self.inner.catalog.read().index_names.get(name).copied()
    }

    /// The primary index id of a table.
    pub fn primary_index(&self, table: TableId) -> IndexId {
        self.inner.catalog.read().tables[table.0 as usize].primary_index
    }

    pub(crate) fn table(&self, id: TableId) -> Arc<Table> {
        Arc::clone(&self.inner.catalog.read().tables[id.0 as usize])
    }

    pub(crate) fn index(&self, id: IndexId) -> Arc<IndexInfo> {
        Arc::clone(&self.inner.catalog.read().indexes[id.0 as usize])
    }

    /// Register the calling thread as a worker.
    pub fn register_worker(&self) -> Worker {
        Worker::new(self.clone())
    }

    /// The log manager (stats, durability control).
    pub fn log(&self) -> &LogManager {
        &self.inner.log
    }

    /// Current service state. `Degraded` means the log is poisoned:
    /// reads commit, writes abort with `ReadOnlyMode`.
    pub fn state(&self) -> DbState {
        DbState::from_u8(self.inner.state.load(Ordering::Acquire))
    }

    /// Operator-triggered recovery from degraded read-only mode.
    ///
    /// Delegates to [`ermia_log::LogManager::resume`] — which re-probes
    /// the storage backend, papers the never-durable gap with skip
    /// blocks, and re-arms the flusher — and returns the database to
    /// `Active` only if that succeeds. Safe to retry while the
    /// underlying fault persists, and a no-op on a healthy database.
    pub fn resume(&self) -> std::io::Result<()> {
        self.inner.log.resume()?;
        self.inner.state.store(DbState::Active as u8, Ordering::Release);
        self.inner.svc_ring.record(EventKind::DbResumed, self.inner.log.durable_offset(), 0);
        Ok(())
    }

    /// Committed / aborted transaction totals.
    pub fn txn_counts(&self) -> (u64, u64) {
        (self.inner.commits.load(Ordering::Relaxed), self.inner.aborts.load(Ordering::Relaxed))
    }

    /// Statistics of the unified epoch manager (all resource timescales
    /// retire through one timeline).
    pub fn epoch_stats(&self) -> ermia_epoch::EpochStats {
        self.inner.epoch.stats()
    }

    /// Version nodes currently parked in the reuse pool.
    pub fn version_pool_size(&self) -> usize {
        self.inner.versions.pooled()
    }

    /// Transaction-context (TID) slots currently in use. Zero whenever no
    /// transaction is in flight — the service layer's session-teardown
    /// tests assert this to prove disconnects leak nothing.
    pub fn tid_slots_in_use(&self) -> usize {
        self.inner.tid.in_use()
    }

    /// Current log tail — the begin timestamp a transaction starting now
    /// would get.
    pub fn now_lsn(&self) -> Lsn {
        self.inner.log.tail_lsn()
    }

    /// Retire log segments made obsolete by the most recent checkpoint
    /// and prune superseded checkpoints. Returns the number of segments
    /// removed. Live [`LogRetention`] handles clamp the truncation
    /// point, so a backup shipper's unshipped segments survive; once the
    /// handles drop, the next call resumes retiring from the checkpoint.
    pub fn truncate_log(&self) -> std::io::Result<usize> {
        let Some(store) = &self.inner.checkpoints else { return Ok(0) };
        let Some((meta, _)) = store.latest()? else { return Ok(0) };
        store.prune()?;
        let mut cut = meta.begin.offset();
        if let Some(pin) = self.inner.log_pins.min() {
            cut = cut.min(pin);
        }
        let removed = self.inner.log.truncate_before(cut)?;
        if self.inner.cfg.telemetry {
            self.inner.svc_ring.record(EventKind::Checkpoint, cut, removed as u64);
        }
        Ok(removed)
    }

    /// Pin the log against truncation from `offset` upward. See
    /// [`LogRetention`].
    pub fn pin_log(&self, offset: u64) -> LogRetention {
        LogRetention { inner: Arc::clone(&self.inner), id: self.inner.log_pins.pin(offset) }
    }

    // ------------------------------------------------------------------
    // Consistent cuts and snapshot views
    // ------------------------------------------------------------------

    /// An epoch-aligned, durable consistent cut: the returned LSN `c`
    /// satisfies (a) every transaction with commit stamp `< c` has
    /// finished post-commit (its versions carry LSN stamps), because `c`
    /// is the in-flight commit low-water frontier, and (b) the log is
    /// durable through `c`, so the cut names a crash-survivable prefix.
    /// A snapshot read at begin `c` therefore observes a
    /// transaction-consistent, durable prefix of history.
    pub fn snapshot_cut(&self) -> std::io::Result<Lsn> {
        let cut = self.inner.tid.min_commit_low_water(self.inner.log.tail_lsn());
        if cut.offset() > 0 {
            // Same barrier as the checkpoint: durable advances in block
            // units, so reaching any offset >= every stamp < cut means
            // all those commit blocks are fully on disk.
            self.inner.log.wait_durable(cut.offset()).map_err(std::io::Error::other)?;
        }
        Ok(cut)
    }

    /// Fork: an instant, read-only clone of this database at a
    /// transaction-consistent cut. No version data is copied — the fork
    /// shares the indirection arrays and version chains copy-on-write
    /// (the primary keeps prepending new versions; the fork's frozen cut
    /// simply never sees them), so the cost is O(metadata): one pin and
    /// one handle. Transactions begun through the returned handle read
    /// the cut's snapshot; writes abort with `ReadOnlyMode`. The fork
    /// pins the GC horizon at its cut until dropped.
    ///
    /// Unlike [`Database::snapshot_cut`] there is no durability barrier:
    /// forks are in-memory artifacts (what-if analysis, tests) and take
    /// the current commit frontier as-is.
    pub fn fork(&self) -> Database {
        let inner = &self.inner;
        // Pin *before* choosing the cut: from here on no new GC pass can
        // reclaim anything (its horizon folds in this floor pin). A pass
        // already in flight read its horizon earlier, but published it
        // to `gc_horizon_used` inside the same lock `pin` just went
        // through — so refusing any cut below that bound guarantees
        // nothing such a pass unlinks (overwriter below its horizon) is
        // needed at the cut we return.
        let gc_pin = inner.gc_pins.pin(Lsn::NULL.raw());
        let cut = loop {
            let c = inner.tid.min_commit_low_water(inner.log.tail_lsn());
            if c.raw() >= inner.gc_horizon_used.load(Ordering::Acquire) {
                break c;
            }
            // The low water sits below a horizon some pass already used:
            // an in-flight commit predating the pin is mid post-commit.
            // The frontier is monotonic and post-commit is short, so
            // spin until it passes the bound.
            std::thread::yield_now();
        };
        inner.gc_pins.update(gc_pin, cut.raw());
        self.view_from_pin(cut, gc_pin, true)
    }

    /// A view handle for replica serving: starts at cut 0 (empty but
    /// consistent) and is advanced with [`Database::advance_view`] as
    /// shipped log gets applied. Not counted as a fork.
    pub fn replica_view(&self) -> Database {
        self.view_at(Lsn::NULL, false)
    }

    fn view_at(&self, cut: Lsn, counted: bool) -> Database {
        let gc_pin = self.inner.gc_pins.pin(cut.raw());
        self.view_from_pin(cut, gc_pin, counted)
    }

    fn view_from_pin(&self, cut: Lsn, gc_pin: u64, counted: bool) -> Database {
        if counted {
            self.inner.fork_count.fetch_add(1, Ordering::Relaxed);
        }
        let view = Arc::new(ViewState {
            cut: AtomicU64::new(cut.raw()),
            inner: Arc::clone(&self.inner),
            gc_pin,
            counted,
        });
        Database {
            inner: Arc::clone(&self.inner),
            _services: Arc::clone(&self._services),
            view: Some(view),
        }
    }

    /// Advance a view handle's cut (replica catch-up). Monotonic: an
    /// older cut than the current one is ignored. Panics if this handle
    /// is not a view.
    pub fn advance_view(&self, cut: Lsn) {
        let view = self.view.as_ref().expect("advance_view requires a view handle");
        view.cut.fetch_max(cut.raw(), Ordering::Release);
        view.inner.gc_pins.update(view.gc_pin, cut.raw());
    }

    /// The cut this handle serves, if it is a snapshot view.
    pub fn view_cut(&self) -> Option<Lsn> {
        self.view.as_ref().map(|v| Lsn::from_raw(v.cut.load(Ordering::Acquire)))
    }

    /// Live fork handles.
    pub fn fork_count(&self) -> u64 {
        self.inner.fork_count.load(Ordering::Relaxed)
    }

    /// This node's replication role.
    pub fn role(&self) -> NodeRole {
        NodeRole::from_u8(self.inner.role.load(Ordering::Relaxed))
    }

    /// Mark this database as a log-shipping replica (health reporting).
    pub fn set_role_replica(&self) {
        self.inner.role.store(NodeRole::Replica as u8, Ordering::Relaxed);
    }

    /// Log offset a replica has applied through (0 on a primary).
    pub fn applied_lsn(&self) -> u64 {
        self.inner.applied.load(Ordering::Acquire)
    }

    /// Record the replica's applied offset (set by the repl crate).
    pub fn set_applied_lsn(&self, offset: u64) {
        self.inner.applied.fetch_max(offset, Ordering::Release);
    }

    /// The most recent verified checkpoint, as (begin LSN, raw payload).
    /// `None` without a durable configuration or before any checkpoint.
    /// Used by the backup shipper to stream the snapshot to a replica.
    pub fn latest_checkpoint(&self) -> std::io::Result<Option<(Lsn, Vec<u8>)>> {
        let Some(store) = &self.inner.checkpoints else { return Ok(None) };
        Ok(store.latest()?.map(|(meta, payload)| (meta.begin, payload)))
    }

    /// Persist a checkpoint payload received from a primary into this
    /// database's own checkpoint store, making the local data directory
    /// a restartable backup. The payload is stored verbatim under the
    /// shipped begin LSN.
    pub fn store_checkpoint(&self, begin: Lsn, payload: &[u8]) -> std::io::Result<()> {
        let store = self
            .inner
            .checkpoints
            .as_ref()
            .expect("storing a shipped checkpoint requires a durable configuration");
        store.write(ermia_log::CheckpointMeta { begin }, payload)
    }

    /// Raw blob-store bytes `[offset, offset + max_len)`, clamped to the
    /// current end of `blobs.dat` (empty when `offset` is at or past
    /// it). Large-object writes divert their payload here and log only a
    /// fixed-size indirection, so a backup shipper must stream this file
    /// alongside the segments for indirect records to resolve during
    /// replica replay.
    pub fn blob_bytes(&self, offset: u64, max_len: u32) -> std::io::Result<Vec<u8>> {
        let end = self.inner.blobs.size().min(offset.saturating_add(max_len as u64));
        if end <= offset {
            return Ok(Vec::new());
        }
        self.inner.blobs.read(ermia_log::BlobRef { offset, len: (end - offset) as u32 })
    }

    /// The DDL statements (in creation order) that reproduce this
    /// database's schema with identical dense table/index ids. A replica
    /// replays these through [`Database::create_table`] /
    /// [`Database::create_secondary_index`] (both idempotent by name)
    /// before applying shipped log.
    pub fn schema_ddl(&self) -> Vec<DdlEntry> {
        let catalog = self.inner.catalog.read();
        catalog
            .indexes
            .iter()
            .map(|idx| {
                let table = catalog.tables[idx.table.0 as usize].name.clone();
                DdlEntry {
                    table,
                    secondary: (!idx.is_primary).then(|| idx.name.clone()),
                }
            })
            .collect()
    }

    /// Apply one [`DdlEntry`] (idempotent; used by replicas).
    pub fn apply_ddl(&self, entry: &DdlEntry) {
        match &entry.secondary {
            None => {
                self.create_table(&entry.table);
            }
            Some(name) => {
                let table = self.create_table(&entry.table);
                self.create_secondary_index(table, name);
            }
        }
    }

    /// Aggregate per-component time breakdown, merged on read across
    /// every worker's slab — live and retired (requires `cfg.profile`).
    pub fn breakdown(&self) -> crate::profile::Breakdown {
        crate::profile::breakdown_from_counters(
            &self.inner.telemetry.registry().family_counters(&crate::metrics::PROFILE_FAMILY),
        )
    }

    /// The database's telemetry layer: merged metric registry, Prometheus
    /// exposition, and the flight recorder.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }
}
