//! The `Database`: catalog, resource managers, lifecycle.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ermia_common::{IndexId, Lsn, TableId};
use ermia_epoch::{EpochManager, Ticker};
use ermia_index::BTree;
use ermia_log::{CheckpointStore, LogManager};
use ermia_storage::{GarbageCollector, GcPassHook, GcStats, OidArray, TidManager, VersionPool};
use ermia_telemetry::{EventKind, EventRing, Telemetry};
use parking_lot::RwLock;

use crate::config::DbConfig;
use crate::worker::Worker;

/// Service state of a [`Database`].
///
/// A database starts `Active`. When the log flusher dies on an
/// unrecoverable I/O error it poisons the log and the database drops to
/// `Degraded`: read-only transactions keep committing (snapshot reads
/// need no log space), but every write operation aborts with
/// [`ermia_common::AbortReason::ReadOnlyMode`] the moment it is issued.
/// An operator brings the database back with [`Database::resume`], which
/// re-probes the storage backend and re-arms the flusher.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum DbState {
    /// Normal read-write service.
    Active = 0,
    /// The log is poisoned; reads commit, writes abort.
    Degraded = 1,
}

impl DbState {
    fn from_u8(v: u8) -> DbState {
        match v {
            0 => DbState::Active,
            _ => DbState::Degraded,
        }
    }
}

/// Exclusive-ownership lockfile on a durable data directory.
///
/// Holds `ermia.lock` containing the owning pid. Acquisition rules, in
/// order: no file — create and own; file with our own pid — a same-
/// process reopen, take ownership again; file with a dead pid (the
/// previous owner was SIGKILLed — the chaos-harness restart path) or
/// unparseable content — stale, replace it; file with a live foreign
/// pid — refuse to open. Dropped with the database, removing the file.
pub(crate) struct DirLock {
    path: PathBuf,
}

impl DirLock {
    fn acquire(dir: &Path) -> std::io::Result<DirLock> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("ermia.lock");
        if let Ok(contents) = std::fs::read_to_string(&path) {
            match contents.trim().parse::<u32>() {
                Ok(pid) if pid == std::process::id() => {}
                Ok(pid) if Path::new(&format!("/proc/{pid}")).exists() => {
                    return Err(std::io::Error::other(format!(
                        "data directory {} is locked by live process {pid}",
                        dir.display()
                    )));
                }
                // Dead pid or garbage: the previous owner is gone.
                _ => {}
            }
        }
        std::fs::write(&path, format!("{}\n", std::process::id()))?;
        Ok(DirLock { path })
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A table: an indirection array plus its primary index.
pub struct Table {
    pub id: TableId,
    pub name: String,
    pub oids: Arc<OidArray>,
    /// Primary index: encoded key → OID.
    pub primary: Arc<BTree>,
    pub primary_index: IndexId,
}

/// An index registration (primary or secondary). All indexes map keys to
/// OIDs of their owning table, so record updates never touch them (§3.2).
pub struct IndexInfo {
    pub id: IndexId,
    pub name: String,
    pub table: TableId,
    pub tree: Arc<BTree>,
    pub is_primary: bool,
}

pub(crate) struct Catalog {
    pub tables: Vec<Arc<Table>>,
    pub indexes: Vec<Arc<IndexInfo>>,
    pub table_names: HashMap<String, TableId>,
    pub index_names: HashMap<String, IndexId>,
}

pub(crate) struct DbInner {
    pub cfg: DbConfig,
    pub log: LogManager,
    pub tid: TidManager,
    pub catalog: RwLock<Catalog>,
    /// The unified epoch manager. The paper's three timescales (gc, rcu,
    /// tid) were tracked separately, but every transaction pinned all
    /// three in lockstep at the same boundaries, so one timeline is
    /// semantically equivalent and makes begin/end one pin instead of
    /// three. Resources of every timescale retire through it.
    pub epoch: EpochManager,
    /// Recycled version nodes: the GC releases quiesced nodes here and
    /// workers' per-thread caches draw from it, keeping the steady-state
    /// write path off the allocator.
    pub versions: Arc<VersionPool>,
    pub checkpoints: Option<CheckpointStore>,
    /// Large-object side storage (§3.3 feature 4).
    pub blobs: ermia_log::BlobStore,
    /// Commits since the last checkpoint (stats).
    pub commits: AtomicU64,
    pub aborts: AtomicU64,
    /// The unified telemetry layer: per-worker metric slabs (txn
    /// outcomes, the Fig. 11 breakdown), database-level collectors over
    /// the subsystem atomics, and the flight-recorder event rings.
    /// Workers write their own slabs with relaxed adds; locks guard only
    /// registration, retirement, and reads, never the transaction path.
    pub telemetry: Arc<Telemetry>,
    /// GC statistics, owned here (not by the collector) so counts
    /// survive the GC restarts that DDL triggers.
    pub gc_stats: Arc<GcStats>,
    /// Flight-recorder ring for background services (GC passes,
    /// checkpoints, epoch advances); workers get their own rings.
    pub svc_ring: Arc<EventRing>,
    /// Service state ([`DbState`] as u8): flipped to `Degraded` by the
    /// log's poison hook, back to `Active` by [`Database::resume`]. Read
    /// with a relaxed load on every write operation's admission check.
    pub state: AtomicU8,
    /// Pid lockfile on the data directory (`None` for in-memory
    /// databases); held only for its Drop, which removes the file.
    pub _dir_lock: Option<DirLock>,
}

/// A memory-optimized multi-version database (the paper's ERMIA engine).
///
/// Cheap to clone and share across threads. Each worker thread calls
/// [`Database::register_worker`] once and runs transactions through its
/// [`Worker`].
#[derive(Clone)]
pub struct Database {
    pub(crate) inner: Arc<DbInner>,
    // Background services; dropped (stopped) with the last Database clone.
    _services: Arc<Services>,
}

struct Services {
    _tickers: Vec<Ticker>,
    _gc: parking_lot::Mutex<Option<GarbageCollector>>,
}

impl Database {
    /// Open a database. If the log directory already contains segments,
    /// call [`Database::recover`] after re-declaring the schema.
    pub fn open(cfg: DbConfig) -> std::io::Result<Database> {
        // Take the directory lock before touching any file in it: a live
        // foreign owner means refusing here, a dead one (SIGKILL) means
        // this open *is* the restart-recovery path.
        let dir_lock = match &cfg.log.dir {
            Some(dir) => Some(DirLock::acquire(dir)?),
            None => None,
        };
        let log = LogManager::open(cfg.log.clone())?;
        let checkpoints = match &cfg.log.dir {
            Some(dir) => Some(CheckpointStore::new(dir.join("checkpoints"))?),
            None => None,
        };
        let blobs = match &cfg.log.dir {
            Some(dir) => ermia_log::BlobStore::open(dir)?,
            None => ermia_log::BlobStore::in_memory(),
        };
        let telemetry = Arc::new(Telemetry::new());
        let svc_ring = telemetry.flight().ring();
        let inner = Arc::new(DbInner {
            log,
            tid: TidManager::new(),
            catalog: RwLock::new(Catalog {
                tables: Vec::new(),
                indexes: Vec::new(),
                table_names: HashMap::new(),
                index_names: HashMap::new(),
            }),
            epoch: EpochManager::new("unified"),
            versions: Arc::new(VersionPool::default()),
            checkpoints,
            blobs,
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            telemetry,
            gc_stats: Arc::new(GcStats::default()),
            svc_ring,
            state: AtomicU8::new(DbState::Active as u8),
            _dir_lock: dir_lock,
            cfg,
        });
        crate::metrics::register_db_collectors(&inner);
        {
            // Degrade to read-only the instant the flusher poisons the
            // log: reads keep committing off the snapshot, writes are
            // refused at admission with `AbortReason::ReadOnlyMode`.
            let weak = Arc::downgrade(&inner);
            inner.log.set_poison_hook(move || {
                if let Some(db) = weak.upgrade() {
                    db.state.store(DbState::Degraded as u8, Ordering::Release);
                    db.svc_ring.record(
                        EventKind::DbDegraded,
                        db.log.durable_offset(),
                        0,
                    );
                }
            });
        }
        if inner.cfg.telemetry {
            // Record epoch transitions in the service ring. The hook runs
            // after the advance, outside the epoch manager's locks; the
            // Weak keeps the manager (owned by DbInner) from keeping its
            // owner alive.
            let weak = Arc::downgrade(&inner);
            inner.epoch.set_advance_hook(move |epoch| {
                if let Some(db) = weak.upgrade() {
                    db.svc_ring.record(EventKind::EpochAdvance, epoch, 0);
                }
            });
        }
        let cfg = &inner.cfg;
        // One ticker drives the unified timeline at the fastest of the
        // old per-timescale cadences (the tid valve's 1ms).
        let tick = cfg.rcu_epoch_interval.min(Duration::from_millis(1));
        let mut tickers = vec![Ticker::start(inner.epoch.clone(), tick)];
        tickers.shrink_to_fit();
        let services = Arc::new(Services { _tickers: tickers, _gc: parking_lot::Mutex::new(None) });
        let db = Database { inner, _services: services };
        if db.inner.cfg.enable_gc {
            db.start_gc();
        }
        Ok(db)
    }

    fn start_gc(&self) {
        let inner = Arc::clone(&self.inner);
        let horizon = move || {
            // Versions below every active transaction's begin stamp are
            // reclaimable; fall back to the log tail when idle.
            let tail = inner.log.tail_lsn();
            inner.tid.min_active_begin(tail)
        };
        // The GC sweeps whatever tables exist at each pass; re-arm when
        // tables are created (cheap: GC restart on DDL).
        let arrays: Vec<Arc<OidArray>> =
            self.inner.catalog.read().tables.iter().map(|t| Arc::clone(&t.oids)).collect();
        let on_pass: Option<GcPassHook> = self.inner.cfg.telemetry.then(|| {
            let ring = Arc::clone(&self.inner.svc_ring);
            Box::new(move |reclaimed: u64, passes: u64| {
                ring.record(EventKind::GcPass, reclaimed, passes);
            }) as GcPassHook
        });
        let gc = GarbageCollector::start_with(
            arrays,
            self.inner.epoch.clone(),
            horizon,
            self.inner.cfg.gc_interval,
            Some(Arc::clone(&self.inner.versions)),
            Arc::clone(&self.inner.gc_stats),
            on_pass,
        );
        *self._services._gc.lock() = Some(gc);
    }

    /// Create (or look up, by name) a table with its primary index.
    pub fn create_table(&self, name: &str) -> TableId {
        {
            let catalog = self.inner.catalog.read();
            if let Some(&id) = catalog.table_names.get(name) {
                return id;
            }
        }
        let mut catalog = self.inner.catalog.write();
        if let Some(&id) = catalog.table_names.get(name) {
            return id;
        }
        let id = TableId(catalog.tables.len() as u32);
        let index_id = IndexId(catalog.indexes.len() as u32);
        let tree = Arc::new(BTree::new());
        let table = Arc::new(Table {
            id,
            name: name.to_owned(),
            oids: Arc::new(OidArray::new()),
            primary: Arc::clone(&tree),
            primary_index: index_id,
        });
        catalog.indexes.push(Arc::new(IndexInfo {
            id: index_id,
            name: format!("{name}.primary"),
            table: id,
            tree,
            is_primary: true,
        }));
        catalog.table_names.insert(name.to_owned(), id);
        catalog.tables.push(table);
        drop(catalog);
        if self.inner.cfg.enable_gc {
            self.start_gc(); // re-arm with the new array
        }
        id
    }

    /// Create (or look up) a secondary index on `table`. Secondary keys
    /// must be immutable fields of the record: entries map to OIDs and
    /// are not versioned, so updates must never change them.
    pub fn create_secondary_index(&self, table: TableId, name: &str) -> IndexId {
        {
            let catalog = self.inner.catalog.read();
            if let Some(&id) = catalog.index_names.get(name) {
                return id;
            }
        }
        let mut catalog = self.inner.catalog.write();
        if let Some(&id) = catalog.index_names.get(name) {
            return id;
        }
        let id = IndexId(catalog.indexes.len() as u32);
        catalog.indexes.push(Arc::new(IndexInfo {
            id,
            name: name.to_owned(),
            table,
            tree: Arc::new(BTree::new()),
            is_primary: false,
        }));
        catalog.index_names.insert(name.to_owned(), id);
        id
    }

    /// Number of tables in the catalog. Table ids are dense, so an id is
    /// valid iff it is below this count — front-ends use this to validate
    /// untrusted ids before calling [`Transaction`] operations, which
    /// index the catalog directly.
    pub fn table_count(&self) -> usize {
        self.inner.catalog.read().tables.len()
    }

    /// Look up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.inner.catalog.read().table_names.get(name).copied()
    }

    /// Look up a (secondary) index id by name.
    pub fn index_id(&self, name: &str) -> Option<IndexId> {
        self.inner.catalog.read().index_names.get(name).copied()
    }

    /// The primary index id of a table.
    pub fn primary_index(&self, table: TableId) -> IndexId {
        self.inner.catalog.read().tables[table.0 as usize].primary_index
    }

    pub(crate) fn table(&self, id: TableId) -> Arc<Table> {
        Arc::clone(&self.inner.catalog.read().tables[id.0 as usize])
    }

    pub(crate) fn index(&self, id: IndexId) -> Arc<IndexInfo> {
        Arc::clone(&self.inner.catalog.read().indexes[id.0 as usize])
    }

    /// Register the calling thread as a worker.
    pub fn register_worker(&self) -> Worker {
        Worker::new(self.clone())
    }

    /// The log manager (stats, durability control).
    pub fn log(&self) -> &LogManager {
        &self.inner.log
    }

    /// Current service state. `Degraded` means the log is poisoned:
    /// reads commit, writes abort with `ReadOnlyMode`.
    pub fn state(&self) -> DbState {
        DbState::from_u8(self.inner.state.load(Ordering::Acquire))
    }

    /// Operator-triggered recovery from degraded read-only mode.
    ///
    /// Delegates to [`ermia_log::LogManager::resume`] — which re-probes
    /// the storage backend, papers the never-durable gap with skip
    /// blocks, and re-arms the flusher — and returns the database to
    /// `Active` only if that succeeds. Safe to retry while the
    /// underlying fault persists, and a no-op on a healthy database.
    pub fn resume(&self) -> std::io::Result<()> {
        self.inner.log.resume()?;
        self.inner.state.store(DbState::Active as u8, Ordering::Release);
        self.inner.svc_ring.record(EventKind::DbResumed, self.inner.log.durable_offset(), 0);
        Ok(())
    }

    /// Committed / aborted transaction totals.
    pub fn txn_counts(&self) -> (u64, u64) {
        (self.inner.commits.load(Ordering::Relaxed), self.inner.aborts.load(Ordering::Relaxed))
    }

    /// Statistics of the unified epoch manager (all resource timescales
    /// retire through one timeline).
    pub fn epoch_stats(&self) -> ermia_epoch::EpochStats {
        self.inner.epoch.stats()
    }

    /// Version nodes currently parked in the reuse pool.
    pub fn version_pool_size(&self) -> usize {
        self.inner.versions.pooled()
    }

    /// Transaction-context (TID) slots currently in use. Zero whenever no
    /// transaction is in flight — the service layer's session-teardown
    /// tests assert this to prove disconnects leak nothing.
    pub fn tid_slots_in_use(&self) -> usize {
        self.inner.tid.in_use()
    }

    /// Current log tail — the begin timestamp a transaction starting now
    /// would get.
    pub fn now_lsn(&self) -> Lsn {
        self.inner.log.tail_lsn()
    }

    /// Retire log segments made obsolete by the most recent checkpoint
    /// and prune superseded checkpoints. Returns the number of segments
    /// removed.
    pub fn truncate_log(&self) -> std::io::Result<usize> {
        let Some(store) = &self.inner.checkpoints else { return Ok(0) };
        let Some((meta, _)) = store.latest()? else { return Ok(0) };
        store.prune()?;
        let removed = self.inner.log.truncate_before(meta.begin.offset())?;
        if self.inner.cfg.telemetry {
            self.inner.svc_ring.record(EventKind::Checkpoint, meta.begin.offset(), removed as u64);
        }
        Ok(removed)
    }

    /// Aggregate per-component time breakdown, merged on read across
    /// every worker's slab — live and retired (requires `cfg.profile`).
    pub fn breakdown(&self) -> crate::profile::Breakdown {
        crate::profile::breakdown_from_counters(
            &self.inner.telemetry.registry().family_counters(&crate::metrics::PROFILE_FAMILY),
        )
    }

    /// The database's telemetry layer: merged metric registry, Prometheus
    /// exposition, and the flight recorder.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }
}
