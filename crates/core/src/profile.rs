//! Per-component time breakdown (the Fig. 11 instrumentation).
//!
//! The paper reports CPU cycles per transaction spent in Masstree, the
//! indirection arrays, the log manager, and everything else. We measure
//! the same boundaries with monotonic-clock nanoseconds, accumulated per
//! worker with zero synchronization; the harness sums across workers.

use std::time::Instant;

/// Accumulated nanoseconds per engine component.
#[derive(Clone, Copy, Debug, Default)]
pub struct Breakdown {
    /// Index (B+-tree) probes, inserts, scans.
    pub index_ns: u64,
    /// Indirection-array + version-chain work (visibility checks, CAS
    /// installs, chain traversal).
    pub indirection_ns: u64,
    /// Log manager work (allocation, serialization, buffer copy).
    pub log_ns: u64,
    /// Everything else (benchmark logic, commit bookkeeping).
    pub other_ns: u64,
    /// Transactions measured.
    pub txns: u64,
}

impl Breakdown {
    pub fn add(&mut self, other: &Breakdown) {
        self.index_ns += other.index_ns;
        self.indirection_ns += other.indirection_ns;
        self.log_ns += other.log_ns;
        self.other_ns += other.other_ns;
        self.txns += other.txns;
    }

    /// Total measured nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.index_ns + self.indirection_ns + self.log_ns + self.other_ns
    }
}

/// Scoped timer: adds elapsed time to a counter on drop. Constructed
/// only when profiling is enabled, so the hot path pays one branch.
pub(crate) struct Timed {
    start: Instant,
}

impl Timed {
    #[inline]
    pub fn start(enabled: bool) -> Option<Timed> {
        enabled.then(|| Timed { start: Instant::now() })
    }

    #[inline]
    pub fn stop(this: Option<Timed>, counter: &mut u64) {
        if let Some(t) = this {
            *counter += t.start.elapsed().as_nanos() as u64;
        }
    }
}
