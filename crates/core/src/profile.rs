//! Per-component time breakdown (the Fig. 11 instrumentation).
//!
//! The paper reports CPU cycles per transaction spent in Masstree, the
//! indirection arrays, the log manager, and everything else. We measure
//! the same boundaries with monotonic-clock nanoseconds. The counters
//! themselves now live in a per-worker telemetry slab (the
//! [`crate::metrics::PROFILE_FAMILY`] family, one
//! [`ermia_telemetry::Slab`] per worker) — plain relaxed adds to cache
//! lines no other worker writes, merged across live and retired slabs by
//! the [`ermia_telemetry::Registry`] only when somebody asks for the
//! aggregate ([`crate::Database::breakdown`]). This module keeps the
//! user-facing [`Breakdown`] snapshot type, the conversion from a merged
//! counter vector, and the [`Timed`] scoped timer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::metrics::{IDX_INDEX, IDX_INDIRECTION, IDX_LOG, IDX_OTHER, IDX_TXNS};

/// Accumulated nanoseconds per engine component.
#[derive(Clone, Copy, Debug, Default)]
pub struct Breakdown {
    /// Index (B+-tree) probes, inserts, scans.
    pub index_ns: u64,
    /// Indirection-array + version-chain work (visibility checks, CAS
    /// installs, chain traversal).
    pub indirection_ns: u64,
    /// Log manager work (allocation, serialization, buffer copy).
    pub log_ns: u64,
    /// Everything else (benchmark logic, commit bookkeeping).
    pub other_ns: u64,
    /// Transactions measured.
    pub txns: u64,
}

impl Breakdown {
    pub fn add(&mut self, other: &Breakdown) {
        self.index_ns += other.index_ns;
        self.indirection_ns += other.indirection_ns;
        self.log_ns += other.log_ns;
        self.other_ns += other.other_ns;
        self.txns += other.txns;
    }

    /// Total measured nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.index_ns + self.indirection_ns + self.log_ns + self.other_ns
    }
}

/// View a merged [`crate::metrics::PROFILE_FAMILY`] counter vector as a
/// [`Breakdown`]. Tolerates a short vector (a registry with no slabs
/// registered merges to per-family zeroes anyway).
pub(crate) fn breakdown_from_counters(counters: &[u64]) -> Breakdown {
    let at = |i: usize| counters.get(i).copied().unwrap_or(0);
    Breakdown {
        index_ns: at(IDX_INDEX),
        indirection_ns: at(IDX_INDIRECTION),
        log_ns: at(IDX_LOG),
        other_ns: at(IDX_OTHER),
        txns: at(IDX_TXNS),
    }
}

/// Scoped timer: adds elapsed time to a slab counter on drop.
/// Constructed only when profiling is enabled, so the hot path pays one
/// branch.
pub(crate) struct Timed {
    start: Instant,
}

impl Timed {
    #[inline]
    pub fn start(enabled: bool) -> Option<Timed> {
        enabled.then(|| Timed { start: Instant::now() })
    }

    #[inline]
    pub fn stop(this: Option<Timed>, counter: &AtomicU64) {
        if let Some(t) = this {
            counter.fetch_add(t.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_vector_maps_onto_breakdown_fields() {
        let b = breakdown_from_counters(&[1, 2, 3, 4, 5]);
        assert_eq!(b.index_ns, 1);
        assert_eq!(b.indirection_ns, 2);
        assert_eq!(b.log_ns, 3);
        assert_eq!(b.other_ns, 4);
        assert_eq!(b.txns, 5);
        assert_eq!(b.total_ns(), 10);

        // A short (or empty) vector reads as zeroes, not a panic.
        let z = breakdown_from_counters(&[]);
        assert_eq!(z.txns, 0);
        assert_eq!(z.total_ns(), 0);
    }
}
