//! Per-component time breakdown (the Fig. 11 instrumentation).
//!
//! The paper reports CPU cycles per transaction spent in Masstree, the
//! indirection arrays, the log manager, and everything else. We measure
//! the same boundaries with monotonic-clock nanoseconds, accumulated in
//! a per-worker [`BreakdownSlab`] — plain relaxed adds to cache lines no
//! other worker writes — and merged across slabs only when somebody asks
//! for the aggregate ([`crate::Database::breakdown`]). The previous
//! design folded workers into a global mutex-guarded aggregate on drop;
//! a shared lock has no business next to a hot path this PR just made
//! lock-free, so the mutex now guards only the slab *registry*
//! ([`BreakdownRegistry`]: live slabs plus the folded counts of retired
//! workers), touched at worker registration/retirement and on aggregate
//! reads, never per transaction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Accumulated nanoseconds per engine component.
#[derive(Clone, Copy, Debug, Default)]
pub struct Breakdown {
    /// Index (B+-tree) probes, inserts, scans.
    pub index_ns: u64,
    /// Indirection-array + version-chain work (visibility checks, CAS
    /// installs, chain traversal).
    pub indirection_ns: u64,
    /// Log manager work (allocation, serialization, buffer copy).
    pub log_ns: u64,
    /// Everything else (benchmark logic, commit bookkeeping).
    pub other_ns: u64,
    /// Transactions measured.
    pub txns: u64,
}

impl Breakdown {
    pub fn add(&mut self, other: &Breakdown) {
        self.index_ns += other.index_ns;
        self.indirection_ns += other.indirection_ns;
        self.log_ns += other.log_ns;
        self.other_ns += other.other_ns;
        self.txns += other.txns;
    }

    /// Total measured nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.index_ns + self.indirection_ns + self.log_ns + self.other_ns
    }
}

/// One worker's breakdown counters. Written by exactly one thread with
/// relaxed adds; read (racily, which is fine for statistics) by whoever
/// aggregates. Aligned out to its own cache-line pair so two workers'
/// slabs never false-share.
#[repr(align(128))]
#[derive(Debug, Default)]
pub(crate) struct BreakdownSlab {
    pub index_ns: AtomicU64,
    pub indirection_ns: AtomicU64,
    pub log_ns: AtomicU64,
    pub other_ns: AtomicU64,
    pub txns: AtomicU64,
}

impl BreakdownSlab {
    pub fn snapshot(&self) -> Breakdown {
        Breakdown {
            index_ns: self.index_ns.load(Ordering::Relaxed),
            indirection_ns: self.indirection_ns.load(Ordering::Relaxed),
            log_ns: self.log_ns.load(Ordering::Relaxed),
            other_ns: self.other_ns.load(Ordering::Relaxed),
            txns: self.txns.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.index_ns.store(0, Ordering::Relaxed);
        self.indirection_ns.store(0, Ordering::Relaxed);
        self.log_ns.store(0, Ordering::Relaxed);
        self.other_ns.store(0, Ordering::Relaxed);
        self.txns.store(0, Ordering::Relaxed);
    }
}

/// The database-wide registry: slabs of live workers plus the folded
/// counts of retired ones. Registration and retirement keep the live set
/// bounded by the number of *current* workers — a workload churning
/// short-lived workers must not grow the registry (or the cost of
/// [`crate::Database::breakdown`]) without bound.
#[derive(Default)]
pub(crate) struct BreakdownRegistry {
    live: Vec<Arc<BreakdownSlab>>,
    retired: Breakdown,
}

impl BreakdownRegistry {
    pub fn register(&mut self, slab: &Arc<BreakdownSlab>) {
        self.live.push(Arc::clone(slab));
    }

    /// Fold a retiring worker's counts into the retained aggregate and
    /// drop its slab from the live set. A no-op for slabs that were
    /// never registered (profiling disabled).
    pub fn retire(&mut self, slab: &Arc<BreakdownSlab>) {
        if let Some(i) = self.live.iter().position(|s| Arc::ptr_eq(s, slab)) {
            self.live.swap_remove(i);
            self.retired.add(&slab.snapshot());
        }
    }

    /// Retired counts plus a racy (fine for statistics) snapshot of
    /// every live slab.
    pub fn aggregate(&self) -> Breakdown {
        let mut sum = self.retired;
        for slab in &self.live {
            sum.add(&slab.snapshot());
        }
        sum
    }

    /// Number of currently registered live slabs (boundedness checks in
    /// tests).
    #[cfg(test)]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }
}

/// Scoped timer: adds elapsed time to a slab counter on drop.
/// Constructed only when profiling is enabled, so the hot path pays one
/// branch.
pub(crate) struct Timed {
    start: Instant,
}

impl Timed {
    #[inline]
    pub fn start(enabled: bool) -> Option<Timed> {
        enabled.then(|| Timed { start: Instant::now() })
    }

    #[inline]
    pub fn stop(this: Option<Timed>, counter: &AtomicU64) {
        if let Some(t) = this {
            counter.fetch_add(t.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_retains_retired_counts_and_stays_bounded() {
        let mut reg = BreakdownRegistry::default();
        let a = Arc::new(BreakdownSlab::default());
        a.txns.store(3, Ordering::Relaxed);
        reg.register(&a);
        let b = Arc::new(BreakdownSlab::default());
        b.txns.store(4, Ordering::Relaxed);
        reg.register(&b);
        assert_eq!(reg.aggregate().txns, 7);

        reg.retire(&a);
        assert_eq!(reg.live_count(), 1, "retired slab leaves the live set");
        assert_eq!(reg.aggregate().txns, 7, "retired counts are retained");

        // Retiring a slab that never registered (profiling off) is a no-op.
        let c = Arc::new(BreakdownSlab::default());
        c.txns.store(100, Ordering::Relaxed);
        reg.retire(&c);
        assert_eq!(reg.live_count(), 1);
        assert_eq!(reg.aggregate().txns, 7);
    }
}
