//! Per-component time breakdown (the Fig. 11 instrumentation).
//!
//! The paper reports CPU cycles per transaction spent in Masstree, the
//! indirection arrays, the log manager, and everything else. We measure
//! the same boundaries with monotonic-clock nanoseconds, accumulated in
//! a per-worker [`BreakdownSlab`] — plain relaxed adds to cache lines no
//! other worker writes — and merged across slabs only when somebody asks
//! for the aggregate ([`crate::Database::breakdown`]). The previous
//! design folded workers into a global mutex-guarded aggregate on drop;
//! a shared lock has no business next to a hot path this PR just made
//! lock-free, so the mutex now guards only the slab *registry* (touched
//! at worker registration and on read, never per transaction).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Accumulated nanoseconds per engine component.
#[derive(Clone, Copy, Debug, Default)]
pub struct Breakdown {
    /// Index (B+-tree) probes, inserts, scans.
    pub index_ns: u64,
    /// Indirection-array + version-chain work (visibility checks, CAS
    /// installs, chain traversal).
    pub indirection_ns: u64,
    /// Log manager work (allocation, serialization, buffer copy).
    pub log_ns: u64,
    /// Everything else (benchmark logic, commit bookkeeping).
    pub other_ns: u64,
    /// Transactions measured.
    pub txns: u64,
}

impl Breakdown {
    pub fn add(&mut self, other: &Breakdown) {
        self.index_ns += other.index_ns;
        self.indirection_ns += other.indirection_ns;
        self.log_ns += other.log_ns;
        self.other_ns += other.other_ns;
        self.txns += other.txns;
    }

    /// Total measured nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.index_ns + self.indirection_ns + self.log_ns + self.other_ns
    }
}

/// One worker's breakdown counters. Written by exactly one thread with
/// relaxed adds; read (racily, which is fine for statistics) by whoever
/// aggregates. Aligned out to its own cache-line pair so two workers'
/// slabs never false-share.
#[repr(align(128))]
#[derive(Debug, Default)]
pub(crate) struct BreakdownSlab {
    pub index_ns: AtomicU64,
    pub indirection_ns: AtomicU64,
    pub log_ns: AtomicU64,
    pub other_ns: AtomicU64,
    pub txns: AtomicU64,
}

impl BreakdownSlab {
    pub fn snapshot(&self) -> Breakdown {
        Breakdown {
            index_ns: self.index_ns.load(Ordering::Relaxed),
            indirection_ns: self.indirection_ns.load(Ordering::Relaxed),
            log_ns: self.log_ns.load(Ordering::Relaxed),
            other_ns: self.other_ns.load(Ordering::Relaxed),
            txns: self.txns.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.index_ns.store(0, Ordering::Relaxed);
        self.indirection_ns.store(0, Ordering::Relaxed);
        self.log_ns.store(0, Ordering::Relaxed);
        self.other_ns.store(0, Ordering::Relaxed);
        self.txns.store(0, Ordering::Relaxed);
    }
}

/// Scoped timer: adds elapsed time to a slab counter on drop.
/// Constructed only when profiling is enabled, so the hot path pays one
/// branch.
pub(crate) struct Timed {
    start: Instant,
}

impl Timed {
    #[inline]
    pub fn start(enabled: bool) -> Option<Timed> {
        enabled.then(|| Timed { start: Instant::now() })
    }

    #[inline]
    pub fn stop(this: Option<Timed>, counter: &AtomicU64) {
        if let Some(t) = this {
            counter.fetch_add(t.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}
