//! Metric-family definitions and the database-level collectors.
//!
//! Two slab families are written on the transaction hot path (one
//! relaxed increment per metric, per the telemetry contract):
//!
//! * [`TXN_FAMILY`] — per-worker commit/abort outcome counters (aborts
//!   fanned out by [`AbortReason`]) plus the version-chain-length
//!   histogram sampled on every visible-version fetch.
//! * [`PROFILE_FAMILY`] — the Fig. 11 per-component time breakdown
//!   (index / indirection / log / other nanoseconds), registered only
//!   when `DbConfig::profile` is on.
//!
//! Everything else (log, GC, epoch, TID, pool) already keeps its own
//! atomics; [`register_db_collectors`] exposes those through read-side
//! collector closures that capture a `Weak<DbInner>` — no reference
//! cycle, no hot-path change.

use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Weak};

use ermia_telemetry::{FamilyDef, MetricDesc, MetricKind, Sample};

use crate::database::DbInner;

// --- TXN_FAMILY indices -------------------------------------------------

/// Counter 0: committed transactions.
pub(crate) const TXN_COMMITS: usize = 0;
/// Counters 1..=8: aborts, indexed by `TXN_ABORT_BASE + reason.idx()`.
pub(crate) const TXN_ABORT_BASE: usize = 1;
/// Histogram 0: version-chain nodes walked per transaction (summed
/// over its visibility fetches; recorded once at release so the
/// per-read hot path carries no telemetry work).
pub(crate) const TXN_CHAIN_HIST: usize = 0;

const ABORT_HELP: &str = "Aborted transactions by reason";

/// Per-transaction outcome counters. The abort descriptors must stay in
/// [`ermia_common::AbortReason::ALL`] order (asserted by a test below).
pub(crate) static TXN_FAMILY: FamilyDef = FamilyDef {
    counters: &[
        MetricDesc {
            name: "ermia_txn_commits_total",
            help: "Committed transactions",
            kind: MetricKind::Counter,
            label: None,
        },
        MetricDesc {
            name: "ermia_txn_aborts_total",
            help: ABORT_HELP,
            kind: MetricKind::Counter,
            label: Some(("reason", "ww-conflict")),
        },
        MetricDesc {
            name: "ermia_txn_aborts_total",
            help: ABORT_HELP,
            kind: MetricKind::Counter,
            label: Some(("reason", "ssn-exclusion")),
        },
        MetricDesc {
            name: "ermia_txn_aborts_total",
            help: ABORT_HELP,
            kind: MetricKind::Counter,
            label: Some(("reason", "read-validation")),
        },
        MetricDesc {
            name: "ermia_txn_aborts_total",
            help: ABORT_HELP,
            kind: MetricKind::Counter,
            label: Some(("reason", "phantom")),
        },
        MetricDesc {
            name: "ermia_txn_aborts_total",
            help: ABORT_HELP,
            kind: MetricKind::Counter,
            label: Some(("reason", "dup-key")),
        },
        MetricDesc {
            name: "ermia_txn_aborts_total",
            help: ABORT_HELP,
            kind: MetricKind::Counter,
            label: Some(("reason", "user")),
        },
        MetricDesc {
            name: "ermia_txn_aborts_total",
            help: ABORT_HELP,
            kind: MetricKind::Counter,
            label: Some(("reason", "resource")),
        },
        MetricDesc {
            name: "ermia_txn_aborts_total",
            help: ABORT_HELP,
            kind: MetricKind::Counter,
            label: Some(("reason", "log-failure")),
        },
        MetricDesc {
            name: "ermia_txn_aborts_total",
            help: ABORT_HELP,
            kind: MetricKind::Counter,
            label: Some(("reason", "read-only")),
        },
    ],
    hists: &[MetricDesc {
        name: "ermia_txn_chain_length",
        help: "Version-chain nodes walked per transaction (summed over its reads)",
        kind: MetricKind::Counter,
        label: None,
    }],
};

// --- PROFILE_FAMILY indices ---------------------------------------------

pub(crate) const IDX_INDEX: usize = 0;
pub(crate) const IDX_INDIRECTION: usize = 1;
pub(crate) const IDX_LOG: usize = 2;
pub(crate) const IDX_OTHER: usize = 3;
pub(crate) const IDX_TXNS: usize = 4;

/// The Fig. 11 per-component time breakdown, in nanoseconds.
pub(crate) static PROFILE_FAMILY: FamilyDef = FamilyDef {
    counters: &[
        MetricDesc {
            name: "ermia_profile_index_ns_total",
            help: "Nanoseconds in index (B+-tree) operations",
            kind: MetricKind::Counter,
            label: None,
        },
        MetricDesc {
            name: "ermia_profile_indirection_ns_total",
            help: "Nanoseconds in indirection-array and version-chain work",
            kind: MetricKind::Counter,
            label: None,
        },
        MetricDesc {
            name: "ermia_profile_log_ns_total",
            help: "Nanoseconds in log allocation, serialization and copy",
            kind: MetricKind::Counter,
            label: None,
        },
        MetricDesc {
            name: "ermia_profile_other_ns_total",
            help: "Nanoseconds outside the instrumented components",
            kind: MetricKind::Counter,
            label: None,
        },
        MetricDesc {
            name: "ermia_profile_txns_total",
            help: "Transactions measured by the profiler",
            kind: MetricKind::Counter,
            label: None,
        },
    ],
    hists: &[],
};

/// Register the read-side collectors that expose the database's existing
/// subsystem atomics (log, GC, epoch, TID, pool). The closures capture a
/// `Weak<DbInner>` so the registry (owned by `DbInner`) never keeps its
/// owner alive; once the database drops, the collectors render nothing.
pub(crate) fn register_db_collectors(inner: &Arc<DbInner>) {
    let registry = inner.telemetry.registry();
    let group = registry.group();
    let weak: Weak<DbInner> = Arc::downgrade(inner);
    registry.register_collector(group, move |out| {
        if let Some(db) = weak.upgrade() {
            collect_db(&db, out);
        }
    });
}

fn collect_db(db: &DbInner, out: &mut Vec<Sample>) {
    // Log manager: counters from LogStats plus the derived gauges the
    // issue calls out (durable-LSN lag, ring occupancy, batch size).
    let log = &db.log;
    let s = log.stats();
    out.push(Sample::counter(
        "ermia_log_allocations_total",
        "Log space reservations (one fetch_add per committing txn)",
        s.allocations.load(Relaxed),
    ));
    out.push(Sample::counter(
        "ermia_log_rotations_total",
        "Segment rotations",
        s.rotations.load(Relaxed),
    ));
    out.push(Sample::counter(
        "ermia_log_skip_blocks_total",
        "Skip blocks written (aborts, segment closes)",
        s.skip_blocks.load(Relaxed),
    ));
    out.push(Sample::counter(
        "ermia_log_dead_zone_bytes_total",
        "Bytes retired into dead zones",
        s.dead_zone_bytes.load(Relaxed),
    ));
    out.push(Sample::counter(
        "ermia_log_flush_batches_total",
        "Group-commit flush batches",
        s.flush_batches.load(Relaxed),
    ));
    out.push(Sample::counter(
        "ermia_log_flushed_bytes_total",
        "Bytes handed to stable storage",
        s.flushed_bytes.load(Relaxed),
    ));
    out.push(Sample::counter(
        "ermia_log_flush_retries_total",
        "Transient write errors the flusher retried",
        s.flush_retries.load(Relaxed),
    ));
    out.push(Sample::gauge(
        "ermia_log_poisoned",
        "1 once the log hit an unrecoverable I/O error",
        s.log_poisoned.load(Relaxed) as f64,
    ));
    out.push(Sample::gauge(
        "ermia_db_state",
        "Database service state (0 = active, 1 = degraded read-only)",
        db.state.load(Relaxed) as f64,
    ));
    out.push(Sample::gauge(
        "ermia_fork_count",
        "Live copy-on-write snapshot forks pinning the GC horizon",
        db.fork_count.load(Relaxed) as f64,
    ));
    out.push(Sample::gauge(
        "ermia_log_durable_lag_bytes",
        "Allocated-but-not-yet-durable log bytes (next - durable)",
        log.next_offset().saturating_sub(log.durable_offset()) as f64,
    ));
    out.push(Sample::gauge(
        "ermia_log_ring_occupancy_bytes",
        "Filled-but-unflushed bytes in the centralized ring buffer",
        log.ring_occupancy() as f64,
    ));
    out.push(Sample::gauge(
        "ermia_log_ring_capacity_bytes",
        "Centralized ring buffer capacity",
        log.ring_capacity() as f64,
    ));
    out.push(Sample::counter(
        "ermia_log_space_waits_total",
        "Reservations that blocked waiting for ring space",
        log.ring_space_waits(),
    ));
    out.push(Sample::gauge(
        "ermia_log_last_batch_bytes",
        "Size of the most recent group-commit flush batch",
        s.last_batch_bytes.load(Relaxed) as f64,
    ));

    // Garbage collector (database-owned stats survive GC restarts on DDL).
    let gc = &db.gc_stats;
    out.push(Sample::counter(
        "ermia_gc_passes_total",
        "Full GC passes over the indirection arrays",
        gc.passes.load(Relaxed),
    ));
    out.push(Sample::counter(
        "ermia_gc_reclaimed_versions_total",
        "Versions unlinked and retired by the GC",
        gc.reclaimed.load(Relaxed),
    ));

    // Unified epoch manager (one timeline for the paper's 3 timescales).
    let timescale = db.epoch.name();
    let es = db.epoch.stats();
    let e = |s: Sample| s.labeled("timescale", timescale);
    out.push(e(Sample::gauge("ermia_epoch_current", "Current (open) epoch", es.epoch as f64)));
    out.push(e(Sample::counter(
        "ermia_epoch_advances_total",
        "Successful epoch advances",
        es.advances,
    )));
    out.push(e(Sample::counter(
        "ermia_epoch_advance_blocked_total",
        "Advance attempts blocked by a straggler",
        es.advance_blocked,
    )));
    out.push(e(Sample::counter(
        "ermia_epoch_deferred_total",
        "Destructors deferred through the epoch manager",
        es.deferred,
    )));
    out.push(e(Sample::counter(
        "ermia_epoch_freed_total",
        "Deferred destructors executed",
        es.freed,
    )));
    out.push(e(Sample::gauge(
        "ermia_epoch_pending_destructors",
        "Deferred destructors not yet safe to run",
        es.pending as f64,
    )));
    out.push(e(Sample::gauge(
        "ermia_epoch_threads",
        "Registered (non-retired) epoch participants",
        es.threads as f64,
    )));
    out.push(e(Sample::gauge(
        "ermia_epoch_stragglers",
        "Threads active two or more epochs behind",
        es.stragglers as f64,
    )));

    // TID table and version pool.
    out.push(Sample::gauge(
        "ermia_tid_slots_in_use",
        "Transaction-context slots currently held",
        db.tid.in_use() as f64,
    ));
    out.push(Sample::gauge(
        "ermia_version_pool_size",
        "Version nodes parked in the reuse pool",
        db.versions.pooled() as f64,
    ));

    // Database-level lifetime totals (mirror Database::txn_counts).
    out.push(Sample::counter(
        "ermia_db_commits_total",
        "Committed transactions since open",
        db.commits.load(Relaxed),
    ));
    out.push(Sample::counter(
        "ermia_db_aborts_total",
        "Aborted transactions since open",
        db.aborts.load(Relaxed),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ermia_common::AbortReason;

    #[test]
    fn abort_descriptors_align_with_abort_reason_order() {
        for r in AbortReason::ALL {
            let desc = &TXN_FAMILY.counters[TXN_ABORT_BASE + r.idx()];
            assert_eq!(desc.name, "ermia_txn_aborts_total");
            let (key, val) = desc.label.expect("abort counters carry a reason label");
            assert_eq!(key, "reason");
            assert_eq!(val, r.label(), "descriptor order must match AbortReason::ALL");
        }
        assert_eq!(TXN_FAMILY.counters.len(), TXN_ABORT_BASE + AbortReason::ALL.len());
    }
}
