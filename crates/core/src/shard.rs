//! Sharded engine: N independent log/epoch/TID domains, one namespace.
//!
//! The centralized log gives ERMIA a totally ordered commit timestamp
//! from one `fetch_add` — scalable on one socket, but still one cache
//! line every committer must touch, one flusher thread, one TID space.
//! [`ShardedDb`] multiplies the engine instead of the log: it hash-
//! partitions every table across `S` full [`Database`] instances, each
//! with its own log directory, group-commit flusher, epoch manager, GC
//! and TID space. The namespace stays unified — tables and indexes are
//! created on every shard in the same order, so a `TableId` or
//! `IndexId` means the same thing everywhere and callers route by key,
//! never by shard.
//!
//! **Single-shard transactions** (the common case: the TPC-C partition
//! argument, §6 of the paper) touch exactly one inner [`Transaction`]
//! and commit through the unmodified single-database path — no extra
//! log writes, no coordination, overhead is one hash per operation. At
//! `S = 1` even that disappears: routing is constant and commit is a
//! direct pass-through.
//!
//! **Cross-shard transactions** commit with two-phase commit layered on
//! the existing commit/durability split:
//!
//! 1. *Prepare* — every writer shard runs its full commit protocol
//!    (SSN exclusion test, node-set validation, log space allocation)
//!    but serializes its block as [`BlockKind::TxnPrepare`] carrying the
//!    coordinator's identity. The coordinator is the lowest writer
//!    shard and prepares first; its prepare cstamp becomes the global
//!    transaction id (gtid).
//! 2. *Decide* — once **all** prepares are durable, the coordinator
//!    appends a [`BlockKind::TxnDecide`] record to its own log and
//!    waits for it. The decide record is the commit point: durable
//!    decide ⇒ the transaction is committed on every shard.
//! 3. *Finalize* — participants flip their TID slots to committed and
//!    publish versions in memory; matching decide records are appended
//!    best-effort to the other writers' logs so their standalone
//!    recovery resolves locally in the common case.
//!
//! Recovery is presumed-abort: a prepare without a reachable commit
//! verdict (in its own log or the coordinator's) rolls forward to
//! nothing. [`ShardedDb::recover`] scans every shard, pools the decide
//! verdicts, and applies each in-doubt prepare iff its coordinator's
//! decide says commit — so an acked cross-shard commit is always
//! either fully present or (unacked) fully absent after a crash.
//!
//! What sharding deliberately does *not* give: a global snapshot.
//! Each shard's reads run against that shard's own LSN timeline, so a
//! cross-shard reader can observe shard A after a transaction T and
//! shard B before T (a fractured read), and SSN certifies dependency
//! cycles per shard only. This matches the partitioned deployments the
//! paper compares against (H-Store-style) rather than a globally
//! serializable distributed engine; see DESIGN.md §Sharding.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};

use ermia_common::{AbortReason, IndexId, Lsn, Oid, OpResult, TableId, TxResult};
use ermia_log::{
    checksum32, BlockKind, DecideRecord, LogBlockHeader, PrepareMarker, BLOCK_HEADER_LEN,
    DECIDE_RECORD_LEN, MIN_BLOCK_LEN,
};
use ermia_telemetry::{
    EventKind, EventRing, FamilyDef, MetricDesc, MetricKind, Sample, Slab, SpanKind, SpanRing,
    TraceContext,
};

use crate::config::{DbConfig, IsolationLevel};
use crate::database::{Database, DbState, DdlEntry, NodeRole};
use crate::recovery::RecoveryStats;
use crate::transaction::{CommitToken, PreparedTransaction, Transaction};
use crate::worker::Worker;

/// Deterministic key → shard map: FNV-1a over the routed key bytes,
/// reduced mod `shards`. Exported so workload generators can partition
/// keys (e.g. pick a key pair that is guaranteed cross-shard).
pub fn shard_of_key(key: &[u8], shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// How a table's rows are distributed across shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Hash the primary key to pick the owning shard. With
    /// `prefix: Some(p)` only the first `p` key bytes are hashed, so
    /// co-prefixed rows (e.g. everything in one TPC-C warehouse)
    /// colocate and prefix range scans stay single-shard.
    Hash { prefix: Option<usize> },
    /// Full copy on every shard: writes fan out to all shards inside
    /// the same transaction, reads are served by shard 0. For small
    /// read-mostly dimension tables (TPC-C `item`). Replicated tables
    /// cannot carry secondary indexes.
    Replicated,
}

impl Default for ShardPolicy {
    fn default() -> ShardPolicy {
        ShardPolicy::Hash { prefix: None }
    }
}

impl ShardPolicy {
    /// Compact `(tag, arg)` form for the replication protocol: a replica
    /// must route reads exactly like its primary, so table policies ship
    /// with the schema DDL.
    pub fn to_wire(self) -> (u8, u64) {
        match self {
            ShardPolicy::Hash { prefix: None } => (0, 0),
            ShardPolicy::Hash { prefix: Some(p) } => (1, p as u64),
            ShardPolicy::Replicated => (2, 0),
        }
    }

    /// Inverse of [`ShardPolicy::to_wire`]; unknown tags fall back to
    /// the default policy.
    pub fn from_wire(tag: u8, arg: u64) -> ShardPolicy {
        match tag {
            1 => ShardPolicy::Hash { prefix: Some(arg as usize) },
            2 => ShardPolicy::Replicated,
            _ => ShardPolicy::default(),
        }
    }
}

/// How a *secondary* index key routes to the owning shard. (Primary
/// indexes always route by the table's [`ShardPolicy`].)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexRouting {
    /// The secondary key embeds the owning row's shard key in its first
    /// `len` bytes (TPC-C customer-by-name starts with `w_id, d_id`).
    OwnerPrefix(usize),
    /// No shard information in the key: lookups probe every shard.
    Probe,
}

impl IndexRouting {
    /// Compact `(tag, arg)` form for the replication protocol (see
    /// [`ShardPolicy::to_wire`]).
    pub fn to_wire(self) -> (u8, u64) {
        match self {
            IndexRouting::Probe => (0, 0),
            IndexRouting::OwnerPrefix(len) => (1, len as u64),
        }
    }

    /// Inverse of [`IndexRouting::to_wire`]; unknown tags fall back to
    /// the always-correct `Probe`.
    pub fn from_wire(tag: u8, arg: u64) -> IndexRouting {
        match tag {
            1 => IndexRouting::OwnerPrefix(arg as usize),
            _ => IndexRouting::Probe,
        }
    }
}

/// One schema entry with its routing, as shipped to a replica: the
/// [`DdlEntry`] plus the wire form of the table's [`ShardPolicy`]
/// (table entries) or the index's [`IndexRouting`] (secondary entries).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutedDdl {
    pub entry: DdlEntry,
    pub route_tag: u8,
    pub route_arg: u64,
}

#[derive(Clone, Copy)]
enum IndexRoute {
    /// Primary index of a table: route by the table's policy.
    Primary(TableId),
    /// Secondary index with its own routing rule.
    Secondary { routing: IndexRouting },
}

/// Immutable routing snapshot: per-table policies and per-index routes,
/// indexed by the dense ids (identical on every shard). Replaced
/// wholesale on DDL; workers cache an `Arc` and revalidate against
/// [`ShardedInner::routing_version`] once per transaction.
struct Routing {
    tables: Vec<ShardPolicy>,
    indexes: Vec<IndexRoute>,
}

impl Routing {
    fn from_catalog(db: &Database) -> Routing {
        let cat = db.inner.catalog.read();
        let tables = vec![ShardPolicy::default(); cat.tables.len()];
        let indexes = cat
            .indexes
            .iter()
            .map(|ix| {
                if ix.is_primary {
                    IndexRoute::Primary(ix.table)
                } else {
                    IndexRoute::Secondary { routing: IndexRouting::Probe }
                }
            })
            .collect();
        Routing { tables, indexes }
    }

    fn hash_shard(policy: ShardPolicy, key: &[u8], shards: usize) -> Option<usize> {
        match policy {
            ShardPolicy::Hash { prefix } => {
                let routed = match prefix {
                    Some(p) if key.len() > p => &key[..p],
                    _ => key,
                };
                Some(shard_of_key(routed, shards))
            }
            ShardPolicy::Replicated => None,
        }
    }
}

// --- 2PC telemetry family -----------------------------------------------

const TWOPC_CROSS: usize = 0;
const TWOPC_PREPARE_HIST: usize = 0;
const TWOPC_DECIDE_HIST: usize = 1;

/// Per-worker 2PC metrics, registered on shard 0's registry.
static TWOPC_FAMILY: FamilyDef = FamilyDef {
    counters: &[MetricDesc {
        name: "ermia_shard_cross_txns_total",
        help: "Cross-shard transactions committed through 2PC",
        kind: MetricKind::Counter,
        label: None,
    }],
    hists: &[
        MetricDesc {
            name: "ermia_2pc_prepare_ns",
            help: "2PC prepare phase latency (all participant prepares durable), ns",
            kind: MetricKind::Counter,
            label: None,
        },
        MetricDesc {
            name: "ermia_2pc_decide_ns",
            help: "2PC decide phase latency (coordinator decide record durable), ns",
            kind: MetricKind::Counter,
            label: None,
        },
    ],
};

pub(crate) struct TwoPcTelemetry {
    slab: Arc<Slab>,
    ring: Arc<EventRing>,
}

/// Per-worker tracing state: a span ring (this worker is its single
/// writer) plus the head-sampling countdown. Created whenever telemetry
/// is on so wire-traced requests always have a ring to land in;
/// `sample_n` only governs engine-initiated traces.
pub(crate) struct WorkerTrace {
    ring: Arc<SpanRing>,
    sample_n: u32,
    count: u32,
}

// --- ShardedDb ----------------------------------------------------------

pub(crate) struct ShardedInner {
    dbs: Vec<Database>,
    routing: RwLock<Arc<Routing>>,
    /// Bumped on every DDL so workers revalidate their routing cache
    /// with one relaxed load per transaction.
    routing_version: AtomicU64,
    /// Cross-shard transactions currently between first prepare and
    /// durable decide (plus unresolved prepares during recovery).
    in_doubt: AtomicU64,
    /// Test hook: sleep between "all prepares durable" and writing the
    /// decide record (`ERMIA_2PC_PREPARE_DELAY_MS`, read once at open),
    /// widening the window the chaos harness SIGKILLs into.
    prepare_delay: Duration,
}

/// `S` independent [`Database`] instances behind one namespace.
///
/// Cheap to clone and share across threads, like [`Database`].
#[derive(Clone)]
pub struct ShardedDb {
    pub(crate) inner: Arc<ShardedInner>,
}

fn prepare_delay_from_env() -> Duration {
    std::env::var("ERMIA_2PC_PREPARE_DELAY_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::ZERO)
}

impl ShardedDb {
    /// Open `shards` databases from one config. With a durable config,
    /// shard `i` logs under `<dir>/shard-<i>`; in-memory configs stay
    /// in-memory. All shards share the remaining tuning knobs.
    pub fn open(cfg: DbConfig, shards: usize) -> io::Result<ShardedDb> {
        assert!(shards >= 1, "need at least one shard");
        let mut dbs = Vec::with_capacity(shards);
        for i in 0..shards {
            let mut c = cfg.clone();
            if let Some(dir) = &cfg.log.dir {
                let d = dir.join(format!("shard-{i}"));
                std::fs::create_dir_all(&d)?;
                c.log.dir = Some(d);
            }
            dbs.push(Database::open(c)?);
        }
        Ok(ShardedDb::from_dbs(dbs))
    }

    /// Wrap an already-open database as a one-shard `ShardedDb`. Routing
    /// is picked up from its catalog; every operation passes straight
    /// through to the inner engine.
    pub fn single(db: Database) -> ShardedDb {
        ShardedDb::from_dbs(vec![db])
    }

    /// Wrap already-open per-shard handles (e.g. a replica's snapshot
    /// views) as one `ShardedDb`. Shard catalogs must be identical, as
    /// they are when every shard replayed the same DDL. Routing starts
    /// on the default hash policy; a replica of a primary with explicit
    /// policies must install them with
    /// [`ShardedDb::refresh_routing_with`] (the shipped schema carries
    /// them), or reads of co-located keys would route to the wrong
    /// shard.
    pub fn from_shards(dbs: Vec<Database>) -> ShardedDb {
        assert!(!dbs.is_empty(), "need at least one shard");
        ShardedDb::from_dbs(dbs)
    }

    /// Rebuild the routing snapshot from shard 0's current catalog (all
    /// tables on the default hash policy) and force workers to re-read
    /// it. A replica calls this after replaying newly shipped DDL so
    /// reads route to tables created since the wrapper was built.
    pub fn refresh_routing(&self) {
        self.refresh_routing_with(&[], &[]);
    }

    /// [`ShardedDb::refresh_routing`] with explicit per-table policies
    /// and per-secondary-index routing rules layered on top of the
    /// catalog defaults. A replica passes the policies shipped with the
    /// primary's schema so its reads route exactly like the primary's.
    /// Out-of-range ids are ignored (a policy for a table whose DDL has
    /// not replayed yet applies on the next refresh).
    pub fn refresh_routing_with(
        &self,
        policies: &[(TableId, ShardPolicy)],
        secondaries: &[(IndexId, IndexRouting)],
    ) {
        let mut routing = Routing::from_catalog(&self.inner.dbs[0]);
        for &(table, policy) in policies {
            if let Some(slot) = routing.tables.get_mut(table.0 as usize) {
                *slot = policy;
            }
        }
        for &(index, rule) in secondaries {
            if let Some(slot @ IndexRoute::Secondary { .. }) =
                routing.indexes.get_mut(index.0 as usize)
            {
                *slot = IndexRoute::Secondary { routing: rule };
            }
        }
        *self.inner.routing.write() = Arc::new(routing);
        self.inner.routing_version.fetch_add(1, Relaxed);
    }

    /// The schema DDL (creation order, as [`Database::schema_ddl`]) with
    /// each entry's routing attached: the table's [`ShardPolicy`] for
    /// table entries, the [`IndexRouting`] for secondary entries. This
    /// is what ships to a replica, which must reproduce not only the
    /// dense ids but the routing that placed every key.
    pub fn schema_ddl_routed(&self) -> Vec<RoutedDdl> {
        let routing = self.inner.routing.read().clone();
        let db = &self.inner.dbs[0];
        let cat = db.inner.catalog.read();
        cat.indexes
            .iter()
            .enumerate()
            .map(|(i, ix)| {
                let entry = DdlEntry {
                    table: cat.tables[ix.table.0 as usize].name.clone(),
                    secondary: (!ix.is_primary).then(|| ix.name.clone()),
                };
                let route = if ix.is_primary {
                    routing
                        .tables
                        .get(ix.table.0 as usize)
                        .copied()
                        .unwrap_or_default()
                        .to_wire()
                } else {
                    match routing.indexes.get(i) {
                        Some(&IndexRoute::Secondary { routing }) => routing.to_wire(),
                        _ => IndexRouting::Probe.to_wire(),
                    }
                };
                RoutedDdl { entry, route_tag: route.0, route_arg: route.1 }
            })
            .collect()
    }

    fn from_dbs(dbs: Vec<Database>) -> ShardedDb {
        let routing = Routing::from_catalog(&dbs[0]);
        let inner = Arc::new(ShardedInner {
            dbs,
            routing: RwLock::new(Arc::new(routing)),
            routing_version: AtomicU64::new(1),
            in_doubt: AtomicU64::new(0),
            prepare_delay: prepare_delay_from_env(),
        });
        register_shard_collectors(&inner);
        ShardedDb { inner }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.inner.dbs.len()
    }

    /// Direct access to one shard's engine (tests, benchmarks, stats).
    pub fn shard(&self, i: usize) -> &Database {
        &self.inner.dbs[i]
    }

    /// Create a table on every shard with the default hash policy (or
    /// return the existing id). Ids are dense and identical across
    /// shards because all DDL goes through this namespace.
    pub fn create_table(&self, name: &str) -> TableId {
        self.create_table_inner(name, None)
    }

    /// Create a table with an explicit [`ShardPolicy`] (also updates the
    /// policy of an existing table).
    pub fn create_table_with_policy(&self, name: &str, policy: ShardPolicy) -> TableId {
        self.create_table_inner(name, Some(policy))
    }

    fn create_table_inner(&self, name: &str, policy: Option<ShardPolicy>) -> TableId {
        let inner = &self.inner;
        let mut ids = inner.dbs.iter().map(|d| d.create_table(name));
        let id = ids.next().expect("at least one shard");
        for other in ids {
            assert_eq!(other, id, "shard catalogs diverged for table {name:?}");
        }
        let primary = inner.dbs[0].primary_index(id);
        let mut guard = inner.routing.write();
        let mut routing = Routing {
            tables: guard.tables.clone(),
            indexes: guard.indexes.clone(),
        };
        let ti = id.0 as usize;
        if routing.tables.len() <= ti {
            routing.tables.resize(ti + 1, ShardPolicy::default());
        }
        if let Some(p) = policy {
            routing.tables[ti] = p;
        }
        let pi = primary.0 as usize;
        if routing.indexes.len() <= pi {
            routing.indexes.resize(pi + 1, IndexRoute::Primary(id));
        }
        routing.indexes[pi] = IndexRoute::Primary(id);
        *guard = Arc::new(routing);
        inner.routing_version.fetch_add(1, Relaxed);
        id
    }

    /// Create a secondary index on every shard with an explicit routing
    /// rule. Panics on [`ShardPolicy::Replicated`] tables: their OIDs
    /// differ per shard, so one secondary entry cannot name all copies.
    pub fn create_secondary_index(
        &self,
        table: TableId,
        name: &str,
        routing: IndexRouting,
    ) -> IndexId {
        let inner = &self.inner;
        assert!(
            inner.routing.read().tables.get(table.0 as usize).copied()
                != Some(ShardPolicy::Replicated),
            "replicated tables cannot carry secondary indexes"
        );
        let mut ids = inner.dbs.iter().map(|d| d.create_secondary_index(table, name));
        let id = ids.next().expect("at least one shard");
        for other in ids {
            assert_eq!(other, id, "shard catalogs diverged for index {name:?}");
        }
        let mut guard = inner.routing.write();
        let mut new = Routing {
            tables: guard.tables.clone(),
            indexes: guard.indexes.clone(),
        };
        let ii = id.0 as usize;
        if new.indexes.len() <= ii {
            new.indexes.resize(ii + 1, IndexRoute::Secondary { routing });
        }
        new.indexes[ii] = IndexRoute::Secondary { routing };
        *guard = Arc::new(new);
        inner.routing_version.fetch_add(1, Relaxed);
        id
    }

    /// Check out a worker holding one engine [`Worker`] per shard.
    pub fn register_worker(&self) -> ShardedWorker {
        let inner = &self.inner;
        let workers = inner.dbs.iter().map(|d| d.register_worker()).collect();
        let db0 = &inner.dbs[0];
        let twopc = db0.inner.cfg.telemetry.then(|| TwoPcTelemetry {
            slab: db0.telemetry().registry().register_slab(&TWOPC_FAMILY),
            ring: db0.telemetry().flight().ring(),
        });
        let trace = db0.inner.cfg.telemetry.then(|| WorkerTrace {
            ring: db0.telemetry().tracer().ring(),
            sample_n: db0.inner.cfg.trace_sample_n,
            count: 0,
        });
        ShardedWorker {
            db: self.clone(),
            workers,
            routing: inner.routing.read().clone(),
            routing_version: inner.routing_version.load(Relaxed),
            twopc,
            trace,
        }
    }

    /// Number of tables (identical on every shard).
    pub fn table_count(&self) -> usize {
        self.inner.dbs[0].table_count()
    }

    /// Look up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.inner.dbs[0].table_id(name)
    }

    /// Look up an index id by name.
    pub fn index_id(&self, name: &str) -> Option<IndexId> {
        self.inner.dbs[0].index_id(name)
    }

    /// A table's primary index id (identical on every shard).
    pub fn primary_index(&self, table: TableId) -> IndexId {
        self.inner.dbs[0].primary_index(table)
    }

    /// Shard 0's telemetry layer — where the shard collectors, 2PC
    /// metric slabs and cross-shard flight events land.
    pub fn telemetry(&self) -> &ermia_telemetry::Telemetry {
        self.inner.dbs[0].telemetry()
    }

    /// Degraded if *any* shard is degraded: a cross-shard writer cannot
    /// make progress with one poisoned participant log.
    pub fn state(&self) -> DbState {
        if self.inner.dbs.iter().any(|d| d.state() == DbState::Degraded) {
            DbState::Degraded
        } else {
            DbState::Active
        }
    }

    /// Resume every shard from degraded read-only mode.
    pub fn resume(&self) -> io::Result<()> {
        for db in &self.inner.dbs {
            db.resume()?;
        }
        Ok(())
    }

    /// Summed (commits, aborts) across shards. A cross-shard commit
    /// counts once per participant, which is what per-shard throughput
    /// accounting wants.
    pub fn txn_counts(&self) -> (u64, u64) {
        let mut c = 0;
        let mut a = 0;
        for db in &self.inner.dbs {
            let (dc, da) = db.txn_counts();
            c += dc;
            a += da;
        }
        (c, a)
    }

    /// Summed in-flight TID slots across shards.
    pub fn tid_slots_in_use(&self) -> usize {
        self.inner.dbs.iter().map(|d| d.tid_slots_in_use()).sum()
    }

    /// The *minimum* durable offset across shards — the conservative
    /// answer to "is everything up to my offset durable" for callers
    /// that only track one number.
    pub fn log_durable_offset(&self) -> u64 {
        self.inner.dbs.iter().map(|d| d.log().durable_offset()).min().unwrap_or(0)
    }

    /// This node's replication role (shard 0 speaks for all: a replica
    /// marks every shard).
    pub fn role(&self) -> NodeRole {
        self.inner.dbs[0].role()
    }

    /// The *minimum* applied offset across shards (0 on a primary) —
    /// the conservative catch-up point for lag reporting.
    pub fn applied_lsn(&self) -> u64 {
        self.inner.dbs.iter().map(|d| d.applied_lsn()).min().unwrap_or(0)
    }

    /// Checkpoint every shard; returns the per-shard begin LSNs.
    pub fn checkpoint(&self) -> io::Result<Vec<Lsn>> {
        self.inner.dbs.iter().map(|d| d.checkpoint()).collect()
    }

    /// Truncate every shard's log below its checkpoint; returns the
    /// total number of retired segments.
    pub fn truncate_log(&self) -> io::Result<usize> {
        let mut n = 0;
        for db in &self.inner.dbs {
            n += db.truncate_log()?;
        }
        Ok(n)
    }

    /// Recover every shard and resolve cross-shard in-doubt prepares.
    ///
    /// Each shard's scan yields (a) its replay stats, (b) prepares with
    /// no local verdict, and (c) every decide verdict in its log. The
    /// verdicts are pooled, then each in-doubt prepare commits iff the
    /// pool holds a commit decide for its gtid — which, per the commit
    /// protocol, is durable only after *every* participant's prepare is
    /// durable, so resolution can never commit a partial transaction.
    /// No verdict means the coordinator never decided: presumed abort.
    pub fn recover(&self) -> io::Result<ShardRecoveryStats> {
        let inner = &self.inner;
        let mut outcomes = Vec::with_capacity(inner.dbs.len());
        for db in &inner.dbs {
            outcomes.push(db.recover_outcome()?);
        }
        let mut verdicts = std::collections::HashMap::new();
        for o in &outcomes {
            for (gtid, commit) in &o.decides {
                // A commit verdict wins over a stale best-effort copy.
                let e = verdicts.entry(*gtid).or_insert(*commit);
                *e = *e || *commit;
            }
        }
        let total_in_doubt: u64 = outcomes.iter().map(|o| o.in_doubt.len() as u64).sum();
        inner.in_doubt.store(total_in_doubt, Relaxed);
        let mut stats = ShardRecoveryStats {
            per_shard: Vec::with_capacity(outcomes.len()),
            resolved_commits: 0,
            resolved_aborts: 0,
        };
        let ring = &inner.dbs[0].inner.svc_ring;
        for (shard, outcome) in outcomes.into_iter().enumerate() {
            for txn in &outcome.in_doubt {
                let commit = verdicts
                    .get(&(txn.coord_shard, txn.gtid_lsn))
                    .copied()
                    .unwrap_or(false);
                if commit {
                    inner.dbs[shard].apply_in_doubt(txn)?;
                    stats.resolved_commits += 1;
                } else {
                    stats.resolved_aborts += 1;
                }
                ring.record(EventKind::TwoPcResolve, txn.gtid_lsn, commit as u64);
                inner.in_doubt.fetch_sub(1, Relaxed);
            }
            stats.per_shard.push(outcome.stats);
        }
        Ok(stats)
    }
}

/// What [`ShardedDb::recover`] did.
#[derive(Debug)]
pub struct ShardRecoveryStats {
    /// Per-shard replay stats, in shard order.
    pub per_shard: Vec<RecoveryStats>,
    /// In-doubt prepares rolled forward (a commit decide was found).
    pub resolved_commits: u64,
    /// In-doubt prepares dropped (presumed abort).
    pub resolved_aborts: u64,
}

/// Register the shard-level collector on shard 0's registry: shard
/// count, per-shard transaction counters, and the in-doubt gauge. The
/// closure holds a `Weak` so the registry never keeps the sharded
/// wrapper alive.
fn register_shard_collectors(inner: &Arc<ShardedInner>) {
    let registry = inner.dbs[0].telemetry().registry();
    let group = registry.group();
    let weak: Weak<ShardedInner> = Arc::downgrade(inner);
    registry.register_collector(group, move |out| {
        let Some(sd) = weak.upgrade() else { return };
        out.push(Sample::gauge("ermia_shard_count", "Engine shards", sd.dbs.len() as f64));
        out.push(Sample::gauge(
            "ermia_shard_in_doubt",
            "Cross-shard transactions prepared but not yet decided",
            sd.in_doubt.load(Relaxed) as f64,
        ));
        for (i, db) in sd.dbs.iter().enumerate() {
            let (c, a) = db.txn_counts();
            out.push(
                Sample::counter(
                    "ermia_shard_txns_total",
                    "Transactions finished per shard (commits + aborts)",
                    c + a,
                )
                .labeled("shard", i.to_string()),
            );
        }
    });
}

// --- Decide records -----------------------------------------------------

/// Total length of a TxnDecide block (header + 16-byte record, rounded
/// up to the allocation grain).
const DECIDE_BLOCK_LEN: usize =
    (BLOCK_HEADER_LEN + DECIDE_RECORD_LEN).div_ceil(MIN_BLOCK_LEN) * MIN_BLOCK_LEN;

/// Append a TxnDecide block to `db`'s log. Returns the block's
/// exclusive end offset for durability waiting.
fn write_decide(db: &Database, rec: DecideRecord) -> io::Result<u64> {
    let res = db.inner.log.allocate(DECIDE_BLOCK_LEN)?;
    let lsn = res.lsn();
    let end = res.end_offset();
    let mut block = [0u8; DECIDE_BLOCK_LEN];
    block[BLOCK_HEADER_LEN..BLOCK_HEADER_LEN + DECIDE_RECORD_LEN]
        .copy_from_slice(&rec.encode());
    let header = LogBlockHeader {
        kind: BlockKind::TxnDecide,
        nrec: 0,
        len: DECIDE_BLOCK_LEN as u32,
        checksum: checksum32(&block[BLOCK_HEADER_LEN..]),
        cstamp: lsn,
        prev: rec.gtid_lsn,
    };
    header.encode_into(&mut block);
    res.fill(&block);
    Ok(end)
}

// --- ShardedWorker ------------------------------------------------------

/// One engine [`Worker`] per shard plus a cached routing snapshot.
pub struct ShardedWorker {
    db: ShardedDb,
    workers: Vec<Worker>,
    routing: Arc<Routing>,
    routing_version: u64,
    twopc: Option<TwoPcTelemetry>,
    trace: Option<WorkerTrace>,
}

impl ShardedWorker {
    /// Begin a transaction. Inner per-shard transactions start lazily
    /// on first touch, so a transaction that stays on one shard costs
    /// exactly one engine begin.
    pub fn begin(&mut self, isolation: IsolationLevel) -> ShardedTransaction<'_> {
        self.begin_traced(isolation, None)
    }

    /// [`ShardedWorker::begin`] with an explicit wire-propagated trace
    /// context. `None` (or an untraced context) falls back to head
    /// sampling: with `DbConfig::trace_sample_n = N`, every Nth begin
    /// on this worker mints a fresh trace id. An untraced transaction's
    /// whole tracing cost is the `Option` branch per operation.
    pub fn begin_traced(
        &mut self,
        isolation: IsolationLevel,
        ctx: Option<TraceContext>,
    ) -> ShardedTransaction<'_> {
        let v = self.db.inner.routing_version.load(Relaxed);
        if v != self.routing_version {
            self.routing = self.db.inner.routing.read().clone();
            self.routing_version = v;
        }
        // Resolve the active context before splitting the borrows: wire
        // context wins; otherwise head sampling every Nth begin.
        let active = match &mut self.trace {
            Some(t) => match ctx {
                Some(c) if c.is_traced() => Some((c, false)),
                _ if t.sample_n != 0 => {
                    t.count += 1;
                    if t.count >= t.sample_n {
                        t.count = 0;
                        let (hi, lo) = self.db.inner.dbs[0].telemetry().tracer().new_trace_id();
                        Some((TraceContext { trace_hi: hi, trace_lo: lo, parent: 0 }, true))
                    } else {
                        None
                    }
                }
                _ => None,
            },
            None => None,
        };
        let ShardedWorker { db, workers, routing, twopc, trace, .. } = self;
        let trace = active.and_then(|(ctx, sampled)| {
            trace.as_ref().map(|t| ActiveTrace {
                ctx,
                ring: &t.ring,
                start_ns: t.ring.now_ns(),
                sampled,
            })
        });
        let slots = if workers.len() == 1 {
            Slots::One(TxSlot::Idle(&mut workers[0]))
        } else {
            Slots::Many(workers.iter_mut().map(TxSlot::Idle).collect())
        };
        ShardedTransaction {
            db: &*db,
            routing,
            twopc: twopc.as_ref(),
            isolation,
            slots,
            trace,
        }
    }

    /// This worker's span ring, if telemetry is on. The server threads
    /// wire-traced request spans through here so they land next to the
    /// engine spans of the same worker.
    pub fn span_ring(&self) -> Option<&Arc<SpanRing>> {
        self.trace.as_ref().map(|t| &t.ring)
    }
}

impl Drop for ShardedWorker {
    fn drop(&mut self) {
        let tel = self.db.inner.dbs[0].telemetry();
        if let Some(t) = self.twopc.take() {
            tel.registry().retire_slab(&TWOPC_FAMILY, &t.slab);
            tel.flight().retire(&t.ring);
        }
        if let Some(t) = self.trace.take() {
            tel.tracer().retire(&t.ring);
        }
    }
}

// --- ShardedTransaction -------------------------------------------------

enum TxSlot<'w> {
    Idle(&'w mut Worker),
    Active(Transaction<'w>),
    /// Transient state while a slot is being activated.
    Busy,
}

enum Slots<'w> {
    /// `S == 1`: no allocation, no routing.
    One(TxSlot<'w>),
    Many(Vec<TxSlot<'w>>),
}

impl<'w> Slots<'w> {
    fn get_mut(&mut self, i: usize) -> &mut TxSlot<'w> {
        match self {
            Slots::One(s) => {
                debug_assert_eq!(i, 0);
                s
            }
            Slots::Many(v) => &mut v[i],
        }
    }

    fn into_vec(self) -> Vec<TxSlot<'w>> {
        match self {
            Slots::One(s) => vec![s],
            Slots::Many(v) => v,
        }
    }
}

/// A transaction over the sharded namespace. Routes each operation to
/// the owning shard's inner [`Transaction`]; commit runs the inner
/// commit directly (one participant) or 2PC (several writers).
pub struct ShardedTransaction<'w> {
    db: &'w ShardedDb,
    routing: &'w Routing,
    twopc: Option<&'w TwoPcTelemetry>,
    isolation: IsolationLevel,
    slots: Slots<'w>,
    trace: Option<ActiveTrace<'w>>,
}

/// Tracing state of one *traced* transaction: the propagated context,
/// the owning worker's span ring, and the begin timestamp the tail-based
/// slow-op check measures against.
#[derive(Clone, Copy)]
struct ActiveTrace<'w> {
    ctx: TraceContext,
    ring: &'w SpanRing,
    start_ns: u64,
    /// Engine-sampled (head sampling) rather than wire-propagated: the
    /// engine owns slow-op capture at commit. Wire-traced ops are
    /// captured by the server at request completion instead, with the
    /// opcode/table/key attribution only that layer has.
    sampled: bool,
}

/// What [`ShardedTransaction::into_active`] destructures into: the
/// engine, the optional 2PC telemetry and trace, and the live
/// participants as (shard, transaction) pairs.
type ActiveParts<'w> = (
    &'w ShardedDb,
    Option<&'w TwoPcTelemetry>,
    Option<ActiveTrace<'w>>,
    Vec<(usize, Transaction<'w>)>,
);

/// Pack a (shard, oid) pair into the opaque row handle inserts return.
fn pack_handle(shard: usize, oid: Oid) -> u64 {
    ((shard as u64) << 32) | oid.0 as u64
}

fn unpack_handle(handle: u64) -> (usize, Oid) {
    ((handle >> 32) as usize, Oid(handle as u32))
}

impl<'w> ShardedTransaction<'w> {
    fn nshards(&self) -> usize {
        self.db.inner.dbs.len()
    }

    /// The wire context this transaction runs under, if traced.
    pub fn trace_ctx(&self) -> Option<TraceContext> {
        self.trace.as_ref().map(|t| t.ctx)
    }

    /// Tracing hook: `(ring, ctx, now_ns)` for a traced transaction,
    /// `None` (one branch, nothing else) otherwise. The returned
    /// borrows are free of `self`, so callers can record after a
    /// `&mut self` operation.
    #[inline]
    fn span_start(&self) -> Option<(&'w SpanRing, TraceContext, u64)> {
        self.trace.as_ref().map(|t| (t.ring, t.ctx, t.ring.now_ns()))
    }

    /// The inner transaction on `shard`, started on first touch.
    fn txn_at(&mut self, shard: usize) -> &mut Transaction<'w> {
        let iso = self.isolation;
        let sp = self.span_start();
        let slot = self.slots.get_mut(shard);
        if matches!(slot, TxSlot::Idle(_)) {
            let TxSlot::Idle(w) = std::mem::replace(slot, TxSlot::Busy) else {
                unreachable!()
            };
            *slot = TxSlot::Active(Transaction::begin(w, iso));
            if let Some((ring, ctx, t0)) = sp {
                ring.record(&ctx, SpanKind::TxnBegin, t0, ring.now_ns(), shard as u64, 0);
            }
        }
        match slot {
            TxSlot::Active(t) => t,
            _ => unreachable!("slot is never left busy"),
        }
    }

    fn table_policy(&self, table: TableId) -> ShardPolicy {
        self.routing.tables.get(table.0 as usize).copied().unwrap_or_default()
    }

    /// Owning shard for a primary-key operation; `None` = replicated.
    fn home_shard(&self, table: TableId, key: &[u8]) -> Option<usize> {
        let n = self.nshards();
        if n == 1 {
            return Some(0);
        }
        Routing::hash_shard(self.table_policy(table), key, n)
    }

    /// Read a record by primary key.
    pub fn read<R>(
        &mut self,
        table: TableId,
        key: &[u8],
        f: impl FnOnce(&[u8]) -> R,
    ) -> OpResult<Option<R>> {
        // Replicated reads anchor on shard 0.
        let shard = self.home_shard(table, key).unwrap_or(0);
        let sp = self.span_start();
        let r = self.txn_at(shard).read(table, key, f);
        if let Some((ring, ctx, t0)) = sp {
            ring.record(&ctx, SpanKind::TxnRead, t0, ring.now_ns(), table.0 as u64, shard as u64);
        }
        r
    }

    /// Tracing hook for write-path ops: one `TxnWrite` span per call.
    #[inline]
    fn record_write_span(
        &self,
        sp: Option<(&'w SpanRing, TraceContext, u64)>,
        table: TableId,
        shard: Option<usize>,
    ) {
        if let Some((ring, ctx, t0)) = sp {
            let b = shard.map(|s| s as u64).unwrap_or(u64::MAX);
            ring.record(&ctx, SpanKind::TxnWrite, t0, ring.now_ns(), table.0 as u64, b);
        }
    }

    /// Update a record; fans out on replicated tables.
    pub fn update(&mut self, table: TableId, key: &[u8], value: &[u8]) -> OpResult<bool> {
        let sp = self.span_start();
        let home = self.home_shard(table, key);
        let r = match home {
            Some(s) => self.txn_at(s).update(table, key, value),
            None => {
                let mut hit = false;
                for s in 0..self.nshards() {
                    let r = self.txn_at(s).update(table, key, value)?;
                    if s == 0 {
                        hit = r;
                    }
                }
                Ok(hit)
            }
        };
        self.record_write_span(sp, table, home);
        r
    }

    /// Delete a record; fans out on replicated tables.
    pub fn delete(&mut self, table: TableId, key: &[u8]) -> OpResult<bool> {
        let sp = self.span_start();
        let home = self.home_shard(table, key);
        let r = match home {
            Some(s) => self.txn_at(s).delete(table, key),
            None => {
                let mut hit = false;
                for s in 0..self.nshards() {
                    let r = self.txn_at(s).delete(table, key)?;
                    if s == 0 {
                        hit = r;
                    }
                }
                Ok(hit)
            }
        };
        self.record_write_span(sp, table, home);
        r
    }

    /// Insert a record. Returns an opaque handle (shard + OID) for
    /// [`ShardedTransaction::insert_secondary`].
    pub fn insert(&mut self, table: TableId, key: &[u8], value: &[u8]) -> OpResult<u64> {
        let sp = self.span_start();
        let home = self.home_shard(table, key);
        let r = match home {
            Some(s) => {
                let oid = self.txn_at(s).insert(table, key, value)?;
                Ok(pack_handle(s, oid))
            }
            None => {
                let mut handle = 0;
                for s in 0..self.nshards() {
                    let oid = self.txn_at(s).insert(table, key, value)?;
                    if s == 0 {
                        handle = pack_handle(0, oid);
                    }
                }
                Ok(handle)
            }
        };
        self.record_write_span(sp, table, home);
        r
    }

    /// Register a secondary-index entry for a row inserted in this
    /// transaction. The handle names the owning shard, so the entry
    /// lands next to the row.
    pub fn insert_secondary(&mut self, index: IndexId, key: &[u8], handle: u64) -> OpResult<()> {
        let (shard, oid) = unpack_handle(handle);
        self.txn_at(shard).insert_secondary(index, key, oid)
    }

    /// Read through a secondary index. `OwnerPrefix` keys route
    /// directly; `Probe` keys search shards in order.
    pub fn read_secondary<R>(
        &mut self,
        index: IndexId,
        key: &[u8],
        f: impl FnOnce(&[u8]) -> R,
    ) -> OpResult<Option<R>> {
        let n = self.nshards();
        if n == 1 {
            return self.txn_at(0).read_secondary(index, key, f);
        }
        match self.routing.indexes.get(index.0 as usize).copied() {
            Some(IndexRoute::Primary(table)) => {
                let shard = self.home_shard(table, key).unwrap_or(0);
                self.txn_at(shard).read_secondary(index, key, f)
            }
            Some(IndexRoute::Secondary { routing: IndexRouting::OwnerPrefix(len) }) => {
                let routed = &key[..len.min(key.len())];
                let shard = shard_of_key(routed, n);
                self.txn_at(shard).read_secondary(index, key, f)
            }
            Some(IndexRoute::Secondary { routing: IndexRouting::Probe }) | None => {
                for s in 0..n {
                    if let Some(bytes) =
                        self.txn_at(s).read_secondary(index, key, |v| v.to_vec())?
                    {
                        return Ok(Some(f(&bytes)));
                    }
                }
                Ok(None)
            }
        }
    }

    /// Which single shard serves a `[low, high]` scan, if any. Sound
    /// because byte-wise order means every key in the range shares any
    /// prefix `low` and `high` agree on.
    fn scan_shard(&self, index: IndexId, low: &[u8], high: &[u8]) -> Option<usize> {
        let n = self.nshards();
        if n == 1 {
            return Some(0);
        }
        let prefix_route = |p: usize| -> Option<usize> {
            (low.len() >= p && high.len() >= p && low[..p] == high[..p])
                .then(|| shard_of_key(&low[..p], n))
        };
        match self.routing.indexes.get(index.0 as usize).copied() {
            Some(IndexRoute::Primary(table)) => match self.table_policy(table) {
                ShardPolicy::Replicated => Some(0),
                ShardPolicy::Hash { prefix: Some(p) } => prefix_route(p),
                ShardPolicy::Hash { prefix: None } => {
                    (low == high).then(|| shard_of_key(low, n))
                }
            },
            Some(IndexRoute::Secondary { routing: IndexRouting::OwnerPrefix(p) }) => {
                prefix_route(p)
            }
            Some(IndexRoute::Secondary { routing: IndexRouting::Probe }) | None => None,
        }
    }

    /// Range scan, ascending, both bounds inclusive. Single-shard when
    /// the routed prefix pins the range; otherwise every shard is
    /// scanned and results are merged in key order.
    pub fn scan(
        &mut self,
        index: IndexId,
        low: &[u8],
        high: &[u8],
        limit: Option<usize>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> OpResult<usize> {
        let sp = self.span_start();
        if let Some(s) = self.scan_shard(index, low, high) {
            let r = self.txn_at(s).scan(index, low, high, limit, f);
            if let (Some((ring, ctx, t0)), Ok(n)) = (sp, &r) {
                ring.record(&ctx, SpanKind::TxnScan, t0, ring.now_ns(), index.0 as u64, *n as u64);
            }
            return r;
        }
        let mut rows: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for s in 0..self.nshards() {
            self.txn_at(s).scan(index, low, high, limit, |k, v| {
                rows.push((k.to_vec(), v.to_vec()));
                true
            })?;
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        let mut delivered = 0usize;
        for (k, v) in &rows {
            if limit.is_some_and(|l| delivered >= l) {
                break;
            }
            delivered += 1;
            if !f(k, v) {
                break;
            }
        }
        if let Some((ring, ctx, t0)) = sp {
            ring.record(
                &ctx,
                SpanKind::TxnScan,
                t0,
                ring.now_ns(),
                index.0 as u64,
                delivered as u64,
            );
        }
        Ok(delivered)
    }

    /// Whether any participant has been doomed.
    pub fn is_doomed(&self) -> bool {
        let check = |s: &TxSlot<'_>| matches!(s, TxSlot::Active(t) if t.is_doomed());
        match &self.slots {
            Slots::One(s) => check(s),
            Slots::Many(v) => v.iter().any(check),
        }
    }

    /// Abort every participant.
    pub fn abort(self) {
        for slot in self.slots.into_vec() {
            if let TxSlot::Active(t) = slot {
                t.abort();
            }
        }
    }

    fn into_active(self) -> ActiveParts<'w> {
        let ShardedTransaction { db, twopc, trace, slots, .. } = self;
        let mut active = Vec::new();
        for (i, slot) in slots.into_vec().into_iter().enumerate() {
            if let TxSlot::Active(t) = slot {
                active.push((i, t));
            }
        }
        (db, twopc, trace, active)
    }

    /// Commit and wait for durability (on a synchronous-commit
    /// database). Returns the commit LSN — the coordinator's cstamp for
    /// a cross-shard transaction.
    pub fn commit(self) -> TxResult<Lsn> {
        // Fast path: one shard, one active transaction — the inner
        // commit verbatim (plus span recording when traced), with no
        // slot Vec materialized. Sampled commits must stay on the
        // allocation-free path (see tests/alloc_free.rs).
        if let ShardedTransaction { slots: Slots::One(TxSlot::Active(_)), .. } = &self {
            let ShardedTransaction { db, trace, slots, .. } = self;
            let Slots::One(TxSlot::Active(t)) = slots else { unreachable!("matched above") };
            if trace.is_none() {
                return t.commit();
            }
            return commit_one(db, trace, 0, t, true).map(|tok| tok.lsn());
        }
        let (db, twopc, trace, active) = self.into_active();
        commit_active(db, twopc, trace, active, true).map(|tok| tok.lsn())
    }

    /// Commit without waiting for durability; the returned token names
    /// the shard whose log backs the commit. Cross-shard transactions
    /// always wait for prepare + decide durability internally (the
    /// decide record *is* the commit), so their token is trivially
    /// durable.
    pub fn commit_deferred(self) -> TxResult<ShardedCommitToken> {
        // Same Vec-free fast path as `commit` for the one-shard case.
        if let ShardedTransaction { slots: Slots::One(TxSlot::Active(_)), .. } = &self {
            let ShardedTransaction { db, trace, slots, .. } = self;
            let Slots::One(TxSlot::Active(t)) = slots else { unreachable!("matched above") };
            return commit_one(db, trace, 0, t, false);
        }
        let (db, twopc, trace, active) = self.into_active();
        commit_active(db, twopc, trace, active, false)
    }
}

/// Commit token carrying the backing shard.
#[derive(Clone, Copy, Debug)]
pub struct ShardedCommitToken {
    shard: u32,
    token: CommitToken,
}

impl ShardedCommitToken {
    /// The commit timestamp (on the backing shard's timeline).
    pub fn lsn(&self) -> Lsn {
        self.token.lsn()
    }

    /// The shard whose log durability backs this commit.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The commit block's end offset in the backing shard's log, or
    /// `None` when trivially durable.
    pub fn end_offset(&self) -> Option<u64> {
        self.token.end_offset()
    }

    /// Block until the commit is durable (or `timeout` expires).
    pub fn wait_durable(
        &self,
        db: &ShardedDb,
        timeout: Duration,
    ) -> Result<(), ermia_common::LogError> {
        self.token.wait_durable(&db.inner.dbs[self.shard as usize], timeout)
    }
}

/// Shared commit tail for [`ShardedTransaction::commit`] (sync) and
/// [`ShardedTransaction::commit_deferred`].
fn commit_active<'w>(
    db: &ShardedDb,
    twopc: Option<&TwoPcTelemetry>,
    trace: Option<ActiveTrace<'_>>,
    active: Vec<(usize, Transaction<'w>)>,
    sync: bool,
) -> TxResult<ShardedCommitToken> {
    let mut readonly: Vec<(usize, Transaction<'w>)> = Vec::new();
    let mut writers: Vec<(usize, Transaction<'w>)> = Vec::new();
    for (i, t) in active {
        if t.has_writes() {
            writers.push((i, t));
        } else {
            readonly.push((i, t));
        }
    }
    // Read-only participants first: they publish nothing, so a failure
    // here (doomed by SSN read validation) can still abort the writers.
    let mut ro_token: Option<ShardedCommitToken> = None;
    let mut readonly = readonly.into_iter();
    while let Some((i, t)) = readonly.next() {
        match t.commit_deferred() {
            Ok(tok) => ro_token = Some(ShardedCommitToken { shard: i as u32, token: tok }),
            Err(r) => {
                for (_, t) in readonly {
                    t.abort();
                }
                for (_, t) in writers {
                    t.abort();
                }
                return Err(r);
            }
        }
    }
    let result = match writers.len() {
        0 => Ok(ro_token.unwrap_or(ShardedCommitToken {
            shard: 0,
            token: CommitToken::readonly_at(db.inner.dbs[0].now_lsn()),
        })),
        1 => {
            let (i, t) = writers.pop().expect("len checked");
            // `commit_one` records the span and runs tail capture
            // itself; return directly so the capture below cannot
            // double-fire.
            return commit_one(db, trace, i, t, sync);
        }
        _ => two_pc(db, twopc, trace, writers),
    };
    // Tail-based capture for engine-sampled traces: the server owns it
    // for wire-traced requests (it knows the opcode and key).
    if let Some(tr) = trace {
        if tr.sampled {
            let total = tr.ring.now_ns().saturating_sub(tr.start_ns);
            db.telemetry().tracer().maybe_capture_slow(&tr.ctx, "txn", 0, &[], total);
        }
    }
    result
}

/// Commit a single participant `t` on shard `i`: the inner commit plus
/// the durability/commit span and the engine-sampled tail capture.
/// Deliberately Vec-free — sampled single-shard commits ride the
/// allocation-free hot path (tests/alloc_free.rs asserts this).
fn commit_one(
    db: &ShardedDb,
    trace: Option<ActiveTrace<'_>>,
    i: usize,
    t: Transaction<'_>,
    sync: bool,
) -> TxResult<ShardedCommitToken> {
    let sp = trace.map(|tr| (tr, tr.ring.now_ns()));
    let token = if sync {
        // For a sync commit the inner call is dominated by the
        // group-commit wait, which is what the span names.
        let lsn = t.commit()?;
        if let Some((tr, t0)) = sp {
            tr.ring.record(&tr.ctx, SpanKind::DurabilityWait, t0, tr.ring.now_ns(), i as u64, 0);
        }
        CommitToken::readonly_at(lsn)
    } else {
        let tok = t.commit_deferred()?;
        if let Some((tr, t0)) = sp {
            tr.ring.record(&tr.ctx, SpanKind::CommitDeferred, t0, tr.ring.now_ns(), i as u64, 0);
        }
        tok
    };
    // Tail-based capture for engine-sampled traces: the server owns it
    // for wire-traced requests (it knows the opcode and key).
    if let Some(tr) = trace {
        if tr.sampled {
            let total = tr.ring.now_ns().saturating_sub(tr.start_ns);
            db.telemetry().tracer().maybe_capture_slow(&tr.ctx, "txn", 0, &[], total);
        }
    }
    Ok(ShardedCommitToken { shard: i as u32, token })
}

/// Decrements the in-doubt gauge when the 2PC window closes, on every
/// exit path.
struct InDoubtGuard<'a>(&'a AtomicU64);

impl Drop for InDoubtGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Relaxed);
    }
}

/// Two-phase commit across ≥2 writer shards. See the module docs for
/// the protocol; every durability wait happens before any in-memory
/// publish, so the decide record is the single commit point.
fn two_pc<'w>(
    db: &ShardedDb,
    twopc: Option<&TwoPcTelemetry>,
    trace: Option<ActiveTrace<'_>>,
    writers: Vec<(usize, Transaction<'w>)>,
) -> TxResult<ShardedCommitToken> {
    let inner = &*db.inner;
    inner.in_doubt.fetch_add(1, Relaxed);
    let _guard = InDoubtGuard(&inner.in_doubt);
    let prepare_start = Instant::now();
    // The trace id rides inside each participant's durable prepare
    // marker, so a replica (or recovery) applying the shipped log can
    // stitch its apply spans to this transaction.
    let (trace_hi, trace_lo) =
        trace.map(|t| (t.ctx.trace_hi, t.ctx.trace_lo)).unwrap_or((0, 0));
    let span = |kind: SpanKind, t0: u64, a: u64, b: u64| {
        if let Some(tr) = trace {
            tr.ring.record(&tr.ctx, kind, t0, tr.ring.now_ns(), a, b);
        }
    };
    let now = || trace.map(|tr| tr.ring.now_ns()).unwrap_or(0);

    // Phase 1: prepare, coordinator (lowest writer shard) first — its
    // prepare cstamp is the global transaction id.
    let mut rest = writers.into_iter();
    let (coord, ct) = rest.next().expect("two_pc needs writers");
    let t0 = now();
    let cp = match ct.prepare(PrepareMarker {
        coord_shard: coord as u32,
        coord_lsn: PrepareMarker::COORD_SELF,
        trace_hi,
        trace_lo,
    }) {
        Ok(p) => p,
        Err(r) => {
            for (_, t) in rest {
                t.abort();
            }
            return Err(r);
        }
    };
    let gtid_lsn = cp.cstamp().raw();
    span(SpanKind::TwoPcPrepare, t0, coord as u64, gtid_lsn);
    let mut prepared: Vec<(usize, PreparedTransaction<'w>)> = vec![(coord, cp)];
    loop {
        let Some((i, t)) = rest.next() else { break };
        let t0 = now();
        match t.prepare(PrepareMarker {
            coord_shard: coord as u32,
            coord_lsn: gtid_lsn,
            trace_hi,
            trace_lo,
        }) {
            Ok(p) => {
                span(SpanKind::TwoPcPrepare, t0, i as u64, p.cstamp().raw());
                prepared.push((i, p));
            }
            Err(r) => {
                for (_, p) in prepared {
                    p.abort();
                }
                for (_, t) in rest {
                    t.abort();
                }
                return Err(r);
            }
        }
    }
    if let Some(t) = twopc {
        for (i, p) in &prepared {
            t.ring.record(EventKind::TwoPcPrepare, *i as u64, p.cstamp().raw());
        }
    }

    // All prepares must be durable before the decide may exist: a
    // durable decide with a lost prepare would commit a partial
    // transaction at recovery.
    for (i, p) in &prepared {
        let t0 = now();
        if inner.dbs[*i].inner.log.wait_durable(p.end_offset()).is_err() {
            for (_, p) in prepared {
                p.abort();
            }
            return Err(AbortReason::LogFailure);
        }
        span(SpanKind::DurabilityWait, t0, *i as u64, 0);
    }
    if let Some(t) = twopc {
        t.slab.hist(TWOPC_PREPARE_HIST).record(prepare_start.elapsed().as_nanos() as u64);
    }
    if !inner.prepare_delay.is_zero() {
        std::thread::sleep(inner.prepare_delay);
    }

    // Phase 2: the decide record on the coordinator's log is the commit
    // point.
    let decide_start = Instant::now();
    let decide_t0 = now();
    let rec = DecideRecord { gtid_lsn, coord_shard: coord as u32, commit: true };
    let decide_ok = match write_decide(&inner.dbs[coord], rec) {
        Ok(end) => inner.dbs[coord].inner.log.wait_durable(end).is_ok(),
        Err(_) => false,
    };
    if !decide_ok {
        // The decide may or may not reach disk; either way the outcome
        // is atomic — recovery commits all participants iff it finds
        // the decide. In memory we must pick one answer now, and
        // without a durable decide that answer is abort.
        for (_, p) in prepared {
            p.abort();
        }
        return Err(AbortReason::LogFailure);
    }
    span(SpanKind::TwoPcDecide, decide_t0, gtid_lsn, 0);
    if let Some(t) = twopc {
        t.slab.hist(TWOPC_DECIDE_HIST).record(decide_start.elapsed().as_nanos() as u64);
        t.slab.add(TWOPC_CROSS, 1);
        t.ring.record(EventKind::TwoPcDecide, gtid_lsn, 1);
    }

    // Finalize: publish every participant in memory, then drop
    // best-effort decide copies on the other writers' logs so their
    // standalone recovery resolves without consulting the coordinator.
    let fin_t0 = now();
    let nparticipants = prepared.len() as u64;
    let mut coord_token = None;
    let mut others: Vec<usize> = Vec::with_capacity(prepared.len() - 1);
    for (i, p) in prepared {
        let tok = p.finish_commit();
        if i == coord {
            coord_token = Some(tok);
        } else {
            others.push(i);
        }
    }
    for i in others {
        let _ = write_decide(&inner.dbs[i], rec);
    }
    span(SpanKind::TwoPcFinalize, fin_t0, nparticipants, 0);
    Ok(ShardedCommitToken {
        shard: coord as u32,
        token: coord_token.expect("coordinator is in prepared"),
    })
}

// --- ShardedWorkerPool --------------------------------------------------

struct ShardedPoolInner {
    db: ShardedDb,
    capacity: usize,
    idle: Mutex<Vec<ShardedWorker>>,
    created: std::sync::atomic::AtomicUsize,
    outstanding: std::sync::atomic::AtomicUsize,
    returned: Condvar,
}

/// A bounded pool of [`ShardedWorker`]s — the sharded analogue of
/// [`WorkerPool`](crate::WorkerPool). One pooled unit holds a worker on
/// *every* shard, so `capacity` bounds total engine concurrency no
/// matter how sessions spread across shards: admission control stays a
/// single global bound.
#[derive(Clone)]
pub struct ShardedWorkerPool {
    inner: Arc<ShardedPoolInner>,
}

impl ShardedWorkerPool {
    /// Create a pool of at most `capacity` sharded workers. Workers are
    /// created on first use, not up front.
    pub fn new(db: &ShardedDb, capacity: usize) -> ShardedWorkerPool {
        assert!(capacity > 0, "worker pool needs capacity >= 1");
        ShardedWorkerPool {
            inner: Arc::new(ShardedPoolInner {
                db: db.clone(),
                capacity,
                idle: Mutex::new(Vec::with_capacity(capacity)),
                created: std::sync::atomic::AtomicUsize::new(0),
                outstanding: std::sync::atomic::AtomicUsize::new(0),
                returned: Condvar::new(),
            }),
        }
    }

    /// Check out a worker if one is idle or capacity remains; `None`
    /// when the pool is exhausted. Never blocks.
    pub fn try_checkout(&self) -> Option<PooledShardedWorker> {
        let inner = &self.inner;
        let mut idle = inner.idle.lock();
        if let Some(w) = idle.pop() {
            drop(idle);
            inner.outstanding.fetch_add(1, Relaxed);
            return Some(PooledShardedWorker { worker: Some(w), pool: Arc::clone(inner) });
        }
        // `created` is only bumped under the idle lock, so the capacity
        // check cannot race.
        if inner.created.load(Relaxed) < inner.capacity {
            inner.created.fetch_add(1, Relaxed);
            drop(idle);
            let w = inner.db.register_worker();
            inner.outstanding.fetch_add(1, Relaxed);
            return Some(PooledShardedWorker { worker: Some(w), pool: Arc::clone(inner) });
        }
        None
    }

    /// Check out a worker, waiting up to `timeout` for one to return.
    pub fn checkout_timeout(&self, timeout: Duration) -> Option<PooledShardedWorker> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(w) = self.try_checkout() {
                return Some(w);
            }
            let mut idle = self.inner.idle.lock();
            if !idle.is_empty() {
                continue; // a return won the race; retry the fast path
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            if self.inner.returned.wait_for(&mut idle, left).timed_out() {
                drop(idle);
                return self.try_checkout();
            }
        }
    }

    /// Pool capacity (the bound).
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Workers currently checked out.
    pub fn outstanding(&self) -> usize {
        self.inner.outstanding.load(Relaxed)
    }

    /// Workers parked in the pool right now.
    pub fn idle(&self) -> usize {
        self.inner.idle.lock().len()
    }

    /// Workers created so far (≤ capacity).
    pub fn created(&self) -> usize {
        self.inner.created.load(Relaxed)
    }
}

/// A checked-out [`ShardedWorker`]; derefs to it and returns it on drop
/// (including on unwind, so a panicking session cannot leak one).
pub struct PooledShardedWorker {
    worker: Option<ShardedWorker>,
    pool: Arc<ShardedPoolInner>,
}

impl std::ops::Deref for PooledShardedWorker {
    type Target = ShardedWorker;

    fn deref(&self) -> &ShardedWorker {
        self.worker.as_ref().expect("present until drop")
    }
}

impl std::ops::DerefMut for PooledShardedWorker {
    fn deref_mut(&mut self) -> &mut ShardedWorker {
        self.worker.as_mut().expect("present until drop")
    }
}

impl Drop for PooledShardedWorker {
    fn drop(&mut self) {
        let w = self.worker.take().expect("returned exactly once");
        self.pool.idle.lock().push(w);
        self.pool.outstanding.fetch_sub(1, Relaxed);
        self.pool.returned.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("ermia-shard-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Two keys guaranteed to land on different shards.
    fn cross_pair(shards: usize) -> (Vec<u8>, Vec<u8>) {
        let a = b"pair-a".to_vec();
        let home = shard_of_key(&a, shards);
        for i in 0..10_000u32 {
            let b = format!("pair-b-{i}").into_bytes();
            if shard_of_key(&b, shards) != home {
                return (a, b);
            }
        }
        panic!("no cross-shard key found");
    }

    #[test]
    fn shard_of_key_disperses_and_is_stable() {
        let mut counts = [0usize; 4];
        for i in 0..4096u32 {
            counts[shard_of_key(&i.to_be_bytes(), 4)] += 1;
        }
        for c in counts {
            assert!(c > 512, "lopsided hash: {counts:?}");
        }
        assert_eq!(shard_of_key(b"alice", 4), shard_of_key(b"alice", 4));
        assert_eq!(shard_of_key(b"anything", 1), 0);
    }

    #[test]
    fn single_shard_txn_reads_its_writes() {
        let db = ShardedDb::open(DbConfig::in_memory(), 2).unwrap();
        let t = db.create_table("kv");
        let mut w = db.register_worker();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        tx.insert(t, b"alice", b"100").unwrap();
        tx.commit().unwrap();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        let v = tx.read(t, b"alice", |v| v.to_vec()).unwrap();
        assert_eq!(v.as_deref(), Some(&b"100"[..]));
        tx.commit().unwrap();
    }

    #[test]
    fn cross_shard_commit_is_atomic_and_visible() {
        let db = ShardedDb::open(DbConfig::in_memory(), 2).unwrap();
        let t = db.create_table("kv");
        let (ka, kb) = cross_pair(2);
        let mut w = db.register_worker();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        tx.insert(t, &ka, b"va").unwrap();
        tx.insert(t, &kb, b"vb").unwrap();
        tx.commit().unwrap();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        assert_eq!(tx.read(t, &ka, |v| v.to_vec()).unwrap().as_deref(), Some(&b"va"[..]));
        assert_eq!(tx.read(t, &kb, |v| v.to_vec()).unwrap().as_deref(), Some(&b"vb"[..]));
        tx.commit().unwrap();
        // Both shards took part.
        let (c0, _) = db.shard(0).txn_counts();
        let (c1, _) = db.shard(1).txn_counts();
        assert!(c0 >= 1 && c1 >= 1, "both shards should have committed");
    }

    #[test]
    fn cross_shard_abort_leaves_nothing() {
        let db = ShardedDb::open(DbConfig::in_memory(), 2).unwrap();
        let t = db.create_table("kv");
        let (ka, kb) = cross_pair(2);
        let mut w = db.register_worker();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        tx.insert(t, &ka, b"va").unwrap();
        tx.insert(t, &kb, b"vb").unwrap();
        tx.abort();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        assert!(tx.read(t, &ka, |_| ()).unwrap().is_none());
        assert!(tx.read(t, &kb, |_| ()).unwrap().is_none());
        tx.commit().unwrap();
    }

    #[test]
    fn replicated_table_fans_writes_and_reads_anywhere() {
        let db = ShardedDb::open(DbConfig::in_memory(), 3).unwrap();
        let t = db.create_table_with_policy("item", ShardPolicy::Replicated);
        let mut w = db.register_worker();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        tx.insert(t, b"i-1", b"widget").unwrap();
        tx.commit().unwrap();
        // Every shard holds the row.
        for s in 0..3 {
            let mut iw = db.shard(s).register_worker();
            let mut itx = iw.begin(IsolationLevel::Snapshot);
            let v = itx.read(t, b"i-1", |v| v.to_vec()).unwrap();
            assert_eq!(v.as_deref(), Some(&b"widget"[..]), "shard {s} missing replica");
            itx.commit().unwrap();
        }
    }

    #[test]
    fn prefix_policy_keeps_cohort_on_one_shard_and_scans_merge() {
        let db = ShardedDb::open(DbConfig::in_memory(), 4).unwrap();
        let t = db.create_table_with_policy("orders", ShardPolicy::Hash { prefix: Some(4) });
        let mut w = db.register_worker();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        for wh in 0..4u32 {
            for o in 0..8u32 {
                let mut key = wh.to_be_bytes().to_vec();
                key.extend_from_slice(&o.to_be_bytes());
                tx.insert(t, &key, format!("o-{wh}-{o}").as_bytes()).unwrap();
            }
        }
        tx.commit().unwrap();
        // Same-prefix scan stays on one shard and sees all 8 in order.
        let mut tx = w.begin(IsolationLevel::Snapshot);
        let idx = db.shard(0).primary_index(t);
        let low = 2u32.to_be_bytes().to_vec();
        let mut high = 2u32.to_be_bytes().to_vec();
        high.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut seen = Vec::new();
        let n = tx
            .scan(idx, &low, &high, None, |k, _| {
                seen.push(k.to_vec());
                true
            })
            .unwrap();
        assert_eq!(n, 8);
        assert!(seen.windows(2).all(|p| p[0] < p[1]), "ordered");
        tx.commit().unwrap();
        // Cross-prefix scan fans out and merges in key order.
        let mut tx2 = w.begin(IsolationLevel::Snapshot);
        let mut all = Vec::new();
        let full = tx2
            .scan(idx, &[0u8; 4], &[0xff; 8], None, |k, _| {
                all.push(k.to_vec());
                true
            })
            .unwrap();
        assert_eq!(full, 32);
        assert!(all.windows(2).all(|p| p[0] < p[1]), "merged order");
        tx2.commit().unwrap();
    }

    #[test]
    fn secondary_owner_prefix_routes_with_row() {
        let db = ShardedDb::open(DbConfig::in_memory(), 4).unwrap();
        let t = db.create_table_with_policy("cust", ShardPolicy::Hash { prefix: Some(4) });
        let by_name = db.create_secondary_index(t, "cust_by_name", IndexRouting::OwnerPrefix(4));
        let mut w = db.register_worker();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        let mut key = 7u32.to_be_bytes().to_vec();
        key.extend_from_slice(b"c-1");
        let h = tx.insert(t, &key, b"carol").unwrap();
        let mut skey = 7u32.to_be_bytes().to_vec();
        skey.extend_from_slice(b"CAROL");
        tx.insert_secondary(by_name, &skey, h).unwrap();
        tx.commit().unwrap();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        let v = tx.read_secondary(by_name, &skey, |v| v.to_vec()).unwrap();
        assert_eq!(v.as_deref(), Some(&b"carol"[..]));
        tx.commit().unwrap();
    }

    #[test]
    fn cross_shard_commit_survives_restart() {
        let dir = tmpdir("2pc-restart");
        let (ka, kb) = cross_pair(2);
        {
            let db = ShardedDb::open(DbConfig::durable(&dir), 2).unwrap();
            let t = db.create_table("kv");
            let mut w = db.register_worker();
            let mut tx = w.begin(IsolationLevel::Snapshot);
            tx.insert(t, &ka, b"va").unwrap();
            tx.insert(t, &kb, b"vb").unwrap();
            tx.commit().unwrap();
        }
        let db = ShardedDb::open(DbConfig::durable(&dir), 2).unwrap();
        let t = db.create_table("kv");
        let stats = db.recover().unwrap();
        // Finalized on both shards before the drop: participants hold
        // prepare + decide, so nothing stays in doubt.
        assert_eq!(
            stats.per_shard.iter().map(|s| s.in_doubt).sum::<u64>(),
            0,
            "finalized 2PC must not reopen in doubt"
        );
        let mut w = db.register_worker();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        assert_eq!(tx.read(t, &ka, |v| v.to_vec()).unwrap().as_deref(), Some(&b"va"[..]));
        assert_eq!(tx.read(t, &kb, |v| v.to_vec()).unwrap().as_deref(), Some(&b"vb"[..]));
        tx.commit().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Crash between prepare and decide: recovery must presume abort.
    #[test]
    fn in_doubt_without_decide_resolves_to_abort() {
        let dir = tmpdir("2pc-presume-abort");
        let (ka, kb) = cross_pair(2);
        {
            let db = ShardedDb::open(DbConfig::durable(&dir), 2).unwrap();
            let t = db.create_table("kv");
            let sa = shard_of_key(&ka, 2);
            let sb = 1 - sa;
            let mut wa = db.shard(sa).register_worker();
            let mut wb = db.shard(sb).register_worker();
            let mut ta = wa.begin(IsolationLevel::Snapshot);
            ta.insert(t, &ka, b"va").unwrap();
            let mut tb = wb.begin(IsolationLevel::Snapshot);
            tb.insert(t, &kb, b"vb").unwrap();
            let pa = ta
                .prepare(PrepareMarker {
                    coord_shard: sa as u32,
                    coord_lsn: PrepareMarker::COORD_SELF,
                    trace_hi: 0,
                    trace_lo: 0,
                })
                .unwrap();
            let pb = tb
                .prepare(PrepareMarker {
                    coord_shard: sa as u32,
                    coord_lsn: pa.cstamp().raw(),
                    trace_hi: 0,
                    trace_lo: 0,
                })
                .unwrap();
            db.shard(sa).log().wait_durable(pa.end_offset()).unwrap();
            db.shard(sb).log().wait_durable(pb.end_offset()).unwrap();
            // Simulated crash: no decide record, drop without finalize.
        }
        let db = ShardedDb::open(DbConfig::durable(&dir), 2).unwrap();
        let t = db.create_table("kv");
        let stats = db.recover().unwrap();
        assert_eq!(stats.resolved_aborts, 2, "both prepares presumed aborted");
        assert_eq!(stats.resolved_commits, 0);
        let mut w = db.register_worker();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        assert!(tx.read(t, &ka, |_| ()).unwrap().is_none());
        assert!(tx.read(t, &kb, |_| ()).unwrap().is_none());
        tx.commit().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Crash after the coordinator's decide is durable but before any
    /// finalize: recovery must roll the whole transaction forward.
    #[test]
    fn in_doubt_with_durable_decide_resolves_to_commit() {
        let dir = tmpdir("2pc-resolve-commit");
        let (ka, kb) = cross_pair(2);
        {
            let db = ShardedDb::open(DbConfig::durable(&dir), 2).unwrap();
            let t = db.create_table("kv");
            let sa = shard_of_key(&ka, 2);
            let sb = 1 - sa;
            let mut wa = db.shard(sa).register_worker();
            let mut wb = db.shard(sb).register_worker();
            let mut ta = wa.begin(IsolationLevel::Snapshot);
            ta.insert(t, &ka, b"va").unwrap();
            let mut tb = wb.begin(IsolationLevel::Snapshot);
            tb.insert(t, &kb, b"vb").unwrap();
            let pa = ta
                .prepare(PrepareMarker {
                    coord_shard: sa as u32,
                    coord_lsn: PrepareMarker::COORD_SELF,
                    trace_hi: 0,
                    trace_lo: 0,
                })
                .unwrap();
            let gtid = pa.cstamp().raw();
            let pb = tb
                .prepare(PrepareMarker {
                    coord_shard: sa as u32,
                    coord_lsn: gtid,
                    trace_hi: 0,
                    trace_lo: 0,
                })
                .unwrap();
            db.shard(sa).log().wait_durable(pa.end_offset()).unwrap();
            db.shard(sb).log().wait_durable(pb.end_offset()).unwrap();
            let rec = DecideRecord { gtid_lsn: gtid, coord_shard: sa as u32, commit: true };
            let end = write_decide(db.shard(sa), rec).unwrap();
            db.shard(sa).log().wait_durable(end).unwrap();
            // Simulated crash before finalize: drop the prepared txns.
        }
        let db = ShardedDb::open(DbConfig::durable(&dir), 2).unwrap();
        let t = db.create_table("kv");
        let stats = db.recover().unwrap();
        // The coordinator resolves its own prepare locally (decide in
        // the same log); only the participant crosses shards.
        assert_eq!(stats.resolved_commits, 1, "decide is the commit point");
        assert_eq!(stats.resolved_aborts, 0);
        let mut w = db.register_worker();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        assert_eq!(tx.read(t, &ka, |v| v.to_vec()).unwrap().as_deref(), Some(&b"va"[..]));
        assert_eq!(tx.read(t, &kb, |v| v.to_vec()).unwrap().as_deref(), Some(&b"vb"[..]));
        tx.commit().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Repeated seeded cycles: a prepared pair either commits on both
    /// shards or on neither, deterministically per decide presence.
    #[test]
    fn in_doubt_resolution_is_deterministic_across_cycles() {
        for cycle in 0u32..6 {
            let with_decide = cycle % 2 == 0;
            let dir = tmpdir(&format!("2pc-cycle-{cycle}"));
            let (ka, kb) = cross_pair(2);
            {
                let db = ShardedDb::open(DbConfig::durable(&dir), 2).unwrap();
                let t = db.create_table("kv");
                let sa = shard_of_key(&ka, 2);
                let sb = 1 - sa;
                let mut wa = db.shard(sa).register_worker();
                let mut wb = db.shard(sb).register_worker();
                let mut ta = wa.begin(IsolationLevel::Snapshot);
                ta.insert(t, &ka, b"va").unwrap();
                let mut tb = wb.begin(IsolationLevel::Snapshot);
                tb.insert(t, &kb, b"vb").unwrap();
                let pa = ta
                    .prepare(PrepareMarker {
                        coord_shard: sa as u32,
                        coord_lsn: PrepareMarker::COORD_SELF,
                        trace_hi: 0,
                        trace_lo: 0,
                    })
                    .unwrap();
                let gtid = pa.cstamp().raw();
                let pb = tb
                    .prepare(PrepareMarker {
                        coord_shard: sa as u32,
                        coord_lsn: gtid,
                        trace_hi: 0,
                        trace_lo: 0,
                    })
                    .unwrap();
                db.shard(sa).log().wait_durable(pa.end_offset()).unwrap();
                db.shard(sb).log().wait_durable(pb.end_offset()).unwrap();
                if with_decide {
                    let rec =
                        DecideRecord { gtid_lsn: gtid, coord_shard: sa as u32, commit: true };
                    let end = write_decide(db.shard(sa), rec).unwrap();
                    db.shard(sa).log().wait_durable(end).unwrap();
                }
            }
            let db = ShardedDb::open(DbConfig::durable(&dir), 2).unwrap();
            let t = db.create_table("kv");
            db.recover().unwrap();
            let mut w = db.register_worker();
            let mut tx = w.begin(IsolationLevel::Snapshot);
            let a = tx.read(t, &ka, |_| ()).unwrap().is_some();
            let b = tx.read(t, &kb, |_| ()).unwrap().is_some();
            tx.commit().unwrap();
            assert_eq!(a, b, "cycle {cycle}: fractured resolution");
            assert_eq!(a, with_decide, "cycle {cycle}: wrong verdict");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn sharded_pool_bounds_total_concurrency() {
        let db = ShardedDb::open(DbConfig::in_memory(), 2).unwrap();
        let t = db.create_table("kv");
        let pool = ShardedWorkerPool::new(&db, 2);
        let mut a = pool.try_checkout().expect("first");
        let b = pool.try_checkout().expect("second");
        assert!(pool.try_checkout().is_none(), "capacity 2 must bound checkouts");
        assert_eq!(pool.outstanding(), 2);
        // A pooled worker runs transactions on any shard.
        let mut tx = a.begin(IsolationLevel::Snapshot);
        tx.insert(t, b"k", b"v").unwrap();
        tx.commit().unwrap();
        drop(a);
        assert_eq!(pool.idle(), 1);
        let c = pool.try_checkout().expect("recycled");
        drop(b);
        drop(c);
        assert_eq!(pool.created(), 2);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn shard_metrics_are_exposed() {
        let db = ShardedDb::open(DbConfig::in_memory(), 2).unwrap();
        let t = db.create_table("kv");
        let (ka, kb) = cross_pair(2);
        let mut w = db.register_worker();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        tx.insert(t, &ka, b"a").unwrap();
        tx.insert(t, &kb, b"b").unwrap();
        tx.commit().unwrap();
        let text = db.telemetry().render_prometheus();
        for name in [
            "ermia_shard_count",
            "ermia_shard_in_doubt",
            "ermia_shard_txns_total",
            "ermia_shard_cross_txns_total",
            "ermia_2pc_prepare_ns",
            "ermia_2pc_decide_ns",
        ] {
            assert!(text.contains(name), "missing metric {name} in exposition");
        }
        assert!(text.contains("shard=\"1\""), "per-shard label missing");
    }
}
