//! Engine configuration.

use std::time::Duration;

use ermia_log::LogConfig;

/// Isolation level of a transaction.
///
/// Both run on the same snapshot-isolation machinery; `Serializable`
/// additionally runs the SSN certifier and node-set phantom validation.
/// The paper's two flavors: `Snapshot` = ERMIA-SI, `Serializable` =
/// ERMIA-SSN.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IsolationLevel {
    Snapshot,
    Serializable,
}

/// Database configuration.
#[derive(Clone, Debug)]
pub struct DbConfig {
    /// Log manager configuration (directory, segment/buffer sizes, ...).
    pub log: LogConfig,
    /// Wait for the group-commit flusher before reporting commit.
    pub synchronous_commit: bool,
    /// Run the background version garbage collector.
    pub enable_gc: bool,
    /// GC sweep interval.
    pub gc_interval: Duration,
    /// Epoch ticker interval for the RCU timescale (tree/version memory).
    pub rcu_epoch_interval: Duration,
    /// Emulate traditional per-operation logging: every update takes its
    /// own round trip to the centralized log buffer instead of one block
    /// per transaction (the Fig. 10 ablation).
    pub per_op_logging: bool,
    /// Collect per-component time breakdowns in each worker (Fig. 11).
    pub profile: bool,
    /// Maintain per-transaction telemetry (commit/abort counters by
    /// reason, chain-length samples, flight-recorder events). The write
    /// side is a handful of relaxed increments per transaction; disable
    /// only to measure its cost (the scaling bench's A/B run).
    pub telemetry: bool,
    /// Values at or above this size are diverted to the large-object
    /// (blob) store at commit; the log carries only an indirect pointer
    /// (§3.3, log feature 4). `usize::MAX` disables diversion.
    pub large_value_threshold: usize,
    /// Head-based trace sampling: a sharded worker traces every Nth
    /// transaction it begins without wire-supplied context (0 = off,
    /// the default — an untraced transaction's whole tracing cost is
    /// one branch). Wire-propagated `TraceContext` is honored
    /// regardless of this knob.
    pub trace_sample_n: u32,
    /// Tail-based slow-op capture: a *traced* operation slower than
    /// this many microseconds has its span buffer retained in the
    /// worst-K slow-op log (`ermia_slow_ops`). 0 disables retention.
    /// Untraced operations are never affected, so a nonzero default is
    /// free while tracing is off.
    pub trace_slow_us: u64,
}

impl Default for DbConfig {
    fn default() -> DbConfig {
        DbConfig {
            log: LogConfig::default(),
            synchronous_commit: false,
            enable_gc: true,
            gc_interval: Duration::from_millis(20),
            rcu_epoch_interval: Duration::from_millis(2),
            per_op_logging: false,
            profile: false,
            telemetry: true,
            large_value_threshold: usize::MAX,
            trace_sample_n: 0,
            trace_slow_us: 10_000,
        }
    }
}

impl DbConfig {
    /// Everything in memory; the configuration used by tests and the
    /// CC-focused experiments.
    pub fn in_memory() -> DbConfig {
        DbConfig { log: LogConfig::in_memory(), ..DbConfig::default() }
    }

    /// Log to `dir` (checkpoints go to `dir` as well).
    pub fn durable(dir: impl Into<std::path::PathBuf>) -> DbConfig {
        DbConfig {
            log: LogConfig { dir: Some(dir.into()), ..LogConfig::default() },
            synchronous_commit: true,
            ..DbConfig::default()
        }
    }
}
