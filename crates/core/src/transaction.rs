//! Transactions: snapshot isolation, the Serial Safety Net, and the
//! pre-commit / post-commit pipeline (paper §3.1, §3.6).
//!
//! # Allocation-free hot path
//!
//! The transaction working sets (read set, write set, secondary set,
//! node set), the write keys, the private log buffer, and the version
//! nodes themselves are all recycled through the worker's
//! [`Scratch`]: the sets are *taken* at begin (a pointer move), cleared
//! and returned at release, key bytes are bump-copied into a reused
//! arena, and new versions come from a per-worker cache fed by the GC.
//! After warmup, begin + execute + commit of a read/write transaction
//! touches the allocator zero times.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use ermia_common::{AbortReason, IndexId, Lsn, Oid, OpResult, Stamp, TableId, Tid, TxResult};
use ermia_epoch::Guard;
use ermia_index::{BTree, InsertOutcome, LeafSnapshot, ScanControl};
use ermia_storage::{defer_release, OidArray, TidStatus, TxContext, Version};
use ermia_telemetry::EventKind;

use crate::config::IsolationLevel;
use crate::database::{Database, IndexInfo, Table};
use crate::metrics::{
    IDX_INDEX, IDX_INDIRECTION, IDX_LOG, IDX_TXNS, TXN_ABORT_BASE, TXN_CHAIN_HIST, TXN_COMMITS,
};
use crate::profile::Timed;
use crate::worker::{Scratch, Worker};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum WriteKind {
    Insert,
    Update,
    Delete,
}

/// A range in the worker's key arena (`Scratch::keys`). Replaces a
/// per-write `Box<[u8]>` copy of the key.
#[derive(Clone, Copy)]
pub(crate) struct KeyRef {
    start: u32,
    len: u32,
}

impl KeyRef {
    fn stash(arena: &mut Vec<u8>, key: &[u8]) -> KeyRef {
        let start = arena.len() as u32;
        arena.extend_from_slice(key);
        KeyRef { start, len: key.len() as u32 }
    }

    fn slice(self, arena: &[u8]) -> &[u8] {
        &arena[self.start as usize..(self.start + self.len) as usize]
    }
}

pub(crate) struct WriteEntry {
    table: Arc<Table>,
    oid: Oid,
    key: KeyRef,
    /// The version we installed (TID-stamped until post-commit).
    new: *mut Version,
    /// The committed version we overwrote (null for inserts).
    prev: *mut Version,
    kind: WriteKind,
}

pub(crate) struct SecondaryEntry {
    index: Arc<IndexInfo>,
    key: KeyRef,
    oid: Oid,
}

/// An in-flight transaction. Created by [`Worker::begin`]; consumed by
/// [`Transaction::commit`] or [`Transaction::abort`] (dropping an
/// unfinished transaction aborts it).
pub struct Transaction<'w> {
    db: &'w Database,
    scratch: &'w mut Scratch,
    /// Single pin on the unified epoch: versions, tree nodes, and TID
    /// contexts we can reach all stay allocated while it is held (the
    /// paper's three timescales were pinned in lockstep anyway; one pin
    /// is equivalent and 3× cheaper per begin).
    guard: Guard<'w>,
    tid: Tid,
    begin: Lsn,
    isolation: IsolationLevel,
    /// SSN η(T): latest committed predecessor stamp.
    pstamp: u64,
    /// SSN π(T): earliest successor stamp (∞ = none).
    sstamp: u64,
    // Working sets, borrowed from the worker's scratch for the duration
    // of the transaction (returned, cleared but with capacity, at
    // release).
    reads: Vec<*mut Version>,
    writes: Vec<WriteEntry>,
    secondary: Vec<SecondaryEntry>,
    node_set: Vec<(Arc<BTree>, LeafSnapshot)>,
    /// Version-chain nodes inspected by every visibility walk of this
    /// transaction. A plain local accumulator so the per-read path pays
    /// one integer add; folded into the telemetry chain-length
    /// histogram once, at release.
    chain_walked: u64,
    doomed: Option<AbortReason>,
    finished: bool,
}

/// Outcome of a visibility probe on one chain.
struct VisibleVersion {
    ptr: *mut Version,
    /// Effective creation stamp (resolved through the TID table when the
    /// version has not finished post-commit).
    cstamp: u64,
    /// Created by this very transaction.
    own: bool,
}

impl<'w> Transaction<'w> {
    pub(crate) fn begin(worker: &'w mut Worker, isolation: IsolationLevel) -> Transaction<'w> {
        let Worker { db, epoch_handle, scratch } = worker;
        // Conditional quiescent point: transaction boundaries are where
        // workers hold no epoch-protected references.
        let guard = epoch_handle.pin();
        // Snapshot views (forks, replica serving handles) pin their own
        // consistent cut; everything else reads at the live log tail.
        let begin = db.view_cut().unwrap_or_else(|| db.inner.log.tail_lsn());
        let (tid, _ctx) = db.inner.tid.acquire(begin, &mut scratch.tid_hint);
        if let Some(t) = &scratch.telemetry {
            t.ring.record(EventKind::TxnBegin, tid.raw(), 0);
        }
        scratch.logbuf.clear();
        scratch.keys.clear();
        Transaction {
            db,
            guard,
            tid,
            begin,
            isolation,
            pstamp: 0,
            sstamp: Lsn::MAX.raw(),
            reads: std::mem::take(&mut scratch.reads),
            writes: std::mem::take(&mut scratch.writes),
            secondary: std::mem::take(&mut scratch.secondary),
            node_set: std::mem::take(&mut scratch.node_set),
            chain_walked: 0,
            scratch,
            doomed: None,
            finished: false,
        }
    }

    /// This transaction's ID.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// The begin timestamp (snapshot point).
    pub fn begin_lsn(&self) -> Lsn {
        self.begin
    }

    /// True once a CC violation doomed the transaction: further data
    /// operations fail fast with the original reason — the paper's early
    /// detection of transactions destined to abort.
    pub fn is_doomed(&self) -> bool {
        self.doomed.is_some()
    }

    #[inline]
    fn ctx(&self) -> &TxContext {
        self.db.inner.tid.ctx(self.tid)
    }

    #[inline]
    fn check_doomed(&self) -> OpResult<()> {
        match self.doomed {
            Some(r) => Err(r),
            None => Ok(()),
        }
    }

    #[inline]
    fn doom(&mut self, r: AbortReason) -> AbortReason {
        self.doomed = Some(r);
        r
    }

    /// Admission check for write operations: while the database is in
    /// degraded read-only mode (log poisoned), writes are refused the
    /// moment they are issued — long before commit would discover the
    /// poisoned log — so the transaction aborts with a typed reason
    /// instead of burning work it can never make durable. One relaxed
    /// load; reads are not checked and keep committing off the snapshot.
    #[inline]
    fn check_writable(&mut self) -> OpResult<()> {
        if self.db.inner.state.load(Ordering::Relaxed) == crate::database::DbState::Degraded as u8
            || self.db.view.is_some()
        {
            return Err(self.doom(AbortReason::ReadOnlyMode));
        }
        Ok(())
    }

    fn serializable(&self) -> bool {
        self.isolation == IsolationLevel::Serializable
    }

    /// Record (into `scratch.valid_idx`) the indices of node-set entries
    /// for `tree` that are currently valid. Captured immediately before
    /// one of our own inserts so that [`Transaction::refresh_node_set`]
    /// can distinguish self-inflicted version bumps from genuine
    /// concurrent phantoms.
    fn capture_valid_node_entries(&mut self, tree: &Arc<BTree>) {
        let valid = &mut self.scratch.valid_idx;
        valid.clear();
        for (i, (t2, snap)) in self.node_set.iter().enumerate() {
            if Arc::ptr_eq(t2, tree) && t2.validate(snap) {
                valid.push(i);
            }
        }
    }

    /// Re-stamp entries that were valid before our own insert and are
    /// stale now: the change is (with overwhelming probability) ours.
    /// Entries already stale beforehand keep their old stamp and abort
    /// the transaction at pre-commit — a real phantom.
    fn refresh_node_set(&mut self) {
        for &i in &self.scratch.valid_idx {
            let (tree, snap) = &mut self.node_set[i];
            if !tree.validate(snap) {
                tree.refresh_snapshot(snap);
            }
        }
    }

    // ------------------------------------------------------------------
    // Visibility (§3.6.1)
    // ------------------------------------------------------------------

    /// Walk a version chain and return the version this snapshot reads.
    ///
    /// `None` means the record does not exist in this snapshot (no
    /// visible version, or the visible version is a tombstone). Under
    /// SSN, skipping committed-but-too-new versions registers an
    /// anti-dependency: this transaction must serialize before their
    /// creators.
    fn fetch_visible(&mut self, oids: &OidArray, oid: Oid) -> OpResult<Option<VisibleVersion>> {
        let mut cur = oids.head(oid);
        let mut skipped_min: u64 = u64::MAX;
        let mut walked: u64 = 0;
        let result = loop {
            if cur.is_null() {
                break None;
            }
            walked += 1;
            let v = unsafe { &*cur };
            match self.visibility_of(v) {
                Visibility::Visible { cstamp, own } => {
                    break Some(VisibleVersion { ptr: cur, cstamp, own });
                }
                Visibility::SkipCommitted { cstamp } => {
                    skipped_min = skipped_min.min(cstamp);
                    cur = v.next.load(Ordering::Acquire);
                }
                Visibility::SkipUncommitted => {
                    cur = v.next.load(Ordering::Acquire);
                }
            }
        };
        // Chain nodes inspected before the verdict — the GC-health
        // signal the paper's Fig. 9 degradation traces back to. Only
        // accumulated here; the histogram is fed once per transaction
        // at release so this per-read path stays telemetry-free.
        self.chain_walked += walked;
        if self.serializable() && skipped_min != u64::MAX {
            // We read beneath committed overwrites: π(T) shrinks to the
            // earliest of their stamps.
            self.sstamp = self.sstamp.min(skipped_min);
            if self.sstamp <= self.pstamp {
                return Err(self.doom(AbortReason::SsnExclusion));
            }
        }
        match result {
            Some(vis) => {
                if unsafe { (*vis.ptr).tombstone } {
                    Ok(None)
                } else {
                    Ok(Some(vis))
                }
            }
            None => Ok(None),
        }
    }

    /// Decide visibility of a single version, resolving TID stamps
    /// through the owner's context (§3.5) and spinning through the brief
    /// pre-commit window when the verdict depends on an undecided
    /// transaction with an older commit stamp.
    fn visibility_of(&self, v: &Version) -> Visibility {
        loop {
            let stamp = v.stamp();
            if !stamp.is_tid() {
                let c = stamp.as_lsn().raw();
                if c < self.begin.raw() {
                    return Visibility::Visible { cstamp: c, own: false };
                }
                return Visibility::SkipCommitted { cstamp: c };
            }
            let owner = stamp.as_tid();
            if owner == self.tid {
                return Visibility::Visible { cstamp: u64::MAX, own: true };
            }
            match self.db.inner.tid.inquire(owner) {
                TidStatus::InFlight => return Visibility::SkipUncommitted,
                TidStatus::Precommit(c) => {
                    if !c.is_null() && c.raw() >= self.begin.raw() {
                        // Even if it commits, it commits after us.
                        return Visibility::SkipCommitted { cstamp: c.raw() };
                    }
                    // Undecided with a (possibly) older stamp: the window
                    // spans no I/O; wait briefly for the verdict.
                    std::thread::yield_now();
                }
                TidStatus::Committed(c) => {
                    if c.raw() < self.begin.raw() {
                        return Visibility::Visible { cstamp: c.raw(), own: false };
                    }
                    return Visibility::SkipCommitted { cstamp: c.raw() };
                }
                TidStatus::Aborted => return Visibility::SkipUncommitted,
                TidStatus::Stale => {
                    // Post-commit finished: the stamp is now an LSN.
                    std::thread::yield_now();
                }
            }
        }
    }

    /// SSN read registration (in-flight exclusion-window maintenance).
    fn register_read(&mut self, vis: &VisibleVersion) -> OpResult<()> {
        if vis.own || !self.serializable() {
            return Ok(());
        }
        let v = unsafe { &*vis.ptr };
        // η(T) absorbs the creator's stamp; π(T) shrinks to the
        // overwriter's stamp if the version is already overwritten.
        self.pstamp = self.pstamp.max(vis.cstamp);
        let vs = v.sstamp.load(Ordering::Acquire);
        if vs != Lsn::MAX.raw() {
            self.sstamp = self.sstamp.min(vs);
        }
        if self.sstamp <= self.pstamp {
            return Err(self.doom(AbortReason::SsnExclusion));
        }
        self.reads.push(vis.ptr);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Data operations (§3.2)
    // ------------------------------------------------------------------

    /// Read a record by primary key; `f` receives the visible payload.
    pub fn read<R>(
        &mut self,
        table: TableId,
        key: &[u8],
        f: impl FnOnce(&[u8]) -> R,
    ) -> OpResult<Option<R>> {
        self.check_doomed()?;
        let t = self.db.table(table);
        let profile = self.db.inner.cfg.profile;
        let timer = Timed::start(profile);
        let (oid, snap) = t.primary.get(&self.guard, key);
        Timed::stop(timer, self.scratch.breakdown.counter(IDX_INDEX));
        let Some(oid) = oid else {
            if self.serializable() {
                self.node_set.push((Arc::clone(&t.primary), snap));
            }
            return Ok(None);
        };
        let timer = Timed::start(profile);
        let vis = self.fetch_visible(&t.oids, Oid(oid as u32))?;
        Timed::stop(timer, self.scratch.breakdown.counter(IDX_INDIRECTION));
        match vis {
            Some(vis) => {
                self.register_read(&vis)?;
                let data = unsafe { &(*vis.ptr).data };
                Ok(Some(f(data)))
            }
            None => Ok(None),
        }
    }

    /// Read through a secondary index.
    pub fn read_secondary<R>(
        &mut self,
        index: IndexId,
        key: &[u8],
        f: impl FnOnce(&[u8]) -> R,
    ) -> OpResult<Option<R>> {
        self.check_doomed()?;
        let idx = self.db.index(index);
        let t = self.db.table(idx.table);
        let (oid, snap) = idx.tree.get(&self.guard, key);
        let Some(oid) = oid else {
            if self.serializable() {
                self.node_set.push((Arc::clone(&idx.tree), snap));
            }
            return Ok(None);
        };
        match self.fetch_visible(&t.oids, Oid(oid as u32))? {
            Some(vis) => {
                self.register_read(&vis)?;
                let data = unsafe { &(*vis.ptr).data };
                Ok(Some(f(data)))
            }
            None => Ok(None),
        }
    }

    /// Update a record; returns false if the key does not exist in this
    /// snapshot. First-updater-wins: a conflicting concurrent writer
    /// dooms this transaction immediately.
    pub fn update(&mut self, table: TableId, key: &[u8], value: &[u8]) -> OpResult<bool> {
        self.check_doomed()?;
        self.check_writable()?;
        let t = self.db.table(table);
        let profile = self.db.inner.cfg.profile;
        let timer = Timed::start(profile);
        let (oid, snap) = t.primary.get(&self.guard, key);
        Timed::stop(timer, self.scratch.breakdown.counter(IDX_INDEX));
        let Some(oid) = oid else {
            if self.serializable() {
                self.node_set.push((Arc::clone(&t.primary), snap));
            }
            return Ok(false);
        };
        let timer = Timed::start(profile);
        let r = self.install_version(&t, Oid(oid as u32), key, value, WriteKind::Update);
        Timed::stop(timer, self.scratch.breakdown.counter(IDX_INDIRECTION));
        r
    }

    /// Delete a record (tombstone install, §3.2); returns false on miss.
    pub fn delete(&mut self, table: TableId, key: &[u8]) -> OpResult<bool> {
        self.check_doomed()?;
        self.check_writable()?;
        let t = self.db.table(table);
        let (oid, snap) = t.primary.get(&self.guard, key);
        let Some(oid) = oid else {
            if self.serializable() {
                self.node_set.push((Arc::clone(&t.primary), snap));
            }
            return Ok(false);
        };
        self.install_version(&t, Oid(oid as u32), key, &[], WriteKind::Delete)
    }

    /// Install a new version behind `oid` with the first-updater-wins
    /// write-write conflict rule (§3.6.1).
    fn install_version(
        &mut self,
        t: &Arc<Table>,
        oid: Oid,
        key: &[u8],
        value: &[u8],
        kind: WriteKind,
    ) -> OpResult<bool> {
        loop {
            let head = t.oids.head(oid);
            if head.is_null() {
                return Ok(false);
            }
            let hv = unsafe { &*head };
            let stamp = hv.stamp();
            if stamp.is_tid() {
                let owner = stamp.as_tid();
                if owner == self.tid {
                    if hv.tombstone && kind != WriteKind::Insert {
                        // We deleted it earlier in this transaction.
                        return Ok(false);
                    }
                    return self.replace_own_head(t, oid, head, value, kind);
                }
                match self.db.inner.tid.inquire(owner) {
                    // An uncommitted head version acts as a write lock:
                    // the doomed (second) updater aborts immediately,
                    // minimizing wasted work.
                    TidStatus::InFlight | TidStatus::Precommit(_) | TidStatus::Aborted => {
                        return Err(self.doom(AbortReason::WriteWriteConflict));
                    }
                    TidStatus::Committed(_) | TidStatus::Stale => {
                        // Owner finished (or is finishing) post-commit;
                        // re-read the stamp.
                        std::thread::yield_now();
                        continue;
                    }
                }
            }
            let c = stamp.as_lsn();
            // Forbid updating a record whose committed head postdates our
            // snapshot (lost-update prevention).
            if c.raw() >= self.begin.raw() {
                return Err(self.doom(AbortReason::WriteWriteConflict));
            }
            if hv.tombstone && kind != WriteKind::Insert {
                // Deleted in our snapshot: nothing to update.
                return Ok(false);
            }
            if self.serializable() {
                // Overwriting `head`: its readers become predecessors.
                self.pstamp = self.pstamp.max(hv.pstamp.load(Ordering::Acquire));
                if self.sstamp <= self.pstamp {
                    return Err(self.doom(AbortReason::SsnExclusion));
                }
            }
            let new = self.scratch.versions.acquire(
                Stamp::from_tid(self.tid),
                value,
                kind == WriteKind::Delete,
            );
            unsafe { (*new).next.store(head, Ordering::Relaxed) };
            match t.oids.cas_head(oid, head, new) {
                Ok(()) => {
                    self.log_op_if_per_op(t.id, oid, key, value, kind);
                    let kind = if kind == WriteKind::Insert { WriteKind::Update } else { kind };
                    let key = KeyRef::stash(&mut self.scratch.keys, key);
                    self.writes.push(WriteEntry {
                        table: Arc::clone(t),
                        oid,
                        key,
                        new,
                        prev: head,
                        kind,
                    });
                    return Ok(true);
                }
                Err(_) => {
                    // Another writer won the CAS: first-updater-wins. The
                    // version never became visible, so it goes straight
                    // back to the cache.
                    unsafe { self.scratch.versions.release_unpublished(new) };
                    return Err(self.doom(AbortReason::WriteWriteConflict));
                }
            }
        }
    }

    /// Overwrite our own uncommitted head version (repeated update of the
    /// same record inside one transaction).
    fn replace_own_head(
        &mut self,
        t: &Arc<Table>,
        oid: Oid,
        head: *mut Version,
        value: &[u8],
        kind: WriteKind,
    ) -> OpResult<bool> {
        let next = unsafe { (*head).next.load(Ordering::Relaxed) };
        let new = self.scratch.versions.acquire(
            Stamp::from_tid(self.tid),
            value,
            kind == WriteKind::Delete,
        );
        unsafe { (*new).next.store(next, Ordering::Relaxed) };
        t.oids
            .cas_head(oid, head, new)
            .expect("own uncommitted head cannot be displaced");
        // The old private version may still be referenced by concurrent
        // readers resolving visibility: mark it dead (+∞ stamp, so they
        // skip it rather than spin or misread it post-commit) and retire
        // it into the reuse pool.
        unsafe {
            (*head).clsn.store(Stamp::from_lsn(Lsn::MAX).raw(), Ordering::Release);
            defer_release(&self.guard, &self.db.inner.versions, head);
        }
        let entry = self
            .writes
            .iter_mut()
            .find(|w| w.oid == oid && Arc::ptr_eq(&w.table, t))
            .expect("own head implies a write-set entry");
        entry.new = new;
        entry.kind = match (entry.kind, kind) {
            // Created in this txn: rollback must unindex and recycle.
            (WriteKind::Insert, _) => WriteKind::Insert,
            // Reviving our own tombstone of a pre-existing record: the
            // net effect is an update, and rollback must restore the
            // committed head rather than drop the record.
            (_, WriteKind::Insert) => WriteKind::Update,
            (_, k) => k,
        };
        Ok(true)
    }

    /// Insert a new record; returns its OID. Inserting a key whose
    /// visible version is a tombstone revives the record; inserting a
    /// live duplicate dooms the transaction.
    pub fn insert(&mut self, table: TableId, key: &[u8], value: &[u8]) -> OpResult<Oid> {
        self.check_doomed()?;
        self.check_writable()?;
        let t = self.db.table(table);
        let profile = self.db.inner.cfg.profile;
        loop {
            // Obtain a new OID and publish the version, then index it
            // (§3.2 Insert: contention-free).
            let oid = t.oids.allocate();
            let new = self.scratch.versions.acquire(Stamp::from_tid(self.tid), value, false);
            t.oids.store_head(oid, new);
            self.capture_valid_node_entries(&t.primary);
            let timer = Timed::start(profile);
            let outcome = t.primary.insert(&self.guard, key, oid.0 as u64);
            Timed::stop(timer, self.scratch.breakdown.counter(IDX_INDEX));
            match outcome {
                InsertOutcome::Inserted => {
                    self.refresh_node_set();
                    self.log_op_if_per_op(t.id, oid, key, value, WriteKind::Insert);
                    let key = KeyRef::stash(&mut self.scratch.keys, key);
                    self.writes.push(WriteEntry {
                        table: Arc::clone(&t),
                        oid,
                        key,
                        new,
                        prev: std::ptr::null_mut(),
                        kind: WriteKind::Insert,
                    });
                    return Ok(oid);
                }
                InsertOutcome::Duplicate(existing) => {
                    // Unpublish our speculative record. It was reachable
                    // through the array slot, so it must quiesce before
                    // reuse.
                    t.oids.store_head(oid, std::ptr::null_mut());
                    unsafe { defer_release(&self.guard, &self.db.inner.versions, new) };
                    t.oids.recycle(oid);
                    let existing = Oid(existing as u32);
                    // Revive if the visible version is a tombstone.
                    if t.oids.head(existing).is_null() {
                        // The owning insert rolled back between our index
                        // probe and now; retry from the top.
                        std::thread::yield_now();
                        continue;
                    }
                    let vis = self.fetch_visible(&t.oids, existing)?;
                    if vis.is_some() {
                        return Err(self.doom(AbortReason::DuplicateKey));
                    }
                    // Invisible or deleted: attempt a tombstone overwrite
                    // under first-updater-wins.
                    match self.install_version(&t, existing, key, value, WriteKind::Insert) {
                        Ok(true) => return Ok(existing),
                        Ok(false) => {
                            // Record vanished mid-flight (concurrent
                            // insert rollback): retry.
                            std::thread::yield_now();
                            continue;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }

    /// Add a secondary-index entry pointing at `oid` (obtained from
    /// [`Transaction::insert`]). Secondary keys must be immutable.
    pub fn insert_secondary(&mut self, index: IndexId, key: &[u8], oid: Oid) -> OpResult<()> {
        self.check_doomed()?;
        self.check_writable()?;
        let idx = self.db.index(index);
        self.capture_valid_node_entries(&idx.tree);
        match idx.tree.insert(&self.guard, key, oid.0 as u64) {
            InsertOutcome::Inserted => {
                self.refresh_node_set();
                let key = KeyRef::stash(&mut self.scratch.keys, key);
                self.secondary.push(SecondaryEntry { index: idx, key, oid });
                Ok(())
            }
            InsertOutcome::Duplicate(_) => Err(self.doom(AbortReason::DuplicateKey)),
        }
    }

    /// Range scan over any index (primary or secondary), ascending, both
    /// bounds inclusive. `f` receives (key, payload) for each visible
    /// record and returns `false` to stop. Returns the delivered count.
    pub fn scan(
        &mut self,
        index: IndexId,
        low: &[u8],
        high: &[u8],
        limit: Option<usize>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> OpResult<usize> {
        self.check_doomed()?;
        let idx = self.db.index(index);
        let t = self.db.table(idx.table);
        let profile = self.db.inner.cfg.profile;

        let mut delivered = 0usize;
        let mut resume: Vec<u8> = low.to_vec();
        loop {
            // Phase 1: collect a batch of (key, oid) pairs from the tree.
            // Collection is separate from visibility so the tree callbacks
            // don't need mutable access to transaction state.
            let cap = limit.map_or(usize::MAX, |l| (l - delivered) * 2 + 64);
            let mut items: Vec<(Vec<u8>, u64)> = Vec::new();
            let mut truncated = false;
            let timer = Timed::start(profile);
            {
                let node_set = &mut self.node_set;
                let serializable = self.isolation == IsolationLevel::Serializable;
                let tree = &idx.tree;
                tree.scan(
                    &self.guard,
                    &resume,
                    high,
                    |snap| {
                        if serializable {
                            node_set.push((Arc::clone(tree), snap));
                        }
                    },
                    |k, v| {
                        items.push((k.to_vec(), v));
                        if items.len() >= cap {
                            truncated = true;
                            ScanControl::Stop
                        } else {
                            ScanControl::Continue
                        }
                    },
                );
            }
            Timed::stop(timer, self.scratch.breakdown.counter(IDX_INDEX));

            // Phase 2: visibility + delivery.
            let timer = Timed::start(profile);
            let mut stopped = false;
            for (k, oidval) in &items {
                let vis = self.fetch_visible(&t.oids, Oid(*oidval as u32))?;
                if let Some(vis) = vis {
                    self.register_read(&vis)?;
                    let data = unsafe { &(*vis.ptr).data };
                    delivered += 1;
                    if !f(k, data) || limit.is_some_and(|l| delivered >= l) {
                        stopped = true;
                        break;
                    }
                }
            }
            Timed::stop(timer, self.scratch.breakdown.counter(IDX_INDIRECTION));
            if stopped || !truncated {
                return Ok(delivered);
            }
            // Resume after the last collected key.
            let (last, _) = items.last().expect("truncated implies items");
            resume.clear();
            resume.extend_from_slice(last);
            resume.push(0);
        }
    }

    /// Fig. 10 emulation: "enforcing a log-buffer round trip for every
    /// single update operation".
    fn log_op_if_per_op(&mut self, table: TableId, oid: Oid, key: &[u8], value: &[u8], kind: WriteKind) {
        if !self.db.inner.cfg.per_op_logging {
            return;
        }
        let mut buf = ermia_log::TxLogBuffer::new();
        match kind {
            WriteKind::Insert => buf.add_insert(table, oid, key, value),
            WriteKind::Update => buf.add_update(table, oid, key, value),
            WriteKind::Delete => buf.add_delete(table, oid, key),
        }
        let res = self.db.inner.log.allocate(buf.block_len()).expect("log allocation");
        let lsn = res.lsn();
        let block = buf.serialize(lsn);
        res.fill(block);
    }

    // ------------------------------------------------------------------
    // Commit pipeline (§3.1, §3.6; SSN Algorithm 1)
    // ------------------------------------------------------------------

    /// Commit. On success returns the commit LSN.
    ///
    /// Honors [`DbConfig::synchronous_commit`](crate::DbConfig): when set,
    /// the call blocks until the commit block is durable and rolls back on
    /// durability failure.
    pub fn commit(self) -> TxResult<Lsn> {
        let sync = self.db.inner.cfg.synchronous_commit;
        self.commit_impl(sync).map(|t| t.lsn)
    }

    /// Commit without waiting for durability, regardless of the
    /// database-wide `synchronous_commit` setting.
    ///
    /// The transaction becomes visible to other transactions immediately;
    /// the returned [`CommitToken`] identifies the point in the log the
    /// caller must wait on (`db.log().wait_durable_for(token.end_offset(),
    /// …)`) before acknowledging the commit as durable. This is the
    /// server's reply-path integration: the session thread can move on to
    /// the next pipelined request while a writer thread awaits group
    /// commit. If the durability wait later fails, the transaction is
    /// *not* rolled back — its in-memory effects stand and its on-disk
    /// fate is indeterminate until restart recovery (see
    /// [`ermia_common::LogError`]).
    pub fn commit_deferred(self) -> TxResult<CommitToken> {
        self.commit_impl(false)
    }

    fn commit_impl(mut self, wait_durable: bool) -> TxResult<CommitToken> {
        if let Some(r) = self.doomed {
            self.do_abort();
            return Err(r);
        }
        if self.writes.is_empty() && self.secondary.is_empty() {
            return self.commit_readonly();
        }
        let db = self.db;
        let profile = db.inner.cfg.profile;
        let ctx = db.inner.tid.ctx(self.tid);

        // --- Pre-commit ------------------------------------------------
        // Publish intent, then fix our global order and reserve log space
        // with the single atomic fetch-and-add.
        ctx.enter_pending();
        let timer = Timed::start(profile);
        self.stage_log_records();
        let reservation = match db.inner.log.allocate(self.scratch.logbuf.block_len()) {
            Ok(r) => r,
            Err(_) => {
                // A poisoned log rejects all allocations until restart;
                // anything else is transient resource pressure. Decide
                // (and doom) before release so the abort is attributed to
                // the right reason.
                let reason = if db.inner.log.is_poisoned() {
                    if let Some(t) = &self.scratch.telemetry {
                        t.ring.record(EventKind::LogPoison, 1, 0);
                    }
                    AbortReason::LogFailure
                } else {
                    AbortReason::ResourceExhausted
                };
                self.doomed = Some(reason);
                ctx.abort();
                self.rollback();
                self.release(false);
                return Err(reason);
            }
        };
        let cstamp = reservation.lsn();
        ctx.enter_precommit(cstamp);
        Timed::stop(timer, self.scratch.breakdown.counter(IDX_LOG));

        // --- CC commit protocol (SSN exclusion-window test) -------------
        if self.serializable() {
            for w in &self.writes {
                if !w.prev.is_null() {
                    let p = unsafe { &*w.prev };
                    self.pstamp = self.pstamp.max(p.pstamp.load(Ordering::Acquire));
                }
            }
            self.sstamp = self.sstamp.min(cstamp.raw());
            for &r in &self.reads {
                let vs = unsafe { (*r).sstamp.load(Ordering::Acquire) };
                self.sstamp = self.sstamp.min(vs);
            }
            if self.sstamp <= self.pstamp {
                drop(reservation); // becomes a skip record
                self.doomed = Some(AbortReason::SsnExclusion);
                ctx.abort();
                self.rollback();
                self.release(false);
                return Err(AbortReason::SsnExclusion);
            }
            // Phantom protection: node-set validation (§3.6.2).
            for (tree, snap) in &self.node_set {
                if !tree.validate(snap) {
                    drop(reservation);
                    self.doomed = Some(AbortReason::Phantom);
                    ctx.abort();
                    self.rollback();
                    self.release(false);
                    return Err(AbortReason::Phantom);
                }
            }
        }

        // --- Populate the centralized log buffer -----------------------
        let timer = Timed::start(profile);
        let end_offset = reservation.end_offset();
        let block = self.scratch.logbuf.serialize(cstamp);
        reservation.fill(block);
        if wait_durable && db.inner.log.wait_durable(end_offset).is_err() {
            // The commit block never became durable (poisoned log) or its
            // fate is unknown (timeout). Roll back in memory and surface
            // the failure; restart recovery truncates at the first hole,
            // so an unacknowledged block can never resurrect past one.
            self.doomed = Some(AbortReason::LogFailure);
            ctx.abort();
            self.rollback();
            self.release(false);
            return Err(AbortReason::LogFailure);
        }
        Timed::stop(timer, self.scratch.breakdown.counter(IDX_LOG));

        // All updates become visible atomically at this store.
        ctx.commit(cstamp);
        if let Some(t) = &self.scratch.telemetry {
            t.ring.record(EventKind::TxnCommit, self.tid.raw(), cstamp.raw());
        }

        // --- Post-commit ------------------------------------------------
        let sstamp_final = self.sstamp;
        for w in &self.writes {
            let new = unsafe { &*w.new };
            if self.serializable() {
                if !w.prev.is_null() {
                    // π(V_prev): our low watermark caps its readers.
                    unsafe { (*w.prev).sstamp.fetch_min(sstamp_final, Ordering::AcqRel) };
                }
                new.pstamp.store(cstamp.raw(), Ordering::Release);
            }
            // Replace the TID stamp with the commit LSN so readers can
            // check visibility without consulting our context.
            new.clsn.store(Stamp::from_lsn(cstamp).raw(), Ordering::Release);
        }
        if self.serializable() {
            for &r in &self.reads {
                unsafe { (*r).raise_pstamp(cstamp.raw()) };
            }
        }
        self.release(true);
        Ok(CommitToken { lsn: cstamp, end_offset: Some(end_offset) })
    }

    /// Fill the private log buffer from the write/secondary sets,
    /// diverting large payloads to the blob store.
    fn stage_log_records(&mut self) {
        let blob_threshold = self.db.inner.cfg.large_value_threshold;
        for w in &self.writes {
            let key = w.key.slice(&self.scratch.keys);
            let (data, tombstone) = unsafe { (&(*w.new).data, (*w.new).tombstone) };
            // The entry coalesces every op this txn applied to the
            // record; what commits is the final version, so its tombstone
            // flag (not the entry kind) decides the record kind. An
            // insert-then-delete must log a delete, or replay would
            // resurrect the key with the tombstone's empty payload.
            let kind = if tombstone { WriteKind::Delete } else { w.kind };
            let indirect = kind != WriteKind::Delete && data.len() >= blob_threshold;
            if indirect {
                // Divert the payload to the blob store; the log record
                // carries only the fixed-size reference (§3.3 feature 4).
                let blob = self.db.inner.blobs.append(data).expect("blob append");
                let kind = match kind {
                    WriteKind::Insert => ermia_log::LogRecordKind::Insert,
                    _ => ermia_log::LogRecordKind::Update,
                };
                self.scratch.logbuf.add_indirect(kind, w.table.id, w.oid, key, &blob.encode());
                continue;
            }
            match kind {
                WriteKind::Insert => self.scratch.logbuf.add_insert(w.table.id, w.oid, key, data),
                WriteKind::Update => self.scratch.logbuf.add_update(w.table.id, w.oid, key, data),
                WriteKind::Delete => self.scratch.logbuf.add_delete(w.table.id, w.oid, key),
            }
        }
        for s in &self.secondary {
            let key = s.key.slice(&self.scratch.keys);
            self.scratch.logbuf.add_secondary_insert(s.index.table, s.index.id.0, s.oid, key);
        }
    }

    /// True if this transaction installed any write or secondary entry —
    /// i.e. it must participate in 2PC as a writer when cross-shard.
    pub(crate) fn has_writes(&self) -> bool {
        !self.writes.is_empty() || !self.secondary.is_empty()
    }

    /// 2PC phase one: run the full pre-commit pipeline (CC validation,
    /// log-space reservation, block fill) but publish the block as a
    /// [`ermia_log::BlockKind::TxnPrepare`] carrying `marker`, and stop
    /// *before* the in-memory commit. The transaction stays in the
    /// `Precommit` TID state, so its uncommitted head versions keep acting
    /// as write locks (first-updater-wins) and readers that depend on the
    /// verdict spin briefly — no conflicting transaction can commit around
    /// a prepared one.
    ///
    /// The caller must wait for the returned block to become durable
    /// before the coordinator decides, then call
    /// [`PreparedTransaction::finish_commit`] or
    /// [`PreparedTransaction::abort`].
    pub(crate) fn prepare(
        mut self,
        marker: ermia_log::PrepareMarker,
    ) -> TxResult<PreparedTransaction<'w>> {
        if let Some(r) = self.doomed {
            self.do_abort();
            return Err(r);
        }
        debug_assert!(self.has_writes(), "read-only participants never prepare");
        let db = self.db;
        let ctx = db.inner.tid.ctx(self.tid);

        ctx.enter_pending();
        self.stage_log_records();
        let reservation = match db.inner.log.allocate(self.scratch.logbuf.prepare_block_len()) {
            Ok(r) => r,
            Err(_) => {
                let reason = if db.inner.log.is_poisoned() {
                    if let Some(t) = &self.scratch.telemetry {
                        t.ring.record(EventKind::LogPoison, 1, 0);
                    }
                    AbortReason::LogFailure
                } else {
                    AbortReason::ResourceExhausted
                };
                self.doomed = Some(reason);
                ctx.abort();
                self.rollback();
                self.release(false);
                return Err(reason);
            }
        };
        let cstamp = reservation.lsn();
        ctx.enter_precommit(cstamp);

        if self.serializable() {
            for w in &self.writes {
                if !w.prev.is_null() {
                    let p = unsafe { &*w.prev };
                    self.pstamp = self.pstamp.max(p.pstamp.load(Ordering::Acquire));
                }
            }
            self.sstamp = self.sstamp.min(cstamp.raw());
            for &r in &self.reads {
                let vs = unsafe { (*r).sstamp.load(Ordering::Acquire) };
                self.sstamp = self.sstamp.min(vs);
            }
            if self.sstamp <= self.pstamp {
                drop(reservation); // becomes a skip record
                self.doomed = Some(AbortReason::SsnExclusion);
                ctx.abort();
                self.rollback();
                self.release(false);
                return Err(AbortReason::SsnExclusion);
            }
            for (tree, snap) in &self.node_set {
                if !tree.validate(snap) {
                    drop(reservation);
                    self.doomed = Some(AbortReason::Phantom);
                    ctx.abort();
                    self.rollback();
                    self.release(false);
                    return Err(AbortReason::Phantom);
                }
            }
        }

        let end_offset = reservation.end_offset();
        let block = self.scratch.logbuf.serialize_prepare(cstamp, marker);
        reservation.fill(block);
        Ok(PreparedTransaction { txn: self, cstamp, end_offset })
    }

    /// Read-only commit: no log space needed. Under SSN the transaction
    /// still needs a commit stamp for the exclusion test and for
    /// registering itself on read versions; we use the current log tail
    /// (monotonic, possibly shared — a documented approximation that can
    /// only add false positives, never lost dependencies).
    fn commit_readonly(mut self) -> TxResult<CommitToken> {
        let db = self.db;
        let ctx = db.inner.tid.ctx(self.tid);
        let cstamp = db.inner.log.tail_lsn();
        if self.serializable() {
            self.sstamp = self.sstamp.min(cstamp.raw());
            for &r in &self.reads {
                let vs = unsafe { (*r).sstamp.load(Ordering::Acquire) };
                self.sstamp = self.sstamp.min(vs);
            }
            if self.sstamp <= self.pstamp {
                self.doomed = Some(AbortReason::SsnExclusion);
                ctx.abort();
                self.release(false);
                return Err(AbortReason::SsnExclusion);
            }
            for (tree, snap) in &self.node_set {
                if !tree.validate(snap) {
                    self.doomed = Some(AbortReason::Phantom);
                    ctx.abort();
                    self.release(false);
                    return Err(AbortReason::Phantom);
                }
            }
            for &r in &self.reads {
                unsafe { (*r).raise_pstamp(cstamp.raw()) };
            }
        }
        ctx.enter_pending();
        ctx.enter_precommit(cstamp);
        ctx.commit(cstamp);
        if let Some(t) = &self.scratch.telemetry {
            t.ring.record(EventKind::TxnCommit, self.tid.raw(), cstamp.raw());
        }
        self.release(true);
        Ok(CommitToken { lsn: cstamp, end_offset: None })
    }

    /// Abort explicitly.
    pub fn abort(mut self) {
        self.do_abort();
    }

    fn do_abort(&mut self) {
        if self.finished {
            return;
        }
        self.ctx().abort();
        self.rollback();
        self.release(false);
    }

    /// Undo installed versions and speculative index entries.
    fn rollback(&mut self) {
        for w in self.writes.drain(..).rev() {
            // Re-stamp the dead version with +∞ before unlinking so
            // concurrent readers already holding the pointer classify it
            // as "committed far in the future" and skip past it, instead
            // of spinning on a TID whose slot will be recycled.
            unsafe {
                (*w.new).clsn.store(Stamp::from_lsn(Lsn::MAX).raw(), Ordering::Release);
            }
            match w.kind {
                WriteKind::Insert => {
                    // Remove the index entry, unpublish, recycle.
                    w.table.primary.remove(&self.guard, w.key.slice(&self.scratch.keys));
                    w.table.oids.store_head(w.oid, std::ptr::null_mut());
                    unsafe { defer_release(&self.guard, &self.db.inner.versions, w.new) };
                    w.table.oids.recycle(w.oid);
                }
                WriteKind::Update | WriteKind::Delete => {
                    // Unlink our version from the chain head.
                    w.table
                        .oids
                        .cas_head(w.oid, w.new, w.prev)
                        .expect("uncommitted head owned by us");
                    unsafe { defer_release(&self.guard, &self.db.inner.versions, w.new) };
                }
            }
        }
        for s in self.secondary.drain(..).rev() {
            s.index.tree.remove(&self.guard, s.key.slice(&self.scratch.keys));
        }
    }

    /// Common epilogue: return resources, deregister, and hand the
    /// (cleared, capacity-preserving) working sets back to the worker's
    /// scratch for the next transaction.
    fn release(&mut self, committed: bool) {
        // The context may be released only after every TID-stamped
        // version has been re-stamped or unlinked (Stale inquiries then
        // re-read a proper stamp).
        self.db.inner.tid.release(self.tid);
        if committed {
            self.db.inner.commits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.db.inner.aborts.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(t) = &self.scratch.telemetry {
            // Chain nodes this transaction walked, accumulated read by
            // read in `fetch_visible` and recorded once here.
            t.slab.hist(TXN_CHAIN_HIST).record(self.chain_walked);
            if committed {
                t.slab.add(TXN_COMMITS, 1);
            } else {
                // Every abort path records its reason in `doomed` before
                // releasing; an explicit `abort()` call has none.
                let reason = self.doomed.unwrap_or(AbortReason::UserRequested);
                t.slab.add(TXN_ABORT_BASE + reason.idx(), 1);
                t.ring.record(EventKind::TxnAbort, self.tid.raw(), reason.idx() as u64);
            }
        }
        self.scratch.breakdown.add(IDX_TXNS, 1);
        self.reads.clear();
        self.writes.clear();
        self.secondary.clear();
        self.node_set.clear();
        self.scratch.reads = std::mem::take(&mut self.reads);
        self.scratch.writes = std::mem::take(&mut self.writes);
        self.scratch.secondary = std::mem::take(&mut self.secondary);
        self.scratch.node_set = std::mem::take(&mut self.node_set);
        self.scratch.keys.clear();
        self.finished = true;
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.do_abort();
        }
    }
}

enum Visibility {
    Visible { cstamp: u64, own: bool },
    /// Committed, but after our snapshot.
    SkipCommitted { cstamp: u64 },
    /// In flight or aborted.
    SkipUncommitted,
}

/// A transaction that passed [`Transaction::prepare`]: CC-validated, its
/// prepare block filled in the log, awaiting the coordinator's verdict.
/// Dropping it without a verdict aborts in memory — matching recovery's
/// presumed-abort reading of a prepare without a decide record.
pub struct PreparedTransaction<'w> {
    txn: Transaction<'w>,
    cstamp: Lsn,
    end_offset: u64,
}

impl<'w> PreparedTransaction<'w> {
    /// The commit stamp reserved at prepare (becomes the commit LSN).
    pub fn cstamp(&self) -> Lsn {
        self.cstamp
    }

    /// Exclusive end offset of the prepare block; the coordinator must
    /// see this durable before writing its decision.
    pub fn end_offset(&self) -> u64 {
        self.end_offset
    }

    /// 2PC phase two, commit verdict: make the updates visible atomically
    /// and run post-commit stamping. The caller must already have made
    /// the decide record durable.
    pub fn finish_commit(mut self) -> CommitToken {
        let cstamp = self.cstamp;
        let txn = &mut self.txn;
        txn.db.inner.tid.ctx(txn.tid).commit(cstamp);
        if let Some(t) = &txn.scratch.telemetry {
            t.ring.record(EventKind::TxnCommit, txn.tid.raw(), cstamp.raw());
        }
        let sstamp_final = txn.sstamp;
        let serializable = txn.serializable();
        for w in &txn.writes {
            let new = unsafe { &*w.new };
            if serializable {
                if !w.prev.is_null() {
                    unsafe { (*w.prev).sstamp.fetch_min(sstamp_final, Ordering::AcqRel) };
                }
                new.pstamp.store(cstamp.raw(), Ordering::Release);
            }
            new.clsn.store(Stamp::from_lsn(cstamp).raw(), Ordering::Release);
        }
        if serializable {
            for &r in &txn.reads {
                unsafe { (*r).raise_pstamp(cstamp.raw()) };
            }
        }
        txn.release(true);
        CommitToken { lsn: cstamp, end_offset: Some(self.end_offset) }
    }

    /// 2PC phase two, abort verdict: roll back the in-memory effects.
    /// The prepare block stays in the log; recovery's in-doubt resolution
    /// presumes abort when no commit decide record exists.
    pub fn abort(mut self) {
        self.txn.doomed.get_or_insert(AbortReason::UserRequested);
        self.txn.do_abort();
    }
}

/// Receipt of a [`Transaction::commit_deferred`]: the commit LSN plus the
/// log offset whose durability implies the commit block is on disk.
///
/// Tokens are plain data — they do not borrow the worker, so the worker
/// can serve the next transaction while somebody else awaits durability.
#[derive(Clone, Copy, Debug)]
pub struct CommitToken {
    lsn: Lsn,
    /// `None` for read-only commits, which occupy no log space and are
    /// trivially durable.
    end_offset: Option<u64>,
}

impl CommitToken {
    /// A token for a commit that occupied no log space (read-only or
    /// empty transactions) — trivially durable.
    pub(crate) fn readonly_at(lsn: Lsn) -> CommitToken {
        CommitToken { lsn, end_offset: None }
    }

    /// The commit timestamp.
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }

    /// The exclusive end offset of the commit block in the log's logical
    /// offset space, or `None` for read-only commits.
    pub fn end_offset(&self) -> Option<u64> {
        self.end_offset
    }

    /// Block until this commit is durable (or `timeout` expires). A
    /// read-only commit returns immediately.
    pub fn wait_durable(
        &self,
        db: &Database,
        timeout: std::time::Duration,
    ) -> Result<(), ermia_common::LogError> {
        match self.end_offset {
            Some(end) => db.inner.log.wait_durable_for(end, timeout),
            None => Ok(()),
        }
    }
}
