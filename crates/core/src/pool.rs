//! Bounded worker checkout pool.
//!
//! A network front-end has many more connections than it wants engine
//! workers: each [`Worker`] owns an epoch registration, scratch arenas,
//! and a version cache, so the right shape is a small pool sized near the
//! core count that sessions *check out* for the duration of one
//! transaction and return at commit/abort. The pool is strictly bounded —
//! when every worker is out, checkout fails (or times out) and the caller
//! sheds load instead of queueing unboundedly.
//!
//! Workers are created lazily up to capacity and live for the pool's
//! lifetime; [`EpochHandle`](ermia_epoch::EpochHandle) is `Send`, so a
//! worker parked at a transaction boundary can resume on any thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::database::Database;
use crate::worker::Worker;

struct PoolInner {
    db: Database,
    capacity: usize,
    idle: Mutex<Vec<Worker>>,
    /// Workers created so far (monotonic, ≤ capacity).
    created: AtomicUsize,
    /// Workers currently checked out.
    outstanding: AtomicUsize,
    returned: Condvar,
}

/// A bounded pool of engine [`Worker`]s shared by many sessions.
///
/// Cloning shares the pool.
#[derive(Clone)]
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl WorkerPool {
    /// Create a pool of at most `capacity` workers on `db`. Workers are
    /// created on first use, not up front.
    pub fn new(db: &Database, capacity: usize) -> WorkerPool {
        assert!(capacity > 0, "worker pool needs capacity >= 1");
        WorkerPool {
            inner: Arc::new(PoolInner {
                db: db.clone(),
                capacity,
                idle: Mutex::new(Vec::with_capacity(capacity)),
                created: AtomicUsize::new(0),
                outstanding: AtomicUsize::new(0),
                returned: Condvar::new(),
            }),
        }
    }

    /// Check out a worker if one is idle or capacity remains; `None` when
    /// the pool is exhausted. Never blocks.
    pub fn try_checkout(&self) -> Option<PooledWorker> {
        let inner = &self.inner;
        let mut idle = inner.idle.lock();
        if let Some(w) = idle.pop() {
            drop(idle);
            inner.outstanding.fetch_add(1, Ordering::Relaxed);
            return Some(PooledWorker { worker: Some(w), pool: Arc::clone(inner) });
        }
        // No idle worker: create one if we still may. `created` is only
        // bumped under the idle lock, so the capacity check cannot race.
        if inner.created.load(Ordering::Relaxed) < inner.capacity {
            inner.created.fetch_add(1, Ordering::Relaxed);
            drop(idle);
            let w = inner.db.register_worker();
            inner.outstanding.fetch_add(1, Ordering::Relaxed);
            return Some(PooledWorker { worker: Some(w), pool: Arc::clone(inner) });
        }
        None
    }

    /// Check out a worker, waiting up to `timeout` for one to come back.
    pub fn checkout_timeout(&self, timeout: Duration) -> Option<PooledWorker> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(w) = self.try_checkout() {
                return Some(w);
            }
            let mut idle = self.inner.idle.lock();
            if !idle.is_empty() {
                continue; // a return won the race; retry the fast path
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            if self.inner.returned.wait_for(&mut idle, left).timed_out() {
                drop(idle);
                // One last try: a worker may have come back exactly at
                // the deadline.
                return self.try_checkout();
            }
        }
    }

    /// Pool capacity (the bound).
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Workers currently checked out.
    pub fn outstanding(&self) -> usize {
        self.inner.outstanding.load(Ordering::Relaxed)
    }

    /// Workers parked in the pool right now.
    pub fn idle(&self) -> usize {
        self.inner.idle.lock().len()
    }

    /// Workers created so far (≤ capacity).
    pub fn created(&self) -> usize {
        self.inner.created.load(Ordering::Relaxed)
    }
}

/// A checked-out [`Worker`]; derefs to it and returns it to the pool on
/// drop (including on unwind, so a panicking session cannot leak one).
pub struct PooledWorker {
    worker: Option<Worker>,
    pool: Arc<PoolInner>,
}

impl std::ops::Deref for PooledWorker {
    type Target = Worker;

    fn deref(&self) -> &Worker {
        self.worker.as_ref().expect("present until drop")
    }
}

impl std::ops::DerefMut for PooledWorker {
    fn deref_mut(&mut self) -> &mut Worker {
        self.worker.as_mut().expect("present until drop")
    }
}

impl Drop for PooledWorker {
    fn drop(&mut self) {
        let w = self.worker.take().expect("returned exactly once");
        self.pool.idle.lock().push(w);
        self.pool.outstanding.fetch_sub(1, Ordering::Relaxed);
        self.pool.returned.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DbConfig, IsolationLevel};

    #[test]
    fn checkout_is_bounded_and_returns_on_drop() {
        let db = Database::open(DbConfig::in_memory()).unwrap();
        let pool = WorkerPool::new(&db, 2);
        let a = pool.try_checkout().expect("first");
        let b = pool.try_checkout().expect("second");
        assert!(pool.try_checkout().is_none(), "capacity 2 must bound checkouts");
        assert_eq!(pool.outstanding(), 2);
        drop(a);
        assert_eq!(pool.outstanding(), 1);
        assert_eq!(pool.idle(), 1);
        let c = pool.try_checkout().expect("recycled");
        drop(b);
        drop(c);
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.created(), 2);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn pooled_worker_runs_transactions() {
        let db = Database::open(DbConfig::in_memory()).unwrap();
        let t = db.create_table("kv");
        let pool = WorkerPool::new(&db, 1);
        let mut w = pool.try_checkout().unwrap();
        let mut tx = w.begin(IsolationLevel::Snapshot);
        tx.insert(t, b"k", b"v").unwrap();
        tx.commit().unwrap();
        drop(w);
        // The same worker serves the next checkout, possibly from another
        // thread.
        let pool2 = pool.clone();
        std::thread::spawn(move || {
            let mut w = pool2.try_checkout().unwrap();
            let mut tx = w.begin(IsolationLevel::Snapshot);
            let v = tx.read(t, b"k", |v| v.to_vec()).unwrap();
            assert_eq!(v.as_deref(), Some(&b"v"[..]));
            tx.commit().unwrap();
        })
        .join()
        .unwrap();
        assert_eq!(pool.created(), 1);
    }

    #[test]
    fn checkout_timeout_waits_for_a_return() {
        let db = Database::open(DbConfig::in_memory()).unwrap();
        let pool = WorkerPool::new(&db, 1);
        let held = pool.try_checkout().unwrap();
        assert!(pool.checkout_timeout(Duration::from_millis(20)).is_none());
        let pool2 = pool.clone();
        let h = std::thread::spawn(move || {
            pool2.checkout_timeout(Duration::from_secs(5)).expect("worker returned in time")
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(held);
        let w = h.join().unwrap();
        drop(w);
        assert_eq!(pool.outstanding(), 0);
    }
}
