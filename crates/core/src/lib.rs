//! ERMIA: a memory-optimized OLTP engine for heterogeneous workloads.
//!
//! Reproduction of *ERMIA: Fast Memory-Optimized Database System for
//! Heterogeneous Workloads* (Kim, Wang, Johnson, Pandis — SIGMOD 2016).
//!
//! The engine is designed around three physical-layer pillars:
//!
//! * **latch-free indirection arrays** ([`ermia_storage::OidArray`]) —
//!   one CAS installs a new version; an uncommitted head acts as a write
//!   lock, so write-write conflicts are detected on every update (early
//!   abort of doomed transactions);
//! * **a scalable centralized log** ([`ermia_log::LogManager`]) — one
//!   global `fetch_add` per committing transaction yields both a totally
//!   ordered commit timestamp and the reserved log space;
//! * **epoch-based resource managers** ([`ermia_epoch::EpochManager`]) —
//!   three timelines (GC, RCU, TID) recycle versions, tree memory and
//!   transaction contexts without reader-side locking.
//!
//! Concurrency control is **snapshot isolation** (§3.6.1): readers and
//! writers never block each other, write-write conflicts follow the
//! first-updater-wins rule, and visibility is decided by comparing the
//! reader's begin LSN with version creation stamps. Serializability is
//! available on demand by overlaying the **Serial Safety Net**
//! ([SSN], §3.6.2), a cheap certifier that tracks each transaction's
//! exclusion window (η, π) and aborts the transaction iff committing it
//! might close a dependency cycle. Phantoms are prevented with Silo-style
//! tree-version (node set) validation.
//!
//! [SSN]: https://dl.acm.org/doi/10.1145/2771937.2771949
//!
//! # Quickstart
//!
//! ```
//! use ermia::{Database, DbConfig, IsolationLevel};
//!
//! let db = Database::open(DbConfig::in_memory()).unwrap();
//! let accounts = db.create_table("accounts");
//! let mut worker = db.register_worker();
//!
//! // Write.
//! let mut tx = worker.begin(IsolationLevel::Serializable);
//! tx.insert(accounts, b"alice", b"100").unwrap();
//! tx.insert(accounts, b"bob", b"250").unwrap();
//! tx.commit().unwrap();
//!
//! // Read back.
//! let mut tx = worker.begin(IsolationLevel::Serializable);
//! let balance = tx.read(accounts, b"alice", |v| v.to_vec()).unwrap();
//! assert_eq!(balance.as_deref(), Some(&b"100"[..]));
//! tx.commit().unwrap();
//! ```

mod config;
mod database;
mod metrics;
mod pool;
mod profile;
mod recovery;
mod shard;
mod transaction;
mod worker;

pub use config::{DbConfig, IsolationLevel};
pub use database::{Database, DbState, DdlEntry, IndexInfo, LogRetention, NodeRole, Table};
pub use pool::{PooledWorker, WorkerPool};
pub use profile::Breakdown;
pub use recovery::{InDoubtTxn, LogApplier, RecoveryOutcome, RecoveryStats};
pub use shard::{
    shard_of_key, IndexRouting, PooledShardedWorker, RoutedDdl, ShardPolicy, ShardRecoveryStats,
    ShardedCommitToken, ShardedDb, ShardedTransaction, ShardedWorker, ShardedWorkerPool,
};
pub use transaction::{CommitToken, Transaction};
pub use worker::Worker;

pub use ermia_common::{AbortReason, IndexId, KeyWriter, Lsn, OpResult, TableId, TxResult};

#[cfg(test)]
mod tests;
