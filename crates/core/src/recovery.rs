//! Checkpointing and recovery (paper §3.7).
//!
//! "Recovery in ERMIA is straightforward because the log contains only
//! committed work; OID arrays are the only real source of complexity."
//! The engine periodically copies the OID arrays (non-atomically — a
//! *fuzzy* checkpoint) to secondary storage, then recovery restores the
//! snapshot and rolls it forward by scanning the log after the
//! checkpoint. No undo is ever needed; the log truncates at the first
//! hole without losing committed work.
//!
//! The paper stores only OID→log-address mappings and relies on
//! anti-caching to load record bodies on demand; this reproduction has no
//! buffer manager, so checkpoints carry record payloads inline and replay
//! materializes versions directly. The *structure* of recovery (fuzzy
//! snapshot + header-driven forward scan, idempotent by stamp
//! comparison) matches the paper.

use std::collections::HashMap;
use std::sync::atomic::Ordering;

use ermia_common::{Lsn, Oid, Stamp};
use ermia_log::{CheckpointMeta, DecideRecord, LogRecord, LogRecordKind, LogScanner, PrepareMarker};
use ermia_storage::Version;
use ermia_telemetry::{SpanKind, TraceContext};

use crate::database::Database;

/// Replay one resolved 2PC prepare, stitching a `ReplApply` span onto
/// the originating transaction's trace when the durable prepare marker
/// carried a trace id. This is how a replica tailing the shipped log
/// (and crash recovery) appears on the same timeline as the coordinator
/// that ran the transaction; an untraced marker costs one comparison.
fn apply_traced(
    db: &Database,
    txn: &InDoubtTxn,
    stats: &mut RecoveryStats,
) -> std::io::Result<()> {
    if txn.trace_hi == 0 && txn.trace_lo == 0 {
        return db.replay_records(&txn.records, txn.cstamp, stats);
    }
    let ring = db.telemetry().tracer().svc_ring().clone();
    let t0 = ring.now_ns();
    let r = db.replay_records(&txn.records, txn.cstamp, stats);
    let ctx = TraceContext { trace_hi: txn.trace_hi, trace_lo: txn.trace_lo, parent: 0 };
    ring.record(
        &ctx,
        SpanKind::ReplApply,
        t0,
        ring.now_ns(),
        txn.cstamp.raw(),
        txn.coord_shard as u64,
    );
    r
}

/// Counters reported by [`Database::recover`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records restored from the checkpoint snapshot.
    pub checkpoint_records: u64,
    /// Log blocks replayed after the checkpoint.
    pub replayed_blocks: u64,
    /// Individual log records applied.
    pub replayed_records: u64,
    /// Records skipped because a newer version was already present
    /// (fuzzy-checkpoint overlap).
    pub skipped_stale: u64,
    /// 2PC prepares whose verdict was not in this shard's own log. A
    /// standalone [`Database::recover`] presumes abort for these; a
    /// sharded recovery resolves them against every participant's log.
    pub in_doubt: u64,
}

/// A 2PC prepare found in the log without a local verdict: validated,
/// durable, and waiting on the coordinator's decision. Produced by
/// [`Database::recover_outcome`]; the sharded recovery pass either
/// applies it (a commit decide exists in the coordinator's log) or drops
/// it (presumed abort).
pub struct InDoubtTxn {
    /// Shard that coordinated the global transaction.
    pub coord_shard: u32,
    /// Raw LSN of the coordinator's prepare block (with `coord_shard`,
    /// the global transaction id).
    pub gtid_lsn: u64,
    /// This participant's prepare cstamp — the commit LSN the records
    /// take if the verdict is commit.
    pub cstamp: Lsn,
    /// Trace id the coordinator stamped into the prepare marker
    /// ((0, 0) = untraced): applying this prepare records a `ReplApply`
    /// span under the originating transaction's trace.
    pub trace_hi: u64,
    pub trace_lo: u64,
    records: Vec<LogRecord>,
}

/// Everything one shard's log scan produced: replay counters, unresolved
/// prepares, and every 2PC verdict found (keyed by global transaction
/// id) for resolving *other* shards' in-doubt prepares.
pub struct RecoveryOutcome {
    pub stats: RecoveryStats,
    pub in_doubt: Vec<InDoubtTxn>,
    pub decides: HashMap<(u32, u64), bool>,
}

/// Incremental log replay: the one-shot recovery scan generalized so a
/// replica can tail a growing log. Each [`LogApplier::apply_available`]
/// round replays every complete block past the applied frontier;
/// prepared-but-undecided 2PC transactions and the verdicts seen so far
/// carry over between rounds (a prepare and its decide may arrive in
/// different shipments).
///
/// The frontier only advances to positions just past a successfully
/// decoded block — a scan that stops at a hole (torn or not-yet-shipped
/// bytes) does *not* move it, so the next round rescans from the last
/// good block and replay stays gap-free no matter where a shipment ends.
pub struct LogApplier {
    applied: u64,
    pending: HashMap<(u32, u64), InDoubtTxn>,
    decides: HashMap<(u32, u64), bool>,
    stats: RecoveryStats,
}

impl LogApplier {
    /// Start applying from logical log offset `from` (the checkpoint
    /// begin, or 0 for a from-scratch replay).
    pub fn new(from: u64) -> LogApplier {
        LogApplier {
            applied: from,
            pending: HashMap::new(),
            decides: HashMap::new(),
            stats: RecoveryStats::default(),
        }
    }

    /// The offset replay has consumed through: every byte below it has
    /// been applied (or was a skip/dead zone), and it is a sound resume
    /// point for both this applier and a resubscribing shipper.
    pub fn applied_offset(&self) -> u64 {
        self.applied
    }

    /// Replay counters accumulated so far.
    pub fn stats(&self) -> RecoveryStats {
        let mut stats = self.stats;
        stats.in_doubt = self.pending.len() as u64;
        stats
    }

    /// Replay every complete block currently in `db`'s log past the
    /// applied frontier. Returns the number of blocks replayed this
    /// round. Prepared-but-undecided transactions are buffered across
    /// rounds: first-updater-wins guarantees no conflicting commit
    /// interleaves with a prepared transaction on the same record, and
    /// replay is stamp-idempotent, so applying a decided prepare after
    /// later Txn blocks is order-safe.
    pub fn apply_available(&mut self, db: &Database) -> std::io::Result<u64> {
        let mut rounds = 0u64;
        let mut scanner = LogScanner::new(db.inner.log.segments(), self.applied);
        while let Some(block) = scanner.next_block()? {
            // Only a decoded block certifies the bytes behind it; after
            // `Ok(None)` the scanner's position may sit past a hole.
            self.applied = scanner.offset();
            match block.header.kind {
                ermia_log::BlockKind::Txn => {
                    rounds += 1;
                    self.stats.replayed_blocks += 1;
                    db.replay_records(&block.records(), block.header.cstamp, &mut self.stats)?;
                }
                ermia_log::BlockKind::TxnPrepare => {
                    let Some(marker) = block.prepare_marker() else { continue };
                    let cstamp = block.header.cstamp;
                    let gtid_lsn = if marker.coord_lsn == PrepareMarker::COORD_SELF {
                        cstamp.raw()
                    } else {
                        marker.coord_lsn
                    };
                    let txn = InDoubtTxn {
                        coord_shard: marker.coord_shard,
                        gtid_lsn,
                        cstamp,
                        trace_hi: marker.trace_hi,
                        trace_lo: marker.trace_lo,
                        records: block.records(),
                    };
                    self.pending.insert((marker.coord_shard, gtid_lsn), txn);
                }
                ermia_log::BlockKind::TxnDecide => {
                    let Some(d) = DecideRecord::decode(&block.payload) else { continue };
                    self.decides.insert((d.coord_shard, d.gtid_lsn), d.commit);
                    if let Some(txn) = self.pending.remove(&(d.coord_shard, d.gtid_lsn)) {
                        if d.commit {
                            rounds += 1;
                            self.stats.replayed_blocks += 1;
                            apply_traced(db, &txn, &mut self.stats)?;
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(rounds)
    }

    /// Every 2PC verdict seen so far, keyed by global transaction id.
    /// A multi-shard replica resolves other shards' pending prepares
    /// against these (the coordinator's log is authoritative).
    pub fn decides(&self) -> &HashMap<(u32, u64), bool> {
        &self.decides
    }

    /// Keys of prepares still awaiting a verdict.
    pub fn pending_keys(&self) -> Vec<(u32, u64)> {
        self.pending.keys().copied().collect()
    }

    /// Resolve one pending prepare with an externally obtained verdict
    /// (from another shard's [`LogApplier::decides`]). Applies the
    /// transaction when the verdict is commit; drops it otherwise.
    /// Returns false if the key was not pending.
    pub fn resolve(&mut self, db: &Database, key: (u32, u64), commit: bool) -> std::io::Result<bool> {
        let Some(txn) = self.pending.remove(&key) else { return Ok(false) };
        if commit {
            self.stats.replayed_blocks += 1;
            apply_traced(db, &txn, &mut self.stats)?;
        }
        Ok(true)
    }

    /// Finish a one-shot recovery: whatever is still pending becomes the
    /// in-doubt set for the sharded resolution pass.
    pub fn into_outcome(self) -> RecoveryOutcome {
        let mut stats = self.stats;
        let in_doubt: Vec<InDoubtTxn> = self.pending.into_values().collect();
        stats.in_doubt = in_doubt.len() as u64;
        RecoveryOutcome { stats, in_doubt, decides: self.decides }
    }
}

// Checkpoint payload format (little-endian):
//   u32 ntables
//   per table: u32 table_id, u32 nrecords
//     per record: u32 oid, u64 clsn_raw, u8 tombstone,
//                 u16 key_len, u32 val_len, key, val
//   u32 nsecondary
//     per entry: u32 index_id, u32 oid, u16 key_len, key

impl Database {
    /// Take a fuzzy checkpoint: walk every indirection array, serialize
    /// the newest committed version of each record, wait for everything
    /// captured to be durable in the log, then persist the snapshot with
    /// a marker file. Returns the checkpoint's begin LSN.
    ///
    /// Two rules keep the fuzzy snapshot honest about crashes:
    ///
    /// * **Replay frontier.** A commit may be mid-post-commit while the
    ///   walk runs, its versions still TID-stamped and invisible — yet
    ///   its log block can already be durable, below where a naive
    ///   `tail_lsn()` frontier would start replay. The begin LSN is
    ///   lowered to the earliest in-flight commit stamp (captured
    ///   *before* the walk) so replay re-applies whatever the walk could
    ///   not see. Replay is idempotent, so overlap is harmless.
    /// * **Durability barrier.** Version stamps advance before their log
    ///   blocks reach disk, so the walk can capture commits the log
    ///   cannot yet back — and chain GC may have already reclaimed the
    ///   older durable version, so filtering them out would drop the key
    ///   from the snapshot entirely. Instead the checkpoint is published
    ///   only once the log is durable past every captured stamp. If the
    ///   log cannot catch up (poisoned, or a crash lands first) no
    ///   marker appears and recovery falls back to the previous
    ///   checkpoint plus a longer replay; an acked write is never
    ///   shadowed by unbacked state. Without the barrier, restoring such
    ///   a version plants it *above* the recovered log tail — invisible
    ///   to every snapshot and hiding the acked version the checkpoint
    ///   no longer carries (the exact loss the chaos harness's
    ///   durability oracle caught).
    pub fn checkpoint(&self) -> std::io::Result<Lsn> {
        let store = self
            .inner
            .checkpoints
            .as_ref()
            .expect("checkpointing requires a durable (log-dir) configuration");
        // Before the walk: any commit stamp acquired after this scan is
        // at or above the current tail, hence at or above `begin`.
        let begin = self.inner.tid.min_commit_low_water(self.inner.log.tail_lsn());
        let mut max_captured = Lsn::NULL;
        let mut payload: Vec<u8> = Vec::new();

        let catalog = self.inner.catalog.read();
        payload.extend_from_slice(&(catalog.tables.len() as u32).to_le_bytes());
        for table in &catalog.tables {
            payload.extend_from_slice(&table.id.0.to_le_bytes());
            let count_pos = payload.len();
            payload.extend_from_slice(&0u32.to_le_bytes());
            let keys = primary_keys_of(table);
            let mut n: u32 = 0;
            table.oids.for_each(|oid, head| {
                // Newest committed version at snapshot time; in-flight
                // (TID-stamped) versions belong to the log, not the
                // checkpoint.
                let mut cur = head;
                while !cur.is_null() {
                    let v = unsafe { &*cur };
                    let stamp = v.stamp();
                    if !stamp.is_tid() {
                        // A key can only be missing for an OID committed
                        // after the reverse scan; its stamp is past
                        // `begin`, so replay restores it from the log.
                        let Some(key) = keys.get(&oid.0) else { break };
                        max_captured = max_captured.max(stamp.as_lsn());
                        payload.extend_from_slice(&oid.0.to_le_bytes());
                        payload.extend_from_slice(&stamp.raw().to_le_bytes());
                        payload.push(v.tombstone as u8);
                        payload.extend_from_slice(&(key.len() as u16).to_le_bytes());
                        payload.extend_from_slice(&(v.data.len() as u32).to_le_bytes());
                        payload.extend_from_slice(key);
                        payload.extend_from_slice(&v.data);
                        n += 1;
                        break;
                    }
                    cur = v.next.load(Ordering::Acquire);
                }
            });
            payload[count_pos..count_pos + 4].copy_from_slice(&n.to_le_bytes());
        }
        // Secondary index entries.
        let secondaries: Vec<_> = catalog.indexes.iter().filter(|i| !i.is_primary).collect();
        payload.extend_from_slice(&(secondaries.len() as u32).to_le_bytes());
        for idx in secondaries {
            let entry_pos = payload.len();
            payload.extend_from_slice(&0u32.to_le_bytes());
            let mut n: u32 = 0;
            let mgr = ermia_epoch::EpochManager::new("chk");
            let h = mgr.register();
            let g = h.pin();
            idx.tree.scan(
                &g,
                &[],
                &[0xFF; 64],
                |_| {},
                |k, oid| {
                    payload.extend_from_slice(&idx.id.0.to_le_bytes());
                    payload.extend_from_slice(&(oid as u32).to_le_bytes());
                    payload.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    payload.extend_from_slice(k);
                    n += 1;
                    ermia_index::ScanControl::Continue
                },
            );
            payload[entry_pos..entry_pos + 4].copy_from_slice(&n.to_le_bytes());
        }
        drop(catalog);

        // Durability barrier: publish nothing until the log durably backs
        // every captured stamp. `durable` advancing past a block's start
        // LSN means the whole block is on disk (it advances in block
        // units), so `offset + 1` is the right group-commit target.
        if !max_captured.is_null() {
            self.inner
                .log
                .wait_durable(max_captured.offset() + 1)
                .map_err(std::io::Error::other)?;
        }
        store.write(CheckpointMeta { begin }, &payload)?;
        Ok(begin)
    }

    /// Recover: restore the latest checkpoint (if any), then replay the
    /// log forward. The schema (tables and secondary indexes) must have
    /// been re-declared — `create_table` / `create_secondary_index` are
    /// idempotent by name, so applications simply run their DDL first.
    ///
    /// 2PC prepares whose verdict is not in this log are *presumed
    /// aborted* (counted in [`RecoveryStats::in_doubt`]). Sharded
    /// deployments recover through `ShardedDb::recover`, which uses
    /// [`Database::recover_outcome`] to resolve them against the
    /// coordinator's log instead.
    pub fn recover(&self) -> std::io::Result<RecoveryStats> {
        self.recover_outcome().map(|o| o.stats)
    }

    /// [`Database::recover`] plus the raw material the sharded
    /// resolution pass needs: this shard's unresolved prepares and every
    /// 2PC verdict its log contains.
    pub fn recover_outcome(&self) -> std::io::Result<RecoveryOutcome> {
        let mut checkpoint_records = 0u64;
        let mut from = 0u64;
        if let Some(store) = &self.inner.checkpoints {
            if let Some((meta, payload)) = store.latest()? {
                (checkpoint_records, _) = self.install_checkpoint(&payload)?;
                from = meta.begin.offset();
            }
        }
        let mut applier = LogApplier::new(from);
        applier.apply_available(self)?;
        let mut outcome = applier.into_outcome();
        outcome.stats.checkpoint_records = checkpoint_records;
        Ok(outcome)
    }

    /// Apply a resolved in-doubt prepare (verdict: commit) produced by
    /// [`Database::recover_outcome`] on this same database.
    pub fn apply_in_doubt(&self, txn: &InDoubtTxn) -> std::io::Result<()> {
        let mut stats = RecoveryStats::default();
        self.replay_records(&txn.records, txn.cstamp, &mut stats)
    }

    /// Replay one committed transaction's records at `cstamp`.
    fn replay_records(
        &self,
        recs: &[LogRecord],
        cstamp: Lsn,
        stats: &mut RecoveryStats,
    ) -> std::io::Result<()> {
        // Every record in a block shares the commit stamp, so the
        // stamp-based idempotency check in `apply_record` cannot order
        // multiple ops on the same OID within one transaction (e.g.
        // delete-then-reinsert of a key). Only the last image per OID
        // is the committed outcome; apply that one alone.
        let mut last_per_oid = std::collections::HashMap::new();
        for (i, rec) in recs.iter().enumerate() {
            if !matches!(rec.kind, LogRecordKind::SecondaryInsert) {
                last_per_oid.insert((rec.table.0, rec.oid.0), i);
            }
        }
        for (i, rec) in recs.iter().enumerate() {
            stats.replayed_records += 1;
            match rec.kind {
                LogRecordKind::Insert | LogRecordKind::Update | LogRecordKind::Delete => {
                    if last_per_oid.get(&(rec.table.0, rec.oid.0)) != Some(&i) {
                        stats.skipped_stale += 1;
                        continue;
                    }
                    // Indirect values live in the blob store; the log
                    // record carries the reference.
                    let resolved;
                    let value: &[u8] = if rec.indirect {
                        let blob = ermia_log::BlobRef::decode(&rec.value)
                            .expect("malformed blob reference in log");
                        resolved = self.inner.blobs.read(blob)?;
                        &resolved
                    } else {
                        &rec.value
                    };
                    let applied = self.apply_record(
                        rec.table.0,
                        rec.oid,
                        &rec.key,
                        value,
                        cstamp,
                        rec.kind == LogRecordKind::Delete,
                    );
                    if !applied {
                        stats.skipped_stale += 1;
                    }
                }
                LogRecordKind::SecondaryInsert => {
                    let index_raw =
                        u32::from_le_bytes(rec.value[..4].try_into().expect("index id"));
                    self.apply_secondary(index_raw, &rec.key, rec.oid);
                }
            }
        }
        Ok(())
    }

    /// Install a checkpoint payload into this database's (empty or
    /// stale) in-memory state. Returns `(records installed, publish
    /// floor)` — the floor is the maximum commit stamp the fuzzy walk
    /// captured. A fuzzy checkpoint stores only the newest committed
    /// version per record at walk time, so a version overwritten before
    /// the walk (stamp below `begin`) whose overwriter landed after
    /// `begin` exists in *neither* the payload *nor* replay-below-floor:
    /// snapshots cut between `begin` and the floor could see the
    /// overwriter's key but miss siblings the walk captured later. A
    /// replica therefore must not serve a cut until replay has passed
    /// the floor; from there on every cut is transaction-consistent.
    pub fn install_checkpoint(&self, payload: &[u8]) -> std::io::Result<(u64, Lsn)> {
        let mut pos = 0usize;
        let mut restored = 0u64;
        let mut floor = Lsn::NULL;
        let rd_u16 = |p: &mut usize| {
            let v = u16::from_le_bytes(payload[*p..*p + 2].try_into().unwrap());
            *p += 2;
            v
        };
        let rd_u32 = |p: &mut usize| {
            let v = u32::from_le_bytes(payload[*p..*p + 4].try_into().unwrap());
            *p += 4;
            v
        };
        let rd_u64 = |p: &mut usize| {
            let v = u64::from_le_bytes(payload[*p..*p + 8].try_into().unwrap());
            *p += 8;
            v
        };
        let ntables = rd_u32(&mut pos);
        for _ in 0..ntables {
            let table_id = rd_u32(&mut pos);
            let nrecords = rd_u32(&mut pos);
            for _ in 0..nrecords {
                let oid = rd_u32(&mut pos);
                let clsn = rd_u64(&mut pos);
                let tombstone = payload[pos] != 0;
                pos += 1;
                let key_len = rd_u16(&mut pos) as usize;
                let val_len = rd_u32(&mut pos) as usize;
                let key = &payload[pos..pos + key_len];
                pos += key_len;
                let val = &payload[pos..pos + val_len];
                pos += val_len;
                floor = floor.max(Lsn::from_raw(clsn));
                self.apply_record(table_id, Oid(oid), key, val, Lsn::from_raw(clsn), tombstone);
                restored += 1;
            }
        }
        let nsecondary = rd_u32(&mut pos);
        for _ in 0..nsecondary {
            let nentries = rd_u32(&mut pos);
            for _ in 0..nentries {
                let index_raw = rd_u32(&mut pos);
                let oid = rd_u32(&mut pos);
                let key_len = rd_u16(&mut pos) as usize;
                let key = &payload[pos..pos + key_len];
                pos += key_len;
                self.apply_secondary(index_raw, key, Oid(oid));
            }
        }
        Ok((restored, floor))
    }

    /// Idempotently apply one record image: install iff newer than the
    /// current head (fuzzy checkpoints and replay may overlap).
    fn apply_record(
        &self,
        table_raw: u32,
        oid: Oid,
        key: &[u8],
        value: &[u8],
        cstamp: Lsn,
        tombstone: bool,
    ) -> bool {
        let catalog = self.inner.catalog.read();
        let Some(table) = catalog.tables.get(table_raw as usize) else {
            return false; // table not re-declared: skip (documented contract)
        };
        let table = std::sync::Arc::clone(table);
        drop(catalog);

        table.oids.ensure_allocated(oid);
        let head = table.oids.head(oid);
        if !head.is_null() {
            let hstamp = unsafe { (*head).stamp() };
            if !hstamp.is_tid() && hstamp.as_lsn() >= cstamp {
                return false; // already have this or newer
            }
        }
        let new = Version::alloc(Stamp::from_lsn(cstamp), value, tombstone);
        unsafe { (*new).next.store(head, Ordering::Relaxed) };
        table.oids.store_head(oid, new);
        // Index the key (idempotent: Duplicate means it's already there).
        let mgr = &self.inner.epoch;
        let h = mgr.register();
        let g = h.pin();
        let _ = table.primary.insert(&g, key, oid.0 as u64);
        true
    }

    fn apply_secondary(&self, index_raw: u32, key: &[u8], oid: Oid) {
        let catalog = self.inner.catalog.read();
        let Some(idx) = catalog.indexes.get(index_raw as usize) else { return };
        let idx = std::sync::Arc::clone(idx);
        drop(catalog);
        let h = self.inner.epoch.register();
        let g = h.pin();
        let _ = idx.tree.insert(&g, key, oid.0 as u64);
    }
}

/// Build the OID→primary-key reverse map for one checkpoint pass. Keys
/// are not stored in versions, so the walk resolves them through this
/// map; it is rebuilt on every checkpoint — a cached map would miss keys
/// inserted since it was built and silently emit them keyless.
///
/// NOTE: building the reverse map per table per checkpoint is O(n); the
/// paper's checkpoint stores OID→address only (keys live in the log).
/// Payload-carrying checkpoints need the key; the map amortizes to one
/// tree scan per table.
fn primary_keys_of(table: &crate::database::Table) -> std::collections::HashMap<u32, Vec<u8>> {
    let mut map = std::collections::HashMap::new();
    let mgr = ermia_epoch::EpochManager::new("chk-key");
    let h = mgr.register();
    let g = h.pin();
    table.primary.scan(
        &g,
        &[],
        &[0xFF; 64],
        |_| {},
        |k, v| {
            map.insert(v as u32, k.to_vec());
            ermia_index::ScanControl::Continue
        },
    );
    map
}
