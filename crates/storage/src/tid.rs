//! Transaction ID management (paper §3.5).
//!
//! A fixed-capacity table (64K entries) of transaction contexts. Each
//! TID combines an offset into the table with a generation that
//! distinguishes it from other transactions that happened to use the same
//! slot. Allocation, inquiry and release are all lock-free.
//!
//! ## The commit word
//!
//! The context packs commit state and commit stamp into one atomic word
//! so that readers performing visibility checks see a consistent
//! (state, cstamp) pair:
//!
//! ```text
//! word = (cstamp.raw() << 3) | tag
//! tag: 0 FREE · 1 ACTIVE · 2 PENDING · 3 PRECOMMIT · 4 COMMITTED · 5 ABORTED
//! ```
//!
//! The owner drives the word through `ACTIVE → PENDING → PRECOMMIT(c) →
//! COMMITTED(c) | ABORTED → FREE`. `PENDING` is published *before* the
//! commit-LSN `fetch_add`, which gives snapshot readers the guarantee
//! they need: if a reader (whose begin timestamp was taken earlier)
//! observes `ACTIVE`, the owner's eventual commit stamp must be larger
//! than the reader's begin timestamp, so "invisible" is the consistent
//! verdict. Observing `PENDING`/`PRECOMMIT` with a possibly-smaller stamp
//! tells the reader to spin briefly for the outcome (the window spans no
//! I/O — just the SSN test and log-buffer copy).

use std::sync::atomic::{AtomicU64, Ordering};

use ermia_common::ids::TID_TABLE_CAPACITY;
use ermia_common::{Lsn, Tid};

const TAG_BITS: u32 = 3;
const TAG_MASK: u64 = (1 << TAG_BITS) - 1;

const TAG_FREE: u64 = 0;
const TAG_ACTIVE: u64 = 1;
const TAG_PENDING: u64 = 2;
const TAG_PRECOMMIT: u64 = 3;
const TAG_COMMITTED: u64 = 4;
const TAG_ABORTED: u64 = 5;

/// Outcome of a TID inquiry (§3.5: "three possible outcomes").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TidStatus {
    /// (a) The transaction is still in flight with no commit stamp yet.
    InFlight,
    /// The transaction entered pre-commit: it holds commit stamp `Lsn`
    /// but its fate is undecided — visibility checkers with an older
    /// begin stamp must wait for the verdict.
    Precommit(Lsn),
    /// (b) The transaction has ended; the end stamp is returned.
    Committed(Lsn),
    /// The transaction aborted; its versions are being unlinked.
    Aborted,
    /// (c) The supplied TID is from a previous generation. The caller
    /// should re-read the location that produced the TID — the
    /// transaction has finished post-commit, so the location is
    /// guaranteed to contain a proper commit stamp.
    Stale,
}

/// One entry in the TID table.
pub struct TxContext {
    /// Full TID of the current owner (identifies the generation).
    owner: AtomicU64,
    /// The commit word (see module docs).
    word: AtomicU64,
    /// Owner's begin timestamp (raw LSN).
    begin: AtomicU64,
    /// SSN η(T): latest committed predecessor stamp.
    pub pstamp: AtomicU64,
    /// SSN π(T): earliest successor stamp (∞ when none).
    pub sstamp: AtomicU64,
}

impl TxContext {
    /// Owner's begin timestamp.
    #[inline]
    pub fn begin(&self) -> Lsn {
        Lsn::from_raw(self.begin.load(Ordering::Acquire))
    }

    /// Decode the commit word.
    #[inline]
    pub fn status(&self) -> TidStatus {
        decode(self.word.load(Ordering::Acquire))
    }

    /// Publish "about to acquire a commit stamp" — must precede the
    /// commit-LSN `fetch_add` (see module docs).
    #[inline]
    pub fn enter_pending(&self) {
        debug_assert_eq!(self.word.load(Ordering::Relaxed) & TAG_MASK, TAG_ACTIVE);
        self.word.store(TAG_PENDING, Ordering::SeqCst);
    }

    /// Publish the acquired commit stamp (fate still undecided).
    #[inline]
    pub fn enter_precommit(&self, cstamp: Lsn) {
        debug_assert_eq!(self.word.load(Ordering::Relaxed) & TAG_MASK, TAG_PENDING);
        self.word.store((cstamp.raw() << TAG_BITS) | TAG_PRECOMMIT, Ordering::SeqCst);
    }

    /// Decide commit: updates become visible atomically at this store.
    #[inline]
    pub fn commit(&self, cstamp: Lsn) {
        self.word.store((cstamp.raw() << TAG_BITS) | TAG_COMMITTED, Ordering::SeqCst);
    }

    /// Decide abort.
    #[inline]
    pub fn abort(&self) {
        self.word.store(TAG_ABORTED, Ordering::SeqCst);
    }

    /// The commit stamp, once decided (panics otherwise; debug aid).
    #[inline]
    pub fn cstamp(&self) -> Lsn {
        let w = self.word.load(Ordering::Acquire);
        debug_assert!(w & TAG_MASK == TAG_COMMITTED || w & TAG_MASK == TAG_PRECOMMIT);
        Lsn::from_raw(w >> TAG_BITS)
    }
}

#[inline]
fn decode(word: u64) -> TidStatus {
    match word & TAG_MASK {
        TAG_ACTIVE => TidStatus::InFlight,
        TAG_PENDING => TidStatus::Precommit(Lsn::NULL),
        TAG_PRECOMMIT => TidStatus::Precommit(Lsn::from_raw(word >> TAG_BITS)),
        TAG_COMMITTED => TidStatus::Committed(Lsn::from_raw(word >> TAG_BITS)),
        TAG_ABORTED => TidStatus::Aborted,
        // FREE (or torn generation): the slot owner finished entirely.
        _ => TidStatus::Stale,
    }
}

/// The lock-free transaction context table.
pub struct TidManager {
    slots: Box<[TxContext]>,
}

impl Default for TidManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TidManager {
    pub fn new() -> TidManager {
        let slots: Vec<TxContext> = (0..TID_TABLE_CAPACITY)
            .map(|i| TxContext {
                owner: AtomicU64::new(Tid::new(0, i).raw()),
                word: AtomicU64::new(TAG_FREE),
                begin: AtomicU64::new(0),
                pstamp: AtomicU64::new(0),
                sstamp: AtomicU64::new(Lsn::MAX.raw()),
            })
            .collect();
        TidManager { slots: slots.into_boxed_slice() }
    }

    /// Claim a context for a transaction beginning at `begin`.
    ///
    /// `hint` is a per-worker probe cursor: successive claims from one
    /// thread walk disjoint regions, so the common case is one CAS.
    pub fn acquire(&self, begin: Lsn, hint: &mut usize) -> (Tid, &TxContext) {
        for _ in 0..TID_TABLE_CAPACITY {
            *hint = (*hint + 1) % TID_TABLE_CAPACITY;
            let ctx = &self.slots[*hint];
            if ctx.word.load(Ordering::Relaxed) != TAG_FREE {
                continue;
            }
            if ctx
                .word
                .compare_exchange(TAG_FREE, TAG_ACTIVE, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            // We own the slot: advance the generation, publish begin.
            let old = ctx.owner.load(Ordering::Relaxed);
            let tid = Tid::new(Tid::from_raw(old).generation() + 1, *hint);
            ctx.begin.store(begin.raw(), Ordering::Relaxed);
            ctx.pstamp.store(0, Ordering::Relaxed);
            ctx.sstamp.store(Lsn::MAX.raw(), Ordering::Relaxed);
            ctx.owner.store(tid.raw(), Ordering::Release);
            return (tid, ctx);
        }
        panic!("TID table exhausted: more than {TID_TABLE_CAPACITY} in-flight transactions");
    }

    /// Direct access to a context by TID slot. Callers that own the TID
    /// (the executing transaction) use this; inquirers use
    /// [`TidManager::inquire`].
    #[inline]
    pub fn ctx(&self, tid: Tid) -> &TxContext {
        &self.slots[tid.slot()]
    }

    /// Ask about another transaction's fate (§3.5).
    pub fn inquire(&self, tid: Tid) -> TidStatus {
        let ctx = &self.slots[tid.slot()];
        if ctx.owner.load(Ordering::Acquire) != tid.raw() {
            return TidStatus::Stale;
        }
        let status = ctx.status();
        // The owner could have released and a successor claimed the slot
        // between the two loads; re-check the generation.
        if ctx.owner.load(Ordering::Acquire) != tid.raw() {
            return TidStatus::Stale;
        }
        status
    }

    /// Release a context once post-commit (or abort cleanup) is complete
    /// — i.e. after every version stamped with this TID has been
    /// re-stamped or unlinked, so Stale inquiries can safely re-read.
    pub fn release(&self, tid: Tid) {
        let ctx = &self.slots[tid.slot()];
        debug_assert_eq!(ctx.owner.load(Ordering::Relaxed), tid.raw());
        ctx.word.store(TAG_FREE, Ordering::Release);
    }

    /// The smallest begin timestamp among in-flight transactions, or
    /// `fallback` if none — the GC's reclamation horizon.
    pub fn min_active_begin(&self, fallback: Lsn) -> Lsn {
        let mut min = fallback;
        for ctx in self.slots.iter() {
            let w = ctx.word.load(Ordering::Acquire);
            match w & TAG_MASK {
                TAG_ACTIVE | TAG_PENDING | TAG_PRECOMMIT => {
                    let b = Lsn::from_raw(ctx.begin.load(Ordering::Acquire));
                    if b < min {
                        min = b;
                    }
                }
                _ => {}
            }
        }
        min
    }

    /// The smallest commit stamp among transactions that have acquired
    /// one but not yet released their context (PRECOMMIT or COMMITTED),
    /// capped by `fallback`.
    ///
    /// This is the fuzzy-checkpoint replay frontier: a transaction in
    /// this window may have filled its log block while its versions
    /// still carry TID stamps that the checkpoint walk cannot capture.
    /// Replaying from at or below the returned LSN re-applies such
    /// commits from the log. Slots still PENDING (stamp not yet
    /// acquired) need no term here: `PENDING` precedes the commit-LSN
    /// `fetch_add`, so their eventual stamp lands at or above any
    /// tail-derived fallback captured before this scan.
    pub fn min_commit_low_water(&self, fallback: Lsn) -> Lsn {
        let mut min = fallback;
        for ctx in self.slots.iter() {
            let w = ctx.word.load(Ordering::Acquire);
            match w & TAG_MASK {
                TAG_PRECOMMIT | TAG_COMMITTED => {
                    let c = Lsn::from_raw(w >> TAG_BITS);
                    if c < min {
                        min = c;
                    }
                }
                _ => {}
            }
        }
        min
    }

    /// Number of currently claimed slots (tests / stats).
    pub fn in_use(&self) -> usize {
        self.slots.iter().filter(|c| c.word.load(Ordering::Relaxed) != TAG_FREE).count()
    }
}
