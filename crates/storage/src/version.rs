//! Version chain nodes.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use ermia_common::{Lsn, Stamp};

/// One version of a database record.
///
/// Versions are heap-allocated, linked newest-first from an indirection
/// array slot, and reclaimed through the epoch manager once invisible to
/// every active transaction.
#[repr(C)]
pub struct Version {
    /// Creation stamp: the creator's TID until post-commit, then the
    /// commit LSN (§3.1). See [`Stamp`].
    pub clsn: AtomicU64,
    /// Next older version (null at the chain tail).
    pub next: AtomicPtr<Version>,
    /// SSN η(V): the commit stamp of the latest committed transaction
    /// that read this version.
    pub pstamp: AtomicU64,
    /// SSN π(V): the low watermark of the transaction that overwrote
    /// this version (∞ while unoverwritten).
    pub sstamp: AtomicU64,
    /// Tombstone marker — "delete is treated as an update with tombstone
    /// marking" (§3.2).
    pub tombstone: bool,
    /// The record payload.
    pub data: Box<[u8]>,
}

impl Version {
    /// Allocate a version stamped with `stamp`, returning an owning raw
    /// pointer (managed by the caller / epoch GC thereafter).
    pub fn alloc(stamp: Stamp, data: &[u8], tombstone: bool) -> *mut Version {
        Box::into_raw(Box::new(Version {
            clsn: AtomicU64::new(stamp.raw()),
            next: AtomicPtr::new(std::ptr::null_mut()),
            pstamp: AtomicU64::new(0),
            sstamp: AtomicU64::new(Lsn::MAX.raw()),
            tombstone,
            data: data.to_vec().into_boxed_slice(),
        }))
    }

    /// The current creation stamp.
    #[inline]
    pub fn stamp(&self) -> Stamp {
        Stamp::from_raw(self.clsn.load(Ordering::Acquire))
    }

    /// Monotonically raise `pstamp` to at least `to` (SSN read
    /// registration; lock-free max).
    #[inline]
    pub fn raise_pstamp(&self, to: u64) {
        self.pstamp.fetch_max(to, Ordering::AcqRel);
    }

    /// True if this version has been overwritten by a committed
    /// transaction (its π is finite).
    #[inline]
    pub fn is_overwritten(&self) -> bool {
        self.sstamp.load(Ordering::Acquire) != Lsn::MAX.raw()
    }
}
