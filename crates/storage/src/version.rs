//! Version chain nodes and their recycling pool.
//!
//! Versions are heap-allocated, linked newest-first from an indirection
//! array slot, and reclaimed through the epoch manager once invisible to
//! every active transaction. Instead of returning quiesced nodes to the
//! global allocator, the GC seeds a [`VersionPool`]; workers draw from it
//! through a per-worker [`VersionCache`] and reinitialize nodes in place,
//! so the steady-state write path performs no heap allocation (the
//! payload `Vec` keeps its capacity across reuses).

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use ermia_common::{Lsn, Stamp};
use parking_lot::Mutex;

/// One version of a database record.
#[repr(C)]
pub struct Version {
    /// Creation stamp: the creator's TID until post-commit, then the
    /// commit LSN (§3.1). See [`Stamp`].
    pub clsn: AtomicU64,
    /// Next older version (null at the chain tail).
    pub next: AtomicPtr<Version>,
    /// SSN η(V): the commit stamp of the latest committed transaction
    /// that read this version.
    pub pstamp: AtomicU64,
    /// SSN π(V): the low watermark of the transaction that overwrote
    /// this version (∞ while unoverwritten).
    pub sstamp: AtomicU64,
    /// Tombstone marker — "delete is treated as an update with tombstone
    /// marking" (§3.2).
    pub tombstone: bool,
    /// The record payload. A `Vec` (not `Box<[u8]>`) so a recycled node
    /// can absorb a new payload without reallocating.
    pub data: Vec<u8>,
}

impl Version {
    /// Allocate a version stamped with `stamp`, returning an owning raw
    /// pointer (managed by the caller / epoch GC thereafter).
    pub fn alloc(stamp: Stamp, data: &[u8], tombstone: bool) -> *mut Version {
        Box::into_raw(Box::new(Version {
            clsn: AtomicU64::new(stamp.raw()),
            next: AtomicPtr::new(std::ptr::null_mut()),
            pstamp: AtomicU64::new(0),
            sstamp: AtomicU64::new(Lsn::MAX.raw()),
            tombstone,
            data: data.to_vec(),
        }))
    }

    /// Reinitialize a recycled node in place, reusing its payload
    /// capacity. Plain stores suffice: publication to other threads
    /// happens later via the indirection-array CAS (Release).
    ///
    /// # Safety
    /// The caller must have exclusive ownership of `ptr` — a node fresh
    /// from the pool (epoch-quiesced) that is not yet reachable by any
    /// other thread.
    pub unsafe fn reinit(ptr: *mut Version, stamp: Stamp, data: &[u8], tombstone: bool) {
        let v = unsafe { &mut *ptr };
        v.clsn.store(stamp.raw(), Ordering::Relaxed);
        v.next.store(std::ptr::null_mut(), Ordering::Relaxed);
        v.pstamp.store(0, Ordering::Relaxed);
        v.sstamp.store(Lsn::MAX.raw(), Ordering::Relaxed);
        v.tombstone = tombstone;
        v.data.clear();
        v.data.extend_from_slice(data);
    }

    /// The current creation stamp.
    #[inline]
    pub fn stamp(&self) -> Stamp {
        Stamp::from_raw(self.clsn.load(Ordering::Acquire))
    }

    /// Monotonically raise `pstamp` to at least `to` (SSN read
    /// registration; lock-free max).
    #[inline]
    pub fn raise_pstamp(&self, to: u64) {
        self.pstamp.fetch_max(to, Ordering::AcqRel);
    }

    /// True if this version has been overwritten by a committed
    /// transaction (its π is finite).
    #[inline]
    pub fn is_overwritten(&self) -> bool {
        self.sstamp.load(Ordering::Acquire) != Lsn::MAX.raw()
    }
}

/// How many nodes a [`VersionCache`] pulls from the shared pool at once.
const CACHE_REFILL_BATCH: usize = 32;

/// Default bound on pooled nodes; beyond it, released nodes are freed.
pub const DEFAULT_POOL_CAP: usize = 4096;

/// Shared free list of quiesced version nodes.
///
/// Nodes enter via [`VersionPool::release`] — from the GC (after epoch
/// quiescence, see [`defer_release`]) or from a dropping
/// [`VersionCache`] — and leave via worker caches. The pool owns the
/// nodes it holds and frees any overflow, so its capacity bounds memory
/// retained for reuse.
pub struct VersionPool {
    free: Mutex<Vec<*mut Version>>,
    cap: usize,
}

// SAFETY: the raw pointers in the free list are exclusively owned by the
// pool — every node released to it is epoch-quiesced (unreachable from
// any shared structure), so handing one to another thread transfers sole
// ownership.
unsafe impl Send for VersionPool {}
unsafe impl Sync for VersionPool {}

impl Default for VersionPool {
    fn default() -> Self {
        VersionPool::new(DEFAULT_POOL_CAP)
    }
}

impl VersionPool {
    pub fn new(cap: usize) -> VersionPool {
        VersionPool { free: Mutex::new(Vec::new()), cap }
    }

    /// Take ownership of a quiesced node for later reuse (or free it if
    /// the pool is full).
    ///
    /// # Safety
    /// `ptr` must come from `Box::into_raw` (via [`Version::alloc`]), be
    /// unreachable from every shared structure, and not be freed or
    /// released by anyone else.
    pub unsafe fn release(&self, ptr: *mut Version) {
        debug_assert!(!ptr.is_null());
        let mut free = self.free.lock();
        if free.len() < self.cap {
            free.push(ptr);
        } else {
            drop(free);
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }

    /// Pop up to `n` nodes into `out`. Returns how many were moved.
    fn fill(&self, out: &mut Vec<*mut Version>, n: usize) -> usize {
        let mut free = self.free.lock();
        let take = n.min(free.len());
        let split = free.len() - take;
        out.extend(free.drain(split..));
        take
    }

    /// Nodes currently pooled (tests/stats).
    pub fn pooled(&self) -> usize {
        self.free.lock().len()
    }
}

impl Drop for VersionPool {
    fn drop(&mut self) {
        for ptr in self.free.get_mut().drain(..) {
            // SAFETY: the pool exclusively owns pooled nodes.
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }
}

/// Per-worker cache over a [`VersionPool`].
///
/// Acquisition pops a local node (no synchronization); the local stash
/// refills from the shared pool in batches. Only when both are empty
/// does the worker touch the allocator.
pub struct VersionCache {
    pool: Arc<VersionPool>,
    local: Vec<*mut Version>,
    /// Nodes served from the cache instead of the allocator (stats).
    reused: u64,
}

// SAFETY: same ownership argument as the pool — locally cached nodes are
// exclusively owned; moving the cache to another thread moves ownership.
unsafe impl Send for VersionCache {}

impl VersionCache {
    pub fn new(pool: Arc<VersionPool>) -> VersionCache {
        VersionCache { pool, local: Vec::new(), reused: 0 }
    }

    /// Produce a version stamped with `stamp`: a recycled node
    /// reinitialized in place when available, a fresh allocation
    /// otherwise.
    pub fn acquire(&mut self, stamp: Stamp, data: &[u8], tombstone: bool) -> *mut Version {
        if self.local.is_empty() && self.pool.fill(&mut self.local, CACHE_REFILL_BATCH) == 0 {
            return Version::alloc(stamp, data, tombstone);
        }
        let ptr = self.local.pop().expect("non-empty after refill");
        // SAFETY: the node came from the pool (quiesced, exclusively
        // ours) and is not yet published anywhere.
        unsafe { Version::reinit(ptr, stamp, data, tombstone) };
        self.reused += 1;
        ptr
    }

    /// Return a node this worker still exclusively owns — one that was
    /// never published, or was acquired and immediately retracted before
    /// any other thread could observe it.
    ///
    /// # Safety
    /// `ptr` must be exclusively owned by the caller and unreachable from
    /// every shared structure (no epoch wait needed, unlike
    /// [`defer_release`]).
    pub unsafe fn release_unpublished(&mut self, ptr: *mut Version) {
        debug_assert!(!ptr.is_null());
        self.local.push(ptr);
    }

    /// Nodes served by reuse rather than allocation.
    pub fn reused(&self) -> u64 {
        self.reused
    }
}

impl Drop for VersionCache {
    fn drop(&mut self) {
        for ptr in self.local.drain(..) {
            // SAFETY: locally cached nodes are exclusively owned.
            unsafe { self.pool.release(ptr) };
        }
    }
}

struct SendVersionPtr(*mut Version);
// SAFETY: the deferred closure is the sole owner by the defer contract.
unsafe impl Send for SendVersionPtr {}

/// Retire `ptr` through the epoch `guard`, releasing it into `pool`
/// (instead of freeing) once every thread active now has quiesced.
///
/// # Safety
/// Same contract as [`ermia_epoch::Guard::defer_drop`]: `ptr` must be
/// unlinked from all shared structures and owned by no one else.
pub unsafe fn defer_release(
    guard: &ermia_epoch::Guard<'_>,
    pool: &Arc<VersionPool>,
    ptr: *mut Version,
) {
    let wrapped = SendVersionPtr(ptr);
    let pool = Arc::clone(pool);
    guard.defer(move || {
        let wrapper = wrapped;
        // SAFETY: quiescence has passed and we are the sole owner.
        unsafe { pool.release(wrapper.0) };
    });
}
