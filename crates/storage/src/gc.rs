//! Version-chain garbage collection (paper §3.2, §3.4).
//!
//! "The garbage collector periodically goes over all indirection arrays
//! to remove versions that are not needed by any transaction." A version
//! is unneeded once a *newer committed* version exists whose stamp is at
//! or below the reclamation horizon — the minimum begin timestamp of any
//! in-flight transaction — because every current and future snapshot
//! then reads that newer version (or something newer still).
//!
//! Reclamation is two-phase: the collector unlinks the dead suffix of a
//! chain (making it unreachable to new traversals) and retires each node
//! through the epoch manager, which frees it only after all possibly-
//! referencing threads have quiesced. When a [`VersionPool`] is supplied,
//! quiesced nodes are released into it instead of freed, seeding the
//! workers' allocation-free version caches.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ermia_common::{Lsn, Stamp};
use ermia_epoch::EpochManager;

use crate::oid_array::OidArray;
use crate::version::{defer_release, Version, VersionPool};

/// Collector statistics.
#[derive(Debug, Default)]
pub struct GcStats {
    /// Versions unlinked and retired.
    pub reclaimed: AtomicU64,
    /// Full passes over the indirection arrays.
    pub passes: AtomicU64,
}

/// Observer invoked after each full pass with `(reclaimed_this_pass,
/// total_passes)` — telemetry's flight-recorder hook.
pub type GcPassHook = Box<dyn Fn(u64, u64) + Send>;

/// Background garbage collector over a set of indirection arrays.
pub struct GarbageCollector {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    stats: Arc<GcStats>,
}

impl GarbageCollector {
    /// Start collecting over `arrays`. `horizon` supplies the current
    /// reclamation horizon (min active begin timestamp); `epoch` is the
    /// epoch manager versions are retired through; `pool`, when present,
    /// receives quiesced nodes for worker reuse instead of freeing them.
    pub fn start(
        arrays: Vec<Arc<OidArray>>,
        epoch: EpochManager,
        horizon: impl Fn() -> Lsn + Send + 'static,
        interval: Duration,
        pool: Option<Arc<VersionPool>>,
    ) -> GarbageCollector {
        Self::start_with(arrays, epoch, horizon, interval, pool, Arc::new(GcStats::default()), None)
    }

    /// [`GarbageCollector::start`] with caller-owned stats (so counts
    /// survive collector restarts across DDL) and an optional per-pass
    /// observer.
    pub fn start_with(
        arrays: Vec<Arc<OidArray>>,
        epoch: EpochManager,
        horizon: impl Fn() -> Lsn + Send + 'static,
        interval: Duration,
        pool: Option<Arc<VersionPool>>,
        stats: Arc<GcStats>,
        on_pass: Option<GcPassHook>,
    ) -> GarbageCollector {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let stats2 = Arc::clone(&stats);
        let thread = std::thread::Builder::new()
            .name("ermia-gc".into())
            .spawn(move || {
                let handle = epoch.register();
                while !stop2.load(Ordering::Acquire) {
                    let h = horizon();
                    let mut reclaimed = 0;
                    for arr in &arrays {
                        let guard = handle.pin();
                        reclaimed += sweep_array(arr, h, &guard, pool.as_ref());
                        drop(guard);
                        epoch.advance_and_collect();
                    }
                    stats2.reclaimed.fetch_add(reclaimed, Ordering::Relaxed);
                    let passes = stats2.passes.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(hook) = &on_pass {
                        hook(reclaimed, passes);
                    }
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn gc");
        GarbageCollector { stop, thread: Some(thread), stats }
    }

    pub fn stats(&self) -> &GcStats {
        &self.stats
    }
}

impl Drop for GarbageCollector {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One pass over an array: truncate every chain behind its horizon
/// version. Returns the number of versions retired.
pub fn sweep_array(
    arr: &OidArray,
    horizon: Lsn,
    guard: &ermia_epoch::Guard<'_>,
    pool: Option<&Arc<VersionPool>>,
) -> u64 {
    let mut reclaimed = 0;
    arr.for_each(|_oid, head| {
        reclaimed += sweep_chain(head, horizon, guard, pool);
    });
    reclaimed
}

/// Truncate one chain: find the first *committed* version with stamp
/// strictly below `horizon` — the boundary every active and future
/// snapshot reads (visibility is `cstamp < begin`, so the comparison
/// here must be strict too) — and retire everything older than it.
fn sweep_chain(
    head: *mut Version,
    horizon: Lsn,
    guard: &ermia_epoch::Guard<'_>,
    pool: Option<&Arc<VersionPool>>,
) -> u64 {
    let mut boundary: *mut Version = head;
    // Walk to the boundary. TID-stamped (in-flight) and too-new versions
    // must all stay.
    loop {
        if boundary.is_null() {
            return 0;
        }
        let v = unsafe { &*boundary };
        let stamp = Stamp::from_raw(v.clsn.load(Ordering::Acquire));
        if !stamp.is_tid() && stamp.as_lsn() < horizon {
            break;
        }
        boundary = v.next.load(Ordering::Acquire);
    }
    // Detach the suffix after the boundary and retire it.
    let bref = unsafe { &*boundary };
    let mut dead = bref.next.swap(std::ptr::null_mut(), Ordering::AcqRel);
    let mut n = 0;
    while !dead.is_null() {
        let next = unsafe { (*dead).next.load(Ordering::Acquire) };
        // SAFETY: unlinked above; traversals that already hold the
        // pointer are protected by their epoch pins.
        match pool {
            Some(p) => unsafe { defer_release(guard, p, dead) },
            None => unsafe { guard.defer_drop(dead) },
        }
        dead = next;
        n += 1;
    }
    n
}
