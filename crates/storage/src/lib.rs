//! ERMIA's physical storage layer (paper §3.2, §3.5).
//!
//! Three pieces live here:
//!
//! * [`OidArray`] — the latch-free indirection arrays. Every logical
//!   object (database record) is identified by an OID mapping to a slot
//!   holding a pointer to its version chain. A single compare-and-swap
//!   against the slot installs a new version; an uncommitted head version
//!   acts as a write lock, making write-write conflicts easy to detect.
//! * [`Version`] — the singly-linked version chain nodes, each stamped
//!   with a [`Stamp`](ermia_common::Stamp) (the creator's TID while in
//!   flight, the commit LSN after post-commit) plus the SSN η/π stamps.
//! * [`TidManager`] — the fixed-capacity transaction context table.
//!   TIDs combine a slot index with a generation, and inquiries about a
//!   TID-stamped version have exactly the paper's three outcomes:
//!   in-flight, ended (with the end stamp), or stale generation (caller
//!   re-reads the version, which is then guaranteed to carry an LSN).
//!
//! The [`gc`] module implements the background garbage collector that
//! "periodically goes over all indirection arrays to remove versions that
//! are not needed by any transaction", retiring them through the epoch
//! manager.

pub mod gc;
pub mod oid_array;
pub mod tid;
pub mod version;

pub use gc::{GarbageCollector, GcPassHook, GcStats};
pub use oid_array::OidArray;
pub use tid::{TidManager, TidStatus, TxContext};
pub use version::{defer_release, Version, VersionCache, VersionPool};

#[cfg(test)]
mod tests;
