//! Latch-free indirection arrays (paper §3.2).
//!
//! A linear array of slots indexed by OID; each slot holds the physical
//! pointer to the head of the record's version chain. The array is
//! paged and pages materialize on demand with a CAS, so growth never
//! blocks readers. OID allocation is "completely contention-free: it
//! simply means writing to an element in an array because no two threads
//! will be allocated the same new OID".

use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};

use ermia_common::Oid;
use parking_lot::Mutex;

use crate::version::Version;

/// Slots per page (2^14 × 8 B = 128 KiB pages).
const PAGE_SHIFT: u32 = 14;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
/// Max pages (2^14 pages × 2^14 slots = 256M OIDs per table).
const PAGE_COUNT: usize = 1 << 14;

struct Page {
    slots: Box<[AtomicU64]>,
}

impl Page {
    fn alloc() -> *mut Page {
        let slots: Vec<AtomicU64> = (0..PAGE_SIZE).map(|_| AtomicU64::new(0)).collect();
        Box::into_raw(Box::new(Page { slots: slots.into_boxed_slice() }))
    }
}

/// One table's indirection array.
pub struct OidArray {
    pages: Box<[AtomicPtr<Page>]>,
    next_oid: AtomicU32,
    /// OIDs recycled by the garbage collector.
    free: Mutex<Vec<Oid>>,
}

impl Default for OidArray {
    fn default() -> Self {
        Self::new()
    }
}

impl OidArray {
    pub fn new() -> OidArray {
        let pages: Vec<AtomicPtr<Page>> =
            (0..PAGE_COUNT).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect();
        OidArray {
            pages: pages.into_boxed_slice(),
            // OID 0 is reserved as "invalid".
            next_oid: AtomicU32::new(1),
            free: Mutex::new(Vec::new()),
        }
    }

    /// Allocate a fresh OID (recycled if the GC returned any).
    pub fn allocate(&self) -> Oid {
        if let Some(oid) = self.free.lock().pop() {
            return oid;
        }
        let oid = self.next_oid.fetch_add(1, Ordering::Relaxed);
        assert!((oid as usize) < PAGE_COUNT * PAGE_SIZE, "OID space exhausted");
        Oid(oid)
    }

    /// Return an OID to the allocator (GC of deleted records).
    pub fn recycle(&self, oid: Oid) {
        self.free.lock().push(oid);
    }

    /// Highest OID ever allocated plus one (iteration bound).
    pub fn high_water(&self) -> u32 {
        self.next_oid.load(Ordering::Acquire)
    }

    /// Bump the allocator past `oid` (recovery replay of inserts).
    pub fn ensure_allocated(&self, oid: Oid) {
        self.next_oid.fetch_max(oid.0 + 1, Ordering::AcqRel);
    }

    fn page(&self, oid: Oid) -> &Page {
        let pi = oid.index() >> PAGE_SHIFT;
        let ptr = self.pages[pi].load(Ordering::Acquire);
        if !ptr.is_null() {
            // SAFETY: pages are never freed while the array lives.
            return unsafe { &*ptr };
        }
        // Materialize the page; losers free their copy.
        let fresh = Page::alloc();
        match self.pages[pi].compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => unsafe { &*fresh },
            Err(existing) => {
                // SAFETY: `fresh` never escaped.
                unsafe { drop(Box::from_raw(fresh)) };
                unsafe { &*existing }
            }
        }
    }

    #[inline]
    fn slot(&self, oid: Oid) -> &AtomicU64 {
        &self.page(oid).slots[oid.index() & (PAGE_SIZE - 1)]
    }

    /// Load the version-chain head for `oid`.
    #[inline]
    pub fn head(&self, oid: Oid) -> *mut Version {
        self.slot(oid).load(Ordering::Acquire) as *mut Version
    }

    /// Install `new` as the head iff the head is still `expected` — the
    /// single CAS that installs a new version (§3.2). On failure returns
    /// the observed head.
    #[inline]
    pub fn cas_head(
        &self,
        oid: Oid,
        expected: *mut Version,
        new: *mut Version,
    ) -> Result<(), *mut Version> {
        self.slot(oid)
            .compare_exchange(expected as u64, new as u64, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| ())
            .map_err(|cur| cur as *mut Version)
    }

    /// Unconditional store (insert of a freshly allocated OID, recovery).
    #[inline]
    pub fn store_head(&self, oid: Oid, head: *mut Version) {
        self.slot(oid).store(head as u64, Ordering::Release);
    }

    /// Visit every allocated OID with a non-null chain head (GC,
    /// checkpointing). The walk is not atomic with respect to concurrent
    /// updates — callers handle staleness (fuzzy by design, §3.7).
    pub fn for_each(&self, mut f: impl FnMut(Oid, *mut Version)) {
        let high = self.high_water();
        for raw in 1..high {
            let oid = Oid(raw);
            let pi = oid.index() >> PAGE_SHIFT;
            let page = self.pages[pi].load(Ordering::Acquire);
            if page.is_null() {
                continue;
            }
            let head =
                unsafe { (*page).slots[oid.index() & (PAGE_SIZE - 1)].load(Ordering::Acquire) };
            let head = head as *mut Version;
            if !head.is_null() {
                f(oid, head);
            }
        }
    }
}

impl Drop for OidArray {
    fn drop(&mut self) {
        // Free remaining version chains, then the pages. Single-threaded
        // by &mut.
        for page_ptr in self.pages.iter() {
            let page = page_ptr.load(Ordering::Relaxed);
            if page.is_null() {
                continue;
            }
            unsafe {
                for slot in (*page).slots.iter() {
                    let mut v = slot.load(Ordering::Relaxed) as *mut Version;
                    while !v.is_null() {
                        let next = (*v).next.load(Ordering::Relaxed);
                        drop(Box::from_raw(v));
                        v = next;
                    }
                }
                drop(Box::from_raw(page));
            }
        }
    }
}
