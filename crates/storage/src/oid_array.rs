//! Latch-free indirection arrays (paper §3.2).
//!
//! A linear array of slots indexed by OID; each slot holds the physical
//! pointer to the head of the record's version chain. The array is
//! paged and pages materialize on demand with a CAS, so growth never
//! blocks readers. OID allocation is "completely contention-free: it
//! simply means writing to an element in an array because no two threads
//! will be allocated the same new OID".
//!
//! Recycled OIDs live on a lock-free intrusive stack: the "next" links
//! are stored in a parallel paged `AtomicU32` array indexed by OID (a
//! free OID's slot points at the next free OID), and the stack head packs
//! a 32-bit ABA tag with the top OID into one `AtomicU64`. Push and pop
//! are single CAS loops — no mutex on the allocation path.

use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};

use ermia_common::Oid;

use crate::version::Version;

/// Slots per page (2^14 × 8 B = 128 KiB pages).
const PAGE_SHIFT: u32 = 14;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
/// Max pages (2^14 pages × 2^14 slots = 256M OIDs per table).
const PAGE_COUNT: usize = 1 << 14;

/// Free-stack terminator: OID 0 is reserved as "invalid" so it doubles
/// as the empty-stack sentinel.
const FREE_NIL: u32 = 0;

struct Page {
    slots: Box<[AtomicU64]>,
}

impl Page {
    fn alloc() -> *mut Page {
        let slots: Vec<AtomicU64> = (0..PAGE_SIZE).map(|_| AtomicU64::new(0)).collect();
        Box::into_raw(Box::new(Page { slots: slots.into_boxed_slice() }))
    }
}

/// A page of free-stack "next" links, materialized the first time an OID
/// in its range is recycled.
struct FreePage {
    next: Box<[AtomicU32]>,
}

impl FreePage {
    fn alloc() -> *mut FreePage {
        let next: Vec<AtomicU32> = (0..PAGE_SIZE).map(|_| AtomicU32::new(FREE_NIL)).collect();
        Box::into_raw(Box::new(FreePage { next: next.into_boxed_slice() }))
    }
}

/// One table's indirection array.
pub struct OidArray {
    pages: Box<[AtomicPtr<Page>]>,
    next_oid: AtomicU32,
    /// Head of the free stack: `(aba_tag << 32) | top_oid`. The tag
    /// increments on every successful update, so a pop's CAS cannot
    /// succeed against a head that was popped and re-pushed in between
    /// (the classic ABA interleaving that corrupts Treiber stacks).
    free_head: AtomicU64,
    /// Intrusive next links for the free stack, paged like `pages`.
    free_pages: Box<[AtomicPtr<FreePage>]>,
}

impl Default for OidArray {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn pack_head(tag: u64, oid: u32) -> u64 {
    (tag << 32) | oid as u64
}

#[inline]
fn unpack_head(head: u64) -> (u64, u32) {
    (head >> 32, head as u32)
}

impl OidArray {
    pub fn new() -> OidArray {
        let pages: Vec<AtomicPtr<Page>> =
            (0..PAGE_COUNT).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect();
        let free_pages: Vec<AtomicPtr<FreePage>> =
            (0..PAGE_COUNT).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect();
        OidArray {
            pages: pages.into_boxed_slice(),
            // OID 0 is reserved as "invalid".
            next_oid: AtomicU32::new(1),
            free_head: AtomicU64::new(pack_head(0, FREE_NIL)),
            free_pages: free_pages.into_boxed_slice(),
        }
    }

    /// Allocate a fresh OID: pop the lock-free free stack, falling back
    /// to bumping the high-water mark (both contention-free paths).
    pub fn allocate(&self) -> Oid {
        let mut head = self.free_head.load(Ordering::Acquire);
        loop {
            let (tag, top) = unpack_head(head);
            if top == FREE_NIL {
                break;
            }
            let next = self.free_slot(Oid(top)).load(Ordering::Acquire);
            match self.free_head.compare_exchange_weak(
                head,
                pack_head(tag.wrapping_add(1), next),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Oid(top),
                Err(observed) => head = observed,
            }
        }
        let oid = self.next_oid.fetch_add(1, Ordering::Relaxed);
        assert!((oid as usize) < PAGE_COUNT * PAGE_SIZE, "OID space exhausted");
        Oid(oid)
    }

    /// Return an OID to the allocator (GC of deleted records). Lock-free
    /// push onto the free stack.
    pub fn recycle(&self, oid: Oid) {
        debug_assert_ne!(oid.0, FREE_NIL, "cannot recycle the invalid OID");
        let slot = self.free_slot(oid);
        let mut head = self.free_head.load(Ordering::Acquire);
        loop {
            let (tag, top) = unpack_head(head);
            slot.store(top, Ordering::Release);
            match self.free_head.compare_exchange_weak(
                head,
                pack_head(tag.wrapping_add(1), oid.0),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(observed) => head = observed,
            }
        }
    }

    /// Number of OIDs currently on the free stack (tests/stats; O(n) walk,
    /// only meaningful when no concurrent allocate/recycle runs).
    pub fn free_count(&self) -> usize {
        let (_, mut top) = unpack_head(self.free_head.load(Ordering::Acquire));
        let mut n = 0;
        while top != FREE_NIL {
            n += 1;
            top = self.free_slot(Oid(top)).load(Ordering::Acquire);
        }
        n
    }

    /// Highest OID ever allocated plus one (iteration bound).
    pub fn high_water(&self) -> u32 {
        self.next_oid.load(Ordering::Acquire)
    }

    /// Bump the allocator past `oid` (recovery replay of inserts).
    pub fn ensure_allocated(&self, oid: Oid) {
        self.next_oid.fetch_max(oid.0 + 1, Ordering::AcqRel);
    }

    fn page(&self, oid: Oid) -> &Page {
        let pi = oid.index() >> PAGE_SHIFT;
        let ptr = self.pages[pi].load(Ordering::Acquire);
        if !ptr.is_null() {
            // SAFETY: pages are never freed while the array lives.
            return unsafe { &*ptr };
        }
        // Materialize the page; losers free their copy.
        let fresh = Page::alloc();
        match self.pages[pi].compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => unsafe { &*fresh },
            Err(existing) => {
                // SAFETY: `fresh` never escaped.
                unsafe { drop(Box::from_raw(fresh)) };
                unsafe { &*existing }
            }
        }
    }

    /// The free-stack next link for `oid`, materializing its page on
    /// demand (same CAS protocol as the slot pages).
    fn free_slot(&self, oid: Oid) -> &AtomicU32 {
        let pi = oid.index() >> PAGE_SHIFT;
        let ptr = self.free_pages[pi].load(Ordering::Acquire);
        let page = if !ptr.is_null() {
            // SAFETY: free pages are never freed while the array lives.
            unsafe { &*ptr }
        } else {
            let fresh = FreePage::alloc();
            match self.free_pages[pi].compare_exchange(
                std::ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => unsafe { &*fresh },
                Err(existing) => {
                    // SAFETY: `fresh` never escaped.
                    unsafe { drop(Box::from_raw(fresh)) };
                    unsafe { &*existing }
                }
            }
        };
        &page.next[oid.index() & (PAGE_SIZE - 1)]
    }

    #[inline]
    fn slot(&self, oid: Oid) -> &AtomicU64 {
        &self.page(oid).slots[oid.index() & (PAGE_SIZE - 1)]
    }

    /// Load the version-chain head for `oid`.
    #[inline]
    pub fn head(&self, oid: Oid) -> *mut Version {
        self.slot(oid).load(Ordering::Acquire) as *mut Version
    }

    /// Install `new` as the head iff the head is still `expected` — the
    /// single CAS that installs a new version (§3.2). On failure returns
    /// the observed head.
    #[inline]
    pub fn cas_head(
        &self,
        oid: Oid,
        expected: *mut Version,
        new: *mut Version,
    ) -> Result<(), *mut Version> {
        self.slot(oid)
            .compare_exchange(expected as u64, new as u64, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| ())
            .map_err(|cur| cur as *mut Version)
    }

    /// Unconditional store (insert of a freshly allocated OID, recovery).
    #[inline]
    pub fn store_head(&self, oid: Oid, head: *mut Version) {
        self.slot(oid).store(head as u64, Ordering::Release);
    }

    /// Visit every allocated OID with a non-null chain head (GC,
    /// checkpointing). The walk is not atomic with respect to concurrent
    /// updates — callers handle staleness (fuzzy by design, §3.7).
    pub fn for_each(&self, mut f: impl FnMut(Oid, *mut Version)) {
        let high = self.high_water();
        for raw in 1..high {
            let oid = Oid(raw);
            let pi = oid.index() >> PAGE_SHIFT;
            let page = self.pages[pi].load(Ordering::Acquire);
            if page.is_null() {
                continue;
            }
            let head =
                unsafe { (*page).slots[oid.index() & (PAGE_SIZE - 1)].load(Ordering::Acquire) };
            let head = head as *mut Version;
            if !head.is_null() {
                f(oid, head);
            }
        }
    }
}

impl Drop for OidArray {
    fn drop(&mut self) {
        // Free remaining version chains, then the pages. Single-threaded
        // by &mut.
        for page_ptr in self.pages.iter() {
            let page = page_ptr.load(Ordering::Relaxed);
            if page.is_null() {
                continue;
            }
            unsafe {
                for slot in (*page).slots.iter() {
                    let mut v = slot.load(Ordering::Relaxed) as *mut Version;
                    while !v.is_null() {
                        let next = (*v).next.load(Ordering::Relaxed);
                        drop(Box::from_raw(v));
                        v = next;
                    }
                }
                drop(Box::from_raw(page));
            }
        }
        for page_ptr in self.free_pages.iter() {
            let page = page_ptr.load(Ordering::Relaxed);
            if !page.is_null() {
                unsafe { drop(Box::from_raw(page)) };
            }
        }
    }
}
