use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use ermia_common::{Lsn, Oid, Stamp, Tid};
use ermia_epoch::EpochManager;

use crate::{GarbageCollector, OidArray, TidManager, TidStatus, Version};

#[test]
fn oid_allocation_is_unique_and_dense() {
    let arr = OidArray::new();
    let a = arr.allocate();
    let b = arr.allocate();
    assert_ne!(a, b);
    assert_eq!(a, Oid(1));
    assert_eq!(b, Oid(2));
}

#[test]
fn head_store_and_cas() {
    let arr = OidArray::new();
    let oid = arr.allocate();
    assert!(arr.head(oid).is_null());

    let v1 = Version::alloc(Stamp::from_lsn(Lsn::from_parts(1, 0)), b"v1", false);
    arr.store_head(oid, v1);
    assert_eq!(arr.head(oid), v1);

    let v2 = Version::alloc(Stamp::from_lsn(Lsn::from_parts(2, 0)), b"v2", false);
    unsafe { (*v2).next.store(v1, Ordering::Relaxed) };
    assert!(arr.cas_head(oid, v1, v2).is_ok());
    assert_eq!(arr.head(oid), v2);

    // Stale CAS fails and reports the current head.
    let v3 = Version::alloc(Stamp::from_lsn(Lsn::from_parts(3, 0)), b"v3", false);
    assert_eq!(arr.cas_head(oid, v1, v3).unwrap_err(), v2);
    unsafe { drop(Box::from_raw(v3)) };
}

#[test]
fn oid_array_spans_pages() {
    let arr = OidArray::new();
    // Touch slots in different pages (page = 2^14 slots).
    let far = Oid(3 * (1 << 14) + 7);
    arr.ensure_allocated(far);
    let v = Version::alloc(Stamp::from_lsn(Lsn::from_parts(1, 0)), b"far", false);
    arr.store_head(far, v);
    assert_eq!(arr.head(far), v);
    assert!(arr.high_water() > far.0);
}

#[test]
fn for_each_visits_live_chains() {
    let arr = OidArray::new();
    for i in 0..10 {
        let oid = arr.allocate();
        if i % 2 == 0 {
            let v = Version::alloc(Stamp::from_lsn(Lsn::from_parts(i, 0)), b"x", false);
            arr.store_head(oid, v);
        }
    }
    let mut seen = 0;
    arr.for_each(|_, head| {
        assert!(!head.is_null());
        seen += 1;
    });
    assert_eq!(seen, 5);
}

#[test]
fn recycled_oids_are_reused() {
    let arr = OidArray::new();
    let a = arr.allocate();
    arr.recycle(a);
    assert_eq!(arr.allocate(), a);
}

#[test]
fn tid_acquire_release_inquire() {
    let mgr = TidManager::new();
    let mut hint = 0;
    let (tid, ctx) = mgr.acquire(Lsn::from_parts(5, 0), &mut hint);
    assert_eq!(ctx.begin(), Lsn::from_parts(5, 0));
    assert_eq!(mgr.inquire(tid), TidStatus::InFlight);

    ctx.enter_pending();
    assert!(matches!(mgr.inquire(tid), TidStatus::Precommit(_)));
    let c = Lsn::from_parts(9, 1);
    ctx.enter_precommit(c);
    assert_eq!(mgr.inquire(tid), TidStatus::Precommit(c));
    ctx.commit(c);
    assert_eq!(mgr.inquire(tid), TidStatus::Committed(c));

    mgr.release(tid);
    assert_eq!(mgr.inquire(tid), TidStatus::Stale);
    assert_eq!(mgr.in_use(), 0);
}

#[test]
fn stale_generation_detected() {
    let mgr = TidManager::new();
    let mut hint = 0;
    let (tid1, ctx) = mgr.acquire(Lsn::from_parts(1, 0), &mut hint);
    ctx.abort();
    mgr.release(tid1);
    // Force reuse of the same slot.
    hint = tid1.slot().wrapping_sub(1);
    let (tid2, _) = mgr.acquire(Lsn::from_parts(2, 0), &mut hint);
    assert_eq!(tid2.slot(), tid1.slot());
    assert_eq!(tid2.generation(), tid1.generation() + 1);
    // The old TID now reports Stale even though the slot is ACTIVE.
    assert_eq!(mgr.inquire(tid1), TidStatus::Stale);
    assert_eq!(mgr.inquire(tid2), TidStatus::InFlight);
}

#[test]
fn min_active_begin_tracks_oldest() {
    let mgr = TidManager::new();
    let mut hint = 0;
    let fallback = Lsn::from_parts(100, 0);
    assert_eq!(mgr.min_active_begin(fallback), fallback);
    let (t1, _) = mgr.acquire(Lsn::from_parts(10, 0), &mut hint);
    let (t2, _) = mgr.acquire(Lsn::from_parts(20, 0), &mut hint);
    assert_eq!(mgr.min_active_begin(fallback), Lsn::from_parts(10, 0));
    mgr.ctx(t1).abort();
    mgr.release(t1);
    assert_eq!(mgr.min_active_begin(fallback), Lsn::from_parts(20, 0));
    mgr.ctx(t2).abort();
    mgr.release(t2);
}

#[test]
fn concurrent_tid_churn() {
    let mgr = Arc::new(TidManager::new());
    crossbeam::scope(|s| {
        for t in 0..4usize {
            let mgr = Arc::clone(&mgr);
            s.spawn(move |_| {
                let mut hint = t * 1000;
                for i in 0..5_000u64 {
                    let (tid, ctx) = mgr.acquire(Lsn::from_parts(i + 1, 0), &mut hint);
                    ctx.enter_pending();
                    let c = Lsn::from_parts(i + 2, 0);
                    ctx.enter_precommit(c);
                    ctx.commit(c);
                    assert_eq!(mgr.inquire(tid), TidStatus::Committed(c));
                    mgr.release(tid);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(mgr.in_use(), 0);
}

fn make_chain(arr: &OidArray, oid: Oid, stamps: &[u64]) -> Vec<*mut Version> {
    // stamps oldest-first; returns ptrs oldest-first.
    let mut ptrs = Vec::new();
    let mut prev: *mut Version = std::ptr::null_mut();
    for &s in stamps {
        let v = Version::alloc(Stamp::from_lsn(Lsn::from_parts(s, 0)), &s.to_le_bytes(), false);
        unsafe { (*v).next.store(prev, Ordering::Relaxed) };
        prev = v;
        ptrs.push(v);
    }
    arr.store_head(oid, prev);
    ptrs
}

#[test]
fn gc_truncates_dead_suffix() {
    let arr = Arc::new(OidArray::new());
    let epoch = EpochManager::new("gc-test");
    let oid = arr.allocate();
    // Chain (newest first after build): 50, 30, 20, 10.
    make_chain(&arr, oid, &[10, 20, 30, 50]);

    // Horizon 35: versions ≤ 35 newest is 30; 20 and 10 are dead.
    let handle = epoch.register();
    let guard = handle.pin();
    let reclaimed = crate::gc::sweep_array(&arr, Lsn::from_parts(35, 0), &guard, None);
    drop(guard);
    assert_eq!(reclaimed, 2);

    // Chain is now 50 → 30 → ∅.
    let head = arr.head(oid);
    let s0 = unsafe { (*head).stamp().as_lsn() };
    assert_eq!(s0, Lsn::from_parts(50, 0));
    let n1 = unsafe { (*head).next.load(Ordering::Acquire) };
    let s1 = unsafe { (*n1).stamp().as_lsn() };
    assert_eq!(s1, Lsn::from_parts(30, 0));
    assert!(unsafe { (*n1).next.load(Ordering::Acquire) }.is_null());

    for _ in 0..3 {
        epoch.advance_and_collect();
    }
    assert_eq!(epoch.stats().pending, 0, "retired versions must be freed");
}

#[test]
fn gc_keeps_everything_when_horizon_old() {
    let arr = Arc::new(OidArray::new());
    let epoch = EpochManager::new("gc-test2");
    let oid = arr.allocate();
    make_chain(&arr, oid, &[10, 20, 30]);
    let handle = epoch.register();
    let guard = handle.pin();
    // Horizon 5: no committed version ≤ 5 — nothing reclaimable.
    let reclaimed = crate::gc::sweep_array(&arr, Lsn::from_parts(5, 0), &guard, None);
    assert_eq!(reclaimed, 0);
}

#[test]
fn gc_skips_inflight_heads() {
    let arr = Arc::new(OidArray::new());
    let epoch = EpochManager::new("gc-test3");
    let oid = arr.allocate();
    make_chain(&arr, oid, &[10, 20]);
    // Push a TID-stamped (uncommitted) version on top.
    let head = arr.head(oid);
    let inflight = Version::alloc(Stamp::from_tid(Tid::new(1, 1)), b"dirty", false);
    unsafe { (*inflight).next.store(head, Ordering::Relaxed) };
    arr.store_head(oid, inflight);

    let handle = epoch.register();
    let guard = handle.pin();
    let reclaimed = crate::gc::sweep_array(&arr, Lsn::from_parts(100, 0), &guard, None);
    // Only version 10 dies (20 is the boundary; the in-flight head stays).
    assert_eq!(reclaimed, 1);
    assert_eq!(arr.head(oid), inflight);
}

#[test]
fn background_collector_runs() {
    let arr = Arc::new(OidArray::new());
    let epoch = EpochManager::new("gc-bg");
    let oid = arr.allocate();
    make_chain(&arr, oid, &[1, 2, 3, 4, 5, 6, 7, 8]);
    let gc = GarbageCollector::start(
        vec![Arc::clone(&arr)],
        epoch.clone(),
        || Lsn::from_parts(1000, 0),
        Duration::from_millis(1),
        None,
    );
    std::thread::sleep(Duration::from_millis(50));
    assert!(gc.stats().passes.load(Ordering::Relaxed) > 0);
    assert_eq!(gc.stats().reclaimed.load(Ordering::Relaxed), 7);
    drop(gc);
}

#[test]
fn version_stamp_transitions() {
    let v = Version::alloc(Stamp::from_tid(Tid::new(3, 9)), b"payload", false);
    let vref = unsafe { &*v };
    assert!(vref.stamp().is_tid());
    assert_eq!(vref.stamp().as_tid(), Tid::new(3, 9));
    // Post-commit re-stamp.
    vref.clsn.store(Stamp::from_lsn(Lsn::from_parts(77, 2)).raw(), Ordering::Release);
    assert!(!vref.stamp().is_tid());
    assert_eq!(vref.stamp().as_lsn(), Lsn::from_parts(77, 2));
    // SSN stamps.
    assert!(!vref.is_overwritten());
    vref.raise_pstamp(10);
    vref.raise_pstamp(5);
    assert_eq!(vref.pstamp.load(Ordering::Relaxed), 10);
    unsafe { drop(Box::from_raw(v)) };
}

#[test]
fn oid_freelist_concurrent_churn_no_duplicates() {
    // Hammer the lock-free free stack from several threads: each thread
    // repeatedly allocates a batch and recycles it. At every instant each
    // OID is held by at most one thread, so observing a duplicate inside
    // a batch means the stack double-served an OID (ABA or lost update).
    let arr = Arc::new(OidArray::new());
    // Seed the free stack.
    for _ in 0..64 {
        let o = arr.allocate();
        arr.recycle(o);
    }
    crossbeam::scope(|s| {
        for _ in 0..4 {
            let arr = Arc::clone(&arr);
            s.spawn(move |_| {
                let mut batch = Vec::with_capacity(8);
                for _ in 0..10_000 {
                    for _ in 0..8 {
                        batch.push(arr.allocate());
                    }
                    let mut sorted = batch.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(sorted.len(), batch.len(), "duplicate OID handed out");
                    for o in batch.drain(..) {
                        arr.recycle(o);
                    }
                }
            });
        }
    })
    .unwrap();
}

#[test]
fn oid_free_count_reflects_recycles() {
    let arr = OidArray::new();
    let a = arr.allocate();
    let b = arr.allocate();
    assert_eq!(arr.free_count(), 0);
    arr.recycle(a);
    arr.recycle(b);
    assert_eq!(arr.free_count(), 2);
    // LIFO: last recycled comes back first.
    assert_eq!(arr.allocate(), b);
    assert_eq!(arr.free_count(), 1);
}

#[test]
fn version_pool_recycles_and_caps() {
    let pool = Arc::new(crate::VersionPool::new(2));
    let mut cache = crate::VersionCache::new(Arc::clone(&pool));
    // Fresh allocation path (pool empty).
    let v1 = cache.acquire(Stamp::from_lsn(Lsn::from_parts(1, 0)), b"abcdef", false);
    assert_eq!(cache.reused(), 0);
    unsafe {
        pool.release(v1);
        let extra1 = Version::alloc(Stamp::from_lsn(Lsn::from_parts(2, 0)), b"x", false);
        let extra2 = Version::alloc(Stamp::from_lsn(Lsn::from_parts(3, 0)), b"y", false);
        pool.release(extra1);
        pool.release(extra2); // over cap: freed, not pooled
    }
    assert_eq!(pool.pooled(), 2);
    // Reuse path: the recycled node is reinitialized in place.
    let v2 = cache.acquire(Stamp::from_lsn(Lsn::from_parts(9, 1)), b"zz", true);
    assert_eq!(cache.reused(), 1);
    let vref = unsafe { &*v2 };
    assert_eq!(vref.stamp().as_lsn(), Lsn::from_parts(9, 1));
    assert!(vref.tombstone);
    assert_eq!(&vref.data[..], b"zz");
    assert!(!vref.is_overwritten());
    assert!(vref.next.load(Ordering::Acquire).is_null());
    unsafe { drop(Box::from_raw(v2)) };
    // Dropping the cache returns its local stash to the pool.
    drop(cache);
}

#[test]
fn gc_seeded_pool_feeds_reuse_under_concurrent_readers() {
    // Readers traverse a chain while the GC truncates it into a pool;
    // epoch quiescence must keep every node a reader can still hold
    // alive, and the pool must end up holding the dead suffix.
    let arr = Arc::new(OidArray::new());
    let epoch = EpochManager::new("gc-pool");
    let pool = Arc::new(crate::VersionPool::new(1024));
    let oid = arr.allocate();
    make_chain(&arr, oid, &[10, 20, 30, 50]);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    crossbeam::scope(|s| {
        for _ in 0..3 {
            let arr = Arc::clone(&arr);
            let epoch = epoch.clone();
            let stop = Arc::clone(&stop);
            s.spawn(move |_| {
                let handle = epoch.register();
                while !stop.load(Ordering::Acquire) {
                    let guard = handle.pin();
                    let mut p = arr.head(oid);
                    let mut sum = 0u64;
                    while !p.is_null() {
                        let v = unsafe { &*p };
                        sum += v.data.len() as u64; // touch payload
                        p = v.next.load(Ordering::Acquire);
                    }
                    assert!(sum > 0);
                    drop(guard);
                }
            });
        }
        // GC thread: sweep with the pool attached, then quiesce.
        let handle = epoch.register();
        let guard = handle.pin();
        let reclaimed =
            crate::gc::sweep_array(&arr, Lsn::from_parts(35, 0), &guard, Some(&pool));
        drop(guard);
        assert_eq!(reclaimed, 2);
        for _ in 0..64 {
            epoch.advance_and_collect();
            if pool.pooled() == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Release);
    })
    .unwrap();
    // Readers are gone; drain whatever quiescence still held back.
    epoch.drain_all();
    assert_eq!(pool.pooled(), 2, "dead suffix must land in the pool");

    // And the pooled nodes are servable through a cache.
    let mut cache = crate::VersionCache::new(Arc::clone(&pool));
    let v = cache.acquire(Stamp::from_lsn(Lsn::from_parts(99, 0)), b"reborn", false);
    assert_eq!(cache.reused(), 1);
    unsafe { drop(Box::from_raw(v)) };
}
