//! B+-tree nodes with version-word optimistic lock coupling.
//!
//! Version word protocol: the word is even when unlocked; bit 0 set means
//! write-locked. Readers spin past the lock bit, remember the even value,
//! and re-check it after their optimistic reads; any mutation ends with a
//! `+2` store, so a changed (or odd) word invalidates them.
//!
//! All mutable node state lives in atomics so concurrent optimistic
//! readers never perform a torn read; they may observe *inconsistent
//! combinations* (mid-shift), but version validation discards those
//! results. Key-buffer pointers read from slots are dereferenceable under
//! an epoch guard because displaced buffers are retired, not dropped.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Maximum keys per node. Split at capacity; no merging.
pub const MAX_KEYS: usize = 30;

/// A heap-allocated key. Stored behind thin pointers in node slots.
pub struct KeyBuf {
    pub bytes: Box<[u8]>,
}

impl KeyBuf {
    pub fn alloc(bytes: &[u8]) -> *mut KeyBuf {
        Box::into_raw(Box::new(KeyBuf { bytes: bytes.to_vec().into_boxed_slice() }))
    }
}

/// Common node header. `#[repr(C)]` with the header first lets child
/// pointers be passed around as `*mut NodeHdr` and downcast via `is_leaf`.
#[repr(C)]
pub struct NodeHdr {
    pub version: AtomicU64,
    pub is_leaf: bool,
}

pub const LOCKED: u64 = 1;

impl NodeHdr {
    fn new(is_leaf: bool) -> NodeHdr {
        NodeHdr { version: AtomicU64::new(0), is_leaf }
    }

    /// Optimistic read entry: spin until unlocked, return the stable
    /// (even) version.
    #[inline]
    pub fn read_lock(&self) -> u64 {
        loop {
            let v = self.version.load(Ordering::Acquire);
            if v & LOCKED == 0 {
                return v;
            }
            std::hint::spin_loop();
        }
    }

    /// Optimistic read exit: true iff nothing happened since `read_lock`.
    #[inline]
    pub fn check(&self, v: u64) -> bool {
        self.version.load(Ordering::Acquire) == v
    }

    /// Try to upgrade an optimistic read to a write lock.
    #[inline]
    pub fn try_lock(&self, v: u64) -> bool {
        self.version.compare_exchange(v, v | LOCKED, Ordering::Acquire, Ordering::Relaxed).is_ok()
    }

    /// Release a write lock, bumping the version to invalidate readers.
    #[inline]
    pub fn unlock(&self) {
        let v = self.version.load(Ordering::Relaxed);
        debug_assert!(v & LOCKED != 0);
        self.version.store(v + 1, Ordering::Release);
    }

    /// Release a write lock *without* bumping the version — only legal
    /// when the critical section made no modification, so concurrent
    /// optimistic readers (and recorded node sets) stay valid.
    #[inline]
    pub fn unlock_unchanged(&self, v: u64) {
        debug_assert_eq!(self.version.load(Ordering::Relaxed), v | LOCKED);
        self.version.store(v, Ordering::Release);
    }

    /// Current version (for node-set validation): `None` while locked.
    #[inline]
    pub fn stable_version(&self) -> Option<u64> {
        let v = self.version.load(Ordering::Acquire);
        (v & LOCKED == 0).then_some(v)
    }
}

/// Leaf node: sorted key slots with `u64` values and a right-sibling
/// chain for range scans.
#[repr(C)]
pub struct LeafNode {
    pub hdr: NodeHdr,
    pub nkeys: AtomicUsize,
    pub keys: [AtomicPtr<KeyBuf>; MAX_KEYS],
    pub vals: [AtomicU64; MAX_KEYS],
    pub next: AtomicPtr<LeafNode>,
}

impl LeafNode {
    pub fn alloc() -> *mut LeafNode {
        Box::into_raw(Box::new(LeafNode {
            hdr: NodeHdr::new(true),
            nkeys: AtomicUsize::new(0),
            keys: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            vals: std::array::from_fn(|_| AtomicU64::new(0)),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }))
    }

    pub fn as_hdr(ptr: *mut LeafNode) -> *mut NodeHdr {
        ptr.cast()
    }
}

/// Inner node: `nkeys` separators and `nkeys + 1` children. Child `i`
/// covers keys `< keys[i]`; the last child covers the rest.
#[repr(C)]
pub struct InnerNode {
    pub hdr: NodeHdr,
    pub nkeys: AtomicUsize,
    pub keys: [AtomicPtr<KeyBuf>; MAX_KEYS],
    pub children: [AtomicPtr<NodeHdr>; MAX_KEYS + 1],
}

impl InnerNode {
    pub fn alloc() -> *mut InnerNode {
        Box::into_raw(Box::new(InnerNode {
            hdr: NodeHdr::new(false),
            nkeys: AtomicUsize::new(0),
            keys: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            children: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
        }))
    }

    pub fn as_hdr(ptr: *mut InnerNode) -> *mut NodeHdr {
        ptr.cast()
    }
}
