//! The optimistic-lock-coupling B+-tree.

use std::sync::atomic::{AtomicPtr, Ordering};

use ermia_epoch::Guard;

use crate::node::{InnerNode, KeyBuf, LeafNode, NodeHdr, MAX_KEYS};

/// Result of an insert attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InsertOutcome {
    Inserted,
    /// The key already exists; carries the current value.
    Duplicate(u64),
}

/// Scan callback verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScanControl {
    Continue,
    Stop,
}

/// A `(leaf, version)` pair for node-set phantom validation.
///
/// The pointer is stable for the lifetime of the tree (nodes are never
/// freed before the tree drops), so snapshots can be held across the
/// whole transaction and validated at pre-commit with
/// [`BTree::validate`].
#[derive(Clone, Copy, Debug)]
pub struct LeafSnapshot {
    leaf: *const NodeHdr,
    pub version: u64,
}

// SAFETY: the pointer is only dereferenced through `BTree::validate`,
// which requires the owning tree; nodes outlive all snapshots.
unsafe impl Send for LeafSnapshot {}
unsafe impl Sync for LeafSnapshot {}

impl LeafSnapshot {
    /// Stable identity of the leaf (for node-set deduplication).
    #[inline]
    pub fn id(&self) -> usize {
        self.leaf as usize
    }
}

/// A concurrent B+-tree from byte-string keys to `u64` values.
pub struct BTree {
    root: AtomicPtr<NodeHdr>,
}

// SAFETY: all shared mutable state is in atomics; the OLC protocol plus
// epoch-based key reclamation make concurrent access sound.
unsafe impl Send for BTree {}
unsafe impl Sync for BTree {}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BTree {
    pub fn new() -> BTree {
        let root = LeafNode::alloc();
        BTree { root: AtomicPtr::new(LeafNode::as_hdr(root)) }
    }

    /// Point lookup. Also returns the leaf snapshot covering the key's
    /// position — needed even on a miss, so that a later insertion of
    /// this key by another transaction is caught as a phantom.
    pub fn get(&self, _g: &Guard<'_>, key: &[u8]) -> (Option<u64>, LeafSnapshot) {
        loop {
            let Some((leaf, v)) = self.find_leaf(key) else { continue };
            let leaf_ref = unsafe { &*leaf };
            let nk = leaf_ref.nkeys.load(Ordering::Acquire);
            if nk > MAX_KEYS {
                continue;
            }
            let mut found = None;
            let mut ok = true;
            for i in 0..nk {
                let kptr = leaf_ref.keys[i].load(Ordering::Acquire);
                if kptr.is_null() {
                    ok = false;
                    break;
                }
                // SAFETY: any pointer in a slot is live or retired-but-
                // unfreed under our epoch guard.
                let kb = unsafe { &(*kptr).bytes };
                if kb.as_ref() == key {
                    found = Some(leaf_ref.vals[i].load(Ordering::Acquire));
                    break;
                }
            }
            if !ok || !leaf_ref.hdr.check(v) {
                continue;
            }
            return (found, LeafSnapshot { leaf: leaf.cast(), version: v });
        }
    }

    /// Insert `key → val` if absent.
    pub fn insert(&self, g: &Guard<'_>, key: &[u8], val: u64) -> InsertOutcome {
        'restart: loop {
            let mut parent: *mut InnerNode = std::ptr::null_mut();
            let mut pv = 0u64;
            let mut node = self.root.load(Ordering::Acquire);
            let mut v = unsafe { (*node).read_lock() };
            loop {
                let hdr = unsafe { &*node };
                if !hdr.is_leaf {
                    let inner: *mut InnerNode = node.cast();
                    let inner_ref = unsafe { &*inner };
                    let nk = inner_ref.nkeys.load(Ordering::Acquire);
                    if nk > MAX_KEYS {
                        continue 'restart;
                    }
                    if nk == MAX_KEYS {
                        self.split_node(parent, pv, node, v, g);
                        continue 'restart;
                    }
                    let Some(idx) = Self::child_index(inner_ref, nk, key) else {
                        continue 'restart;
                    };
                    let child = inner_ref.children[idx].load(Ordering::Acquire);
                    if child.is_null() {
                        continue 'restart;
                    }
                    let cv = unsafe { (*child).read_lock() };
                    if !hdr.check(v) {
                        continue 'restart;
                    }
                    parent = inner;
                    pv = v;
                    node = child;
                    v = cv;
                } else {
                    let leaf: *mut LeafNode = node.cast();
                    let leaf_ref = unsafe { &*leaf };
                    let nk = leaf_ref.nkeys.load(Ordering::Acquire);
                    if nk > MAX_KEYS {
                        continue 'restart;
                    }
                    if nk == MAX_KEYS {
                        self.split_node(parent, pv, node, v, g);
                        continue 'restart;
                    }
                    if !hdr.try_lock(v) {
                        continue 'restart;
                    }
                    // Locked: state is now stable.
                    let nk = leaf_ref.nkeys.load(Ordering::Relaxed);
                    debug_assert!(nk < MAX_KEYS);
                    let mut pos = nk;
                    for i in 0..nk {
                        let kptr = leaf_ref.keys[i].load(Ordering::Relaxed);
                        let kb = unsafe { (*kptr).bytes.as_ref() };
                        match kb.cmp(key) {
                            std::cmp::Ordering::Less => {}
                            std::cmp::Ordering::Equal => {
                                let existing = leaf_ref.vals[i].load(Ordering::Relaxed);
                                // No modification: release without a
                                // version bump so concurrent node sets
                                // stay valid.
                                hdr.unlock_unchanged(v);
                                return InsertOutcome::Duplicate(existing);
                            }
                            std::cmp::Ordering::Greater => {
                                pos = i;
                                break;
                            }
                        }
                    }
                    // Shift right and place the new entry.
                    let mut i = nk;
                    while i > pos {
                        let kp = leaf_ref.keys[i - 1].load(Ordering::Relaxed);
                        let vv = leaf_ref.vals[i - 1].load(Ordering::Relaxed);
                        leaf_ref.keys[i].store(kp, Ordering::Relaxed);
                        leaf_ref.vals[i].store(vv, Ordering::Relaxed);
                        i -= 1;
                    }
                    leaf_ref.keys[pos].store(KeyBuf::alloc(key), Ordering::Relaxed);
                    leaf_ref.vals[pos].store(val, Ordering::Relaxed);
                    leaf_ref.nkeys.store(nk + 1, Ordering::Release);
                    hdr.unlock();
                    return InsertOutcome::Inserted;
                }
            }
        }
    }

    /// Remove a key, returning its value if present. The displaced key
    /// buffer is retired through `g`, never freed in place.
    pub fn remove(&self, g: &Guard<'_>, key: &[u8]) -> Option<u64> {
        loop {
            let Some((leaf, v)) = self.find_leaf(key) else { continue };
            let leaf_ref = unsafe { &*leaf };
            if !leaf_ref.hdr.try_lock(v) {
                continue;
            }
            let nk = leaf_ref.nkeys.load(Ordering::Relaxed);
            let mut hit = None;
            for i in 0..nk {
                let kptr = leaf_ref.keys[i].load(Ordering::Relaxed);
                let kb = unsafe { (*kptr).bytes.as_ref() };
                if kb == key {
                    hit = Some((i, kptr));
                    break;
                }
            }
            let Some((pos, kptr)) = hit else {
                leaf_ref.hdr.unlock_unchanged(v);
                return None;
            };
            let val = leaf_ref.vals[pos].load(Ordering::Relaxed);
            for i in pos..nk - 1 {
                let kp = leaf_ref.keys[i + 1].load(Ordering::Relaxed);
                let vv = leaf_ref.vals[i + 1].load(Ordering::Relaxed);
                leaf_ref.keys[i].store(kp, Ordering::Relaxed);
                leaf_ref.vals[i].store(vv, Ordering::Relaxed);
            }
            leaf_ref.keys[nk - 1].store(std::ptr::null_mut(), Ordering::Relaxed);
            leaf_ref.nkeys.store(nk - 1, Ordering::Release);
            leaf_ref.hdr.unlock();
            // SAFETY: kptr is unlinked from the tree and uniquely owned.
            unsafe { g.defer_drop(kptr) };
            return Some(val);
        }
    }

    /// Ascending range scan over `[low, high]` (both inclusive).
    ///
    /// `on_leaf` fires once per leaf visited (including leaves that
    /// contribute no items) — the caller's node set; `on_item` receives
    /// each key/value and may stop the scan.
    pub fn scan(
        &self,
        _g: &Guard<'_>,
        low: &[u8],
        high: &[u8],
        mut on_leaf: impl FnMut(LeafSnapshot),
        mut on_item: impl FnMut(&[u8], u64) -> ScanControl,
    ) {
        let mut resume: Vec<u8> = low.to_vec();
        'restart: loop {
            let Some((mut leaf, mut v)) = self.find_leaf(&resume) else { continue };
            loop {
                let leaf_ref = unsafe { &*leaf };
                let nk = leaf_ref.nkeys.load(Ordering::Acquire);
                if nk > MAX_KEYS {
                    continue 'restart;
                }
                // Collect matching entries optimistically.
                let mut items: Vec<(*mut KeyBuf, u64)> = Vec::with_capacity(nk);
                let mut saw_past_high = false;
                let mut ok = true;
                for i in 0..nk {
                    let kptr = leaf_ref.keys[i].load(Ordering::Acquire);
                    if kptr.is_null() {
                        ok = false;
                        break;
                    }
                    let kb = unsafe { (*kptr).bytes.as_ref() };
                    if kb > high {
                        saw_past_high = true;
                        break;
                    }
                    if kb >= resume.as_slice() {
                        items.push((kptr, leaf_ref.vals[i].load(Ordering::Acquire)));
                    }
                }
                let next = leaf_ref.next.load(Ordering::Acquire);
                if !ok || !leaf_ref.hdr.check(v) {
                    continue 'restart;
                }
                on_leaf(LeafSnapshot { leaf: leaf.cast(), version: v });
                for (kptr, val) in &items {
                    // SAFETY: validated above; buffers survive under the
                    // caller's epoch guard.
                    let kb = unsafe { (*(*kptr)).bytes.as_ref() };
                    if on_item(kb, *val) == ScanControl::Stop {
                        return;
                    }
                }
                if let Some((kptr, _)) = items.last() {
                    // Resume strictly after the last delivered key.
                    let kb = unsafe { (*(*kptr)).bytes.as_ref() };
                    resume.clear();
                    resume.extend_from_slice(kb);
                    resume.push(0);
                }
                if saw_past_high || next.is_null() {
                    return;
                }
                let next_v = unsafe { (*next).hdr.read_lock() };
                leaf = next;
                v = next_v;
            }
        }
    }

    /// Re-check a node-set entry: true iff the leaf's version is
    /// unchanged (and it is not currently locked by a writer).
    pub fn validate(&self, snap: &LeafSnapshot) -> bool {
        let hdr = unsafe { &*snap.leaf };
        hdr.stable_version() == Some(snap.version)
    }

    /// Re-stamp a node-set entry with the leaf's current stable version.
    ///
    /// Transactions call this on their node set right after one of their
    /// *own* inserts bumped a recorded leaf, so self-inflicted version
    /// changes don't read as phantoms at validation (Silo attributes its
    /// own structural changes the same way).
    pub fn refresh_snapshot(&self, snap: &mut LeafSnapshot) {
        let hdr = unsafe { &*snap.leaf };
        snap.version = hdr.read_lock();
    }

    /// Optimistic descent to the leaf that would contain `key`.
    /// Returns `None` to signal a restart.
    fn find_leaf(&self, key: &[u8]) -> Option<(*mut LeafNode, u64)> {
        let mut node = self.root.load(Ordering::Acquire);
        let mut v = unsafe { (*node).read_lock() };
        loop {
            let hdr = unsafe { &*node };
            if hdr.is_leaf {
                return Some((node.cast(), v));
            }
            let inner: *const InnerNode = node.cast();
            let inner_ref = unsafe { &*inner };
            let nk = inner_ref.nkeys.load(Ordering::Acquire);
            if nk > MAX_KEYS {
                return None;
            }
            let idx = Self::child_index(inner_ref, nk, key)?;
            let child = inner_ref.children[idx].load(Ordering::Acquire);
            if child.is_null() {
                return None;
            }
            let cv = unsafe { (*child).read_lock() };
            if !hdr.check(v) {
                return None;
            }
            node = child;
            v = cv;
        }
    }

    /// Index of the child to descend into: the first separator greater
    /// than `key`, else the last child. `None` on a torn read.
    fn child_index(inner: &InnerNode, nk: usize, key: &[u8]) -> Option<usize> {
        for i in 0..nk {
            let kptr = inner.keys[i].load(Ordering::Acquire);
            if kptr.is_null() {
                return None;
            }
            let kb = unsafe { (*kptr).bytes.as_ref() };
            if key < kb {
                return Some(i);
            }
        }
        Some(nk)
    }

    /// Split a full node (leaf or inner). `parent` is null when `node` is
    /// the root. Takes both locks (validating the observed versions),
    /// performs the split, and returns; the caller restarts its descent.
    fn split_node(
        &self,
        parent: *mut InnerNode,
        pv: u64,
        node: *mut NodeHdr,
        v: u64,
        _g: &Guard<'_>,
    ) {
        unsafe {
            if parent.is_null() {
                // Root split: lock the root, hang it under a fresh root.
                if !(*node).try_lock(v) {
                    return;
                }
                if self.root.load(Ordering::Acquire) != node {
                    (*node).unlock_unchanged(v);
                    return;
                }
                let (sep, right) = self.do_split(node);
                let new_root = InnerNode::alloc();
                (*new_root).keys[0].store(sep, Ordering::Relaxed);
                (*new_root).children[0].store(node, Ordering::Relaxed);
                (*new_root).children[1].store(right, Ordering::Relaxed);
                (*new_root).nkeys.store(1, Ordering::Release);
                self.root.store(InnerNode::as_hdr(new_root), Ordering::Release);
                (*node).unlock();
            } else {
                if !(*parent).hdr.try_lock(pv) {
                    return;
                }
                if !(*node).try_lock(v) {
                    (*parent).hdr.unlock_unchanged(pv);
                    return;
                }
                debug_assert!(
                    (*parent).nkeys.load(Ordering::Relaxed) < MAX_KEYS,
                    "eager splitting keeps parents non-full"
                );
                let (sep, right) = self.do_split(node);
                Self::parent_insert(&*parent, sep, right);
                (*node).unlock();
                (*parent).hdr.unlock();
            }
        }
    }

    /// Move the upper half of `node` into a fresh right sibling; returns
    /// the separator key (owned by the parent) and the new node.
    ///
    /// # Safety
    /// `node` must be write-locked by the caller.
    unsafe fn do_split(&self, node: *mut NodeHdr) -> (*mut KeyBuf, *mut NodeHdr) {
        unsafe {
            if (*node).is_leaf {
                let left: *mut LeafNode = node.cast();
                let nk = (*left).nkeys.load(Ordering::Relaxed);
                let half = nk / 2;
                let right = LeafNode::alloc();
                for i in half..nk {
                    let kp = (*left).keys[i].load(Ordering::Relaxed);
                    let vv = (*left).vals[i].load(Ordering::Relaxed);
                    (*right).keys[i - half].store(kp, Ordering::Relaxed);
                    (*right).vals[i - half].store(vv, Ordering::Relaxed);
                    // Clear the stale slot so lagging readers fail fast.
                    (*left).keys[i].store(std::ptr::null_mut(), Ordering::Relaxed);
                }
                (*right).nkeys.store(nk - half, Ordering::Relaxed);
                (*right).next.store((*left).next.load(Ordering::Relaxed), Ordering::Relaxed);
                (*left).next.store(right, Ordering::Release);
                (*left).nkeys.store(half, Ordering::Release);
                // The separator is a *copy* of the right node's first key.
                let first = (*right).keys[0].load(Ordering::Relaxed);
                let sep = KeyBuf::alloc((*first).bytes.as_ref());
                (sep, LeafNode::as_hdr(right))
            } else {
                let left: *mut InnerNode = node.cast();
                let nk = (*left).nkeys.load(Ordering::Relaxed);
                let mid = nk / 2;
                let right = InnerNode::alloc();
                // The middle separator moves up to the parent.
                let sep = (*left).keys[mid].load(Ordering::Relaxed);
                for i in mid + 1..nk {
                    let kp = (*left).keys[i].load(Ordering::Relaxed);
                    (*right).keys[i - mid - 1].store(kp, Ordering::Relaxed);
                    (*left).keys[i].store(std::ptr::null_mut(), Ordering::Relaxed);
                }
                (*left).keys[mid].store(std::ptr::null_mut(), Ordering::Relaxed);
                for i in mid + 1..=nk {
                    let cp = (*left).children[i].load(Ordering::Relaxed);
                    (*right).children[i - mid - 1].store(cp, Ordering::Relaxed);
                    (*left).children[i].store(std::ptr::null_mut(), Ordering::Relaxed);
                }
                (*right).nkeys.store(nk - mid - 1, Ordering::Relaxed);
                (*left).nkeys.store(mid, Ordering::Release);
                (sep, InnerNode::as_hdr(right))
            }
        }
    }

    /// Insert `(sep, right)` into a locked, non-full parent.
    fn parent_insert(parent: &InnerNode, sep: *mut KeyBuf, right: *mut NodeHdr) {
        let nk = parent.nkeys.load(Ordering::Relaxed);
        let sep_bytes = unsafe { (*sep).bytes.as_ref() };
        let mut pos = nk;
        for i in 0..nk {
            let kptr = parent.keys[i].load(Ordering::Relaxed);
            let kb = unsafe { (*kptr).bytes.as_ref() };
            if sep_bytes < kb {
                pos = i;
                break;
            }
        }
        let mut i = nk;
        while i > pos {
            let kp = parent.keys[i - 1].load(Ordering::Relaxed);
            parent.keys[i].store(kp, Ordering::Relaxed);
            let cp = parent.children[i].load(Ordering::Relaxed);
            parent.children[i + 1].store(cp, Ordering::Relaxed);
            i -= 1;
        }
        parent.keys[pos].store(sep, Ordering::Relaxed);
        parent.children[pos + 1].store(right, Ordering::Relaxed);
        parent.nkeys.store(nk + 1, Ordering::Release);
    }
}

impl Drop for BTree {
    fn drop(&mut self) {
        // Single-threaded teardown: free every node and key buffer.
        unsafe fn free_node(node: *mut NodeHdr) {
            unsafe {
                if (*node).is_leaf {
                    let leaf: *mut LeafNode = node.cast();
                    let nk = (*leaf).nkeys.load(Ordering::Relaxed);
                    for i in 0..nk {
                        let kp = (*leaf).keys[i].load(Ordering::Relaxed);
                        if !kp.is_null() {
                            drop(Box::from_raw(kp));
                        }
                    }
                    drop(Box::from_raw(leaf));
                } else {
                    let inner: *mut InnerNode = node.cast();
                    let nk = (*inner).nkeys.load(Ordering::Relaxed);
                    for i in 0..nk {
                        let kp = (*inner).keys[i].load(Ordering::Relaxed);
                        if !kp.is_null() {
                            drop(Box::from_raw(kp));
                        }
                    }
                    for i in 0..=nk {
                        let cp = (*inner).children[i].load(Ordering::Relaxed);
                        if !cp.is_null() {
                            free_node(cp);
                        }
                    }
                    drop(Box::from_raw(inner));
                }
            }
        }
        let root = self.root.load(Ordering::Relaxed);
        if !root.is_null() {
            unsafe { free_node(root) };
        }
    }
}
