use std::collections::BTreeMap;

use ermia_epoch::EpochManager;

use crate::{BTree, InsertOutcome, ScanControl};

fn setup() -> (BTree, EpochManager) {
    (BTree::new(), EpochManager::new("index-test"))
}

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

#[test]
fn insert_get_roundtrip() {
    let (t, mgr) = setup();
    let h = mgr.register();
    let g = h.pin();
    assert_eq!(t.insert(&g, b"alpha", 1), InsertOutcome::Inserted);
    assert_eq!(t.insert(&g, b"beta", 2), InsertOutcome::Inserted);
    assert_eq!(t.get(&g, b"alpha").0, Some(1));
    assert_eq!(t.get(&g, b"beta").0, Some(2));
    assert_eq!(t.get(&g, b"gamma").0, None);
}

#[test]
fn duplicate_insert_reports_existing() {
    let (t, mgr) = setup();
    let h = mgr.register();
    let g = h.pin();
    t.insert(&g, b"k", 7);
    assert_eq!(t.insert(&g, b"k", 8), InsertOutcome::Duplicate(7));
    assert_eq!(t.get(&g, b"k").0, Some(7));
}

#[test]
fn many_inserts_force_splits_sorted_order() {
    let (t, mgr) = setup();
    let h = mgr.register();
    let g = h.pin();
    const N: u64 = 5_000;
    for i in 0..N {
        assert_eq!(t.insert(&g, &key(i), i), InsertOutcome::Inserted);
    }
    for i in 0..N {
        assert_eq!(t.get(&g, &key(i)).0, Some(i), "missing key {i}");
    }
}

#[test]
fn many_inserts_random_order() {
    let (t, mgr) = setup();
    let h = mgr.register();
    let g = h.pin();
    // Deterministic pseudo-random permutation.
    let mut keys: Vec<u64> = (0..4_000).map(|i| (i * 2_654_435_761u64) % 1_000_003).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut shuffled = keys.clone();
    // Simple LCG shuffle.
    let mut state = 0x12345678u64;
    for i in (1..shuffled.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        shuffled.swap(i, j);
    }
    for &k in &shuffled {
        t.insert(&g, &key(k), k);
    }
    for &k in &keys {
        assert_eq!(t.get(&g, &key(k)).0, Some(k));
    }
}

#[test]
fn remove_then_get_misses() {
    let (t, mgr) = setup();
    let h = mgr.register();
    let g = h.pin();
    for i in 0..200u64 {
        t.insert(&g, &key(i), i);
    }
    for i in (0..200u64).step_by(2) {
        assert_eq!(t.remove(&g, &key(i)), Some(i));
    }
    for i in 0..200u64 {
        let expect = if i % 2 == 0 { None } else { Some(i) };
        assert_eq!(t.get(&g, &key(i)).0, expect);
    }
    assert_eq!(t.remove(&g, &key(0)), None, "double remove");
}

#[test]
fn scan_returns_sorted_range() {
    let (t, mgr) = setup();
    let h = mgr.register();
    let g = h.pin();
    for i in 0..1_000u64 {
        t.insert(&g, &key(i * 2), i * 2); // even keys only
    }
    let mut got = Vec::new();
    t.scan(&g, &key(100), &key(140), |_| {}, |k, v| {
        assert_eq!(k, v.to_be_bytes());
        got.push(v);
        ScanControl::Continue
    });
    let expect: Vec<u64> = (100..=140).filter(|x| x % 2 == 0).collect();
    assert_eq!(got, expect);
}

#[test]
fn scan_stop_early() {
    let (t, mgr) = setup();
    let h = mgr.register();
    let g = h.pin();
    for i in 0..500u64 {
        t.insert(&g, &key(i), i);
    }
    let mut got = Vec::new();
    t.scan(&g, &key(0), &key(499), |_| {}, |_, v| {
        got.push(v);
        if got.len() == 10 { ScanControl::Stop } else { ScanControl::Continue }
    });
    assert_eq!(got, (0..10).collect::<Vec<u64>>());
}

#[test]
fn scan_empty_range() {
    let (t, mgr) = setup();
    let h = mgr.register();
    let g = h.pin();
    for i in 0..100u64 {
        t.insert(&g, &key(i), i);
    }
    let mut n = 0;
    t.scan(&g, &key(200), &key(300), |_| {}, |_, _| {
        n += 1;
        ScanControl::Continue
    });
    assert_eq!(n, 0);
}

#[test]
fn node_set_detects_phantom_insert() {
    let (t, mgr) = setup();
    let h = mgr.register();
    let g = h.pin();
    for i in 0..10u64 {
        t.insert(&g, &key(i * 10), i);
    }
    // Record the node set for a range scan.
    let mut snaps = Vec::new();
    t.scan(&g, &key(0), &key(100), |s| snaps.push(s), |_, _| ScanControl::Continue);
    assert!(!snaps.is_empty());
    assert!(snaps.iter().all(|s| t.validate(s)), "clean scan must validate");

    // A phantom: insert into the scanned range.
    t.insert(&g, &key(55), 55);
    assert!(snaps.iter().any(|s| !t.validate(s)), "insert in range must invalidate");
}

#[test]
fn node_set_miss_is_also_protected() {
    let (t, mgr) = setup();
    let h = mgr.register();
    let g = h.pin();
    t.insert(&g, &key(1), 1);
    let (found, snap) = t.get(&g, &key(2));
    assert_eq!(found, None);
    assert!(t.validate(&snap));
    // Inserting the very key we missed must invalidate the snapshot.
    t.insert(&g, &key(2), 2);
    assert!(!t.validate(&snap));
}

#[test]
fn duplicate_insert_does_not_invalidate_node_set() {
    let (t, mgr) = setup();
    let h = mgr.register();
    let g = h.pin();
    t.insert(&g, &key(1), 1);
    let (_, snap) = t.get(&g, &key(1));
    // A failed (duplicate) insert makes no modification.
    assert_eq!(t.insert(&g, &key(1), 9), InsertOutcome::Duplicate(1));
    assert!(t.validate(&snap));
}

#[test]
fn matches_btreemap_reference() {
    let (t, mgr) = setup();
    let h = mgr.register();
    let g = h.pin();
    let mut reference = BTreeMap::new();
    let mut state = 42u64;
    for _ in 0..20_000 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let k = (state >> 40) % 2_000;
        let op = (state >> 20) % 3;
        match op {
            0 | 1 => {
                let outcome = t.insert(&g, &key(k), k);
                match reference.entry(k) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        assert_eq!(outcome, InsertOutcome::Inserted);
                        e.insert(k);
                    }
                    std::collections::btree_map::Entry::Occupied(_) => {
                        assert_eq!(outcome, InsertOutcome::Duplicate(k));
                    }
                }
            }
            _ => {
                let got = t.remove(&g, &key(k));
                assert_eq!(got, reference.remove(&k));
            }
        }
    }
    // Full scan equals reference iteration.
    let mut got = Vec::new();
    t.scan(&g, &key(0), &key(u64::MAX), |_| {}, |_, v| {
        got.push(v);
        ScanControl::Continue
    });
    let expect: Vec<u64> = reference.values().copied().collect();
    assert_eq!(got, expect);
}

#[test]
fn concurrent_disjoint_inserts() {
    const THREADS: u64 = 4;
    const PER: u64 = 3_000;
    let t = BTree::new();
    let mgr = EpochManager::new("stress");
    crossbeam::scope(|s| {
        for tid in 0..THREADS {
            let t = &t;
            let mgr = mgr.clone();
            s.spawn(move |_| {
                let h = mgr.register();
                for i in 0..PER {
                    let g = h.pin();
                    let k = tid * PER + i;
                    assert_eq!(t.insert(&g, &key(k), k), InsertOutcome::Inserted);
                }
            });
        }
    })
    .unwrap();
    let h = mgr.register();
    let g = h.pin();
    let mut count = 0u64;
    let mut prev: Option<Vec<u8>> = None;
    t.scan(&g, &key(0), &key(u64::MAX), |_| {}, |k, v| {
        if let Some(p) = &prev {
            assert!(k > p.as_slice(), "scan order violated");
        }
        prev = Some(k.to_vec());
        assert_eq!(k, v.to_be_bytes());
        count += 1;
        ScanControl::Continue
    });
    assert_eq!(count, THREADS * PER);
}

#[test]
fn concurrent_readers_during_writes() {
    const N: u64 = 8_000;
    let t = BTree::new();
    let mgr = EpochManager::new("rw-stress");
    let ticker = ermia_epoch::Ticker::start(mgr.clone(), std::time::Duration::from_millis(1));
    crossbeam::scope(|s| {
        // Writer inserts ascending keys, removing every third behind itself.
        {
            let t = &t;
            let mgr = mgr.clone();
            s.spawn(move |_| {
                let h = mgr.register();
                for i in 0..N {
                    let g = h.pin();
                    t.insert(&g, &key(i), i);
                    if i % 3 == 0 && i > 100 {
                        t.remove(&g, &key(i - 100));
                    }
                }
            });
        }
        // Readers continuously get and scan; values must always be
        // self-consistent (val == key) whenever found.
        for _ in 0..2 {
            let t = &t;
            let mgr = mgr.clone();
            s.spawn(move |_| {
                let h = mgr.register();
                let mut state = 7u64;
                for _ in 0..20_000 {
                    let g = h.pin();
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let k = (state >> 33) % N;
                    if let (Some(v), _) = t.get(&g, &key(k)) {
                        assert_eq!(v, k);
                    }
                    if state.is_multiple_of(64) {
                        let lo = (state >> 33) % N;
                        t.scan(&g, &key(lo), &key(lo + 50), |_| {}, |kb, v| {
                            assert_eq!(kb, v.to_be_bytes());
                            ScanControl::Continue
                        });
                    }
                }
            });
        }
    })
    .unwrap();
    drop(ticker);
}
