//! Concurrent ordered index: the Masstree substitute.
//!
//! ERMIA uses Masstree for indexing, as Silo does (§3.1). This crate
//! provides the two properties the engines rely on, with a different but
//! equivalent structure — a B+-tree with **optimistic lock coupling**:
//!
//! * **Lock-free reads, fine-grained writes.** Readers never take locks;
//!   they snapshot a node's version word, read optimistically, and
//!   validate the version afterwards, restarting on interference.
//!   Writers lock individual nodes via a CAS on the same version word.
//! * **Node versions for phantom protection.** Any insertion, deletion,
//!   or split of a leaf bumps its version. Transactions record
//!   `(leaf, version)` pairs for every leaf a scan (or failed point
//!   lookup) touches — the *node set* — and re-validate them at
//!   pre-commit, exactly the tree-version validation strategy ERMIA
//!   inherits from Silo (§3.6.2).
//!
//! The tree maps byte-string keys to `u64` values. In ERMIA the value is
//! an OID — "different from traditional designs which give access to data
//! in the leaf nodes, we store object IDs in the leaf level" (§3.1) — so
//! updates never touch the tree; in the Silo baseline it is a record
//! pointer, which is likewise stable across updates.
//!
//! Memory reclamation: key buffers displaced by removals are retired
//! through an [`ermia_epoch::EpochManager`]; readers hold an epoch guard
//! for the duration of an operation, so a pointer read from a slot is
//! always dereferenceable even if it lost its slot concurrently. Interior
//! nodes are never freed while the tree lives (there are no merges; empty
//! leaves persist until the tree drops), which also makes node-set
//! handles stable without pinning.

mod node;
mod tree;

pub use tree::{BTree, InsertOutcome, LeafSnapshot, ScanControl};

#[cfg(test)]
mod tests;
