//! Property test: the concurrent B+-tree, driven single-threaded by an
//! arbitrary operation sequence, behaves exactly like `BTreeMap`.

use std::collections::BTreeMap;

use ermia_epoch::EpochManager;
use ermia_index::{BTree, InsertOutcome, ScanControl};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert(u16, u64),
    Remove(u16),
    Get(u16),
    Scan(u16, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        any::<u16>().prop_map(Op::Remove),
        any::<u16>().prop_map(Op::Get),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Scan(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
    #[test]
    fn tree_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let tree = BTree::new();
        let mgr = EpochManager::new("prop");
        let handle = mgr.register();
        let g = handle.pin();
        let mut model: BTreeMap<u16, u64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let got = tree.insert(&g, &k.to_be_bytes(), v);
                    match model.get(&k) {
                        Some(&existing) => prop_assert_eq!(got, InsertOutcome::Duplicate(existing)),
                        None => {
                            prop_assert_eq!(got, InsertOutcome::Inserted);
                            model.insert(k, v);
                        }
                    }
                }
                Op::Remove(k) => {
                    let got = tree.remove(&g, &k.to_be_bytes());
                    prop_assert_eq!(got, model.remove(&k));
                }
                Op::Get(k) => {
                    let (got, _) = tree.get(&g, &k.to_be_bytes());
                    prop_assert_eq!(got, model.get(&k).copied());
                }
                Op::Scan(lo, hi) => {
                    let mut got = Vec::new();
                    tree.scan(
                        &g,
                        &lo.to_be_bytes(),
                        &hi.to_be_bytes(),
                        |_| {},
                        |k, v| {
                            got.push((u16::from_be_bytes(k.try_into().unwrap()), v));
                            ScanControl::Continue
                        },
                    );
                    let expect: Vec<(u16, u64)> =
                        model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(got, expect);
                }
            }
        }
    }
}
