//! Benchmark workloads and the multithreaded driver (paper §4).
//!
//! Every workload runs unmodified on all three systems under evaluation —
//! ERMIA-SI, ERMIA-SSN, and Silo-OCC — through the [`Engine`] trait
//! ("ERMIA uses the same benchmark code ... as Silo's", §4.1):
//!
//! * [`micro`] — the §4.2 microbenchmark: read a random subset of a
//!   Stock-like table, update a smaller fraction (Fig. 1).
//! * [`tpcc`] — TPC-C with warehouse partitioning and the paper's 1% / 15%
//!   cross-partition NewOrder / Payment rates (Figs. 2, 7, 8).
//! * [`tpcc_hybrid`] — TPC-C plus the TPC-CH-Q2\* read-mostly transaction
//!   over a Supplier table (Figs. 2, 5, 12; Table 1).
//! * [`tpce`] — reduced-fidelity TPC-E brokerage workload with the
//!   paper's 10-transaction mix (Fig. 7).
//! * [`tpce_hybrid`] — TPC-E plus the AssetEval read-mostly transaction
//!   (Figs. 6, 9; Table 1).
//!
//! The [`driver`] runs a workload for a fixed duration on N threads and
//! reports per-transaction-type commit/abort counts, abort reasons and
//! latencies — the raw series behind every figure in the evaluation.

pub mod driver;
pub mod engine;
pub mod micro;
pub mod rng;
pub mod tpcc;
pub mod tpcc_hybrid;
pub mod tpce;
pub mod tpce_hybrid;

pub use driver::{run, BenchResult, RunConfig, TypeStats};
pub use engine::{
    index_routing, table_policy, Engine, EngineTxn, EngineWorker, ErmiaEngine, ShardedErmiaEngine,
    SiloEngine, TxnProfile,
};

pub use ermia_common::{AbortReason, IndexId, OpResult, TableId, TxResult};
