//! TPC-C-hybrid: TPC-C plus the TPC-CH-Q2\* read-mostly transaction
//! (paper §4.2, Figs. 2, 5, 12, Table 1).
//!
//! Q2\* is a modified TPC-CH Query 2: it picks a random region, scans a
//! configurable fraction of the Supplier table, and for each supplier in
//! the region reads that supplier's stock items (via the TPC-CH
//! `(s_w_id · s_i_id) mod 10 000` association), updating the ones whose
//! quantity is below a threshold. Its access pattern is determined by
//! supplier id, not by the warehouse partitioning field, so it is often
//! cross-partition and conflicts frequently with NewOrder in the Stock
//! table — exactly the heterogeneous mix the paper studies.
//!
//! Mix: 40% NewOrder, 38% Payment, 10% Q2\*, 4% each OrderStatus,
//! StockLevel, Delivery.

use ermia_common::{AbortReason, KeyWriter};
use rand::Rng;

use crate::driver::Workload;
use crate::engine::{Engine, EngineTxn, TxnProfile};
use crate::rng::uniform;
use crate::tpcc::schema::{k_stock, Stock, Supplier};
use crate::tpcc::{
    delivery, neworder, orderstatus, payment, stocklevel, TpccConfig, TpccState, TpccTables,
    TpccWorkload,
};

/// Restock threshold: stock rows below this quantity get updated.
const Q2_THRESHOLD: i64 = 25;
/// Restock amount.
const Q2_RESTOCK: i64 = 50;

/// Transaction type indexes for the hybrid mix.
pub const H_NEWORDER: usize = 0;
pub const H_PAYMENT: usize = 1;
pub const H_Q2: usize = 2;
pub const H_ORDERSTATUS: usize = 3;
pub const H_DELIVERY: usize = 4;
pub const H_STOCKLEVEL: usize = 5;

pub struct TpccHybridWorkload {
    pub base: TpccWorkload,
    /// Fraction of the Supplier table Q2\* scans, in percent (1..=100) —
    /// the x-axis of Fig. 5.
    pub q2_size_pct: u32,
}

impl TpccHybridWorkload {
    pub fn new(cfg: TpccConfig, q2_size_pct: u32) -> TpccHybridWorkload {
        assert!((1..=100).contains(&q2_size_pct));
        TpccHybridWorkload { base: TpccWorkload::new(cfg), q2_size_pct }
    }
}

/// The Q2\* transaction body.
pub fn q2star<T: EngineTxn>(
    tx: &mut T,
    t: &TpccTables,
    cfg: &TpccConfig,
    ws: &mut TpccState,
    size_pct: u32,
) -> Result<(), AbortReason> {
    let suppliers = cfg.suppliers;
    let span = (suppliers as u64 * size_pct as u64 / 100).max(1) as u32;
    let start = if span >= suppliers {
        0
    } else {
        uniform(&mut ws.rng, 0, (suppliers - span) as u64) as u32
    };
    let region = uniform(&mut ws.rng, 0, 4) as u32;

    // Scan the supplier fraction; remember suppliers in the region.
    let lo = ws.kw.reset().u32(start).to_vec();
    let hi = ws.kw.reset().u32(start + span - 1).to_vec();
    let mut in_region: Vec<u32> = Vec::new();
    tx.scan(t.supplier_pk, &lo, &hi, None, &mut |k, v| {
        let su = u32::from_be_bytes(k[0..4].try_into().expect("short supplier key"));
        if Supplier::decode(v).region == region {
            in_region.push(su);
        }
        true
    })?;

    // For each matching supplier, read its stock items; restock the ones
    // below the threshold.
    let mut kw = KeyWriter::new();
    for su in in_region {
        let lo = kw.reset().u32(su).to_vec();
        let hi = kw.reset().u32(su).u32(u32::MAX).u32(u32::MAX).to_vec();
        let mut low: Vec<(u32, u32, Stock)> = Vec::new();
        tx.scan(t.stock_supplier, &lo, &hi, None, &mut |k, v| {
            let stock = Stock::decode(v);
            if stock.quantity < Q2_THRESHOLD {
                let w = u32::from_be_bytes(k[4..8].try_into().expect("short key"));
                let i = u32::from_be_bytes(k[8..12].try_into().expect("short key"));
                low.push((w, i, stock));
            }
            true
        })?;
        for (w, i, mut stock) in low {
            stock.quantity += Q2_RESTOCK;
            tx.update(t.stock, k_stock(&mut ws.kw, w, i), &stock.encode())?;
        }
    }
    Ok(())
}

impl<E: Engine> Workload<E> for TpccHybridWorkload {
    type WorkerState = TpccState;

    fn types(&self) -> Vec<&'static str> {
        vec!["NewOrder", "Payment", "Q2*", "OrderStatus", "Delivery", "StockLevel"]
    }

    fn load(&self, engine: &E) {
        self.base.load_data(engine);
    }

    fn worker_state(&self, worker_id: usize, nthreads: usize) -> TpccState {
        <TpccWorkload as Workload<E>>::worker_state(&self.base, worker_id, nthreads)
    }

    fn next_type(&self, ws: &mut TpccState) -> usize {
        // 40 / 38 / 10 / 4 / 4 / 4 (§4.2).
        match ws.rng.random_range(1..=100u32) {
            1..=40 => H_NEWORDER,
            41..=78 => H_PAYMENT,
            79..=88 => H_Q2,
            89..=92 => H_ORDERSTATUS,
            93..=96 => H_DELIVERY,
            _ => H_STOCKLEVEL,
        }
    }

    fn execute(
        &self,
        worker: &mut E::Worker,
        ws: &mut TpccState,
        ty: usize,
    ) -> Result<(), AbortReason> {
        use crate::engine::EngineWorker;
        let t = *self.base.tables();
        let cfg = &self.base.cfg;
        let w = self.base.pick_warehouse(ws);
        let profile = match ty {
            H_ORDERSTATUS | H_STOCKLEVEL => TxnProfile::ReadOnly,
            // Q2* updates stock: it cannot use read-only snapshots.
            _ => TxnProfile::ReadWrite,
        };
        let mut tx = worker.begin(profile);
        let body = match ty {
            H_NEWORDER => neworder(&mut tx, &t, cfg, ws, w),
            H_PAYMENT => payment(&mut tx, &t, cfg, ws, w),
            H_Q2 => q2star(&mut tx, &t, cfg, ws, self.q2_size_pct),
            H_ORDERSTATUS => orderstatus(&mut tx, &t, cfg, ws, w),
            H_DELIVERY => delivery(&mut tx, &t, cfg, ws, w),
            H_STOCKLEVEL => stocklevel(&mut tx, &t, cfg, ws, w),
            _ => unreachable!("unknown txn type"),
        };
        match body {
            Ok(()) => tx.commit(),
            Err(r) => {
                tx.abort();
                Err(r)
            }
        }
    }
}
