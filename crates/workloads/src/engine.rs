//! The engine abstraction: one workload codebase, three systems.

use ermia_common::{IndexId, OpResult, TableId, TxResult};

/// Whether the application declares the transaction read-only. ERMIA
/// ignores the hint (snapshots make every reader consistent); Silo uses
/// it to route the transaction to its read-only snapshot mechanism.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnProfile {
    ReadWrite,
    ReadOnly,
}

/// A database engine under benchmark.
pub trait Engine: Send + Sync + Clone + 'static {
    type Worker: EngineWorker;

    fn name(&self) -> &'static str;
    fn create_table(&self, name: &str) -> TableId;
    fn create_secondary_index(&self, table: TableId, name: &str) -> IndexId;
    fn primary_index(&self, table: TableId) -> IndexId;
    fn register_worker(&self) -> Self::Worker;
    /// (commits, aborts) counted by the engine.
    fn txn_counts(&self) -> (u64, u64);
}

/// Per-thread handle.
pub trait EngineWorker: Send {
    type Txn<'a>: EngineTxn
    where
        Self: 'a;
    fn begin(&mut self, profile: TxnProfile) -> Self::Txn<'_>;
}

/// The uniform transaction surface the workloads drive.
pub trait EngineTxn {
    /// Point read by primary key; `out` receives the payload if present.
    fn read(&mut self, table: TableId, key: &[u8], out: &mut dyn FnMut(&[u8])) -> OpResult<bool>;
    /// Point read through a secondary index.
    fn read_secondary(
        &mut self,
        index: IndexId,
        key: &[u8],
        out: &mut dyn FnMut(&[u8]),
    ) -> OpResult<bool>;
    fn update(&mut self, table: TableId, key: &[u8], value: &[u8]) -> OpResult<bool>;
    /// Insert; returns an engine-specific record handle for secondary
    /// index maintenance.
    fn insert(&mut self, table: TableId, key: &[u8], value: &[u8]) -> OpResult<u64>;
    fn insert_secondary(&mut self, index: IndexId, key: &[u8], handle: u64) -> OpResult<()>;
    fn delete(&mut self, table: TableId, key: &[u8]) -> OpResult<bool>;
    /// Ascending range scan, inclusive bounds; `f` returns false to stop.
    fn scan(
        &mut self,
        index: IndexId,
        low: &[u8],
        high: &[u8],
        limit: Option<usize>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> OpResult<usize>;
    fn commit(self) -> TxResult<()>;
    fn abort(self);
}

// ---------------------------------------------------------------------
// ERMIA adapter (SI or SSN, chosen at construction)
// ---------------------------------------------------------------------

/// ERMIA under a fixed isolation level (ERMIA-SI / ERMIA-SSN).
#[derive(Clone)]
pub struct ErmiaEngine {
    pub db: ermia::Database,
    pub isolation: ermia::IsolationLevel,
    name: &'static str,
}

impl ErmiaEngine {
    pub fn si(db: ermia::Database) -> ErmiaEngine {
        ErmiaEngine { db, isolation: ermia::IsolationLevel::Snapshot, name: "ERMIA-SI" }
    }

    pub fn ssn(db: ermia::Database) -> ErmiaEngine {
        ErmiaEngine { db, isolation: ermia::IsolationLevel::Serializable, name: "ERMIA-SSN" }
    }
}

impl Engine for ErmiaEngine {
    type Worker = ErmiaWorkerAdapter;

    fn name(&self) -> &'static str {
        self.name
    }

    fn create_table(&self, name: &str) -> TableId {
        self.db.create_table(name)
    }

    fn create_secondary_index(&self, table: TableId, name: &str) -> IndexId {
        self.db.create_secondary_index(table, name)
    }

    fn primary_index(&self, table: TableId) -> IndexId {
        self.db.primary_index(table)
    }

    fn register_worker(&self) -> ErmiaWorkerAdapter {
        ErmiaWorkerAdapter { worker: self.db.register_worker(), isolation: self.isolation }
    }

    fn txn_counts(&self) -> (u64, u64) {
        self.db.txn_counts()
    }
}

pub struct ErmiaWorkerAdapter {
    worker: ermia::Worker,
    isolation: ermia::IsolationLevel,
}

impl EngineWorker for ErmiaWorkerAdapter {
    type Txn<'a> = ermia::Transaction<'a>;

    fn begin(&mut self, _profile: TxnProfile) -> ermia::Transaction<'_> {
        // ERMIA needs no read-only declaration: SI serves all readers
        // from consistent snapshots.
        self.worker.begin(self.isolation)
    }
}

impl EngineTxn for ermia::Transaction<'_> {
    fn read(&mut self, table: TableId, key: &[u8], out: &mut dyn FnMut(&[u8])) -> OpResult<bool> {
        ermia::Transaction::read(self, table, key, |v| out(v)).map(|o| o.is_some())
    }

    fn read_secondary(
        &mut self,
        index: IndexId,
        key: &[u8],
        out: &mut dyn FnMut(&[u8]),
    ) -> OpResult<bool> {
        ermia::Transaction::read_secondary(self, index, key, |v| out(v)).map(|o| o.is_some())
    }

    fn update(&mut self, table: TableId, key: &[u8], value: &[u8]) -> OpResult<bool> {
        ermia::Transaction::update(self, table, key, value)
    }

    fn insert(&mut self, table: TableId, key: &[u8], value: &[u8]) -> OpResult<u64> {
        ermia::Transaction::insert(self, table, key, value).map(|oid| oid.0 as u64)
    }

    fn insert_secondary(&mut self, index: IndexId, key: &[u8], handle: u64) -> OpResult<()> {
        ermia::Transaction::insert_secondary(self, index, key, ermia_common::Oid(handle as u32))
    }

    fn delete(&mut self, table: TableId, key: &[u8]) -> OpResult<bool> {
        ermia::Transaction::delete(self, table, key)
    }

    fn scan(
        &mut self,
        index: IndexId,
        low: &[u8],
        high: &[u8],
        limit: Option<usize>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> OpResult<usize> {
        ermia::Transaction::scan(self, index, low, high, limit, |k, v| f(k, v))
    }

    fn commit(self) -> TxResult<()> {
        ermia::Transaction::commit(self).map(|_| ())
    }

    fn abort(self) {
        ermia::Transaction::abort(self)
    }
}

// ---------------------------------------------------------------------
// Sharded ERMIA adapter
// ---------------------------------------------------------------------

/// Shard placement policy for a workload table, by name.
///
/// TPC-C keys lead with the 4-byte big-endian warehouse id, so hashing
/// that prefix keeps a warehouse's rows (and its single-warehouse
/// transactions) on one shard — the paper's partitioning. The read-only
/// catalog tables (`item`, `supplier`) replicate so NewOrder's item
/// lookups never leave the home shard. The partitioned microbenchmark
/// uses the same 4-byte-prefix scheme.
pub fn table_policy(name: &str) -> ermia::ShardPolicy {
    match name {
        "tpcc.item" | "tpcc.supplier" => ermia::ShardPolicy::Replicated,
        n if n.starts_with("tpcc.") => ermia::ShardPolicy::Hash { prefix: Some(4) },
        "micro.stock_part" => ermia::ShardPolicy::Hash { prefix: Some(4) },
        _ => ermia::ShardPolicy::Hash { prefix: None },
    }
}

/// Secondary-index routing, by name. `customer_name` and
/// `order_customer` keys lead with the owner row's warehouse id, so the
/// entry colocates with its row; `stock_supplier` leads with the
/// supplier id and must probe.
pub fn index_routing(name: &str) -> ermia::IndexRouting {
    match name {
        "tpcc.customer_name" | "tpcc.order_customer" => ermia::IndexRouting::OwnerPrefix(4),
        _ => ermia::IndexRouting::Probe,
    }
}

/// Sharded ERMIA: N independent log/epoch/TID domains behind one
/// namespace, cross-shard transactions committing via 2PC.
#[derive(Clone)]
pub struct ShardedErmiaEngine {
    pub db: ermia::ShardedDb,
    pub isolation: ermia::IsolationLevel,
    name: &'static str,
}

impl ShardedErmiaEngine {
    pub fn si(db: ermia::ShardedDb) -> ShardedErmiaEngine {
        ShardedErmiaEngine { db, isolation: ermia::IsolationLevel::Snapshot, name: "ERMIA-shard" }
    }

    pub fn ssn(db: ermia::ShardedDb) -> ShardedErmiaEngine {
        ShardedErmiaEngine {
            db,
            isolation: ermia::IsolationLevel::Serializable,
            name: "ERMIA-shard-SSN",
        }
    }
}

impl Engine for ShardedErmiaEngine {
    type Worker = ShardedErmiaWorkerAdapter;

    fn name(&self) -> &'static str {
        self.name
    }

    fn create_table(&self, name: &str) -> TableId {
        self.db.create_table_with_policy(name, table_policy(name))
    }

    fn create_secondary_index(&self, table: TableId, name: &str) -> IndexId {
        self.db.create_secondary_index(table, name, index_routing(name))
    }

    fn primary_index(&self, table: TableId) -> IndexId {
        self.db.primary_index(table)
    }

    fn register_worker(&self) -> ShardedErmiaWorkerAdapter {
        ShardedErmiaWorkerAdapter { worker: self.db.register_worker(), isolation: self.isolation }
    }

    fn txn_counts(&self) -> (u64, u64) {
        self.db.txn_counts()
    }
}

pub struct ShardedErmiaWorkerAdapter {
    worker: ermia::ShardedWorker,
    isolation: ermia::IsolationLevel,
}

impl EngineWorker for ShardedErmiaWorkerAdapter {
    type Txn<'a> = ermia::ShardedTransaction<'a>;

    fn begin(&mut self, _profile: TxnProfile) -> ermia::ShardedTransaction<'_> {
        self.worker.begin(self.isolation)
    }
}

impl EngineTxn for ermia::ShardedTransaction<'_> {
    fn read(&mut self, table: TableId, key: &[u8], out: &mut dyn FnMut(&[u8])) -> OpResult<bool> {
        ermia::ShardedTransaction::read(self, table, key, |v| out(v)).map(|o| o.is_some())
    }

    fn read_secondary(
        &mut self,
        index: IndexId,
        key: &[u8],
        out: &mut dyn FnMut(&[u8]),
    ) -> OpResult<bool> {
        ermia::ShardedTransaction::read_secondary(self, index, key, |v| out(v)).map(|o| o.is_some())
    }

    fn update(&mut self, table: TableId, key: &[u8], value: &[u8]) -> OpResult<bool> {
        ermia::ShardedTransaction::update(self, table, key, value)
    }

    fn insert(&mut self, table: TableId, key: &[u8], value: &[u8]) -> OpResult<u64> {
        ermia::ShardedTransaction::insert(self, table, key, value)
    }

    fn insert_secondary(&mut self, index: IndexId, key: &[u8], handle: u64) -> OpResult<()> {
        ermia::ShardedTransaction::insert_secondary(self, index, key, handle)
    }

    fn delete(&mut self, table: TableId, key: &[u8]) -> OpResult<bool> {
        ermia::ShardedTransaction::delete(self, table, key)
    }

    fn scan(
        &mut self,
        index: IndexId,
        low: &[u8],
        high: &[u8],
        limit: Option<usize>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> OpResult<usize> {
        ermia::ShardedTransaction::scan(self, index, low, high, limit, |k, v| f(k, v))
    }

    fn commit(self) -> TxResult<()> {
        ermia::ShardedTransaction::commit(self).map(|_| ())
    }

    fn abort(self) {
        ermia::ShardedTransaction::abort(self)
    }
}

// ---------------------------------------------------------------------
// Silo adapter
// ---------------------------------------------------------------------

/// Silo-OCC (read-only snapshots per its configuration).
#[derive(Clone)]
pub struct SiloEngine {
    pub db: silo_occ::SiloDb,
}

impl SiloEngine {
    pub fn new(db: silo_occ::SiloDb) -> SiloEngine {
        SiloEngine { db }
    }
}

impl Engine for SiloEngine {
    type Worker = silo_occ::SiloWorker;

    fn name(&self) -> &'static str {
        "Silo-OCC"
    }

    fn create_table(&self, name: &str) -> TableId {
        self.db.create_table(name)
    }

    fn create_secondary_index(&self, table: TableId, name: &str) -> IndexId {
        self.db.create_secondary_index(table, name)
    }

    fn primary_index(&self, table: TableId) -> IndexId {
        self.db.primary_index(table)
    }

    fn register_worker(&self) -> silo_occ::SiloWorker {
        self.db.register_worker()
    }

    fn txn_counts(&self) -> (u64, u64) {
        self.db.txn_counts()
    }
}

impl EngineWorker for silo_occ::SiloWorker {
    type Txn<'a> = silo_occ::SiloTxn<'a>;

    fn begin(&mut self, profile: TxnProfile) -> silo_occ::SiloTxn<'_> {
        let mode = match profile {
            TxnProfile::ReadWrite => silo_occ::TxnMode::ReadWrite,
            TxnProfile::ReadOnly => silo_occ::TxnMode::ReadOnly,
        };
        silo_occ::SiloWorker::begin(self, mode)
    }
}

impl EngineTxn for silo_occ::SiloTxn<'_> {
    fn read(&mut self, table: TableId, key: &[u8], out: &mut dyn FnMut(&[u8])) -> OpResult<bool> {
        silo_occ::SiloTxn::read(self, table, key, |v| out(v)).map(|o| o.is_some())
    }

    fn read_secondary(
        &mut self,
        index: IndexId,
        key: &[u8],
        out: &mut dyn FnMut(&[u8]),
    ) -> OpResult<bool> {
        silo_occ::SiloTxn::read_secondary(self, index, key, |v| out(v)).map(|o| o.is_some())
    }

    fn update(&mut self, table: TableId, key: &[u8], value: &[u8]) -> OpResult<bool> {
        silo_occ::SiloTxn::update(self, table, key, value)
    }

    fn insert(&mut self, table: TableId, key: &[u8], value: &[u8]) -> OpResult<u64> {
        silo_occ::SiloTxn::insert(self, table, key, value)
    }

    fn insert_secondary(&mut self, index: IndexId, key: &[u8], handle: u64) -> OpResult<()> {
        silo_occ::SiloTxn::insert_secondary(self, index, key, handle)
    }

    fn delete(&mut self, table: TableId, key: &[u8]) -> OpResult<bool> {
        silo_occ::SiloTxn::delete(self, table, key)
    }

    fn scan(
        &mut self,
        index: IndexId,
        low: &[u8],
        high: &[u8],
        limit: Option<usize>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> OpResult<usize> {
        silo_occ::SiloTxn::scan(self, index, low, high, limit, |k, v| f(k, v))
    }

    fn commit(self) -> TxResult<()> {
        silo_occ::SiloTxn::commit(self)
    }

    fn abort(self) {
        silo_occ::SiloTxn::abort(self)
    }
}
