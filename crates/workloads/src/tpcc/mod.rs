//! TPC-C (paper §4.2).
//!
//! Full 9-table schema and the five standard transactions with the
//! spec's 45/43/4/4/4 mix. The database is partitioned by warehouse and
//! each worker thread is assigned a local warehouse, but 1% of NewOrder
//! and 15% of Payment transactions are cross-partition — the paper's
//! configuration. [`PartitionAccess`] switches warehouse selection to
//! uniform or 80-20 skewed for the Fig. 8 contention experiment.

pub mod schema;

use std::sync::OnceLock;

use ermia_common::{AbortReason, IndexId, KeyWriter, TableId};
use rand::rngs::StdRng;
use rand::Rng;

use crate::driver::Workload;
use crate::engine::{Engine, EngineTxn, EngineWorker, TxnProfile};
use crate::rng::{astring, last_name, nurand, rand_last_name, skew_80_20, uniform, worker_rng};
use schema::*;

/// How transactions pick their warehouse (Fig. 8).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PartitionAccess {
    /// Each worker sticks to its home warehouse (the default).
    Home,
    /// Uniformly random warehouse per transaction.
    Uniform,
    /// 80-20 skewed warehouse per transaction.
    Skew8020,
}

/// TPC-C sizing and behaviour knobs.
#[derive(Clone, Debug)]
pub struct TpccConfig {
    pub warehouses: u32,
    pub districts: u8,
    pub customers_per_district: u32,
    pub items: u32,
    /// Initially loaded orders per district (the last 30% undelivered).
    pub initial_orders: u32,
    pub remote_neworder_pct: u32,
    pub remote_payment_pct: u32,
    pub access: PartitionAccess,
    /// TPC-CH suppliers (used by the hybrid workload; loaded always so
    /// the schema is identical across experiments).
    pub suppliers: u32,
}

impl TpccConfig {
    /// Paper-scale sizing (scale factor = warehouses).
    pub fn paper(warehouses: u32) -> TpccConfig {
        TpccConfig {
            warehouses,
            districts: 10,
            customers_per_district: 3_000,
            items: 100_000,
            initial_orders: 3_000,
            remote_neworder_pct: 1,
            remote_payment_pct: 15,
            access: PartitionAccess::Home,
            suppliers: 10_000,
        }
    }

    /// Reduced sizing for tests and quick runs.
    pub fn small(warehouses: u32) -> TpccConfig {
        TpccConfig {
            warehouses,
            districts: 4,
            customers_per_district: 120,
            items: 2_000,
            initial_orders: 60,
            remote_neworder_pct: 1,
            remote_payment_pct: 15,
            access: PartitionAccess::Home,
            suppliers: 100,
        }
    }
}

/// Table and index handles.
#[derive(Clone, Copy, Debug)]
pub struct TpccTables {
    pub warehouse: TableId,
    pub district: TableId,
    pub customer: TableId,
    pub customer_name: IndexId,
    pub history: TableId,
    pub neworder: TableId,
    pub order: TableId,
    pub order_customer: IndexId,
    pub orderline: TableId,
    pub item: TableId,
    pub stock: TableId,
    pub stock_supplier: IndexId,
    pub supplier: TableId,
    pub neworder_pk: IndexId,
    pub orderline_pk: IndexId,
    pub customer_pk: IndexId,
    pub supplier_pk: IndexId,
}

impl TpccTables {
    pub fn create<E: Engine>(e: &E) -> TpccTables {
        let warehouse = e.create_table("tpcc.warehouse");
        let district = e.create_table("tpcc.district");
        let customer = e.create_table("tpcc.customer");
        let history = e.create_table("tpcc.history");
        let neworder = e.create_table("tpcc.neworder");
        let order = e.create_table("tpcc.order");
        let orderline = e.create_table("tpcc.orderline");
        let item = e.create_table("tpcc.item");
        let stock = e.create_table("tpcc.stock");
        let supplier = e.create_table("tpcc.supplier");
        TpccTables {
            warehouse,
            district,
            customer,
            customer_name: e.create_secondary_index(customer, "tpcc.customer_name"),
            history,
            neworder,
            order,
            order_customer: e.create_secondary_index(order, "tpcc.order_customer"),
            orderline,
            item,
            stock,
            stock_supplier: e.create_secondary_index(stock, "tpcc.stock_supplier"),
            supplier,
            neworder_pk: e.primary_index(neworder),
            orderline_pk: e.primary_index(orderline),
            customer_pk: e.primary_index(customer),
            supplier_pk: e.primary_index(supplier),
        }
    }
}

/// Per-worker state.
pub struct TpccState {
    pub rng: StdRng,
    pub home: u32,
    pub kw: KeyWriter,
    pub kw2: KeyWriter,
    pub kw3: KeyWriter,
    /// Unique history-row sequence.
    pub hseq: u64,
}

/// Transaction type indexes.
pub const NEWORDER: usize = 0;
pub const PAYMENT: usize = 1;
pub const ORDERSTATUS: usize = 2;
pub const DELIVERY: usize = 3;
pub const STOCKLEVEL: usize = 4;

pub struct TpccWorkload {
    pub cfg: TpccConfig,
    tables: OnceLock<TpccTables>,
}

impl TpccWorkload {
    pub fn new(cfg: TpccConfig) -> TpccWorkload {
        TpccWorkload { cfg, tables: OnceLock::new() }
    }

    pub fn tables(&self) -> &TpccTables {
        self.tables.get().expect("load() must run first")
    }

    /// Bind table handles without loading data — used after recovery,
    /// where the log replay repopulated already-declared tables.
    pub fn bind_tables<E: Engine>(&self, engine: &E) -> &TpccTables {
        self.tables.get_or_init(|| TpccTables::create(engine))
    }

    /// Pick the transaction's warehouse per the access policy.
    pub fn pick_warehouse(&self, ws: &mut TpccState) -> u32 {
        match self.cfg.access {
            PartitionAccess::Home => ws.home,
            PartitionAccess::Uniform => uniform(&mut ws.rng, 1, self.cfg.warehouses as u64) as u32,
            PartitionAccess::Skew8020 => {
                skew_80_20(&mut ws.rng, self.cfg.warehouses as u64) as u32 + 1
            }
        }
    }

    /// Load schema + data (shared with the hybrid workload).
    pub fn load_data<E: Engine>(&self, engine: &E) -> TpccTables {
        let t = *self.tables.get_or_init(|| TpccTables::create(engine));
        let cfg = &self.cfg;
        let mut w = engine.register_worker();
        let mut rng = worker_rng(0xC0FFEE);
        let mut kw = KeyWriter::new();
        let mut kw2 = KeyWriter::new();

        // Items.
        batch_load(&mut w, cfg.items as u64, 500, |tx, i| {
            let i = i as u32 + 1;
            let item = Item {
                name: astring(&mut rng, 14, 24),
                price: uniform(&mut rng, 100, 10_000) as f64 / 100.0,
                data: astring(&mut rng, 26, 50),
            };
            tx.insert(t.item, k_item(&mut kw, i), &item.encode())?;
            Ok(())
        });

        // Suppliers (TPC-CH).
        batch_load(&mut w, cfg.suppliers as u64, 500, |tx, su| {
            let su = su as u32;
            let s = Supplier { name: format!("Supplier#{su:09}"), region: su % 5 };
            tx.insert(t.supplier, k_supplier(&mut kw, su), &s.encode())?;
            Ok(())
        });

        for wid in 1..=cfg.warehouses {
            // Warehouse row.
            batch_load(&mut w, 1, 1, |tx, _| {
                let row = Warehouse {
                    name: astring(&mut rng, 6, 10),
                    tax: uniform(&mut rng, 0, 2000) as f64 / 10_000.0,
                    ytd: 300_000.0,
                };
                tx.insert(t.warehouse, k_warehouse(&mut kw, wid), &row.encode())?;
                Ok(())
            });

            // Stock (+ supplier secondary).
            batch_load(&mut w, cfg.items as u64, 500, |tx, i| {
                let i = i as u32 + 1;
                let row = Stock {
                    quantity: uniform(&mut rng, 10, 100) as i64,
                    ytd: 0.0,
                    order_cnt: 0,
                    remote_cnt: 0,
                    dist_info: astring(&mut rng, 24, 24),
                    data: astring(&mut rng, 26, 50),
                };
                let handle = tx.insert(t.stock, k_stock(&mut kw, wid, i), &row.encode())?;
                let su = supplier_of(wid, i, cfg.suppliers);
                tx.insert_secondary(
                    t.stock_supplier,
                    k_stock_supplier(&mut kw2, su, wid, i),
                    handle,
                )?;
                Ok(())
            });

            for d in 1..=cfg.districts {
                batch_load(&mut w, 1, 1, |tx, _| {
                    let row = District {
                        tax: uniform(&mut rng, 0, 2000) as f64 / 10_000.0,
                        ytd: 30_000.0,
                        next_o_id: cfg.initial_orders + 1,
                    };
                    tx.insert(t.district, k_district(&mut kw, wid, d), &row.encode())?;
                    Ok(())
                });

                // Customers (+ by-name secondary).
                batch_load(&mut w, cfg.customers_per_district as u64, 250, |tx, c| {
                    let c = c as u32 + 1;
                    let lname = if c <= 1_000 {
                        last_name((c - 1) as u64)
                    } else {
                        rand_last_name(&mut rng)
                    };
                    let first = astring(&mut rng, 8, 16);
                    let row = Customer {
                        first: first.clone(),
                        middle: "OE".into(),
                        last: lname.clone(),
                        balance: -10.0,
                        ytd_payment: 10.0,
                        payment_cnt: 1,
                        delivery_cnt: 0,
                        credit: if rng.random_range(0..10) == 0 { "BC" } else { "GC" }.into(),
                        discount: uniform(&mut rng, 0, 5000) as f64 / 10_000.0,
                        data: astring(&mut rng, 100, 200),
                    };
                    let h = tx.insert(t.customer, k_customer(&mut kw, wid, d, c), &row.encode())?;
                    tx.insert_secondary(
                        t.customer_name,
                        k_customer_name(&mut kw2, wid, d, &lname, &first, c),
                        h,
                    )?;
                    Ok(())
                });

                // Initial orders: the newest 30% undelivered.
                let delivered_upto = cfg.initial_orders * 7 / 10;
                batch_load(&mut w, cfg.initial_orders as u64, 100, |tx, o| {
                    let o = o as u32 + 1;
                    // Pseudo-random customer permutation.
                    let c = (o.wrapping_mul(2_654_435_761)) % cfg.customers_per_district + 1;
                    let ol_cnt = uniform(&mut rng, 5, 15) as u32;
                    let delivered = o <= delivered_upto;
                    let row = Order {
                        c_id: c,
                        entry_d: 1,
                        carrier_id: if delivered {
                            uniform(&mut rng, 1, 10) as u32
                        } else {
                            0
                        },
                        ol_cnt,
                        all_local: true,
                    };
                    let h = tx.insert(t.order, k_order(&mut kw, wid, d, o), &row.encode())?;
                    tx.insert_secondary(
                        t.order_customer,
                        k_order_customer(&mut kw2, wid, d, c, o),
                        h,
                    )?;
                    if !delivered {
                        tx.insert(t.neworder, k_neworder(&mut kw, wid, d, o), &[])?;
                    }
                    for ol in 1..=ol_cnt as u8 {
                        let line = OrderLine {
                            i_id: uniform(&mut rng, 1, cfg.items as u64) as u32,
                            supply_w: wid,
                            delivery_d: if delivered { 1 } else { 0 },
                            quantity: 5,
                            amount: if delivered {
                                0.0
                            } else {
                                uniform(&mut rng, 1, 999_999) as f64 / 100.0
                            },
                            dist_info: astring(&mut rng, 24, 24),
                        };
                        tx.insert(
                            t.orderline,
                            k_orderline(&mut kw, wid, d, o, ol),
                            &line.encode(),
                        )?;
                    }
                    Ok(())
                });
            }
        }
        t
    }
}

/// Run `n` loader steps in batched transactions of `per_tx` steps.
pub fn batch_load<W: EngineWorker>(
    worker: &mut W,
    n: u64,
    per_tx: u64,
    mut step: impl FnMut(&mut W::Txn<'_>, u64) -> Result<(), AbortReason>,
) {
    let mut i = 0;
    while i < n {
        let mut tx = worker.begin(TxnProfile::ReadWrite);
        let hi = (i + per_tx).min(n);
        for j in i..hi {
            step(&mut tx, j).expect("loader step failed");
        }
        tx.commit().expect("loader commit failed");
        i = hi;
    }
}

// -----------------------------------------------------------------------
// Transaction bodies (shared with the hybrid workload)
// -----------------------------------------------------------------------

/// Read a row and decode it; a missing row is a benchmark logic error
/// surfaced as a user abort.
pub(crate) fn read_row<T: EngineTxn, R>(
    tx: &mut T,
    table: TableId,
    key: &[u8],
    f: impl FnOnce(&[u8]) -> R,
) -> Result<R, AbortReason> {
    let mut out = None;
    let mut f = Some(f);
    let found = tx.read(table, key, &mut |v| {
        out = Some((f.take().expect("read callback fired twice"))(v));
    })?;
    if !found {
        return Err(AbortReason::UserRequested);
    }
    Ok(out.expect("engine reported found without payload"))
}

pub fn neworder<T: EngineTxn>(
    tx: &mut T,
    t: &TpccTables,
    cfg: &TpccConfig,
    ws: &mut TpccState,
    w: u32,
) -> Result<(), AbortReason> {
    let d = uniform(&mut ws.rng, 1, cfg.districts as u64) as u8;
    let c = nurand(&mut ws.rng, 1023, 1, cfg.customers_per_district as u64) as u32;
    let ol_cnt = uniform(&mut ws.rng, 5, 15) as u32;
    let rollback = uniform(&mut ws.rng, 1, 100) == 1;

    let wh = read_row(tx, t.warehouse, k_warehouse(&mut ws.kw, w), Warehouse::decode)?;
    let mut district = read_row(tx, t.district, k_district(&mut ws.kw, w, d), District::decode)?;
    let o_id = district.next_o_id;
    district.next_o_id += 1;
    tx.update(t.district, k_district(&mut ws.kw, w, d), &district.encode())?;
    let cust = read_row(tx, t.customer, k_customer(&mut ws.kw, w, d, c), Customer::decode)?;

    let mut all_local = true;
    let mut lines = Vec::with_capacity(ol_cnt as usize);
    for _ in 0..ol_cnt {
        let i_id = nurand(&mut ws.rng, 8191, 1, cfg.items as u64) as u32;
        let supply_w = if cfg.warehouses > 1
            && uniform(&mut ws.rng, 1, 100) <= cfg.remote_neworder_pct as u64
        {
            all_local = false;
            // A different warehouse (cross-partition).
            let mut other = uniform(&mut ws.rng, 1, cfg.warehouses as u64) as u32;
            if other == w {
                other = other % cfg.warehouses + 1;
            }
            other
        } else {
            w
        };
        lines.push((i_id, supply_w, uniform(&mut ws.rng, 1, 10) as u32));
    }

    let order = Order { c_id: c, entry_d: 2, carrier_id: 0, ol_cnt, all_local };
    let h = tx.insert(t.order, k_order(&mut ws.kw, w, d, o_id), &order.encode())?;
    tx.insert_secondary(t.order_customer, k_order_customer(&mut ws.kw2, w, d, c, o_id), h)?;
    tx.insert(t.neworder, k_neworder(&mut ws.kw, w, d, o_id), &[])?;

    let mut total = 0.0;
    for (ol, &(i_id, supply_w, qty)) in lines.iter().enumerate() {
        let item = read_row(tx, t.item, k_item(&mut ws.kw, i_id), Item::decode)?;
        let mut stock =
            read_row(tx, t.stock, k_stock(&mut ws.kw, supply_w, i_id), Stock::decode)?;
        stock.quantity =
            if stock.quantity >= qty as i64 + 10 { stock.quantity - qty as i64 } else { stock.quantity - qty as i64 + 91 };
        stock.ytd += qty as f64;
        stock.order_cnt += 1;
        if supply_w != w {
            stock.remote_cnt += 1;
        }
        tx.update(t.stock, k_stock(&mut ws.kw, supply_w, i_id), &stock.encode())?;
        let amount = qty as f64 * item.price;
        total += amount;
        let line = OrderLine {
            i_id,
            supply_w,
            delivery_d: 0,
            quantity: qty,
            amount,
            dist_info: stock.dist_info,
        };
        tx.insert(t.orderline, k_orderline(&mut ws.kw, w, d, o_id, ol as u8 + 1), &line.encode())?;
    }
    let _ = total * (1.0 - cust.discount) * (1.0 + wh.tax + district.tax);

    if rollback {
        // Spec: 1% of NewOrders roll back on an unused item number.
        return Err(AbortReason::UserRequested);
    }
    Ok(())
}

/// Resolve a customer by last name: pick the middle match (spec
/// §2.5.2.2). Returns (c_id, decoded row).
pub(crate) fn customer_by_name<T: EngineTxn>(
    tx: &mut T,
    t: &TpccTables,
    ws: &mut TpccState,
    w: u32,
    d: u8,
    last: &str,
) -> Result<Option<(u32, Customer)>, AbortReason> {
    let (lo, hi) = k_customer_name_range(&mut ws.kw, &mut ws.kw2, w, d, last);
    let mut matches: Vec<(u32, Customer)> = Vec::new();
    tx.scan(t.customer_name, &lo, &hi, None, &mut |k, v| {
        let c = u32::from_be_bytes(k[k.len() - 4..].try_into().expect("short name key"));
        matches.push((c, Customer::decode(v)));
        true
    })?;
    if matches.is_empty() {
        return Ok(None);
    }
    let mid = matches.len() / 2;
    Ok(Some(matches.swap_remove(mid)))
}

pub fn payment<T: EngineTxn>(
    tx: &mut T,
    t: &TpccTables,
    cfg: &TpccConfig,
    ws: &mut TpccState,
    w: u32,
) -> Result<(), AbortReason> {
    let d = uniform(&mut ws.rng, 1, cfg.districts as u64) as u8;
    let amount = uniform(&mut ws.rng, 100, 500_000) as f64 / 100.0;

    // 15% of payments are for a customer of a remote warehouse.
    let (c_w, c_d) = if cfg.warehouses > 1
        && uniform(&mut ws.rng, 1, 100) <= cfg.remote_payment_pct as u64
    {
        let mut other = uniform(&mut ws.rng, 1, cfg.warehouses as u64) as u32;
        if other == w {
            other = other % cfg.warehouses + 1;
        }
        (other, uniform(&mut ws.rng, 1, cfg.districts as u64) as u8)
    } else {
        (w, d)
    };

    let mut wh = read_row(tx, t.warehouse, k_warehouse(&mut ws.kw, w), Warehouse::decode)?;
    wh.ytd += amount;
    tx.update(t.warehouse, k_warehouse(&mut ws.kw, w), &wh.encode())?;

    let mut district = read_row(tx, t.district, k_district(&mut ws.kw, w, d), District::decode)?;
    district.ytd += amount;
    tx.update(t.district, k_district(&mut ws.kw, w, d), &district.encode())?;

    // 60% by id, 40% by last name.
    let (c_id, mut cust) = if uniform(&mut ws.rng, 1, 100) <= 60 {
        let c = nurand(&mut ws.rng, 1023, 1, cfg.customers_per_district as u64) as u32;
        let row = read_row(tx, t.customer, k_customer(&mut ws.kw, c_w, c_d, c), Customer::decode)?;
        (c, row)
    } else {
        let lname = rand_last_name(&mut ws.rng);
        match customer_by_name(tx, t, ws, c_w, c_d, &lname)? {
            Some(hit) => hit,
            None => return Err(AbortReason::UserRequested), // no such name loaded
        }
    };
    cust.balance -= amount;
    cust.ytd_payment += amount;
    cust.payment_cnt += 1;
    if cust.credit == "BC" {
        cust.data = format!("{c_id}:{c_w}:{c_d}:{w}:{d}:{amount:.2}|{}", cust.data);
        cust.data.truncate(250);
    }
    tx.update(t.customer, k_customer(&mut ws.kw, c_w, c_d, c_id), &cust.encode())?;

    ws.hseq += 1;
    let h = History { amount, data: format!("{} {}", wh.name, d) };
    tx.insert(t.history, k_history(&mut ws.kw, c_w, c_d, c_id, ws.hseq), &h.encode())?;
    Ok(())
}

pub fn orderstatus<T: EngineTxn>(
    tx: &mut T,
    t: &TpccTables,
    cfg: &TpccConfig,
    ws: &mut TpccState,
    w: u32,
) -> Result<(), AbortReason> {
    let d = uniform(&mut ws.rng, 1, cfg.districts as u64) as u8;
    let (c_id, _cust) = if uniform(&mut ws.rng, 1, 100) <= 60 {
        let c = nurand(&mut ws.rng, 1023, 1, cfg.customers_per_district as u64) as u32;
        let row = read_row(tx, t.customer, k_customer(&mut ws.kw, w, d, c), Customer::decode)?;
        (c, row)
    } else {
        let lname = rand_last_name(&mut ws.rng);
        match customer_by_name(tx, t, ws, w, d, &lname)? {
            Some(hit) => hit,
            None => return Ok(()), // nothing to report
        }
    };

    // Newest order: the order-by-customer key embeds !o_id, so an
    // ascending scan with limit 1 yields it.
    let lo = ws.kw.reset().u32(w).u8(d).u32(c_id).to_vec();
    let hi = ws.kw.reset().u32(w).u8(d).u32(c_id).u32(u32::MAX).to_vec();
    let mut newest: Option<(u32, Order)> = None;
    tx.scan(t.order_customer, &lo, &hi, Some(1), &mut |k, v| {
        let inv = u32::from_be_bytes(k[k.len() - 4..].try_into().expect("short key"));
        newest = Some((!inv, Order::decode(v)));
        false
    })?;
    let Some((o_id, order)) = newest else { return Ok(()) };

    // Its order lines.
    let lo = k_orderline(&mut ws.kw, w, d, o_id, 0).to_vec();
    let hi = k_orderline(&mut ws.kw2, w, d, o_id, order.ol_cnt as u8 + 1).to_vec();
    let mut n = 0;
    tx.scan(t.orderline_pk, &lo, &hi, None, &mut |_k, v| {
        let _ = OrderLine::decode(v);
        n += 1;
        true
    })?;
    Ok(())
}

pub fn delivery<T: EngineTxn>(
    tx: &mut T,
    t: &TpccTables,
    cfg: &TpccConfig,
    ws: &mut TpccState,
    w: u32,
) -> Result<(), AbortReason> {
    let carrier = uniform(&mut ws.rng, 1, 10) as u32;
    for d in 1..=cfg.districts {
        // Oldest undelivered order.
        let lo = k_neworder(&mut ws.kw, w, d, 0).to_vec();
        let hi = k_neworder(&mut ws.kw2, w, d, u32::MAX).to_vec();
        let mut oldest: Option<u32> = None;
        tx.scan(t.neworder_pk, &lo, &hi, Some(1), &mut |k, _| {
            oldest = Some(u32::from_be_bytes(k[k.len() - 4..].try_into().expect("short key")));
            false
        })?;
        let Some(o_id) = oldest else { continue };

        tx.delete(t.neworder, k_neworder(&mut ws.kw, w, d, o_id))?;
        let mut order = read_row(tx, t.order, k_order(&mut ws.kw, w, d, o_id), Order::decode)?;
        order.carrier_id = carrier;
        tx.update(t.order, k_order(&mut ws.kw, w, d, o_id), &order.encode())?;

        // Stamp lines with the delivery date and sum their amounts.
        let lo = k_orderline(&mut ws.kw, w, d, o_id, 0).to_vec();
        let hi = k_orderline(&mut ws.kw2, w, d, o_id, 16).to_vec();
        let mut lines: Vec<(Vec<u8>, OrderLine)> = Vec::new();
        tx.scan(t.orderline_pk, &lo, &hi, None, &mut |k, v| {
            lines.push((k.to_vec(), OrderLine::decode(v)));
            true
        })?;
        let mut total = 0.0;
        for (key, mut line) in lines {
            total += line.amount;
            line.delivery_d = 3;
            tx.update(t.orderline, &key, &line.encode())?;
        }

        let ckey = k_customer(&mut ws.kw, w, d, order.c_id).to_vec();
        let mut cust = read_row(tx, t.customer, &ckey, Customer::decode)?;
        cust.balance += total;
        cust.delivery_cnt += 1;
        tx.update(t.customer, &ckey, &cust.encode())?;
    }
    Ok(())
}

pub fn stocklevel<T: EngineTxn>(
    tx: &mut T,
    t: &TpccTables,
    cfg: &TpccConfig,
    ws: &mut TpccState,
    w: u32,
) -> Result<(), AbortReason> {
    let d = uniform(&mut ws.rng, 1, cfg.districts as u64) as u8;
    let threshold = uniform(&mut ws.rng, 10, 20) as i64;
    let district = read_row(tx, t.district, k_district(&mut ws.kw, w, d), District::decode)?;
    let next_o = district.next_o_id;
    let from_o = next_o.saturating_sub(20);

    // Items in the last 20 orders' lines.
    let lo = k_orderline(&mut ws.kw, w, d, from_o, 0).to_vec();
    let hi = k_orderline(&mut ws.kw2, w, d, next_o, 0).to_vec();
    let mut items: Vec<u32> = Vec::new();
    tx.scan(t.orderline_pk, &lo, &hi, None, &mut |_k, v| {
        items.push(OrderLine::decode(v).i_id);
        true
    })?;
    items.sort_unstable();
    items.dedup();

    let mut low_stock = 0;
    for i_id in items {
        let stock = read_row(tx, t.stock, k_stock(&mut ws.kw, w, i_id), Stock::decode)?;
        if stock.quantity < threshold {
            low_stock += 1;
        }
    }
    let _ = low_stock;
    Ok(())
}

// -----------------------------------------------------------------------
// Workload impl
// -----------------------------------------------------------------------

impl<E: Engine> Workload<E> for TpccWorkload {
    type WorkerState = TpccState;

    fn types(&self) -> Vec<&'static str> {
        vec!["NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"]
    }

    fn load(&self, engine: &E) {
        self.load_data(engine);
    }

    fn worker_state(&self, worker_id: usize, _nthreads: usize) -> TpccState {
        TpccState {
            rng: worker_rng(worker_id as u64),
            home: (worker_id as u32) % self.cfg.warehouses + 1,
            kw: KeyWriter::new(),
            kw2: KeyWriter::new(),
            kw3: KeyWriter::new(),
            hseq: (worker_id as u64) << 40,
        }
    }

    fn next_type(&self, ws: &mut TpccState) -> usize {
        // Spec mix: 45 / 43 / 4 / 4 / 4.
        match uniform(&mut ws.rng, 1, 100) {
            1..=45 => NEWORDER,
            46..=88 => PAYMENT,
            89..=92 => ORDERSTATUS,
            93..=96 => DELIVERY,
            _ => STOCKLEVEL,
        }
    }

    fn execute(
        &self,
        worker: &mut E::Worker,
        ws: &mut TpccState,
        ty: usize,
    ) -> Result<(), AbortReason> {
        let t = *self.tables();
        let w = self.pick_warehouse(ws);
        let profile = match ty {
            ORDERSTATUS | STOCKLEVEL => TxnProfile::ReadOnly,
            _ => TxnProfile::ReadWrite,
        };
        let mut tx = worker.begin(profile);
        let body = match ty {
            NEWORDER => neworder(&mut tx, &t, &self.cfg, ws, w),
            PAYMENT => payment(&mut tx, &t, &self.cfg, ws, w),
            ORDERSTATUS => orderstatus(&mut tx, &t, &self.cfg, ws, w),
            DELIVERY => delivery(&mut tx, &t, &self.cfg, ws, w),
            STOCKLEVEL => stocklevel(&mut tx, &t, &self.cfg, ws, w),
            _ => unreachable!("unknown txn type"),
        };
        match body {
            Ok(()) => tx.commit(),
            Err(r) => {
                tx.abort();
                Err(r)
            }
        }
    }
}

// -----------------------------------------------------------------------
// Consistency checks (TPC-C spec §3.3.2 conditions 1-3, adapted)
// -----------------------------------------------------------------------

/// Verify TPC-C consistency conditions on a quiesced database:
///
/// 1. For every district: `d_next_o_id - 1` equals the maximum order id
///    in both ORDER and (if any rows remain) NEW-ORDER.
/// 2. For every warehouse: `w_ytd` growth equals the sum of its
///    districts' `d_ytd` growth (payments update both).
///
/// Panics with a descriptive message on violation.
pub fn check_consistency<E: Engine>(engine: &E, workload: &TpccWorkload) {
    let t = *workload.tables();
    let cfg = &workload.cfg;
    let mut w = engine.register_worker();
    let mut tx = w.begin(TxnProfile::ReadWrite);
    let mut kw = KeyWriter::new();
    let mut kw2 = KeyWriter::new();

    for wid in 1..=cfg.warehouses {
        let wh = read_row(&mut tx, t.warehouse, k_warehouse(&mut kw, wid), Warehouse::decode)
            .expect("warehouse row");
        let mut district_ytd_sum = 0.0;
        for d in 1..=cfg.districts {
            let district =
                read_row(&mut tx, t.district, k_district(&mut kw, wid, d), District::decode)
                    .expect("district row");
            district_ytd_sum += district.ytd;

            // Max order id in ORDER for this district.
            let lo = k_order(&mut kw, wid, d, 0).to_vec();
            let hi = k_order(&mut kw2, wid, d, u32::MAX).to_vec();
            let mut max_o = 0u32;
            tx.scan(engine.primary_index(t.order), &lo, &hi, None, &mut |k, _| {
                max_o = u32::from_be_bytes(k[k.len() - 4..].try_into().expect("key"));
                true
            })
            .expect("order scan");
            assert_eq!(
                district.next_o_id - 1,
                max_o,
                "consistency 1 violated at w={wid} d={d}: next_o_id={} max(o_id)={max_o}",
                district.next_o_id
            );
        }
        // Payments add the same amount to w_ytd and one of its d_ytd.
        let initial_w = 300_000.0;
        let initial_d_sum = 30_000.0 * cfg.districts as f64;
        let dw = wh.ytd - initial_w;
        let dd = district_ytd_sum - initial_d_sum;
        assert!(
            (dw - dd).abs() < 0.01,
            "consistency 2 violated at w={wid}: Δw_ytd={dw:.2} Σ Δd_ytd={dd:.2}"
        );
    }
    tx.commit().expect("consistency check commit");
}
