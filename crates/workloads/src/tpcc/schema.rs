//! TPC-C schema: records, binary layouts, key builders.
//!
//! Records carry every column the transaction logic touches plus filler
//! bytes sized so row widths approximate the specification (stock ≈
//! 300 B, customer ≈ 650 B, ...). Encoding is a simple little-endian
//! field sequence; strings are u16-length-prefixed.

use ermia_common::KeyWriter;

// --- tiny binary codec -------------------------------------------------

pub struct Enc {
    pub buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc { buf: Vec::with_capacity(128) }
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        self
    }

    pub fn str(&mut self, s: &str) -> &mut Self {
        self.buf.extend_from_slice(&(s.len() as u16).to_le_bytes());
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    pub fn filler(&mut self, n: usize) -> &mut Self {
        self.buf.resize(self.buf.len() + n, 0xAB);
        self
    }
}

impl Default for Enc {
    fn default() -> Self {
        Self::new()
    }
}

pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub fn u8(&mut self) -> u8 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    pub fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }

    pub fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }

    pub fn i64(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }

    pub fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }

    pub fn str(&mut self) -> String {
        let len = u16::from_le_bytes(self.buf[self.pos..self.pos + 2].try_into().unwrap()) as usize;
        self.pos += 2;
        let s = String::from_utf8_lossy(&self.buf[self.pos..self.pos + len]).into_owned();
        self.pos += len;
        s
    }
}

// --- records -----------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
pub struct Warehouse {
    pub name: String,
    pub tax: f64,
    pub ytd: f64,
}

impl Warehouse {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.str(&self.name).f64(self.tax).f64(self.ytd).filler(70);
        e.buf
    }

    pub fn decode(buf: &[u8]) -> Warehouse {
        let mut d = Dec::new(buf);
        Warehouse { name: d.str(), tax: d.f64(), ytd: d.f64() }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub struct District {
    pub tax: f64,
    pub ytd: f64,
    pub next_o_id: u32,
}

impl District {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.f64(self.tax).f64(self.ytd).u32(self.next_o_id).filler(75);
        e.buf
    }

    pub fn decode(buf: &[u8]) -> District {
        let mut d = Dec::new(buf);
        District { tax: d.f64(), ytd: d.f64(), next_o_id: d.u32() }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub struct Customer {
    pub first: String,
    pub middle: String,
    pub last: String,
    pub balance: f64,
    pub ytd_payment: f64,
    pub payment_cnt: u32,
    pub delivery_cnt: u32,
    pub credit: String,
    pub discount: f64,
    pub data: String,
}

impl Customer {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.str(&self.first)
            .str(&self.middle)
            .str(&self.last)
            .f64(self.balance)
            .f64(self.ytd_payment)
            .u32(self.payment_cnt)
            .u32(self.delivery_cnt)
            .str(&self.credit)
            .f64(self.discount)
            .str(&self.data)
            .filler(120);
        e.buf
    }

    pub fn decode(buf: &[u8]) -> Customer {
        let mut d = Dec::new(buf);
        Customer {
            first: d.str(),
            middle: d.str(),
            last: d.str(),
            balance: d.f64(),
            ytd_payment: d.f64(),
            payment_cnt: d.u32(),
            delivery_cnt: d.u32(),
            credit: d.str(),
            discount: d.f64(),
            data: d.str(),
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub struct Order {
    pub c_id: u32,
    pub entry_d: u64,
    /// 0 = not yet delivered.
    pub carrier_id: u32,
    pub ol_cnt: u32,
    pub all_local: bool,
}

impl Order {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.c_id)
            .u64(self.entry_d)
            .u32(self.carrier_id)
            .u32(self.ol_cnt)
            .u8(self.all_local as u8);
        e.buf
    }

    pub fn decode(buf: &[u8]) -> Order {
        let mut d = Dec::new(buf);
        Order {
            c_id: d.u32(),
            entry_d: d.u64(),
            carrier_id: d.u32(),
            ol_cnt: d.u32(),
            all_local: d.u8() != 0,
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub struct OrderLine {
    pub i_id: u32,
    pub supply_w: u32,
    /// 0 = not yet delivered.
    pub delivery_d: u64,
    pub quantity: u32,
    pub amount: f64,
    pub dist_info: String,
}

impl OrderLine {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.i_id)
            .u32(self.supply_w)
            .u64(self.delivery_d)
            .u32(self.quantity)
            .f64(self.amount)
            .str(&self.dist_info);
        e.buf
    }

    pub fn decode(buf: &[u8]) -> OrderLine {
        let mut d = Dec::new(buf);
        OrderLine {
            i_id: d.u32(),
            supply_w: d.u32(),
            delivery_d: d.u64(),
            quantity: d.u32(),
            amount: d.f64(),
            dist_info: d.str(),
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub struct Item {
    pub name: String,
    pub price: f64,
    pub data: String,
}

impl Item {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.str(&self.name).f64(self.price).str(&self.data);
        e.buf
    }

    pub fn decode(buf: &[u8]) -> Item {
        let mut d = Dec::new(buf);
        Item { name: d.str(), price: d.f64(), data: d.str() }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub struct Stock {
    pub quantity: i64,
    pub ytd: f64,
    pub order_cnt: u32,
    pub remote_cnt: u32,
    pub dist_info: String,
    pub data: String,
}

impl Stock {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.i64(self.quantity)
            .f64(self.ytd)
            .u32(self.order_cnt)
            .u32(self.remote_cnt)
            .str(&self.dist_info)
            .str(&self.data)
            .filler(160);
        e.buf
    }

    pub fn decode(buf: &[u8]) -> Stock {
        let mut d = Dec::new(buf);
        Stock {
            quantity: d.i64(),
            ytd: d.f64(),
            order_cnt: d.u32(),
            remote_cnt: d.u32(),
            dist_info: d.str(),
            data: d.str(),
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub struct History {
    pub amount: f64,
    pub data: String,
}

impl History {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.f64(self.amount).str(&self.data);
        e.buf
    }

    pub fn decode(buf: &[u8]) -> History {
        let mut d = Dec::new(buf);
        History { amount: d.f64(), data: d.str() }
    }
}

/// TPC-CH Supplier (used by the hybrid Q2\* transaction).
#[derive(Clone, Debug, PartialEq)]
pub struct Supplier {
    pub name: String,
    pub region: u32,
}

impl Supplier {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.str(&self.name).u32(self.region).filler(40);
        e.buf
    }

    pub fn decode(buf: &[u8]) -> Supplier {
        let mut d = Dec::new(buf);
        Supplier { name: d.str(), region: d.u32() }
    }
}

// --- key builders -------------------------------------------------------

pub fn k_warehouse(k: &mut KeyWriter, w: u32) -> &[u8] {
    k.reset().u32(w).as_bytes()
}

pub fn k_district(k: &mut KeyWriter, w: u32, d: u8) -> &[u8] {
    k.reset().u32(w).u8(d).as_bytes()
}

pub fn k_customer(k: &mut KeyWriter, w: u32, d: u8, c: u32) -> &[u8] {
    k.reset().u32(w).u8(d).u32(c).as_bytes()
}

pub fn k_customer_name<'k>(
    k: &'k mut KeyWriter,
    w: u32,
    d: u8,
    last: &str,
    first: &str,
    c: u32,
) -> &'k [u8] {
    k.reset().u32(w).u8(d).str(last).str(first).u32(c).as_bytes()
}

/// Prefix bounds for a by-last-name lookup.
pub fn k_customer_name_range(
    lo: &mut KeyWriter,
    hi: &mut KeyWriter,
    w: u32,
    d: u8,
    last: &str,
) -> (Vec<u8>, Vec<u8>) {
    lo.reset().u32(w).u8(d).str(last);
    hi.reset().u32(w).u8(d).str(last);
    let mut h = hi.to_vec();
    h.extend_from_slice(&[0xFF; 16]);
    (lo.to_vec(), h)
}

pub fn k_history(k: &mut KeyWriter, w: u32, d: u8, c: u32, seq: u64) -> &[u8] {
    k.reset().u32(w).u8(d).u32(c).u64(seq).as_bytes()
}

pub fn k_neworder(k: &mut KeyWriter, w: u32, d: u8, o: u32) -> &[u8] {
    k.reset().u32(w).u8(d).u32(o).as_bytes()
}

pub fn k_order(k: &mut KeyWriter, w: u32, d: u8, o: u32) -> &[u8] {
    k.reset().u32(w).u8(d).u32(o).as_bytes()
}

/// Order-by-customer secondary key. The order id is bit-inverted so an
/// ascending scan with limit 1 yields the customer's *newest* order.
pub fn k_order_customer(k: &mut KeyWriter, w: u32, d: u8, c: u32, o: u32) -> &[u8] {
    k.reset().u32(w).u8(d).u32(c).u32(!o).as_bytes()
}

pub fn k_orderline(k: &mut KeyWriter, w: u32, d: u8, o: u32, ol: u8) -> &[u8] {
    k.reset().u32(w).u8(d).u32(o).u8(ol).as_bytes()
}

pub fn k_item(k: &mut KeyWriter, i: u32) -> &[u8] {
    k.reset().u32(i).as_bytes()
}

pub fn k_stock(k: &mut KeyWriter, w: u32, i: u32) -> &[u8] {
    k.reset().u32(w).u32(i).as_bytes()
}

pub fn k_supplier(k: &mut KeyWriter, su: u32) -> &[u8] {
    k.reset().u32(su).as_bytes()
}

/// Stock-by-supplier secondary key (TPC-CH mapping).
pub fn k_stock_supplier(k: &mut KeyWriter, su: u32, w: u32, i: u32) -> &[u8] {
    k.reset().u32(su).u32(w).u32(i).as_bytes()
}

/// The TPC-CH supplier of a stock row: `(s_w_id * s_i_id) mod 10_000`.
pub fn supplier_of(w: u32, i: u32, suppliers: u32) -> u32 {
    (w.wrapping_mul(i)) % suppliers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips() {
        let c = Customer {
            first: "Fn".into(),
            middle: "OE".into(),
            last: "BARBARBAR".into(),
            balance: -10.0,
            ytd_payment: 10.0,
            payment_cnt: 1,
            delivery_cnt: 0,
            credit: "GC".into(),
            discount: 0.05,
            data: "x".repeat(250),
        };
        assert_eq!(Customer::decode(&c.encode()), c);
        assert!(c.encode().len() > 380, "customer row should be realistically wide");

        let s = Stock {
            quantity: 42,
            ytd: 0.0,
            order_cnt: 0,
            remote_cnt: 0,
            dist_info: "d".repeat(24),
            data: "y".repeat(50),
        };
        assert_eq!(Stock::decode(&s.encode()), s);
        assert!(s.encode().len() > 250);

        let o = Order { c_id: 7, entry_d: 99, carrier_id: 0, ol_cnt: 11, all_local: true };
        assert_eq!(Order::decode(&o.encode()), o);

        let ol = OrderLine {
            i_id: 5,
            supply_w: 2,
            delivery_d: 0,
            quantity: 5,
            amount: 12.5,
            dist_info: "z".repeat(24),
        };
        assert_eq!(OrderLine::decode(&ol.encode()), ol);

        let d = District { tax: 0.1, ytd: 30_000.0, next_o_id: 3001 };
        assert_eq!(District::decode(&d.encode()), d);

        let w = Warehouse { name: "W1".into(), tax: 0.07, ytd: 300_000.0 };
        assert_eq!(Warehouse::decode(&w.encode()), w);

        let i = Item { name: "widget".into(), price: 9.99, data: "info".into() };
        assert_eq!(Item::decode(&i.encode()), i);

        let h = History { amount: 10.0, data: "W1 D1".into() };
        assert_eq!(History::decode(&h.encode()), h);

        let su = Supplier { name: "Supplier#1".into(), region: 3 };
        assert_eq!(Supplier::decode(&su.encode()), su);
    }

    #[test]
    fn order_customer_key_sorts_newest_first() {
        let mut k = KeyWriter::new();
        let k_new = k_order_customer(&mut k, 1, 1, 5, 100).to_vec();
        let mut k2 = KeyWriter::new();
        let k_old = k_order_customer(&mut k2, 1, 1, 5, 99).to_vec();
        assert!(k_new < k_old, "newer orders must sort first");
    }

    #[test]
    fn name_range_covers_all_firsts() {
        let mut k = KeyWriter::new();
        let key = k_customer_name(&mut k, 1, 2, "ABLE", "Zed", 9).to_vec();
        let mut lo = KeyWriter::new();
        let mut hi = KeyWriter::new();
        let (l, h) = k_customer_name_range(&mut lo, &mut hi, 1, 2, "ABLE");
        assert!(l.as_slice() <= key.as_slice() && key.as_slice() <= h.as_slice());
        // A different last name is outside the range.
        let other = k_customer_name(&mut k, 1, 2, "ABLEX", "A", 1).to_vec();
        assert!(other.as_slice() > h.as_slice() || other.as_slice() < l.as_slice());
    }
}
