//! TPC-E, reduced fidelity (paper §4.2, Fig. 7).
//!
//! TPC-E models brokerage-firm activity with a higher read-to-write
//! ratio than TPC-C (~10:1 vs ~2:1). This reproduction keeps the core
//! tables and all ten transaction types of the paper's mix, with
//! simplified bodies whose read/write *footprints* follow the spec:
//! the evaluation's behaviour is driven by the contention pattern
//! (TradeResult and MarketFeed writing HoldingSummary / LastTrade under
//! readers), which is modeled directly. See DESIGN.md for the
//! substitution rationale.

use std::sync::OnceLock;

use ermia_common::{AbortReason, IndexId, KeyWriter, TableId};
use rand::rngs::StdRng;
use rand::Rng;

use crate::driver::Workload;
use crate::engine::{Engine, EngineTxn, EngineWorker, TxnProfile};
use crate::rng::{astring, uniform, worker_rng};
use crate::tpcc::schema::{Dec, Enc};

// --- records ------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
pub struct CustomerRow {
    pub name: String,
    pub tier: u8,
}

impl CustomerRow {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.str(&self.name).u8(self.tier).filler(60);
        e.buf
    }
    pub fn decode(b: &[u8]) -> CustomerRow {
        let mut d = Dec::new(b);
        CustomerRow { name: d.str(), tier: d.u8() }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub struct AccountRow {
    pub c_id: u64,
    pub b_id: u64,
    pub balance: f64,
}

impl AccountRow {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.c_id).u64(self.b_id).f64(self.balance).filler(40);
        e.buf
    }
    pub fn decode(b: &[u8]) -> AccountRow {
        let mut d = Dec::new(b);
        AccountRow { c_id: d.u64(), b_id: d.u64(), balance: d.f64() }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub struct BrokerRow {
    pub name: String,
    pub num_trades: u64,
    pub commission: f64,
}

impl BrokerRow {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.str(&self.name).u64(self.num_trades).f64(self.commission).filler(30);
        e.buf
    }
    pub fn decode(b: &[u8]) -> BrokerRow {
        let mut d = Dec::new(b);
        BrokerRow { name: d.str(), num_trades: d.u64(), commission: d.f64() }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub struct SecurityRow {
    pub symbol: String,
    pub name: String,
}

impl SecurityRow {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.str(&self.symbol).str(&self.name).filler(80);
        e.buf
    }
    pub fn decode(b: &[u8]) -> SecurityRow {
        let mut d = Dec::new(b);
        SecurityRow { symbol: d.str(), name: d.str() }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub struct LastTradeRow {
    pub price: f64,
    pub volume: u64,
}

impl LastTradeRow {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.f64(self.price).u64(self.volume);
        e.buf
    }
    pub fn decode(b: &[u8]) -> LastTradeRow {
        let mut d = Dec::new(b);
        LastTradeRow { price: d.f64(), volume: d.u64() }
    }
}

pub const TRADE_PENDING: u8 = 0;
pub const TRADE_COMPLETED: u8 = 1;

#[derive(Clone, Debug, PartialEq)]
pub struct TradeRow {
    pub ca_id: u64,
    pub s_id: u32,
    pub qty: u32,
    pub price: f64,
    pub is_buy: bool,
    pub status: u8,
    pub note: String,
}

impl TradeRow {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.ca_id)
            .u32(self.s_id)
            .u32(self.qty)
            .f64(self.price)
            .u8(self.is_buy as u8)
            .u8(self.status)
            .str(&self.note)
            .filler(60);
        e.buf
    }
    pub fn decode(b: &[u8]) -> TradeRow {
        let mut d = Dec::new(b);
        TradeRow {
            ca_id: d.u64(),
            s_id: d.u32(),
            qty: d.u32(),
            price: d.f64(),
            is_buy: d.u8() != 0,
            status: d.u8(),
            note: d.str(),
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
pub struct HoldingRow {
    pub qty: i64,
}

impl HoldingRow {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.i64(self.qty);
        e.buf
    }
    pub fn decode(b: &[u8]) -> HoldingRow {
        let mut d = Dec::new(b);
        HoldingRow { qty: d.i64() }
    }
}

// --- keys ---------------------------------------------------------------

pub fn k_u64(k: &mut KeyWriter, id: u64) -> &[u8] {
    k.reset().u64(id).as_bytes()
}

pub fn k_u32(k: &mut KeyWriter, id: u32) -> &[u8] {
    k.reset().u32(id).as_bytes()
}

pub fn k_account_customer(k: &mut KeyWriter, c: u64, ca: u64) -> &[u8] {
    k.reset().u64(c).u64(ca).as_bytes()
}

/// Trade-by-account key with inverted trade id: newest first.
pub fn k_trade_account(k: &mut KeyWriter, ca: u64, t: u64) -> &[u8] {
    k.reset().u64(ca).u64(!t).as_bytes()
}

pub fn k_holding(k: &mut KeyWriter, ca: u64, s: u32) -> &[u8] {
    k.reset().u64(ca).u32(s).as_bytes()
}

pub fn k_trade_history(k: &mut KeyWriter, t: u64, seq: u8) -> &[u8] {
    k.reset().u64(t).u8(seq).as_bytes()
}

pub fn k_asset_history(k: &mut KeyWriter, ca: u64, seq: u64) -> &[u8] {
    k.reset().u64(ca).u64(seq).as_bytes()
}

// --- config / tables ------------------------------------------------------

#[derive(Clone, Debug)]
pub struct TpceConfig {
    pub customers: u64,
    pub accounts_per_customer: u64,
    pub securities: u32,
    /// Initial completed trades per account.
    pub initial_trades_per_account: u64,
    /// Holdings per account.
    pub holdings_per_account: u32,
}

impl TpceConfig {
    /// Paper parameters: 5 000 customers (§4.2).
    pub fn paper() -> TpceConfig {
        TpceConfig {
            customers: 5_000,
            accounts_per_customer: 5,
            securities: 3_425, // 685 per 1 000 customers
            initial_trades_per_account: 8,
            holdings_per_account: 8,
        }
    }

    pub fn small() -> TpceConfig {
        TpceConfig {
            customers: 200,
            accounts_per_customer: 3,
            securities: 137,
            initial_trades_per_account: 4,
            holdings_per_account: 4,
        }
    }

    pub fn total_accounts(&self) -> u64 {
        self.customers * self.accounts_per_customer
    }

    pub fn brokers(&self) -> u64 {
        (self.customers / 100).max(1)
    }
}

#[derive(Clone, Copy, Debug)]
pub struct TpceTables {
    pub customer: TableId,
    pub account: TableId,
    pub account_customer: IndexId,
    pub broker: TableId,
    pub security: TableId,
    pub last_trade: TableId,
    pub trade: TableId,
    pub trade_account: IndexId,
    pub trade_history: TableId,
    pub holding_summary: TableId,
    pub asset_history: TableId,
    pub holding_pk: IndexId,
    pub account_pk: IndexId,
}

impl TpceTables {
    pub fn create<E: Engine>(e: &E) -> TpceTables {
        let customer = e.create_table("tpce.customer");
        let account = e.create_table("tpce.account");
        let broker = e.create_table("tpce.broker");
        let security = e.create_table("tpce.security");
        let last_trade = e.create_table("tpce.last_trade");
        let trade = e.create_table("tpce.trade");
        let trade_history = e.create_table("tpce.trade_history");
        let holding_summary = e.create_table("tpce.holding_summary");
        let asset_history = e.create_table("tpce.asset_history");
        TpceTables {
            customer,
            account,
            account_customer: e.create_secondary_index(account, "tpce.account_customer"),
            broker,
            security,
            last_trade,
            trade,
            trade_account: e.create_secondary_index(trade, "tpce.trade_account"),
            trade_history,
            holding_summary,
            asset_history,
            holding_pk: e.primary_index(holding_summary),
            account_pk: e.primary_index(account),
        }
    }
}

// --- workload -------------------------------------------------------------

pub struct TpceState {
    pub rng: StdRng,
    pub kw: KeyWriter,
    pub kw2: KeyWriter,
    /// Worker-unique trade-id / asset-history sequence.
    pub seq: u64,
}

pub const BROKER_VOLUME: usize = 0;
pub const CUSTOMER_POSITION: usize = 1;
pub const MARKET_FEED: usize = 2;
pub const MARKET_WATCH: usize = 3;
pub const SECURITY_DETAIL: usize = 4;
pub const TRADE_LOOKUP: usize = 5;
pub const TRADE_ORDER: usize = 6;
pub const TRADE_RESULT: usize = 7;
pub const TRADE_STATUS: usize = 8;
pub const TRADE_UPDATE: usize = 9;

pub struct TpceWorkload {
    pub cfg: TpceConfig,
    tables: OnceLock<TpceTables>,
}

impl TpceWorkload {
    pub fn new(cfg: TpceConfig) -> TpceWorkload {
        TpceWorkload { cfg, tables: OnceLock::new() }
    }

    pub fn tables(&self) -> &TpceTables {
        self.tables.get().expect("load() must run first")
    }

    pub fn load_data<E: Engine>(&self, engine: &E) -> TpceTables {
        let t = *self.tables.get_or_init(|| TpceTables::create(engine));
        let cfg = &self.cfg;
        let mut w = engine.register_worker();
        let mut rng = worker_rng(0xE7CE);
        let mut kw = KeyWriter::new();
        let mut kw2 = KeyWriter::new();

        crate::tpcc::batch_load(&mut w, cfg.customers, 500, |tx, c| {
            let row = CustomerRow { name: astring(&mut rng, 10, 20), tier: (c % 3 + 1) as u8 };
            tx.insert(t.customer, k_u64(&mut kw, c), &row.encode())?;
            Ok(())
        });
        crate::tpcc::batch_load(&mut w, cfg.brokers(), 500, |tx, b| {
            let row =
                BrokerRow { name: astring(&mut rng, 10, 20), num_trades: 0, commission: 0.0 };
            tx.insert(t.broker, k_u64(&mut kw, b), &row.encode())?;
            Ok(())
        });
        crate::tpcc::batch_load(&mut w, cfg.securities as u64, 500, |tx, s| {
            let s32 = s as u32;
            let row = SecurityRow {
                symbol: format!("SYM{s32:06}"),
                name: astring(&mut rng, 20, 40),
            };
            tx.insert(t.security, k_u32(&mut kw, s32), &row.encode())?;
            let lt = LastTradeRow {
                price: uniform(&mut rng, 2_000, 5_000) as f64 / 100.0,
                volume: 0,
            };
            tx.insert(t.last_trade, k_u32(&mut kw, s32), &lt.encode())?;
            Ok(())
        });
        // Accounts, holdings, and an initial trade history.
        let mut t_id: u64 = 1;
        crate::tpcc::batch_load(&mut w, cfg.total_accounts(), 50, |tx, ca| {
            let c_id = ca / cfg.accounts_per_customer;
            let b_id = c_id % cfg.brokers();
            let row = AccountRow { c_id, b_id, balance: 10_000.0 };
            let h = tx.insert(t.account, k_u64(&mut kw, ca), &row.encode())?;
            tx.insert_secondary(t.account_customer, k_account_customer(&mut kw2, c_id, ca), h)?;
            for j in 0..cfg.holdings_per_account {
                // Deterministic spread of securities per account.
                let s = ((ca as u32).wrapping_mul(2_654_435_761).wrapping_add(j * 97))
                    % cfg.securities;
                let hold = HoldingRow { qty: 100 };
                // Duplicate (ca, s) pairs possible for tiny configs: skip.
                let key = k_holding(&mut kw, ca, s).to_vec();
                let mut exists = false;
                tx.read(t.holding_summary, &key, &mut |_| exists = true)?;
                if !exists {
                    tx.insert(t.holding_summary, &key, &hold.encode())?;
                }
            }
            for _ in 0..cfg.initial_trades_per_account {
                let s = uniform(&mut rng, 0, cfg.securities as u64 - 1) as u32;
                let trade = TradeRow {
                    ca_id: ca,
                    s_id: s,
                    qty: uniform(&mut rng, 100, 800) as u32,
                    price: uniform(&mut rng, 2_000, 5_000) as f64 / 100.0,
                    is_buy: rng.random_bool(0.5),
                    status: TRADE_COMPLETED,
                    note: astring(&mut rng, 10, 30),
                };
                let h = tx.insert(t.trade, k_u64(&mut kw, t_id), &trade.encode())?;
                tx.insert_secondary(t.trade_account, k_trade_account(&mut kw2, ca, t_id), h)?;
                tx.insert(t.trade_history, k_trade_history(&mut kw, t_id, 1), &[TRADE_COMPLETED])?;
                t_id += 1;
            }
            Ok(())
        });
        t
    }

    pub fn make_state(&self, worker_id: usize) -> TpceState {
        TpceState {
            rng: worker_rng(0xE70 + worker_id as u64),
            kw: KeyWriter::new(),
            kw2: KeyWriter::new(),
            // Leave room above loader-assigned ids.
            seq: ((worker_id as u64 + 1) << 40),
        }
    }
}

// --- transaction bodies (shared with the hybrid) --------------------------

fn read_row<T: EngineTxn, R>(
    tx: &mut T,
    table: TableId,
    key: &[u8],
    f: impl FnOnce(&[u8]) -> R,
) -> Result<Option<R>, AbortReason> {
    let mut out = None;
    let mut f = Some(f);
    let found = tx.read(table, key, &mut |v| {
        out = Some((f.take().expect("callback fired twice"))(v));
    })?;
    Ok(if found { out } else { None })
}

pub fn broker_volume<T: EngineTxn>(
    tx: &mut T,
    t: &TpceTables,
    cfg: &TpceConfig,
    ws: &mut TpceState,
) -> Result<(), AbortReason> {
    let mut total = 0u64;
    for _ in 0..20.min(cfg.brokers()) {
        let b = uniform(&mut ws.rng, 0, cfg.brokers() - 1);
        if let Some(row) = read_row(tx, t.broker, k_u64(&mut ws.kw, b), BrokerRow::decode)? {
            total += row.num_trades;
        }
    }
    let _ = total;
    Ok(())
}

pub fn customer_position<T: EngineTxn>(
    tx: &mut T,
    t: &TpceTables,
    cfg: &TpceConfig,
    ws: &mut TpceState,
) -> Result<(), AbortReason> {
    let c = uniform(&mut ws.rng, 0, cfg.customers - 1);
    read_row(tx, t.customer, k_u64(&mut ws.kw, c), CustomerRow::decode)?;
    // All accounts of the customer, then their positions.
    let lo = ws.kw.reset().u64(c).to_vec();
    let hi = ws.kw.reset().u64(c).u64(u64::MAX).to_vec();
    let mut accounts: Vec<u64> = Vec::new();
    tx.scan(t.account_customer, &lo, &hi, None, &mut |k, _v| {
        accounts.push(u64::from_be_bytes(k[8..16].try_into().expect("short key")));
        true
    })?;
    for ca in accounts {
        let _ = position_of_account(tx, t, ws, ca)?;
    }
    Ok(())
}

/// Sum an account's assets: balance + Σ holdings × last-trade price.
pub fn position_of_account<T: EngineTxn>(
    tx: &mut T,
    t: &TpceTables,
    ws: &mut TpceState,
    ca: u64,
) -> Result<f64, AbortReason> {
    let Some(acct) = read_row(tx, t.account, k_u64(&mut ws.kw, ca), AccountRow::decode)? else {
        return Ok(0.0);
    };
    let lo = ws.kw.reset().u64(ca).to_vec();
    let hi = ws.kw.reset().u64(ca).u32(u32::MAX).to_vec();
    let mut holdings: Vec<(u32, i64)> = Vec::new();
    tx.scan(t.holding_pk, &lo, &hi, None, &mut |k, v| {
        let s = u32::from_be_bytes(k[8..12].try_into().expect("short key"));
        holdings.push((s, HoldingRow::decode(v).qty));
        true
    })?;
    let mut total = acct.balance;
    for (s, qty) in holdings {
        if let Some(lt) = read_row(tx, t.last_trade, k_u32(&mut ws.kw, s), LastTradeRow::decode)? {
            total += qty as f64 * lt.price;
        }
    }
    Ok(total)
}

pub fn market_feed<T: EngineTxn>(
    tx: &mut T,
    t: &TpceTables,
    cfg: &TpceConfig,
    ws: &mut TpceState,
) -> Result<(), AbortReason> {
    for _ in 0..20 {
        let s = uniform(&mut ws.rng, 0, cfg.securities as u64 - 1) as u32;
        let key = k_u32(&mut ws.kw, s).to_vec();
        if let Some(mut lt) = read_row(tx, t.last_trade, &key, LastTradeRow::decode)? {
            let delta = uniform(&mut ws.rng, 0, 200) as f64 / 100.0 - 1.0;
            lt.price = (lt.price + delta).max(1.0);
            lt.volume += 100;
            tx.update(t.last_trade, &key, &lt.encode())?;
        }
    }
    Ok(())
}

pub fn market_watch<T: EngineTxn>(
    tx: &mut T,
    t: &TpceTables,
    cfg: &TpceConfig,
    ws: &mut TpceState,
) -> Result<(), AbortReason> {
    let mut sum = 0.0;
    for _ in 0..100 {
        let s = uniform(&mut ws.rng, 0, cfg.securities as u64 - 1) as u32;
        if let Some(lt) = read_row(tx, t.last_trade, k_u32(&mut ws.kw, s), LastTradeRow::decode)? {
            sum += lt.price;
        }
    }
    let _ = sum;
    Ok(())
}

pub fn security_detail<T: EngineTxn>(
    tx: &mut T,
    t: &TpceTables,
    cfg: &TpceConfig,
    ws: &mut TpceState,
) -> Result<(), AbortReason> {
    let s = uniform(&mut ws.rng, 0, cfg.securities as u64 - 1) as u32;
    read_row(tx, t.security, k_u32(&mut ws.kw, s), SecurityRow::decode)?;
    read_row(tx, t.last_trade, k_u32(&mut ws.kw, s), LastTradeRow::decode)?;
    Ok(())
}

pub fn trade_lookup<T: EngineTxn>(
    tx: &mut T,
    t: &TpceTables,
    cfg: &TpceConfig,
    ws: &mut TpceState,
) -> Result<(), AbortReason> {
    let ca = uniform(&mut ws.rng, 0, cfg.total_accounts() - 1);
    let lo = ws.kw.reset().u64(ca).to_vec();
    let hi = ws.kw.reset().u64(ca).u64(u64::MAX).to_vec();
    let mut t_ids: Vec<u64> = Vec::new();
    tx.scan(t.trade_account, &lo, &hi, Some(20), &mut |k, _| {
        t_ids.push(!u64::from_be_bytes(k[8..16].try_into().expect("short key")));
        true
    })?;
    for tid in t_ids {
        read_row(tx, t.trade_history, k_trade_history(&mut ws.kw, tid, 1), |v| v.to_vec())?;
    }
    Ok(())
}

pub fn trade_order<T: EngineTxn>(
    tx: &mut T,
    t: &TpceTables,
    cfg: &TpceConfig,
    ws: &mut TpceState,
) -> Result<(), AbortReason> {
    let ca = uniform(&mut ws.rng, 0, cfg.total_accounts() - 1);
    let s = uniform(&mut ws.rng, 0, cfg.securities as u64 - 1) as u32;
    read_row(tx, t.account, k_u64(&mut ws.kw, ca), AccountRow::decode)?;
    read_row(tx, t.security, k_u32(&mut ws.kw, s), SecurityRow::decode)?;
    let price = read_row(tx, t.last_trade, k_u32(&mut ws.kw, s), LastTradeRow::decode)?
        .map_or(30.0, |lt| lt.price);
    ws.seq += 1;
    let t_id = ws.seq;
    let trade = TradeRow {
        ca_id: ca,
        s_id: s,
        qty: uniform(&mut ws.rng, 100, 800) as u32,
        price,
        is_buy: ws.rng.random_bool(0.5),
        status: TRADE_PENDING,
        note: "pending".into(),
    };
    let h = tx.insert(t.trade, k_u64(&mut ws.kw, t_id), &trade.encode())?;
    tx.insert_secondary(t.trade_account, k_trade_account(&mut ws.kw2, ca, t_id), h)?;
    tx.insert(t.trade_history, k_trade_history(&mut ws.kw, t_id, 0), &[TRADE_PENDING])?;
    Ok(())
}

pub fn trade_result<T: EngineTxn>(
    tx: &mut T,
    t: &TpceTables,
    cfg: &TpceConfig,
    ws: &mut TpceState,
) -> Result<(), AbortReason> {
    let ca = uniform(&mut ws.rng, 0, cfg.total_accounts() - 1);
    // Find the newest pending trade on the account.
    let lo = ws.kw.reset().u64(ca).to_vec();
    let hi = ws.kw.reset().u64(ca).u64(u64::MAX).to_vec();
    let mut pending: Option<(u64, TradeRow)> = None;
    tx.scan(t.trade_account, &lo, &hi, Some(10), &mut |k, v| {
        let row = TradeRow::decode(v);
        if row.status == TRADE_PENDING {
            let tid = !u64::from_be_bytes(k[8..16].try_into().expect("short key"));
            pending = Some((tid, row));
            false
        } else {
            true
        }
    })?;
    let Some((t_id, mut trade)) = pending else {
        return Ok(()); // nothing to settle
    };
    trade.status = TRADE_COMPLETED;
    trade.note = "completed".into();
    tx.update(t.trade, k_u64(&mut ws.kw, t_id), &trade.encode())?;
    tx.insert(t.trade_history, k_trade_history(&mut ws.kw, t_id, 1), &[TRADE_COMPLETED])?;

    // Update the holding summary (the AssetEval contention point).
    let hkey = k_holding(&mut ws.kw, ca, trade.s_id).to_vec();
    let delta = if trade.is_buy { trade.qty as i64 } else { -(trade.qty as i64) };
    match read_row(tx, t.holding_summary, &hkey, HoldingRow::decode)? {
        Some(mut h) => {
            h.qty += delta;
            tx.update(t.holding_summary, &hkey, &h.encode())?;
        }
        None => {
            tx.insert(t.holding_summary, &hkey, &HoldingRow { qty: delta }.encode())?;
        }
    }

    // Settle cash and credit the broker.
    let akey = k_u64(&mut ws.kw, ca).to_vec();
    if let Some(mut acct) = read_row(tx, t.account, &akey, AccountRow::decode)? {
        let cash = trade.qty as f64 * trade.price;
        acct.balance += if trade.is_buy { -cash } else { cash };
        tx.update(t.account, &akey, &acct.encode())?;
        let bkey = k_u64(&mut ws.kw, acct.b_id).to_vec();
        if let Some(mut broker) = read_row(tx, t.broker, &bkey, BrokerRow::decode)? {
            broker.num_trades += 1;
            broker.commission += cash * 0.001;
            tx.update(t.broker, &bkey, &broker.encode())?;
        }
    }
    Ok(())
}

pub fn trade_status<T: EngineTxn>(
    tx: &mut T,
    t: &TpceTables,
    cfg: &TpceConfig,
    ws: &mut TpceState,
) -> Result<(), AbortReason> {
    let ca = uniform(&mut ws.rng, 0, cfg.total_accounts() - 1);
    let lo = ws.kw.reset().u64(ca).to_vec();
    let hi = ws.kw.reset().u64(ca).u64(u64::MAX).to_vec();
    let mut n = 0;
    tx.scan(t.trade_account, &lo, &hi, Some(50), &mut |_k, v| {
        let _ = TradeRow::decode(v).status;
        n += 1;
        true
    })?;
    Ok(())
}

pub fn trade_update<T: EngineTxn>(
    tx: &mut T,
    t: &TpceTables,
    cfg: &TpceConfig,
    ws: &mut TpceState,
) -> Result<(), AbortReason> {
    let ca = uniform(&mut ws.rng, 0, cfg.total_accounts() - 1);
    let lo = ws.kw.reset().u64(ca).to_vec();
    let hi = ws.kw.reset().u64(ca).u64(u64::MAX).to_vec();
    let mut t_ids: Vec<(u64, TradeRow)> = Vec::new();
    tx.scan(t.trade_account, &lo, &hi, Some(20), &mut |k, v| {
        let tid = !u64::from_be_bytes(k[8..16].try_into().expect("short key"));
        t_ids.push((tid, TradeRow::decode(v)));
        true
    })?;
    for (tid, mut row) in t_ids.into_iter().take(3) {
        row.note = astring(&mut ws.rng, 10, 30);
        tx.update(t.trade, k_u64(&mut ws.kw, tid), &row.encode())?;
    }
    Ok(())
}

// --- mix ------------------------------------------------------------------

impl<E: Engine> Workload<E> for TpceWorkload {
    type WorkerState = TpceState;

    fn types(&self) -> Vec<&'static str> {
        vec![
            "BrokerVolume",
            "CustomerPosition",
            "MarketFeed",
            "MarketWatch",
            "SecurityDetail",
            "TradeLookup",
            "TradeOrder",
            "TradeResult",
            "TradeStatus",
            "TradeUpdate",
        ]
    }

    fn load(&self, engine: &E) {
        self.load_data(engine);
    }

    fn worker_state(&self, worker_id: usize, _nthreads: usize) -> TpceState {
        self.make_state(worker_id)
    }

    fn next_type(&self, ws: &mut TpceState) -> usize {
        // Spec-derived per-mille mix (§4.2 without AssetEval):
        // 4.9 / 13 / 1 / 18 / 14 / 8 / 10.1 / 10 / 19 / 2.
        match uniform(&mut ws.rng, 1, 1000) {
            1..=49 => BROKER_VOLUME,
            50..=179 => CUSTOMER_POSITION,
            180..=189 => MARKET_FEED,
            190..=369 => MARKET_WATCH,
            370..=509 => SECURITY_DETAIL,
            510..=589 => TRADE_LOOKUP,
            590..=690 => TRADE_ORDER,
            691..=790 => TRADE_RESULT,
            791..=980 => TRADE_STATUS,
            _ => TRADE_UPDATE,
        }
    }

    fn execute(
        &self,
        worker: &mut E::Worker,
        ws: &mut TpceState,
        ty: usize,
    ) -> Result<(), AbortReason> {
        let t = *self.tables();
        let cfg = &self.cfg;
        let profile = match ty {
            MARKET_FEED | TRADE_ORDER | TRADE_RESULT | TRADE_UPDATE => TxnProfile::ReadWrite,
            _ => TxnProfile::ReadOnly,
        };
        let mut tx = worker.begin(profile);
        let body = dispatch(&mut tx, &t, cfg, ws, ty);
        match body {
            Ok(()) => tx.commit(),
            Err(r) => {
                tx.abort();
                Err(r)
            }
        }
    }
}

/// Dispatch a base-mix transaction body (shared with the hybrid).
pub fn dispatch<T: EngineTxn>(
    tx: &mut T,
    t: &TpceTables,
    cfg: &TpceConfig,
    ws: &mut TpceState,
    ty: usize,
) -> Result<(), AbortReason> {
    match ty {
        BROKER_VOLUME => broker_volume(tx, t, cfg, ws),
        CUSTOMER_POSITION => customer_position(tx, t, cfg, ws),
        MARKET_FEED => market_feed(tx, t, cfg, ws),
        MARKET_WATCH => market_watch(tx, t, cfg, ws),
        SECURITY_DETAIL => security_detail(tx, t, cfg, ws),
        TRADE_LOOKUP => trade_lookup(tx, t, cfg, ws),
        TRADE_ORDER => trade_order(tx, t, cfg, ws),
        TRADE_RESULT => trade_result(tx, t, cfg, ws),
        TRADE_STATUS => trade_status(tx, t, cfg, ws),
        TRADE_UPDATE => trade_update(tx, t, cfg, ws),
        _ => unreachable!("unknown tpce txn"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips() {
        let c = CustomerRow { name: "Jane Trader".into(), tier: 2 };
        assert_eq!(CustomerRow::decode(&c.encode()), c);

        let a = AccountRow { c_id: 42, b_id: 7, balance: 12_345.67 };
        assert_eq!(AccountRow::decode(&a.encode()), a);

        let b = BrokerRow { name: "Broker".into(), num_trades: 99, commission: 12.5 };
        assert_eq!(BrokerRow::decode(&b.encode()), b);

        let s = SecurityRow { symbol: "SYM000001".into(), name: "Acme Corp".into() };
        assert_eq!(SecurityRow::decode(&s.encode()), s);

        let lt = LastTradeRow { price: 31.41, volume: 1000 };
        assert_eq!(LastTradeRow::decode(&lt.encode()), lt);

        let t = TradeRow {
            ca_id: 5,
            s_id: 3,
            qty: 200,
            price: 28.5,
            is_buy: true,
            status: TRADE_PENDING,
            note: "pending".into(),
        };
        assert_eq!(TradeRow::decode(&t.encode()), t);

        let h = HoldingRow { qty: -500 };
        assert_eq!(HoldingRow::decode(&h.encode()), h);
    }

    #[test]
    fn trade_account_key_sorts_newest_first() {
        let mut k1 = ermia_common::KeyWriter::new();
        let mut k2 = ermia_common::KeyWriter::new();
        let newer = k_trade_account(&mut k1, 9, 100).to_vec();
        let older = k_trade_account(&mut k2, 9, 99).to_vec();
        assert!(newer < older);
        // Different accounts are disjoint ranges.
        let other_acct = k_trade_account(&mut k1, 10, 1).to_vec();
        assert!(other_acct > older);
    }

    #[test]
    fn config_arithmetic() {
        let cfg = TpceConfig::paper();
        assert_eq!(cfg.total_accounts(), 25_000);
        assert_eq!(cfg.brokers(), 50);
        let small = TpceConfig::small();
        assert!(small.total_accounts() < 1_000);
        assert!(small.brokers() >= 1);
    }
}
