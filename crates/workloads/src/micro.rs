//! The §4.2 microbenchmark (Fig. 1).
//!
//! "A single transaction that randomly picks a subset of the Stock table
//! to read and a smaller fraction of it to update. The purpose is to
//! create read-write conflicts." Sweeping the write/read ratio from
//! 10⁻³ to 10⁻¹ at read-set sizes 1K and 10K reproduces Fig. 1.

use std::sync::OnceLock;

use ermia_common::{AbortReason, KeyWriter, TableId};
use rand::rngs::StdRng;
use rand::Rng;

use crate::driver::Workload;
use crate::engine::{Engine, EngineTxn, EngineWorker, TxnProfile};
use crate::rng::worker_rng;

/// Row payload size (a TPC-C stock row is ~300 B).
const ROW_BYTES: usize = 300;

/// Configuration for one microbenchmark point.
#[derive(Clone, Debug)]
pub struct MicroConfig {
    /// Table cardinality (the paper uses the TPC-C Stock table: 100k ×
    /// warehouses).
    pub rows: u64,
    /// Records read per transaction (1 000 / 10 000 in Fig. 1).
    pub reads: usize,
    /// Fraction of read records that are also updated (x-axis).
    pub write_ratio: f64,
}

impl Default for MicroConfig {
    fn default() -> MicroConfig {
        MicroConfig { rows: 100_000, reads: 1_000, write_ratio: 0.01 }
    }
}

/// The microbenchmark workload.
pub struct MicroWorkload {
    pub cfg: MicroConfig,
    table: OnceLock<TableId>,
}

impl MicroWorkload {
    pub fn new(cfg: MicroConfig) -> MicroWorkload {
        MicroWorkload { cfg, table: OnceLock::new() }
    }

    fn table(&self) -> TableId {
        *self.table.get().expect("load() must run first")
    }
}

pub struct MicroState {
    rng: StdRng,
    key: KeyWriter,
}

impl<E: Engine> Workload<E> for MicroWorkload {
    type WorkerState = MicroState;

    fn types(&self) -> Vec<&'static str> {
        vec!["ReadUpdate"]
    }

    fn load(&self, engine: &E) {
        let t = engine.create_table("micro.stock");
        let _ = self.table.set(t);
        let mut worker = engine.register_worker();
        let mut rng = worker_rng(0xFEED);
        let payload: Vec<u8> = (0..ROW_BYTES).map(|i| i as u8).collect();
        let mut key = KeyWriter::new();
        // Batch the load, 1000 rows per transaction.
        let mut row = 0;
        while row < self.cfg.rows {
            let mut tx = worker.begin(TxnProfile::ReadWrite);
            let hi = (row + 1_000).min(self.cfg.rows);
            for r in row..hi {
                key.reset().u64(r);
                let mut value = payload.clone();
                value[0..8].copy_from_slice(&rng.random::<u64>().to_le_bytes());
                tx.insert(t, key.as_bytes(), &value).expect("load insert");
            }
            tx.commit().expect("load commit");
            row = hi;
        }
    }

    fn worker_state(&self, worker_id: usize, _nthreads: usize) -> MicroState {
        MicroState { rng: worker_rng(worker_id as u64), key: KeyWriter::new() }
    }

    fn next_type(&self, _ws: &mut MicroState) -> usize {
        0
    }

    fn execute(
        &self,
        worker: &mut E::Worker,
        ws: &mut MicroState,
        _ty: usize,
    ) -> Result<(), AbortReason> {
        let t = self.table();
        let mut tx = worker.begin(TxnProfile::ReadWrite);
        for _ in 0..self.cfg.reads {
            let row = ws.rng.random_range(0..self.cfg.rows);
            ws.key.reset().u64(row);
            let mut snapshot: u64 = 0;
            let found = tx.read(t, ws.key.as_bytes(), &mut |v| {
                snapshot = u64::from_le_bytes(v[0..8].try_into().unwrap());
            });
            match found {
                Ok(true) => {}
                Ok(false) => continue,
                Err(r) => {
                    tx.abort();
                    return Err(r);
                }
            }
            if ws.rng.random_bool(self.cfg.write_ratio) {
                let mut value = vec![0u8; ROW_BYTES];
                value[0..8].copy_from_slice(&snapshot.wrapping_add(1).to_le_bytes());
                if let Err(r) = tx.update(t, ws.key.as_bytes(), &value) {
                    tx.abort();
                    return Err(r);
                }
            }
        }
        tx.commit()
    }
}
