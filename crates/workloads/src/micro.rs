//! The §4.2 microbenchmark (Fig. 1).
//!
//! "A single transaction that randomly picks a subset of the Stock table
//! to read and a smaller fraction of it to update. The purpose is to
//! create read-write conflicts." Sweeping the write/read ratio from
//! 10⁻³ to 10⁻¹ at read-set sizes 1K and 10K reproduces Fig. 1.

use std::sync::OnceLock;

use ermia_common::{AbortReason, KeyWriter, TableId};
use rand::rngs::StdRng;
use rand::Rng;

use crate::driver::Workload;
use crate::engine::{Engine, EngineTxn, EngineWorker, TxnProfile};
use crate::rng::worker_rng;

/// Row payload size (a TPC-C stock row is ~300 B).
const ROW_BYTES: usize = 300;

/// Configuration for one microbenchmark point.
#[derive(Clone, Debug)]
pub struct MicroConfig {
    /// Table cardinality (the paper uses the TPC-C Stock table: 100k ×
    /// warehouses).
    pub rows: u64,
    /// Records read per transaction (1 000 / 10 000 in Fig. 1).
    pub reads: usize,
    /// Fraction of read records that are also updated (x-axis).
    pub write_ratio: f64,
}

impl Default for MicroConfig {
    fn default() -> MicroConfig {
        MicroConfig { rows: 100_000, reads: 1_000, write_ratio: 0.01 }
    }
}

/// The microbenchmark workload.
pub struct MicroWorkload {
    pub cfg: MicroConfig,
    table: OnceLock<TableId>,
}

impl MicroWorkload {
    pub fn new(cfg: MicroConfig) -> MicroWorkload {
        MicroWorkload { cfg, table: OnceLock::new() }
    }

    fn table(&self) -> TableId {
        *self.table.get().expect("load() must run first")
    }
}

pub struct MicroState {
    rng: StdRng,
    key: KeyWriter,
}

/// Configuration of the partition-aware microbenchmark variant.
#[derive(Clone, Debug)]
pub struct PartMicroConfig {
    /// Number of key-space partitions; keys are `(partition: u32 BE,
    /// row: u64 BE)` so a 4-byte hash prefix shards whole partitions.
    /// Partition prefixes are chosen so partition `i` lands on shard
    /// `i % shards` of a `shards`-way engine (see
    /// [`ermia::shard_of_key`]) — `cross_pct` then translates directly
    /// into the cross-shard transaction fraction.
    pub partitions: u32,
    /// Shard count of the engine under test (1 for the unsharded
    /// baseline).
    pub shards: usize,
    pub rows_per_partition: u64,
    /// Records read per transaction; the first read is always updated,
    /// so every transaction writes its home partition.
    pub reads: usize,
    /// Fraction of the remaining reads that are also updated.
    pub write_ratio: f64,
    /// Percent (0–100) of transactions that also read **and update**
    /// one row of a partition on a *different shard* — a cross-shard
    /// two-phase commit on a sharded engine. Ignored when `shards == 1`.
    pub cross_pct: u32,
}

/// The microbenchmark with a partitioned key space: workers stick to a
/// home partition and a configurable fraction of transactions touch a
/// second partition on another shard. The sharded-scaling series sweeps
/// `cross_pct` over the paper's TPC-C cross-partition rates (0/1/15%).
pub struct PartMicroWorkload {
    pub cfg: PartMicroConfig,
    table: OnceLock<TableId>,
    /// Partition id → key prefix, precomputed so partition `i` hashes
    /// to shard `i % shards`.
    prefixes: Vec<u32>,
}

impl PartMicroWorkload {
    pub fn new(cfg: PartMicroConfig) -> PartMicroWorkload {
        assert!(cfg.partitions >= 1 && cfg.shards >= 1 && cfg.reads >= 1);
        let prefixes = (0..cfg.partitions)
            .map(|i| {
                let want = i as usize % cfg.shards;
                // The (i / shards)-th distinct u32 hashing to the target
                // shard, so same-shard partitions get distinct prefixes.
                (0u32..)
                    .filter(|p| ermia::shard_of_key(&p.to_be_bytes(), cfg.shards) == want)
                    .nth(i as usize / cfg.shards)
                    .expect("u32 space covers every shard")
            })
            .collect();
        PartMicroWorkload { cfg, table: OnceLock::new(), prefixes }
    }

    fn table(&self) -> TableId {
        *self.table.get().expect("load() must run first")
    }

    fn key<'k>(&self, kw: &'k mut KeyWriter, partition: u32, row: u64) -> &'k [u8] {
        kw.reset().u32(self.prefixes[partition as usize]).u64(row).as_bytes()
    }
}

pub struct PartMicroState {
    rng: StdRng,
    key: KeyWriter,
    home: u32,
}

impl<E: Engine> Workload<E> for PartMicroWorkload {
    type WorkerState = PartMicroState;

    fn types(&self) -> Vec<&'static str> {
        vec!["ReadUpdate"]
    }

    fn load(&self, engine: &E) {
        let t = engine.create_table("micro.stock_part");
        let _ = self.table.set(t);
        let mut worker = engine.register_worker();
        let mut rng = worker_rng(0xFEED);
        let payload: Vec<u8> = (0..ROW_BYTES).map(|i| i as u8).collect();
        let mut key = KeyWriter::new();
        for partition in 0..self.cfg.partitions {
            let mut row = 0;
            while row < self.cfg.rows_per_partition {
                let mut tx = worker.begin(TxnProfile::ReadWrite);
                let hi = (row + 1_000).min(self.cfg.rows_per_partition);
                for r in row..hi {
                    let mut value = payload.clone();
                    value[0..8].copy_from_slice(&rng.random::<u64>().to_le_bytes());
                    let k = self.key(&mut key, partition, r);
                    tx.insert(t, k, &value).expect("load insert");
                }
                tx.commit().expect("load commit");
                row = hi;
            }
        }
    }

    fn worker_state(&self, worker_id: usize, _nthreads: usize) -> PartMicroState {
        PartMicroState {
            rng: worker_rng(worker_id as u64),
            key: KeyWriter::new(),
            home: worker_id as u32 % self.cfg.partitions,
        }
    }

    fn next_type(&self, _ws: &mut PartMicroState) -> usize {
        0
    }

    fn execute(
        &self,
        worker: &mut E::Worker,
        ws: &mut PartMicroState,
        _ty: usize,
    ) -> Result<(), AbortReason> {
        let t = self.table();
        let cfg = &self.cfg;
        // Decide up front whether this transaction crosses shards: pick
        // a partition whose home shard differs from ours.
        let remote: Option<u32> = if cfg.shards > 1
            && cfg.cross_pct > 0
            && ws.rng.random_range(0u32..100) < cfg.cross_pct
        {
            let home_shard = ws.home as usize % cfg.shards;
            let step = 1 + ws.rng.random_range(0..cfg.partitions.saturating_sub(1).max(1));
            (0..cfg.partitions)
                .map(|i| (ws.home + step + i) % cfg.partitions)
                .find(|&p| p as usize % cfg.shards != home_shard)
        } else {
            None
        };

        let mut tx = worker.begin(TxnProfile::ReadWrite);
        let rmw = |tx: &mut <E::Worker as crate::engine::EngineWorker>::Txn<'_>,
                       ws: &mut PartMicroState,
                       partition: u32,
                       write: bool|
         -> Result<(), AbortReason> {
            let row = ws.rng.random_range(0..cfg.rows_per_partition);
            self.key(&mut ws.key, partition, row);
            let mut snapshot: u64 = 0;
            let found = tx.read(t, ws.key.as_bytes(), &mut |v| {
                snapshot = u64::from_le_bytes(v[0..8].try_into().unwrap());
            })?;
            if write && found {
                let mut value = vec![0u8; ROW_BYTES];
                value[0..8].copy_from_slice(&snapshot.wrapping_add(1).to_le_bytes());
                tx.update(t, ws.key.as_bytes(), &value)?;
            }
            Ok(())
        };
        let body = (|tx: &mut <E::Worker as crate::engine::EngineWorker>::Txn<'_>, ws: &mut PartMicroState| {
            // First access always writes home, so a cross transaction
            // has two writing participants (a real two-phase commit).
            rmw(tx, ws, ws.home, true)?;
            for _ in 1..cfg.reads {
                let write = ws.rng.random_bool(cfg.write_ratio);
                rmw(tx, ws, ws.home, write)?;
            }
            if let Some(r) = remote {
                rmw(tx, ws, r, true)?;
            }
            Ok(())
        })(&mut tx, ws);
        match body {
            Ok(()) => tx.commit(),
            Err(r) => {
                tx.abort();
                Err(r)
            }
        }
    }
}

impl<E: Engine> Workload<E> for MicroWorkload {
    type WorkerState = MicroState;

    fn types(&self) -> Vec<&'static str> {
        vec!["ReadUpdate"]
    }

    fn load(&self, engine: &E) {
        let t = engine.create_table("micro.stock");
        let _ = self.table.set(t);
        let mut worker = engine.register_worker();
        let mut rng = worker_rng(0xFEED);
        let payload: Vec<u8> = (0..ROW_BYTES).map(|i| i as u8).collect();
        let mut key = KeyWriter::new();
        // Batch the load, 1000 rows per transaction.
        let mut row = 0;
        while row < self.cfg.rows {
            let mut tx = worker.begin(TxnProfile::ReadWrite);
            let hi = (row + 1_000).min(self.cfg.rows);
            for r in row..hi {
                key.reset().u64(r);
                let mut value = payload.clone();
                value[0..8].copy_from_slice(&rng.random::<u64>().to_le_bytes());
                tx.insert(t, key.as_bytes(), &value).expect("load insert");
            }
            tx.commit().expect("load commit");
            row = hi;
        }
    }

    fn worker_state(&self, worker_id: usize, _nthreads: usize) -> MicroState {
        MicroState { rng: worker_rng(worker_id as u64), key: KeyWriter::new() }
    }

    fn next_type(&self, _ws: &mut MicroState) -> usize {
        0
    }

    fn execute(
        &self,
        worker: &mut E::Worker,
        ws: &mut MicroState,
        _ty: usize,
    ) -> Result<(), AbortReason> {
        let t = self.table();
        let mut tx = worker.begin(TxnProfile::ReadWrite);
        for _ in 0..self.cfg.reads {
            let row = ws.rng.random_range(0..self.cfg.rows);
            ws.key.reset().u64(row);
            let mut snapshot: u64 = 0;
            let found = tx.read(t, ws.key.as_bytes(), &mut |v| {
                snapshot = u64::from_le_bytes(v[0..8].try_into().unwrap());
            });
            match found {
                Ok(true) => {}
                Ok(false) => continue,
                Err(r) => {
                    tx.abort();
                    return Err(r);
                }
            }
            if ws.rng.random_bool(self.cfg.write_ratio) {
                let mut value = vec![0u8; ROW_BYTES];
                value[0..8].copy_from_slice(&snapshot.wrapping_add(1).to_le_bytes());
                if let Err(r) = tx.update(t, ws.key.as_bytes(), &value) {
                    tx.abort();
                    return Err(r);
                }
            }
        }
        tx.commit()
    }
}
