//! Workload randomness: TPC-C NURand, skew, benchmark strings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded per-worker RNG (deterministic given worker id for
/// reproducible loads).
pub fn worker_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0x5DEECE66D)
}

/// Uniform in `[lo, hi]` inclusive.
#[inline]
pub fn uniform(rng: &mut StdRng, lo: u64, hi: u64) -> u64 {
    rng.random_range(lo..=hi)
}

/// TPC-C NURand(A, x, y) non-uniform distribution (spec §2.1.6).
/// The C constants are fixed per run; the spec's run-to-run constraints
/// don't affect benchmark behaviour.
#[inline]
pub fn nurand(rng: &mut StdRng, a: u64, x: u64, y: u64) -> u64 {
    const C: u64 = 42;
    ((uniform(rng, 0, a) | uniform(rng, x, y)) + C) % (y - x + 1) + x
}

/// An 80-20 skewed pick over `[0, n)`: 80% of draws land in the first
/// 20% of the domain (the Fig. 8 partition-skew experiment).
#[inline]
pub fn skew_80_20(rng: &mut StdRng, n: u64) -> u64 {
    debug_assert!(n > 0);
    let hot = (n / 5).max(1);
    if rng.random_range(0..100) < 80 {
        rng.random_range(0..hot)
    } else if hot < n {
        rng.random_range(hot..n)
    } else {
        0
    }
}

/// Alphanumeric string of length in `[lo, hi]`.
pub fn astring(rng: &mut StdRng, lo: usize, hi: usize) -> String {
    const CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    let len = rng.random_range(lo..=hi);
    (0..len).map(|_| CHARS[rng.random_range(0..CHARS.len())] as char).collect()
}

/// TPC-C customer last name from a number 0..=999 (spec §4.3.2.3).
pub fn last_name(num: u64) -> String {
    const SYLLABLES: [&str; 10] =
        ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"];
    let mut s = String::new();
    s.push_str(SYLLABLES[(num / 100 % 10) as usize]);
    s.push_str(SYLLABLES[(num / 10 % 10) as usize]);
    s.push_str(SYLLABLES[(num % 10) as usize]);
    s
}

/// NURand customer-last-name pick (A = 255 over 0..=999).
pub fn rand_last_name(rng: &mut StdRng) -> String {
    last_name(nurand(rng, 255, 0, 999))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nurand_stays_in_range() {
        let mut rng = worker_rng(1);
        for _ in 0..10_000 {
            let v = nurand(&mut rng, 1023, 1, 3000);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn skew_is_actually_skewed() {
        let mut rng = worker_rng(2);
        let n = 100;
        let hot_hits =
            (0..10_000).filter(|_| skew_80_20(&mut rng, n) < n / 5).count();
        assert!(hot_hits > 7_000, "expected ~80% hot hits, got {hot_hits}");
    }

    #[test]
    fn last_name_examples() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
    }

    #[test]
    fn astring_length_bounds() {
        let mut rng = worker_rng(3);
        for _ in 0..100 {
            let s = astring(&mut rng, 8, 16);
            assert!((8..=16).contains(&s.len()));
        }
    }
}
