//! The multithreaded benchmark driver.
//!
//! Mirrors the paper's methodology (§4.1/§4.2): load the data fresh,
//! run a transaction mix for a fixed duration on N worker threads, and
//! report throughput plus per-transaction-type commit counts, abort
//! counts (with reasons) and latencies.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use ermia_common::AbortReason;
use ermia_telemetry::Histogram;

use crate::engine::Engine;

/// A workload: schema + load + a transaction mix.
pub trait Workload<E: Engine>: Send + Sync {
    /// Per-worker mutable state (RNG, home partition, scratch).
    type WorkerState: Send;

    /// Names of the transaction types (indexes into stats).
    fn types(&self) -> Vec<&'static str>;

    /// Create schema and load initial data ("load from scratch on a
    /// pre-faulted memory pool", §4.2).
    fn load(&self, engine: &E);

    /// Build per-worker state.
    fn worker_state(&self, worker_id: usize, nthreads: usize) -> Self::WorkerState;

    /// Pick the next transaction type for this worker.
    fn next_type(&self, ws: &mut Self::WorkerState) -> usize;

    /// Execute one transaction of type `ty` to commit or abort.
    fn execute(
        &self,
        engine_worker: &mut E::Worker,
        ws: &mut Self::WorkerState,
        ty: usize,
    ) -> Result<(), AbortReason>;
}

/// Run configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    pub threads: usize,
    pub duration: Duration,
}

impl RunConfig {
    pub fn new(threads: usize, duration: Duration) -> RunConfig {
        RunConfig { threads, duration }
    }
}

/// Latency histogram for the driver tables: a façade over the shared
/// telemetry [`Histogram`] (the log2-bucket implementation this one
/// originated). The wrapper keeps the driver's historical f64-nanosecond
/// percentile surface so figure JSON stays byte-identical; the bucketing
/// and interpolation are the shared code.
#[derive(Clone, Default)]
pub struct LatencyHistogram(Histogram);

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LatencyHistogram(count={})", self.0.count())
    }
}

impl LatencyHistogram {
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.0.record(ns);
    }

    pub fn count(&self) -> u64 {
        self.0.count()
    }

    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.0.merge(&other.0);
    }

    /// Tail shorthand used by the SLO tables: the 99.9th percentile in
    /// nanoseconds. Server-side reply tails live here — one stalled
    /// group-commit batch in a thousand shows up at p99.9 long before it
    /// moves p99.
    pub fn p999_ns(&self) -> f64 {
        self.percentile_ns(99.9)
    }

    /// The `p`-th percentile (0..=100) in nanoseconds, interpolated
    /// within the landing bucket; 0.0 when empty.
    pub fn percentile_ns(&self, p: f64) -> f64 {
        self.0.percentile(p)
    }
}

/// Per-transaction-type statistics.
#[derive(Clone, Debug, Default)]
pub struct TypeStats {
    pub name: &'static str,
    pub commits: u64,
    pub aborts: u64,
    pub abort_reasons: HashMap<&'static str, u64>,
    pub latency_sum_ns: u64,
    pub latency_max_ns: u64,
    /// Committed-execution latency distribution (p50/p99 for the
    /// scaling curves; avg/max above stay for the older figures).
    pub latency: LatencyHistogram,
}

impl TypeStats {
    /// Executions = commits + aborts.
    pub fn executions(&self) -> u64 {
        self.commits + self.aborts
    }

    /// Abort ratio in percent (of executions).
    pub fn abort_ratio(&self) -> f64 {
        if self.executions() == 0 {
            0.0
        } else {
            100.0 * self.aborts as f64 / self.executions() as f64
        }
    }

    /// Mean committed-execution latency in milliseconds.
    pub fn latency_avg_ms(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.latency_sum_ns as f64 / self.commits as f64 / 1e6
        }
    }

    /// `p`-th percentile committed latency in milliseconds.
    pub fn latency_pct_ms(&self, p: f64) -> f64 {
        self.latency.percentile_ns(p) / 1e6
    }

    /// 99.9th-percentile committed latency in milliseconds (the SLO
    /// tail every bench table reports alongside p50/p99).
    pub fn latency_p999_ms(&self) -> f64 {
        self.latency.p999_ns() / 1e6
    }

    /// Abort counts keyed by reason, in [`AbortReason::ALL`] order and
    /// zero-filled — a stable shape for tables and JSON regardless of
    /// which reasons actually fired.
    pub fn abort_breakdown(&self) -> Vec<(&'static str, u64)> {
        AbortReason::ALL
            .iter()
            .map(|r| (r.label(), self.abort_reasons.get(r.label()).copied().unwrap_or(0)))
            .collect()
    }

    fn merge(&mut self, other: &TypeStats) {
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.latency_sum_ns += other.latency_sum_ns;
        self.latency_max_ns = self.latency_max_ns.max(other.latency_max_ns);
        self.latency.merge(&other.latency);
        for (k, v) in &other.abort_reasons {
            *self.abort_reasons.entry(k).or_insert(0) += v;
        }
    }
}

/// Aggregated result of one run.
#[derive(Clone, Debug)]
pub struct BenchResult {
    pub engine: &'static str,
    pub threads: usize,
    pub duration: Duration,
    pub per_type: Vec<TypeStats>,
}

impl BenchResult {
    pub fn total_commits(&self) -> u64 {
        self.per_type.iter().map(|t| t.commits).sum()
    }

    pub fn total_aborts(&self) -> u64 {
        self.per_type.iter().map(|t| t.aborts).sum()
    }

    /// Overall committed throughput in transactions per second.
    pub fn tps(&self) -> f64 {
        self.total_commits() as f64 / self.duration.as_secs_f64()
    }

    /// Committed throughput of one transaction type.
    pub fn tps_of(&self, name: &str) -> f64 {
        self.per_type
            .iter()
            .find(|t| t.name == name)
            .map_or(0.0, |t| t.commits as f64 / self.duration.as_secs_f64())
    }

    /// Stats of one type.
    pub fn stats_of(&self, name: &str) -> Option<&TypeStats> {
        self.per_type.iter().find(|t| t.name == name)
    }
}

/// Load `workload` into `engine` and run it for the configured duration.
pub fn run<E: Engine, W: Workload<E>>(engine: &E, workload: &W, cfg: &RunConfig) -> BenchResult {
    workload.load(engine);
    run_loaded(engine, workload, cfg)
}

/// Run against an already-loaded engine (parameter sweeps reuse loads
/// only when the workload says it is safe; most figures reload).
pub fn run_loaded<E: Engine, W: Workload<E>>(
    engine: &E,
    workload: &W,
    cfg: &RunConfig,
) -> BenchResult {
    let names = workload.types();
    let ntypes = names.len();
    let stop = AtomicBool::new(false);
    let start_barrier = Barrier::new(cfg.threads + 1);

    let mut per_worker: Vec<Vec<TypeStats>> = Vec::new();
    crossbeam::scope(|s| {
        let mut handles = Vec::new();
        for worker_id in 0..cfg.threads {
            let engine = engine.clone();
            let stop = &stop;
            let start_barrier = &start_barrier;
            let names = names.clone();
            handles.push(s.spawn(move |_| {
                let mut eworker = engine.register_worker();
                let mut ws = workload.worker_state(worker_id, cfg.threads);
                let mut stats: Vec<TypeStats> = names
                    .iter()
                    .map(|&name| TypeStats { name, ..TypeStats::default() })
                    .collect();
                start_barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    let ty = workload.next_type(&mut ws);
                    debug_assert!(ty < ntypes);
                    let t0 = Instant::now();
                    let outcome = workload.execute(&mut eworker, &mut ws, ty);
                    let elapsed = t0.elapsed().as_nanos() as u64;
                    let st = &mut stats[ty];
                    match outcome {
                        Ok(()) => {
                            st.commits += 1;
                            st.latency_sum_ns += elapsed;
                            st.latency_max_ns = st.latency_max_ns.max(elapsed);
                            st.latency.record(elapsed);
                        }
                        Err(reason) => {
                            st.aborts += 1;
                            *st.abort_reasons.entry(reason.label()).or_insert(0) += 1;
                        }
                    }
                }
                stats
            }));
        }
        start_barrier.wait();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            per_worker.push(h.join().expect("worker panicked"));
        }
    })
    .expect("driver scope");

    let mut per_type: Vec<TypeStats> =
        names.iter().map(|&name| TypeStats { name, ..TypeStats::default() }).collect();
    for worker in &per_worker {
        for (agg, w) in per_type.iter_mut().zip(worker) {
            agg.merge(w);
        }
    }
    BenchResult { engine: engine.name(), threads: cfg.threads, duration: cfg.duration, per_type }
}

/// Render a result as an aligned table (used by the figure binaries).
pub fn format_result(r: &BenchResult) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} | {} threads | {:.1}s | {:.0} tps total ({} commits, {} aborts)",
        r.engine,
        r.threads,
        r.duration.as_secs_f64(),
        r.tps(),
        r.total_commits(),
        r.total_aborts()
    );
    let _ = writeln!(
        out,
        "  {:<14} {:>10} {:>10} {:>9} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "type",
        "commits",
        "aborts",
        "abort%",
        "avg-lat(ms)",
        "p50-lat(ms)",
        "p99-lat(ms)",
        "p99.9-lat(ms)",
        "max-lat(ms)"
    );
    for t in &r.per_type {
        let _ = writeln!(
            out,
            "  {:<14} {:>10} {:>10} {:>8.1}% {:>12.3} {:>12.3} {:>12.3} {:>14.3} {:>12.3}",
            t.name,
            t.commits,
            t.aborts,
            t.abort_ratio(),
            t.latency_avg_ms(),
            t.latency_pct_ms(50.0),
            t.latency_pct_ms(99.0),
            t.latency_p999_ms(),
            t.latency_max_ns as f64 / 1e6
        );
        if t.aborts > 0 {
            let mut reasons = String::new();
            for (label, n) in t.abort_breakdown() {
                if n > 0 {
                    let _ = write!(reasons, " {label}={n}");
                }
            }
            let _ = writeln!(out, "  {:<14}   aborts by reason:{}", "", reasons);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_stats_arithmetic() {
        let mut s = TypeStats { name: "x", commits: 8, aborts: 2, ..TypeStats::default() };
        s.latency_sum_ns = 8_000_000; // 1 ms avg
        s.latency_max_ns = 3_000_000;
        assert_eq!(s.executions(), 10);
        assert!((s.abort_ratio() - 20.0).abs() < 1e-9);
        assert!((s.latency_avg_ms() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn type_stats_merge_accumulates() {
        let mut a = TypeStats { name: "x", commits: 1, aborts: 1, ..TypeStats::default() };
        a.abort_reasons.insert("ww-conflict", 1);
        let mut b = TypeStats { name: "x", commits: 2, aborts: 3, ..TypeStats::default() };
        b.abort_reasons.insert("ww-conflict", 2);
        b.abort_reasons.insert("phantom", 1);
        b.latency_max_ns = 99;
        a.merge(&b);
        assert_eq!(a.commits, 3);
        assert_eq!(a.aborts, 4);
        assert_eq!(a.abort_reasons["ww-conflict"], 3);
        assert_eq!(a.abort_reasons["phantom"], 1);
        assert_eq!(a.latency_max_ns, 99);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let s = TypeStats::default();
        assert_eq!(s.abort_ratio(), 0.0);
        assert_eq!(s.latency_avg_ms(), 0.0);
        assert_eq!(s.latency_pct_ms(50.0), 0.0);
    }

    #[test]
    fn histogram_percentiles_land_in_the_right_bucket() {
        let mut h = LatencyHistogram::default();
        // 90 samples around 1µs, 10 around 1ms: p50 must sit in the
        // microsecond bucket, p99 in the millisecond bucket.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile_ns(50.0);
        assert!((512.0..2048.0).contains(&p50), "p50 {p50} outside the ~1µs bucket");
        let p99 = h.percentile_ns(99.0);
        assert!((524_288.0..2_097_152.0).contains(&p99), "p99 {p99} outside the ~1ms bucket");
        // Percentiles are monotone and bounded by the top bucket edge.
        assert!(h.percentile_ns(10.0) <= p50 && p50 <= p99);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut both = LatencyHistogram::default();
        for ns in [100u64, 5_000, 70_000, 1_000_000] {
            a.record(ns);
            both.record(ns);
        }
        for ns in [300u64, 9_000, 2_000_000] {
            b.record(ns);
            both.record(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        for p in [1.0, 25.0, 50.0, 75.0, 99.0] {
            assert_eq!(a.percentile_ns(p), both.percentile_ns(p));
        }
    }

    #[test]
    fn p999_separates_the_slo_tail_from_p99() {
        let mut h = LatencyHistogram::default();
        // 9989 fast samples, 11 slow ones (~0.1%): p99 stays in the fast
        // bucket while p99.9 lands in the slow tail.
        for _ in 0..9989 {
            h.record(10_000); // ~10µs
        }
        for _ in 0..11 {
            h.record(50_000_000); // 50ms stall
        }
        let p99 = h.percentile_ns(99.0);
        let p999 = h.p999_ns();
        assert!(p99 < 20_000.0, "p99 {p99} should still sit in the fast bucket");
        assert!(p999 >= 8_192.0 * 1024.0, "p99.9 {p999} must reach the stall tail");
        assert!(p999 >= p99);
    }

    #[test]
    fn histogram_zero_latency_is_clamped_not_panicking() {
        let mut h = LatencyHistogram::default();
        h.record(0); // leading_zeros(0) would index out of range unclamped
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert!(h.percentile_ns(100.0) >= (1u64 << 63) as f64);
    }
}
