//! TPC-E-hybrid: TPC-E plus the AssetEval read-mostly transaction
//! (paper §4.2, Figs. 6, 9; Table 1).
//!
//! AssetEval evaluates the aggregate assets of a contiguous group of
//! customer accounts — joining HoldingSummary and LastTrade per account —
//! and inserts the result into the AssetHistory table. The vast majority
//! of its contention is with TradeResult (HoldingSummary writes) and
//! MarketFeed (LastTrade writes). The account-group size, as a
//! percentage of the CustomerAccount table, scales its footprint (the
//! Fig. 6 x-axis).
//!
//! Revised mix (§4.2): BrokerVolume 4.9%, CustomerPosition 8%,
//! MarketFeed 1%, MarketWatch 13%, SecurityDetail 14%, TradeLookup 8%,
//! TradeOrder 10.1%, TradeResult 10%, TradeStatus 9%, TradeUpdate 2%,
//! AssetEval 20%.

use ermia_common::AbortReason;

use crate::driver::Workload;
use crate::engine::{Engine, EngineTxn, EngineWorker, TxnProfile};
use crate::rng::uniform;
use crate::tpce::{
    dispatch, k_asset_history, position_of_account, TpceConfig, TpceState, TpceTables,
    TpceWorkload, MARKET_FEED, TRADE_ORDER, TRADE_RESULT, TRADE_UPDATE,
};

/// Type index of AssetEval in the hybrid mix (base types keep 0..=9).
pub const ASSET_EVAL: usize = 10;

pub struct TpceHybridWorkload {
    pub base: TpceWorkload,
    /// Account-group size as a percentage of the CustomerAccount table.
    pub asset_eval_pct: u32,
}

impl TpceHybridWorkload {
    pub fn new(cfg: TpceConfig, asset_eval_pct: u32) -> TpceHybridWorkload {
        assert!((1..=100).contains(&asset_eval_pct));
        TpceHybridWorkload { base: TpceWorkload::new(cfg), asset_eval_pct }
    }
}

/// The AssetEval transaction body.
pub fn asset_eval<T: EngineTxn>(
    tx: &mut T,
    t: &TpceTables,
    cfg: &TpceConfig,
    ws: &mut TpceState,
    size_pct: u32,
) -> Result<(), AbortReason> {
    let total = cfg.total_accounts();
    let span = (total * size_pct as u64 / 100).max(1);
    let start = if span >= total { 0 } else { uniform(&mut ws.rng, 0, total - span) };

    let mut group_total = 0.0;
    for ca in start..start + span {
        group_total += position_of_account(tx, t, ws, ca)?;
    }
    // The single write: record the valuation.
    ws.seq += 1;
    tx.insert(
        t.asset_history,
        k_asset_history(&mut ws.kw, start, ws.seq),
        &group_total.to_le_bytes(),
    )?;
    Ok(())
}

impl<E: Engine> Workload<E> for TpceHybridWorkload {
    type WorkerState = TpceState;

    fn types(&self) -> Vec<&'static str> {
        vec![
            "BrokerVolume",
            "CustomerPosition",
            "MarketFeed",
            "MarketWatch",
            "SecurityDetail",
            "TradeLookup",
            "TradeOrder",
            "TradeResult",
            "TradeStatus",
            "TradeUpdate",
            "AssetEval",
        ]
    }

    fn load(&self, engine: &E) {
        self.base.load_data(engine);
    }

    fn worker_state(&self, worker_id: usize, _nthreads: usize) -> TpceState {
        self.base.make_state(worker_id)
    }

    fn next_type(&self, ws: &mut TpceState) -> usize {
        // Per-mille: 49 / 80 / 10 / 130 / 140 / 80 / 101 / 100 / 90 / 20
        // / 200 (§4.2 revised mix).
        match uniform(&mut ws.rng, 1, 1000) {
            1..=49 => 0,      // BrokerVolume
            50..=129 => 1,    // CustomerPosition
            130..=139 => 2,   // MarketFeed
            140..=269 => 3,   // MarketWatch
            270..=409 => 4,   // SecurityDetail
            410..=489 => 5,   // TradeLookup
            490..=590 => 6,   // TradeOrder
            591..=690 => 7,   // TradeResult
            691..=780 => 8,   // TradeStatus
            781..=800 => 9,   // TradeUpdate
            _ => ASSET_EVAL,  // 20%
        }
    }

    fn execute(
        &self,
        worker: &mut E::Worker,
        ws: &mut TpceState,
        ty: usize,
    ) -> Result<(), AbortReason> {
        let t = *self.base.tables();
        let cfg = &self.base.cfg;
        let profile = match ty {
            // AssetEval inserts into AssetHistory: read-mostly, but a
            // writer — snapshots cannot save it under OCC.
            MARKET_FEED | TRADE_ORDER | TRADE_RESULT | TRADE_UPDATE | ASSET_EVAL => {
                TxnProfile::ReadWrite
            }
            _ => TxnProfile::ReadOnly,
        };
        let mut tx = worker.begin(profile);
        let body = if ty == ASSET_EVAL {
            asset_eval(&mut tx, &t, cfg, ws, self.asset_eval_pct)
        } else {
            dispatch(&mut tx, &t, cfg, ws, ty)
        };
        match body {
            Ok(()) => tx.commit(),
            Err(r) => {
                tx.abort();
                Err(r)
            }
        }
    }
}
