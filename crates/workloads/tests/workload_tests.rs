//! Cross-engine workload tests: every workload runs to completion on
//! ERMIA-SI, ERMIA-SSN, and Silo-OCC, commits work, and (for TPC-C)
//! leaves the database consistent.

use std::time::Duration;

use ermia_workloads::driver::{run, RunConfig};
use ermia_workloads::micro::{MicroConfig, MicroWorkload, PartMicroConfig, PartMicroWorkload};
use ermia_workloads::tpcc::{check_consistency, TpccConfig, TpccWorkload};
use ermia_workloads::tpcc_hybrid::TpccHybridWorkload;
use ermia_workloads::tpce::{TpceConfig, TpceWorkload};
use ermia_workloads::tpce_hybrid::TpceHybridWorkload;
use ermia_workloads::{Engine, ErmiaEngine, ShardedErmiaEngine, SiloEngine};

fn ermia_si() -> ErmiaEngine {
    ErmiaEngine::si(ermia::Database::open(ermia::DbConfig::in_memory()).unwrap())
}

fn ermia_sharded(shards: usize) -> ShardedErmiaEngine {
    ShardedErmiaEngine::si(ermia::ShardedDb::open(ermia::DbConfig::in_memory(), shards).unwrap())
}

fn ermia_ssn() -> ErmiaEngine {
    ErmiaEngine::ssn(ermia::Database::open(ermia::DbConfig::in_memory()).unwrap())
}

fn silo() -> SiloEngine {
    SiloEngine::new(silo_occ::SiloDb::open(silo_occ::SiloConfig {
        epoch_interval: Duration::from_millis(2),
        snapshot_interval: Duration::from_millis(5),
        snapshots: true,
    }))
}

fn short() -> RunConfig {
    RunConfig::new(2, Duration::from_millis(400))
}

fn micro_on<E: Engine>(engine: E) {
    let wl = MicroWorkload::new(MicroConfig { rows: 2_000, reads: 50, write_ratio: 0.05 });
    let r = run(&engine, &wl, &short());
    assert!(r.total_commits() > 0, "{}: no commits", engine.name());
}

#[test]
fn micro_runs_on_all_engines() {
    micro_on(ermia_si());
    micro_on(ermia_ssn());
    micro_on(silo());
}

fn tpcc_on<E: Engine>(engine: E) {
    let wl = TpccWorkload::new(TpccConfig::small(2));
    let r = run(&engine, &wl, &short());
    assert!(r.total_commits() > 50, "{}: too few commits: {}", engine.name(), r.total_commits());
    // Every transaction type must have executed.
    for ty in &r.per_type {
        assert!(ty.executions() > 0, "{}: {} never ran", engine.name(), ty.name);
    }
    check_consistency(&engine, &wl);
}

#[test]
fn tpcc_runs_and_stays_consistent_ermia_si() {
    tpcc_on(ermia_si());
}

#[test]
fn tpcc_runs_and_stays_consistent_ermia_ssn() {
    tpcc_on(ermia_ssn());
}

#[test]
fn tpcc_runs_and_stays_consistent_silo() {
    tpcc_on(silo());
}

#[test]
fn tpcc_runs_and_stays_consistent_sharded() {
    // 3 shards, 2 warehouses: cross-partition NewOrder/Payment become
    // cross-shard two-phase commits; consistency conditions must still
    // hold over the merged namespace.
    tpcc_on(ermia_sharded(3));
}

#[test]
fn part_micro_crosses_shards_and_commits() {
    let engine = ermia_sharded(2);
    let wl = PartMicroWorkload::new(PartMicroConfig {
        partitions: 4,
        shards: 2,
        rows_per_partition: 500,
        reads: 10,
        write_ratio: 0.2,
        cross_pct: 50,
    });
    let r = run(&engine, &wl, &short());
    assert!(r.total_commits() > 0, "no commits");
    // Half the transactions write two shards: 2PC must actually fire.
    let cross = engine.db.telemetry().render_prometheus();
    let line = cross
        .lines()
        .find(|l| l.starts_with("ermia_shard_cross_txns_total"))
        .expect("cross-shard counter exported");
    let n: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
    assert!(n > 0.0, "expected cross-shard commits, counter: {line}");
}

fn tpcc_hybrid_on<E: Engine>(engine: E) -> ermia_workloads::BenchResult {
    let wl = TpccHybridWorkload::new(TpccConfig::small(2), 20);
    let r = run(&engine, &wl, &short());
    assert!(r.total_commits() > 0, "{}: no commits", engine.name());
    check_consistency(&engine, &wl.base);
    r
}

#[test]
fn tpcc_hybrid_q2_commits_under_ermia() {
    let r = tpcc_hybrid_on(ermia_si());
    let q2 = r.stats_of("Q2*").unwrap();
    assert!(q2.executions() > 0, "Q2* never ran");
    assert!(q2.commits > 0, "ERMIA-SI must commit read-mostly Q2* transactions");
}

#[test]
fn tpcc_hybrid_runs_under_ssn_and_silo() {
    let r = tpcc_hybrid_on(ermia_ssn());
    assert!(r.stats_of("Q2*").unwrap().executions() > 0);
    let r = tpcc_hybrid_on(silo());
    assert!(r.stats_of("Q2*").unwrap().executions() > 0);
}

fn tpce_on<E: Engine>(engine: E) {
    let wl = TpceWorkload::new(TpceConfig::small());
    let r = run(&engine, &wl, &short());
    assert!(r.total_commits() > 50, "{}: too few commits: {}", engine.name(), r.total_commits());
}

#[test]
fn tpce_runs_on_all_engines() {
    tpce_on(ermia_si());
    tpce_on(ermia_ssn());
    tpce_on(silo());
}

#[test]
fn tpce_hybrid_asset_eval_commits_under_ermia() {
    let engine = ermia_si();
    let wl = TpceHybridWorkload::new(TpceConfig::small(), 10);
    let r = run(&engine, &wl, &short());
    let ae = r.stats_of("AssetEval").unwrap();
    assert!(ae.executions() > 0, "AssetEval never ran");
    assert!(ae.commits > 0, "ERMIA-SI must commit AssetEval");
}

#[test]
fn tpce_hybrid_runs_under_silo() {
    let engine = silo();
    let wl = TpceHybridWorkload::new(TpceConfig::small(), 10);
    let r = run(&engine, &wl, &short());
    assert!(r.stats_of("AssetEval").unwrap().executions() > 0);
    assert!(r.total_commits() > 0);
}

#[test]
fn driver_stats_are_coherent() {
    let engine = ermia_si();
    let wl = MicroWorkload::new(MicroConfig { rows: 500, reads: 10, write_ratio: 0.1 });
    let r = run(&engine, &wl, &RunConfig::new(2, Duration::from_millis(200)));
    for ty in &r.per_type {
        assert_eq!(ty.executions(), ty.commits + ty.aborts);
        let reason_total: u64 = ty.abort_reasons.values().sum();
        assert_eq!(reason_total, ty.aborts, "abort reasons must cover all aborts");
        if ty.commits > 0 {
            assert!(ty.latency_avg_ms() > 0.0);
            assert!(ty.latency_max_ns > 0);
        }
    }
    assert!(r.tps() > 0.0);
    // Driver counts match the engine's own counters (plus loader txns).
    let (engine_commits, _) = engine.txn_counts();
    assert!(engine_commits >= r.total_commits());
}
