//! Degraded-mode resume and poison/timeout-race regression tests.
//!
//! A poisoned log no longer forces a restart: `LogManager::resume`
//! re-probes the storage backend, papers the never-durable gap with
//! on-disk skip blocks, and re-arms a fresh flusher. These tests drive
//! the full cycle — poison under injected faults, failed resume while
//! the fault persists, successful resume after `FaultInjector::repair`,
//! post-resume commits — and then restart-recover the directory to prove
//! the durable history is exactly: acked-before-poison ++ acked-after-
//! resume, with the gap cleanly skipped.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ermia_common::{LogError, Oid, TableId};
use ermia_log::{
    FaultInjector, FaultPlan, FileBackend, LogConfig, LogManager, LogScanner, TxLogBuffer,
};

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ermia-resume-{}-{}-{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg_with(dir: PathBuf, injector: &FaultInjector) -> LogConfig {
    LogConfig {
        dir: Some(dir),
        segment_size: 4096,
        buffer_size: 64 << 10,
        fsync: true,
        flush_interval: Duration::from_micros(50),
        io_factory: Arc::new(injector.clone()),
        wait_durable_timeout: Duration::from_secs(5),
    }
}

/// Commit one single-update transaction; returns `(id, end_offset)` and
/// whether the durability wait succeeded.
fn commit_one(log: &LogManager, id: u64) -> std::io::Result<(u64, Result<(), LogError>)> {
    let mut tx = TxLogBuffer::new();
    let value = format!("value-{id:08}");
    tx.add_update(TableId(1), Oid(id as u32), &id.to_be_bytes(), value.as_bytes());
    let res = log.allocate(tx.block_len())?;
    let end = res.end_offset();
    let block = tx.serialize(res.lsn());
    res.fill(block);
    Ok((end, log.wait_durable(end)))
}

/// Restart path: reopen with the clean file backend and scan every Txn
/// block into id → payload.
fn recover(dir: PathBuf) -> HashMap<u64, Vec<u8>> {
    let cfg = LogConfig {
        dir: Some(dir),
        segment_size: 4096,
        buffer_size: 64 << 10,
        fsync: false,
        flush_interval: Duration::from_micros(50),
        io_factory: Arc::new(FileBackend),
        wait_durable_timeout: Duration::from_secs(5),
    };
    let log = LogManager::open(cfg).expect("reopen after faults");
    let mut scanner = LogScanner::new(log.segments(), 0);
    let mut out = HashMap::new();
    while let Some(block) = scanner.next_block().expect("scan") {
        for rec in block.records() {
            let id = u64::from_be_bytes(rec.key[..8].try_into().unwrap());
            out.insert(id, rec.value);
        }
    }
    out
}

/// The full degraded-mode story: ENOSPC poisons the log mid-workload,
/// resume fails while the disk is still full, succeeds once the operator
/// repairs it, post-resume commits are durable, and a later restart
/// recovers exactly the acknowledged history with the gap skipped.
#[test]
fn resume_after_enospc_restores_service_and_history() {
    let dir = tmpdir("enospc");
    let injector = FaultInjector::new(FaultPlan {
        enospc_after_bytes: Some(2048),
        ..FaultPlan::default()
    });
    let log = LogManager::open(cfg_with(dir.clone(), &injector)).unwrap();

    let mut acked_pre = Vec::new();
    let mut poisoned_end = None;
    for id in 0..1000 {
        match commit_one(&log, id) {
            Ok((_, Ok(()))) => acked_pre.push(id),
            Ok((end, Err(_))) => {
                poisoned_end = Some(end);
                break;
            }
            Err(_) => break,
        }
    }
    assert!(!acked_pre.is_empty(), "some commits must ack before the budget runs out");
    assert!(log.is_poisoned(), "ENOSPC must poison the log");
    assert!(log.allocate(64).is_err(), "poisoned log rejects allocations");

    // The disk is still full: resume's gap-skip writes (or probe fsync)
    // must fail and leave the log poisoned — resume is retryable.
    assert!(log.resume().is_err(), "resume must fail while the fault persists");
    assert!(log.is_poisoned());

    injector.repair();
    log.resume().expect("resume after repair");
    assert!(!log.is_poisoned());
    assert_eq!(log.stats().log_poisoned.load(Ordering::Acquire), 0);

    // A durability target inside the resume gap must keep failing even
    // though the watermark has moved past it: those bytes are skip
    // blocks now, not the commit.
    if let Some(end) = poisoned_end {
        assert!(
            matches!(log.wait_durable(end), Err(LogError::Poisoned { .. })),
            "in-gap durability targets must report Poisoned after resume"
        );
    }

    // Service is back: post-resume commits ack normally.
    let mut acked_post = Vec::new();
    for id in 1000..1040 {
        let (_, wait) = commit_one(&log, id).expect("allocate after resume");
        wait.expect("post-resume commits must become durable");
        acked_post.push(id);
    }
    drop(log);

    // Restart: recovery must see every acknowledged commit from both
    // sides of the degraded window and hop the skip-papered gap.
    let recovered = recover(dir.clone());
    for id in &acked_pre {
        assert!(recovered.contains_key(id), "pre-poison acked commit {id} lost");
    }
    for id in &acked_post {
        assert!(recovered.contains_key(id), "post-resume acked commit {id} lost");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resume on a healthy log is a no-op.
#[test]
fn resume_on_healthy_log_is_noop() {
    let log = LogManager::open(LogConfig::in_memory()).unwrap();
    let (_, wait) = commit_one(&log, 1).unwrap();
    wait.unwrap();
    log.resume().expect("healthy resume is Ok");
    assert!(!log.is_poisoned());
    let (_, wait) = commit_one(&log, 2).unwrap();
    wait.unwrap();
}

/// Regression: a waiter whose deadline expires while the log is
/// concurrently poisoned must report `Poisoned`, not `Timeout` — the
/// poison settles the commit's fate, a timeout only pleads ignorance.
/// The quiet-poison seam sets the flag without waking the waiter, so the
/// waiter discovers it only on its own deadline path.
#[test]
fn timed_out_waiter_reports_concurrent_poison() {
    let log = Arc::new(LogManager::open(LogConfig::in_memory()).unwrap());
    // No flusher: nothing ever becomes durable and nobody wakes waiters.
    log.halt_flusher_for_test();
    let mut tx = TxLogBuffer::new();
    tx.add_update(TableId(1), Oid(9), b"k", b"v");
    let res = log.allocate(tx.block_len()).unwrap();
    let end = res.end_offset();
    let block = tx.serialize(res.lsn());
    res.fill(block);

    let waiter = {
        let log = Arc::clone(&log);
        std::thread::spawn(move || log.wait_durable_for(end, Duration::from_millis(60)))
    };
    std::thread::sleep(Duration::from_millis(15));
    log.poison_quietly_for_test(LogError::Poisoned {
        kind: std::io::ErrorKind::Other,
        detail: "injected quiet poison".into(),
    });
    let result = waiter.join().unwrap();
    match result {
        Err(LogError::Poisoned { detail, .. }) => {
            assert!(detail.contains("quiet poison"), "must surface the recorded cause")
        }
        other => panic!("expected Poisoned, got {other:?}"),
    }
}
