//! Property tests for the log formats: arbitrary records round-trip
//! through serialization, blocks decode exactly, and checksums catch
//! any single-byte corruption.

use ermia_common::{Lsn, Oid, TableId};
use ermia_log::{
    checksum32, LogBlockHeader, LogRecord, LogRecordKind, TxLogBuffer, BLOCK_HEADER_LEN,
};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = LogRecord> {
    (
        prop_oneof![
            Just(LogRecordKind::Insert),
            Just(LogRecordKind::Update),
            Just(LogRecordKind::Delete),
            Just(LogRecordKind::SecondaryInsert),
        ],
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..64),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(kind, table, oid, key, value)| LogRecord {
            kind,
            table: TableId(table),
            oid: Oid(oid),
            key,
            value,
            indirect: false,
        })
}

proptest! {
    #[test]
    fn record_roundtrip(rec in record_strategy()) {
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        prop_assert_eq!(buf.len(), rec.encoded_len());
        let (decoded, consumed) = LogRecord::decode(&buf, 0).expect("decodes");
        prop_assert_eq!(decoded, rec);
        prop_assert_eq!(consumed, buf.len());
    }

    /// A whole transaction block round-trips: header fields plus each
    /// record in order.
    #[test]
    fn block_roundtrip(
        recs in proptest::collection::vec(record_strategy(), 0..12),
        cstamp_off in 0u64..(1 << 50),
        seg in 0u64..16,
    ) {
        let mut txbuf = TxLogBuffer::new();
        for r in &recs {
            match r.kind {
                LogRecordKind::Insert => txbuf.add_insert(r.table, r.oid, &r.key, &r.value),
                LogRecordKind::Update => txbuf.add_update(r.table, r.oid, &r.key, &r.value),
                LogRecordKind::Delete => txbuf.add_delete(r.table, r.oid, &r.key),
                LogRecordKind::SecondaryInsert => {
                    txbuf.add_secondary_insert(r.table, 7, r.oid, &r.key)
                }
            }
        }
        let cstamp = Lsn::from_parts(cstamp_off, seg);
        let bytes = txbuf.serialize(cstamp).to_vec();
        prop_assert_eq!(bytes.len(), txbuf.block_len());
        prop_assert_eq!(bytes.len() % 32, 0);

        let header = LogBlockHeader::decode(&bytes).expect("header decodes");
        prop_assert_eq!(header.nrec as usize, recs.len());
        prop_assert_eq!(header.cstamp, cstamp);
        prop_assert_eq!(header.len as usize, bytes.len());
        prop_assert_eq!(header.checksum, checksum32(&bytes[BLOCK_HEADER_LEN..]));

        let mut pos = BLOCK_HEADER_LEN;
        for orig in &recs {
            let (dec, next) = LogRecord::decode(&bytes, pos).expect("record decodes");
            // SecondaryInsert rewrites the value to the index id.
            if orig.kind == LogRecordKind::SecondaryInsert {
                prop_assert_eq!(dec.kind, LogRecordKind::SecondaryInsert);
                prop_assert_eq!(&dec.key, &orig.key);
                prop_assert_eq!(dec.value, 7u32.to_le_bytes().to_vec());
            } else if orig.kind == LogRecordKind::Delete {
                prop_assert_eq!(dec.kind, LogRecordKind::Delete);
                prop_assert_eq!(&dec.key, &orig.key);
                prop_assert!(dec.value.is_empty());
            } else {
                prop_assert_eq!(&dec, orig);
            }
            pos = next;
        }
    }

    /// Flipping any payload byte breaks the checksum.
    #[test]
    fn checksum_catches_corruption(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        pos_seed: usize,
        flip in 1u8..=255,
    ) {
        let sum = checksum32(&payload);
        let mut corrupted = payload.clone();
        let pos = pos_seed % corrupted.len();
        corrupted[pos] ^= flip;
        prop_assert_ne!(sum, checksum32(&corrupted));
    }
}
