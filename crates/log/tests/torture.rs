//! Crash-recovery torture tests.
//!
//! Randomized committed workloads run against the [`FaultInjector`]
//! backend, which "crashes" the storage at arbitrary points (torn
//! writes, failed fsyncs, ENOSPC, silent stops). The log is then
//! reopened with the real file backend — exactly the restart path — and
//! the durable-prefix invariant is checked:
//!
//! 1. every transaction whose `wait_durable` succeeded is recovered,
//! 2. nothing past the first hole survives (the recovered transactions
//!    are a clean prefix of the attempted sequence),
//! 3. recovered payloads are byte-identical to what was committed.
//!
//! Everything is derived deterministically from a seed; failures print
//! the seed to reproduce. `TORTURE_SEED` (used by the nightly CI job)
//! adds an extra randomized round on top of the fixed seeds.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ermia_common::{Oid, TableId};
use ermia_log::{
    FaultInjector, FaultPlan, FileBackend, LogConfig, LogManager, LogScanner, TornWrite,
    TxLogBuffer,
};

/// SplitMix64: deterministic per-seed randomness without external deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ermia-torture-{}-{}-{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn torture_cfg(dir: PathBuf, injector: &FaultInjector) -> LogConfig {
    LogConfig {
        dir: Some(dir),
        segment_size: 4096,
        buffer_size: 64 << 10,
        fsync: true,
        flush_interval: Duration::from_micros(50),
        io_factory: Arc::new(injector.clone()),
        wait_durable_timeout: Duration::from_secs(5),
    }
}

/// The payload committed for transaction `id` under `seed` — recognizable
/// and seed-dependent so recovery can verify bytes, not just presence.
fn payload_for(seed: u64, id: u64) -> Vec<u8> {
    let mut rng = Rng(seed ^ id.wrapping_mul(0xA076_1D64_78BD_642F));
    let len = 8 + rng.below(48) as usize;
    let mut out = Vec::with_capacity(len + 8);
    out.extend_from_slice(&id.to_be_bytes());
    for _ in 0..len {
        out.push(rng.next() as u8);
    }
    out
}

struct WorkloadOutcome {
    /// Transaction ids whose blocks were filled, in commit order.
    attempted: Vec<u64>,
    /// Ids whose `wait_durable` returned Ok — the acknowledged prefix.
    acked: Vec<u64>,
}

/// Run up to `max_txns` single-threaded committed transactions against a
/// fault-injecting log, acking each one only when its durability wait
/// succeeds. Stops at the first failure (allocation or durability).
fn run_workload(
    dir: PathBuf,
    injector: &FaultInjector,
    seed: u64,
    max_txns: u64,
) -> WorkloadOutcome {
    let log = match LogManager::open(torture_cfg(dir, injector)) {
        Ok(log) => log,
        Err(_) => return WorkloadOutcome { attempted: Vec::new(), acked: Vec::new() },
    };
    let mut outcome = WorkloadOutcome { attempted: Vec::new(), acked: Vec::new() };
    for id in 0..max_txns {
        let mut tx = TxLogBuffer::new();
        let value = payload_for(seed, id);
        tx.add_update(TableId(1), Oid(id as u32), &id.to_be_bytes(), &value);
        let res = match log.allocate(tx.block_len()) {
            Ok(res) => res,
            Err(_) => break,
        };
        let end = res.end_offset();
        let block = tx.serialize(res.lsn());
        res.fill(block);
        outcome.attempted.push(id);
        match log.wait_durable(end) {
            Ok(()) => outcome.acked.push(id),
            Err(_) => break,
        }
    }
    outcome
}

/// Reopen the directory with the clean file backend (the restart path:
/// `LogManager::open` → `find_tail`) and scan every recovered Txn block
/// into id → payload.
fn recover(dir: PathBuf) -> HashMap<u64, Vec<u8>> {
    let cfg = LogConfig {
        dir: Some(dir),
        segment_size: 4096,
        buffer_size: 64 << 10,
        fsync: false,
        flush_interval: Duration::from_micros(50),
        io_factory: Arc::new(FileBackend),
        wait_durable_timeout: Duration::from_secs(5),
    };
    let log = LogManager::open(cfg).expect("reopen after crash must succeed");
    let mut scanner = LogScanner::new(log.segments(), 0);
    let mut recovered = HashMap::new();
    while let Some(block) = scanner.next_block().expect("scan") {
        for rec in block.records() {
            let id = u64::from_be_bytes(rec.key[..8].try_into().unwrap());
            recovered.insert(id, rec.value);
        }
    }
    recovered
}

/// The durable-prefix invariant.
fn assert_durable_prefix(seed: u64, outcome: &WorkloadOutcome, recovered: &HashMap<u64, Vec<u8>>) {
    // Acked ids form a prefix of the attempted sequence by construction
    // (single-threaded; the loop stops at the first durability failure).
    assert_eq!(
        outcome.acked.as_slice(),
        &outcome.attempted[..outcome.acked.len()],
        "seed {seed}: acked must be the attempted prefix"
    );
    // 1. Every acknowledged transaction is recovered, bytes intact.
    for &id in &outcome.acked {
        let got = recovered
            .get(&id)
            .unwrap_or_else(|| panic!("seed {seed}: acked txn {id} lost after recovery"));
        assert_eq!(
            got,
            &payload_for(seed, id),
            "seed {seed}: acked txn {id} recovered with wrong payload"
        );
    }
    // 2. Nothing past the first hole: the recovered set is a clean prefix
    //    of the attempted sequence (unacked suffix transactions may or
    //    may not survive, but never with a gap before them).
    let k = recovered.len();
    assert!(
        k >= outcome.acked.len() && k <= outcome.attempted.len(),
        "seed {seed}: recovered {k} txns, acked {}, attempted {}",
        outcome.acked.len(),
        outcome.attempted.len()
    );
    for &id in &outcome.attempted[..k] {
        assert!(
            recovered.contains_key(&id),
            "seed {seed}: recovery has a gap: txn {id} missing but {k} txns recovered"
        );
        assert_eq!(
            recovered[&id],
            payload_for(seed, id),
            "seed {seed}: txn {id} recovered with wrong payload"
        );
    }
}

/// Build a randomized fault plan from a seed: one of the five fault
/// kinds, with seed-derived trigger points.
fn plan_for(seed: u64) -> FaultPlan {
    let mut rng = Rng(seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1));
    let mut plan = FaultPlan::default();
    match rng.below(5) {
        0 => {
            plan.fail_write_at = Some(rng.below(40));
            plan.write_error_kind = Some(if rng.below(2) == 0 {
                ErrorKind::Interrupted // transient: flusher retries through it
            } else {
                ErrorKind::InvalidData // fatal: poisons the log
            });
        }
        1 => {
            plan.torn_write =
                Some(TornWrite { at_write: rng.below(40), keep_bytes: rng.below(64) as usize });
        }
        2 => plan.fail_sync_at = Some(rng.below(40)),
        3 => plan.enospc_after_bytes = Some(512 + rng.below(8 << 10)),
        _ => plan.crash_after_writes = Some(1 + rng.below(40)),
    }
    plan
}

fn torture_one(tag: &str, seed: u64, plan: FaultPlan) {
    let dir = tmpdir(tag);
    let injector = FaultInjector::new(plan);
    let outcome = run_workload(dir.clone(), &injector, seed, 300);
    let recovered = recover(dir.clone());
    assert_durable_prefix(seed, &outcome, &recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance criterion: the torn-write-at-tail case is deterministic for
/// 12 distinct seeds. The tear hits the newest write — the log's tail —
/// so the torn block must vanish at recovery while every acked block
/// before it survives.
#[test]
fn torn_write_at_tail_all_seeds() {
    for seed in 0..12u64 {
        let mut rng = Rng(seed);
        let plan = FaultPlan {
            torn_write: Some(TornWrite {
                // Tear an early-to-mid write so the run always reaches it.
                at_write: 1 + rng.below(24),
                // Keep a prefix that usually truncates mid-header or
                // mid-payload (blocks are 32-byte aligned).
                keep_bytes: rng.below(48) as usize,
            }),
            ..FaultPlan::default()
        };
        let dir = tmpdir("torn-tail");
        let injector = FaultInjector::new(plan);
        let outcome = run_workload(dir.clone(), &injector, seed, 300);
        assert_eq!(injector.faults_injected(), 1, "seed {seed}: torn write must fire");
        assert!(injector.crashed(), "seed {seed}: torn write crashes the store");
        // The transaction whose flush was torn can never be acknowledged.
        assert!(
            outcome.acked.len() < outcome.attempted.len(),
            "seed {seed}: the torn txn must not ack"
        );
        let recovered = recover(dir.clone());
        assert_durable_prefix(seed, &outcome, &recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Randomized plans across many seeds: every fault kind, arbitrary crash
/// points, invariant must hold each time.
#[test]
fn randomized_fault_plans_hold_invariant() {
    for seed in 0..24u64 {
        torture_one("random", seed, plan_for(seed));
    }
}

/// Nightly hook: `TORTURE_SEED=<n>` runs one extra randomized round; the
/// seed is in every assertion message for reproduction.
#[test]
fn torture_env_seed_round() {
    let Some(seed) = std::env::var("TORTURE_SEED").ok().and_then(|s| s.parse::<u64>().ok()) else {
        return;
    };
    for salt in 0..8u64 {
        let seed = seed.wrapping_add(salt);
        torture_one("env-seed", seed, plan_for(seed));
    }
}

/// A fault-free run through the injector must ack and recover everything.
#[test]
fn no_fault_plan_recovers_everything() {
    let dir = tmpdir("clean");
    let injector = FaultInjector::new(FaultPlan::default());
    let outcome = run_workload(dir.clone(), &injector, 7, 150);
    assert_eq!(outcome.acked.len(), 150);
    let recovered = recover(dir.clone());
    assert_eq!(recovered.len(), 150);
    assert_durable_prefix(7, &outcome, &recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Transient write errors must be retried through, not poison the log.
#[test]
fn transient_write_errors_are_absorbed() {
    let dir = tmpdir("transient");
    let injector = FaultInjector::new(FaultPlan {
        fail_write_at: Some(3),
        write_error_kind: Some(ErrorKind::Interrupted),
        ..FaultPlan::default()
    });
    let outcome = run_workload(dir.clone(), &injector, 11, 100);
    assert_eq!(outcome.acked.len(), 100, "one transient error must not stop the log");
    assert_eq!(injector.faults_injected(), 1);
    let recovered = recover(dir.clone());
    assert_durable_prefix(11, &outcome, &recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent committers racing a crash point: every acked transaction
/// must be recovered (the prefix-shape assertion does not apply — ids
/// interleave across threads).
#[test]
fn concurrent_commits_survive_crash_point() {
    const THREADS: u64 = 4;
    let dir = tmpdir("concurrent");
    let injector =
        FaultInjector::new(FaultPlan { crash_after_writes: Some(60), ..FaultPlan::default() });
    let log = LogManager::open(torture_cfg(dir.clone(), &injector)).unwrap();
    let acked = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let log = &log;
            let acked = &acked;
            s.spawn(move || {
                for i in 0..200u64 {
                    let id = t * 1_000 + i;
                    let mut tx = TxLogBuffer::new();
                    let value = payload_for(99, id);
                    tx.add_update(TableId(1), Oid(id as u32), &id.to_be_bytes(), &value);
                    let res = match log.allocate(tx.block_len()) {
                        Ok(res) => res,
                        Err(_) => return,
                    };
                    let end = res.end_offset();
                    let block = tx.serialize(res.lsn());
                    res.fill(block);
                    if log.wait_durable(end).is_ok() {
                        acked.lock().unwrap().push(id);
                    } else {
                        return;
                    }
                }
            });
        }
    });
    drop(log);
    let recovered = recover(dir.clone());
    for &id in acked.lock().unwrap().iter() {
        assert_eq!(
            recovered.get(&id),
            Some(&payload_for(99, id)),
            "acked txn {id} lost or corrupted after crash"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// After the flusher poisons the log, waiters already blocked in
/// `wait_durable` are woken with the poison error, and new allocations
/// fail fast.
#[test]
fn poison_wakes_waiters_and_blocks_allocation() {
    let dir = tmpdir("poison");
    let injector = FaultInjector::new(FaultPlan { fail_sync_at: Some(0), ..FaultPlan::default() });
    let log = LogManager::open(torture_cfg(dir.clone(), &injector)).unwrap();
    let mut tx = TxLogBuffer::new();
    tx.add_update(TableId(1), Oid(1), b"k8bytes!", b"v");
    let res = log.allocate(tx.block_len()).unwrap();
    let end = res.end_offset();
    let block = tx.serialize(res.lsn());
    res.fill(block);
    let err = log.wait_durable(end).expect_err("first fsync fails -> poisoned");
    assert!(matches!(err, ermia_common::LogError::Poisoned { .. }), "got {err:?}");
    assert!(log.is_poisoned());
    assert!(log.poison_cause().is_some());
    assert!(log.allocate(64).is_err(), "poisoned log must reject allocations");
    drop(log);
    let _ = std::fs::remove_dir_all(&dir);
}
