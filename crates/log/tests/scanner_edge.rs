//! LogScanner edge cases: each test commits a known workload, then
//! corrupts the segment files the way a dying disk would — a wild `len`
//! field, a flipped payload bit, garbage where the next header should
//! be, a torn header at a segment boundary — and asserts the scanner
//! truncates cleanly at the damage instead of erroring or misreading.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ermia_common::{Oid, TableId};
use ermia_log::{LogConfig, LogManager, LogScanner, TxLogBuffer, BLOCK_HEADER_LEN};

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ermia-scanedge-{}-{}-{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(dir: PathBuf) -> LogConfig {
    LogConfig {
        dir: Some(dir),
        segment_size: 4096,
        buffer_size: 64 << 10,
        fsync: true,
        flush_interval: Duration::from_micros(50),
        ..LogConfig::default()
    }
}

/// Commit `n` one-record transactions, returning each block's logical
/// offset (LSN offset) and the directory's first segment file.
fn write_blocks(dir: &Path, n: u64) -> Vec<u64> {
    let log = LogManager::open(cfg(dir.to_path_buf())).unwrap();
    let mut offsets = Vec::new();
    for i in 0..n {
        let mut tx = TxLogBuffer::new();
        tx.add_update(TableId(1), Oid(i as u32), &i.to_be_bytes(), b"scanner-edge-payload");
        let res = log.allocate(tx.block_len()).unwrap();
        offsets.push(res.lsn().offset());
        let end = res.end_offset();
        let block = tx.serialize(res.lsn());
        res.fill(block);
        log.wait_durable(end).unwrap();
    }
    offsets
}

/// Scan the reopened log, returning the OIDs of every recovered record.
fn scan_oids(dir: &Path) -> Vec<u32> {
    let log = LogManager::open(cfg(dir.to_path_buf())).unwrap();
    let mut scanner = LogScanner::new(log.segments(), 0);
    let mut oids = Vec::new();
    while let Some(block) = scanner.next_block().expect("scan must not error") {
        for rec in block.records() {
            oids.push(rec.oid.0);
        }
    }
    oids
}

/// The (single) segment file holding logical offset 0.
fn first_segment_file(dir: &Path) -> PathBuf {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            p.file_name()?.to_str()?.starts_with("log-").then_some(p)
        })
        .collect();
    files.sort();
    files.into_iter().next().expect("a segment file exists")
}

fn patch(path: &Path, pos: u64, bytes: &[u8]) {
    use std::os::unix::fs::FileExt;
    let f = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    f.write_all_at(bytes, pos).unwrap();
    f.sync_data().unwrap();
}

/// A block whose `len` field claims to run past the segment end is a
/// hole: the scanner stops there, keeping everything before it.
#[test]
fn corrupt_len_field_truncates_scan() {
    let dir = tmpdir("len");
    let offsets = write_blocks(&dir, 3);
    // len lives at header offset 8 (see records.rs layout).
    patch(&first_segment_file(&dir), offsets[1] + 8, &u32::MAX.to_le_bytes());
    assert_eq!(scan_oids(&dir), vec![0], "scan keeps block 0, stops at the wild len");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A `len` smaller than a header is equally a hole.
#[test]
fn undersized_len_field_truncates_scan() {
    let dir = tmpdir("shortlen");
    let offsets = write_blocks(&dir, 3);
    patch(&first_segment_file(&dir), offsets[2] + 8, &4u32.to_le_bytes());
    assert_eq!(scan_oids(&dir), vec![0, 1]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A flipped payload bit fails the Txn checksum: that block and
/// everything after it are truncated; blocks before it survive.
#[test]
fn checksum_mismatch_truncates_scan() {
    let dir = tmpdir("sum");
    let offsets = write_blocks(&dir, 4);
    let mid_payload = offsets[2] + BLOCK_HEADER_LEN as u64 + 20;
    patch(&first_segment_file(&dir), mid_payload, &[0xFF]);
    assert_eq!(scan_oids(&dir), vec![0, 1]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Garbage bytes where the next header should sit (the classic torn
/// tail) end the scan without error.
#[test]
fn garbage_at_tail_is_a_hole() {
    let dir = tmpdir("tail");
    let offsets = write_blocks(&dir, 2);
    let block_len = offsets[1] - offsets[0];
    let tail = offsets[1] + block_len;
    patch(&first_segment_file(&dir), tail, b"\xde\xad\xbe\xef torn partial head");
    assert_eq!(scan_oids(&dir), vec![0, 1]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fill segments until rotation: the flusher closes each full segment
/// with a skip block that exactly fills its tail, and the scanner must
/// hop the skip into the next segment without losing a block.
#[test]
fn skip_block_filling_segment_tail_is_hopped() {
    let dir = tmpdir("rotate");
    // Enough blocks to cross several 4 KiB segment boundaries.
    let n = 120u64;
    {
        let log = LogManager::open(cfg(dir.to_path_buf())).unwrap();
        let mut last_end = 0;
        for i in 0..n {
            let mut tx = TxLogBuffer::new();
            tx.add_update(TableId(1), Oid(i as u32), &i.to_be_bytes(), b"rotation-payload");
            let res = log.allocate(tx.block_len()).unwrap();
            last_end = res.end_offset();
            let block = tx.serialize(res.lsn());
            res.fill(block);
        }
        log.wait_durable(last_end).unwrap();
        assert!(
            log.stats().rotations.load(Ordering::Relaxed) >= 1,
            "workload must actually rotate segments"
        );
    }
    let oids = scan_oids(&dir);
    assert_eq!(oids, (0..n as u32).collect::<Vec<_>>(), "no block lost across rotations");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tear the header sitting at a segment boundary (the closing skip of a
/// full segment): the scanner treats it as the first hole, so blocks in
/// later segments — past the hole — are not resurrected.
#[test]
fn torn_header_at_segment_boundary_truncates() {
    let dir = tmpdir("boundary");
    let n = 120u64;
    let mut offsets = Vec::new();
    {
        let log = LogManager::open(cfg(dir.to_path_buf())).unwrap();
        let mut last_end = 0;
        for i in 0..n {
            let mut tx = TxLogBuffer::new();
            tx.add_update(TableId(1), Oid(i as u32), &i.to_be_bytes(), b"boundary-payload");
            let res = log.allocate(tx.block_len()).unwrap();
            offsets.push(res.lsn().offset());
            last_end = res.end_offset();
            let block = tx.serialize(res.lsn());
            res.fill(block);
        }
        log.wait_durable(last_end).unwrap();
    }
    // The closing skip of segment 0 sits between the last block that
    // fits under 4096 and the segment end. Find that block.
    let seg_end = 4096u64;
    let in_first_seg = offsets.iter().filter(|&&o| o < seg_end).count();
    let block_len = offsets[1] - offsets[0];
    let skip_at = offsets[in_first_seg - 1] + block_len;
    assert!(skip_at <= seg_end, "skip header lies within segment 0");
    if skip_at < seg_end {
        // Smash the skip header's magic: a torn boundary header.
        patch(&first_segment_file(&dir), skip_at, &[0u8; 4]);
        let oids = scan_oids(&dir);
        assert_eq!(
            oids,
            (0..in_first_seg as u32).collect::<Vec<_>>(),
            "scan keeps segment 0's blocks and stops at the torn boundary header"
        );
    } else {
        // The last block ended flush with the segment: no skip was
        // needed, so tear the first header of segment 1 instead.
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                p.file_name()?.to_str()?.starts_with("log-").then_some(p)
            })
            .collect();
        files.sort();
        patch(&files[1], 0, &[0u8; 4]);
        let oids = scan_oids(&dir);
        assert_eq!(oids, (0..in_first_seg as u32).collect::<Vec<_>>());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
