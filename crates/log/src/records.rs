//! On-disk log block and record formats.
//!
//! The unit of log insertion is a *block*: one block per committing
//! transaction (aggregated from its private buffer), or a skip record.
//! Blocks begin with a fixed [`LogBlockHeader`]; transaction blocks carry
//! a sequence of [`LogRecord`]s. Recovery examines only block headers to
//! roll the OID arrays forward (§3.7) but the records carry full keys and
//! payloads so the reproduction can rebuild the entire database from the
//! log ("the log is the database").

use ermia_common::{Lsn, Oid, TableId};

/// Magic value identifying a block header ("ERML").
pub const BLOCK_MAGIC: u32 = 0x4552_4d4c;

/// Serialized size of a block header in bytes.
pub const BLOCK_HEADER_LEN: usize = 32;

/// Minimum allocation the LSN space will hand out; a closing skip record
/// must always fit in the remainder of a segment, so segment sizes are
/// multiples of this and all allocations are rounded up to it.
pub const MIN_BLOCK_LEN: usize = BLOCK_HEADER_LEN;

/// Block kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum BlockKind {
    /// A committed transaction's updates.
    Txn = 1,
    /// Dead space: an aborted reservation or a segment-closing pad. The
    /// header's `len` covers the whole skipped range.
    Skip = 2,
    /// Checkpoint begin marker (payload: none).
    CheckpointBegin = 3,
    /// Checkpoint end marker (payload: the checkpoint's metadata).
    CheckpointEnd = 4,
    /// A cross-shard transaction's updates, written at 2PC *prepare*.
    /// The payload starts with a [`PrepareMarker`] naming the
    /// coordinator, then carries ordinary records. The updates are not
    /// committed until a matching [`BlockKind::TxnDecide`] (on the
    /// coordinator's log) says so.
    TxnPrepare = 5,
    /// A 2PC decision record (payload: [`DecideRecord`]). Written on the
    /// coordinator's log once every participant's prepare is durable;
    /// mirrored best-effort on participant logs to shortcut recovery.
    TxnDecide = 6,
}

impl BlockKind {
    pub fn from_u8(v: u8) -> Option<BlockKind> {
        match v {
            1 => Some(BlockKind::Txn),
            2 => Some(BlockKind::Skip),
            3 => Some(BlockKind::CheckpointBegin),
            4 => Some(BlockKind::CheckpointEnd),
            5 => Some(BlockKind::TxnPrepare),
            6 => Some(BlockKind::TxnDecide),
            _ => None,
        }
    }
}

/// Serialized size of a [`PrepareMarker`] / [`DecideRecord`].
pub const PREPARE_MARKER_LEN: usize = 32;
pub const DECIDE_RECORD_LEN: usize = 16;

/// First 32 bytes of a [`BlockKind::TxnPrepare`] payload: which shard
/// coordinates this global transaction, where the coordinator's own
/// prepare block lives, and the distributed-tracing id of the client
/// operation that wrote it (zero when untraced). The global
/// transaction id is `(coord_shard, coord_lsn)`; the *coordinator's
/// own* prepare block stores [`PrepareMarker::COORD_SELF`] (its gtid
/// LSN is its own `cstamp`, which is not known until the log
/// reservation is made, and raw 0 is a real LSN — the first block of a
/// fresh log).
///
/// Layout (little-endian): `coord_shard u32, pad u32, coord_lsn u64,
/// trace_hi u64, trace_lo u64`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrepareMarker {
    pub coord_shard: u32,
    /// Raw LSN of the coordinator's prepare block;
    /// [`PrepareMarker::COORD_SELF`] on the coordinator's own prepare.
    pub coord_lsn: u64,
    /// 128-bit trace id of the originating traced operation, split into
    /// two words; both zero when the transaction was untraced. Carried
    /// in the log so a replica's apply of this transaction can be
    /// stitched to the client's trace.
    pub trace_hi: u64,
    pub trace_lo: u64,
}

impl PrepareMarker {
    /// `coord_lsn` sentinel marking the coordinator's own prepare block:
    /// its gtid LSN is the block's own cstamp. Never a valid raw LSN
    /// (the top bit is reserved for TID stamps).
    pub const COORD_SELF: u64 = u64::MAX;

    pub fn encode_into(&self, out: &mut [u8]) {
        assert!(out.len() >= PREPARE_MARKER_LEN);
        out[0..4].copy_from_slice(&self.coord_shard.to_le_bytes());
        out[4..8].copy_from_slice(&0u32.to_le_bytes());
        out[8..16].copy_from_slice(&self.coord_lsn.to_le_bytes());
        out[16..24].copy_from_slice(&self.trace_hi.to_le_bytes());
        out[24..32].copy_from_slice(&self.trace_lo.to_le_bytes());
    }

    pub fn decode(buf: &[u8]) -> Option<PrepareMarker> {
        if buf.len() < PREPARE_MARKER_LEN {
            return None;
        }
        Some(PrepareMarker {
            coord_shard: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            coord_lsn: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
            trace_hi: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
            trace_lo: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
        })
    }
}

/// Payload of a [`BlockKind::TxnDecide`] block: the verdict for one
/// global transaction. `decision` is 1 for commit, 0 for abort.
///
/// Layout (little-endian): `gtid_lsn u64, coord_shard u32, decision u8,
/// pad [u8; 3]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecideRecord {
    /// Raw LSN of the coordinator's prepare block (the gtid).
    pub gtid_lsn: u64,
    pub coord_shard: u32,
    pub commit: bool,
}

impl DecideRecord {
    pub fn encode(&self) -> [u8; DECIDE_RECORD_LEN] {
        let mut out = [0u8; DECIDE_RECORD_LEN];
        out[0..8].copy_from_slice(&self.gtid_lsn.to_le_bytes());
        out[8..12].copy_from_slice(&self.coord_shard.to_le_bytes());
        out[12] = self.commit as u8;
        out
    }

    pub fn decode(buf: &[u8]) -> Option<DecideRecord> {
        if buf.len() < DECIDE_RECORD_LEN {
            return None;
        }
        Some(DecideRecord {
            gtid_lsn: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
            coord_shard: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            commit: buf[12] != 0,
        })
    }
}

/// Fixed-size header at the start of every log block.
///
/// Layout (little-endian):
/// ```text
/// 0  magic      u32
/// 4  kind       u8
/// 5  (pad)      u8
/// 6  nrec       u16     number of records in a Txn block
/// 8  len        u32     total block length including header
/// 12 checksum   u32     checksum64 of the payload, folded to 32 bits
/// 16 cstamp     u64     committer's commit LSN (raw), 0 for skips
/// 24 prev       u64     reserved: backward chain for overflow blocks
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LogBlockHeader {
    pub kind: BlockKind,
    pub nrec: u16,
    pub len: u32,
    pub checksum: u32,
    pub cstamp: Lsn,
    pub prev: u64,
}

impl LogBlockHeader {
    pub fn encode_into(&self, out: &mut [u8]) {
        assert!(out.len() >= BLOCK_HEADER_LEN);
        out[0..4].copy_from_slice(&BLOCK_MAGIC.to_le_bytes());
        out[4] = self.kind as u8;
        out[5] = 0;
        out[6..8].copy_from_slice(&self.nrec.to_le_bytes());
        out[8..12].copy_from_slice(&self.len.to_le_bytes());
        out[12..16].copy_from_slice(&self.checksum.to_le_bytes());
        out[16..24].copy_from_slice(&self.cstamp.raw().to_le_bytes());
        out[24..32].copy_from_slice(&self.prev.to_le_bytes());
    }

    /// Decode a header; `None` if the magic doesn't match (a hole).
    pub fn decode(buf: &[u8]) -> Option<LogBlockHeader> {
        if buf.len() < BLOCK_HEADER_LEN {
            return None;
        }
        let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        if magic != BLOCK_MAGIC {
            return None;
        }
        let kind = BlockKind::from_u8(buf[4])?;
        Some(LogBlockHeader {
            kind,
            nrec: u16::from_le_bytes(buf[6..8].try_into().unwrap()),
            len: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            checksum: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
            cstamp: Lsn::from_raw(u64::from_le_bytes(buf[16..24].try_into().unwrap())),
            prev: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
        })
    }
}

/// Record kinds within a transaction block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum LogRecordKind {
    /// New object: allocates the OID during recovery replay.
    Insert = 1,
    /// New version behind an existing OID.
    Update = 2,
    /// Tombstone.
    Delete = 3,
    /// Secondary-index entry: `key` is the secondary key, `oid` the
    /// primary record, and the first 4 bytes of `value` the index id.
    SecondaryInsert = 4,
}

impl LogRecordKind {
    pub fn from_u8(v: u8) -> Option<LogRecordKind> {
        match v {
            1 => Some(LogRecordKind::Insert),
            2 => Some(LogRecordKind::Update),
            3 => Some(LogRecordKind::Delete),
            4 => Some(LogRecordKind::SecondaryInsert),
            _ => None,
        }
    }
}

/// One logical update inside a transaction block.
///
/// Record layout: `kind u8, flags u8, key_len u16, table u32, oid u32,
/// val_len u32` (16 bytes) followed by key then value bytes. Flag bit 0
/// marks an *indirect* value: the bytes are a [`crate::BlobRef`] into
/// the large-object store rather than the payload itself (§3.3,
/// "large object writes can be diverted to secondary storage").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    pub kind: LogRecordKind,
    pub table: TableId,
    pub oid: Oid,
    pub key: Vec<u8>,
    pub value: Vec<u8>,
    /// Value is a blob reference, not the payload.
    pub indirect: bool,
}

const FLAG_INDIRECT: u8 = 0b1;

pub const RECORD_HEADER_LEN: usize = 16;

/// Encode one record from its parts — the single definition of the wire
/// format, shared by [`LogRecord::encode_into`] and the allocation-free
/// [`crate::TxLogBuffer`] serializer.
pub fn encode_record_into(
    out: &mut Vec<u8>,
    kind: LogRecordKind,
    table: TableId,
    oid: Oid,
    indirect: bool,
    key: &[u8],
    value: &[u8],
) {
    out.push(kind as u8);
    out.push(if indirect { FLAG_INDIRECT } else { 0 });
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(&table.0.to_le_bytes());
    out.extend_from_slice(&oid.0.to_le_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
}

impl LogRecord {
    /// Serialized length of this record.
    pub fn encoded_len(&self) -> usize {
        RECORD_HEADER_LEN + self.key.len() + self.value.len()
    }

    pub fn encode_into(&self, out: &mut Vec<u8>) {
        encode_record_into(out, self.kind, self.table, self.oid, self.indirect, &self.key, &self.value);
    }

    /// Decode one record at `buf[pos..]`, returning it and the position of
    /// the next record. `None` on malformed input.
    pub fn decode(buf: &[u8], pos: usize) -> Option<(LogRecord, usize)> {
        if buf.len() < pos + RECORD_HEADER_LEN {
            return None;
        }
        let b = &buf[pos..];
        let kind = LogRecordKind::from_u8(b[0])?;
        let indirect = b[1] & FLAG_INDIRECT != 0;
        let key_len = u16::from_le_bytes(b[2..4].try_into().unwrap()) as usize;
        let table = TableId(u32::from_le_bytes(b[4..8].try_into().unwrap()));
        let oid = Oid(u32::from_le_bytes(b[8..12].try_into().unwrap()));
        let val_len = u32::from_le_bytes(b[12..16].try_into().unwrap()) as usize;
        let body = pos + RECORD_HEADER_LEN;
        if buf.len() < body + key_len + val_len {
            return None;
        }
        let key = buf[body..body + key_len].to_vec();
        let value = buf[body + key_len..body + key_len + val_len].to_vec();
        Some((LogRecord { kind, table, oid, key, value, indirect }, body + key_len + val_len))
    }
}

/// FNV-1a over the payload; cheap and good enough to catch torn writes.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fold a 64-bit checksum into the header's 32-bit field.
pub fn checksum32(bytes: &[u8]) -> u32 {
    let h = checksum64(bytes);
    (h ^ (h >> 32)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = LogBlockHeader {
            kind: BlockKind::Txn,
            nrec: 3,
            len: 128,
            checksum: 0xabcd,
            cstamp: Lsn::from_parts(77, 4),
            prev: 0,
        };
        let mut buf = [0u8; BLOCK_HEADER_LEN];
        h.encode_into(&mut buf);
        let d = LogBlockHeader::decode(&buf).unwrap();
        assert_eq!(d.kind, BlockKind::Txn);
        assert_eq!(d.nrec, 3);
        assert_eq!(d.len, 128);
        assert_eq!(d.checksum, 0xabcd);
        assert_eq!(d.cstamp, Lsn::from_parts(77, 4));
    }

    #[test]
    fn header_rejects_bad_magic() {
        let buf = [0u8; BLOCK_HEADER_LEN];
        assert!(LogBlockHeader::decode(&buf).is_none());
    }

    #[test]
    fn record_roundtrip() {
        let r = LogRecord {
            kind: LogRecordKind::Update,
            table: TableId(9),
            oid: Oid(1234),
            key: b"key-1".to_vec(),
            value: vec![7; 100],
            indirect: false,
        };
        let mut buf = Vec::new();
        r.encode_into(&mut buf);
        assert_eq!(buf.len(), r.encoded_len());
        let (d, next) = LogRecord::decode(&buf, 0).unwrap();
        assert_eq!(d, r);
        assert_eq!(next, buf.len());
    }

    #[test]
    fn record_decode_rejects_truncation() {
        let r = LogRecord {
            kind: LogRecordKind::Insert,
            table: TableId(1),
            oid: Oid(1),
            key: b"k".to_vec(),
            value: b"v".to_vec(),
            indirect: true,
        };
        let mut buf = Vec::new();
        r.encode_into(&mut buf);
        assert!(LogRecord::decode(&buf[..buf.len() - 1], 0).is_none());
    }

    #[test]
    fn checksum_differs_on_flip() {
        let a = checksum32(b"hello world");
        let mut v = b"hello world".to_vec();
        v[3] ^= 1;
        assert_ne!(a, checksum32(&v));
    }
}
