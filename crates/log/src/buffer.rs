//! The centralized log ring buffer.
//!
//! Logical LSN offsets map directly onto ring positions (`offset % cap`),
//! so a reservation made with the global `fetch_add` already names its
//! buffer space — no further coordination is needed to find where to
//! copy. Writers copy their pre-serialized block and mark the range
//! *filled*; a completion tracker merges out-of-order fills into a
//! contiguous watermark the flusher can drain. Dead-zone ranges (which
//! map to no disk location) are marked filled without a copy so they
//! never stall the watermark.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

pub struct RingBuffer {
    cap: u64,
    data: Box<[u8]>,
    /// Contiguous prefix of the LSN space that has been filled.
    filled: AtomicU64,
    /// Prefix that the flusher has drained to stable storage (or
    /// discarded, for dead zones / in-memory logs).
    flushed: AtomicU64,
    /// Lowest logical offset a durability waiter is parked on
    /// (`u64::MAX` when nobody waits). Maintained by the log manager's
    /// waiter registry; `mark_filled` wakes the flusher the moment the
    /// filled watermark covers it, regardless of batch size.
    demand: AtomicU64,
    /// Set when the flusher dies on an unrecoverable I/O error: space
    /// will never free up again, so waiters must give up.
    poisoned: AtomicBool,
    state: Mutex<FillState>,
    /// Signaled when `filled` advances (flusher waits here).
    filled_cv: Condvar,
    /// Signaled when `flushed` advances (writers waiting for space).
    space_cv: Condvar,
}

struct FillState {
    /// Out-of-order filled ranges: start → end, disjoint, all > filled.
    pending: BTreeMap<u64, u64>,
}

// The data array is written through a raw pointer by concurrent writers
// holding disjoint reservations and read by the flusher only below the
// filled watermark; see `write_range` / `read_range` for the argument.
unsafe impl Sync for RingBuffer {}

impl RingBuffer {
    /// `cap` bytes of buffer, beginning life with watermarks at `start`
    /// (the initial LSN offset).
    pub fn new(cap: u64, start: u64) -> RingBuffer {
        assert!(cap > 0);
        RingBuffer {
            cap,
            data: vec![0u8; cap as usize].into_boxed_slice(),
            filled: AtomicU64::new(start),
            flushed: AtomicU64::new(start),
            demand: AtomicU64::new(u64::MAX),
            poisoned: AtomicBool::new(false),
            state: Mutex::new(FillState { pending: BTreeMap::new() }),
            filled_cv: Condvar::new(),
            space_cv: Condvar::new(),
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn capacity(&self) -> u64 {
        self.cap
    }

    #[inline]
    pub fn filled(&self) -> u64 {
        self.filled.load(Ordering::Acquire)
    }

    #[inline]
    pub fn flushed(&self) -> u64 {
        self.flushed.load(Ordering::Acquire)
    }

    /// Mark the buffer dead: the flusher will never drain it again. Wakes
    /// every waiter so they can observe the failure instead of blocking
    /// forever.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        let _state = self.state.lock();
        self.space_cv.notify_all();
        self.filled_cv.notify_all();
    }

    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Publish the lowest durability target anyone is waiting on
    /// (`u64::MAX` when the waiter list is empty). Owned by the log
    /// manager's waiter registry, which updates it under its own lock.
    #[inline]
    pub fn set_demand(&self, lowest_target: u64) {
        self.demand.store(lowest_target, Ordering::Release);
    }

    /// Wake the flusher if the filled watermark already covers `target`.
    /// A durability waiter calls this right after registering: the fill
    /// that should trigger the flush may have happened before the demand
    /// was visible, in which case `mark_filled` stayed quiet.
    pub fn kick_if_filled(&self, target: u64) {
        if self.filled() >= target {
            let _state = self.state.lock();
            self.filled_cv.notify_all();
        }
    }

    /// Block until the ring can hold bytes up to logical offset `end`
    /// (i.e. `end - flushed <= cap`). Called once per reservation; in the
    /// common case (log buffer not full) this is a single atomic load.
    /// Returns `false` if the buffer was poisoned while (or before)
    /// waiting — the space will never become available.
    ///
    /// Parks on precise `space_cv` notifications: `mark_flushed` advances
    /// the watermark under the state lock and notifies, and `poison`
    /// wakes everyone, so no poll timeout is needed.
    #[must_use]
    pub fn wait_for_space(&self, end: u64) -> bool {
        if end.saturating_sub(self.flushed()) <= self.cap {
            return !self.is_poisoned();
        }
        let mut state = self.state.lock();
        while end - self.flushed() > self.cap {
            if self.is_poisoned() {
                return false;
            }
            self.space_cv.wait(&mut state);
        }
        !self.is_poisoned()
    }

    /// Copy `bytes` into the ring at logical offset `offset` and mark the
    /// range filled. The caller must own the reservation for
    /// `offset..offset+bytes.len()` and have waited for space.
    pub fn write(&self, offset: u64, bytes: &[u8]) {
        let len = bytes.len() as u64;
        debug_assert!(len <= self.cap);
        debug_assert!(offset + len - self.flushed() <= self.cap + self.cap, "writer skipped wait_for_space");
        let pos = (offset % self.cap) as usize;
        let first = std::cmp::min(bytes.len(), self.cap as usize - pos);
        // SAFETY: reservations hand out disjoint logical ranges, and a
        // range's ring bytes are not read by the flusher until the writer
        // publishes them via mark_filled (Release). So this region is
        // exclusively ours for the duration of the copy.
        unsafe {
            let base = self.data.as_ptr() as *mut u8;
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), base.add(pos), first);
            if first < bytes.len() {
                std::ptr::copy_nonoverlapping(bytes.as_ptr().add(first), base, bytes.len() - first);
            }
        }
        self.mark_filled(offset, len);
    }

    /// Mark `offset..offset+len` filled without copying (dead zones).
    pub fn mark_filled(&self, offset: u64, len: u64) {
        let mut state = self.state.lock();
        let mut end = offset + len;
        let cur = self.filled.load(Ordering::Relaxed);
        debug_assert!(offset >= cur, "double fill at {offset:#x} (filled {cur:#x})");
        if offset == cur {
            // Extends the contiguous prefix; absorb any adjacent pending
            // ranges that now connect.
            while let Some((&s, &e)) = state.pending.first_key_value() {
                if s <= end {
                    state.pending.pop_first();
                    end = end.max(e);
                } else {
                    break;
                }
            }
            self.filled.store(end, Ordering::Release);
            drop(state);
            // Wake the flusher when a meaningful batch accumulated (its
            // periodic timeout drains the idle tail — group commit), or
            // *immediately* when the new watermark covers a registered
            // durability target: a synchronous committer is parked on
            // this very range and every microsecond of flusher sleep is
            // added commit latency. With no demand, a wake per commit
            // would cost a scheduler round trip per transaction.
            if end.saturating_sub(self.flushed()) >= self.cap / 4
                || end >= self.demand.load(Ordering::Acquire)
            {
                self.filled_cv.notify_all();
            }
        } else {
            state.pending.insert(offset, end);
        }
    }

    /// Flusher side: wait until `filled > from` or the timeout elapses;
    /// returns the current filled watermark.
    pub fn wait_filled(&self, from: u64, timeout: Duration) -> u64 {
        let cur = self.filled();
        if cur > from {
            return cur;
        }
        let mut state = self.state.lock();
        let cur = self.filled();
        if cur > from {
            return cur;
        }
        self.filled_cv.wait_for(&mut state, timeout);
        self.filled()
    }

    /// Flusher side: hand the bytes of `range` (all below the filled
    /// watermark) to `sink` in at most two slices (ring wrap).
    ///
    /// # Panics
    /// If the range is not entirely filled or longer than the capacity.
    pub fn read_range(&self, start: u64, end: u64, mut sink: impl FnMut(&[u8])) {
        assert!(end <= self.filled());
        assert!(end - start <= self.cap);
        if start == end {
            return;
        }
        let pos = (start % self.cap) as usize;
        let len = (end - start) as usize;
        let first = std::cmp::min(len, self.cap as usize - pos);
        // SAFETY: below the filled watermark no writer touches these
        // bytes (reservations are monotonic and disjoint), and the
        // Acquire load of `filled` synchronizes with the writers'
        // Release publication.
        unsafe {
            let base = self.data.as_ptr();
            sink(std::slice::from_raw_parts(base.add(pos), first));
            if first < len {
                sink(std::slice::from_raw_parts(base, len - first));
            }
        }
    }

    /// Flusher side: advance the flushed watermark and wake space waiters.
    /// The store happens under the state lock so a concurrent
    /// [`RingBuffer::wait_for_space`] cannot check a stale watermark and
    /// then miss this notification (precise wakeups need the handshake).
    pub fn mark_flushed(&self, to: u64) {
        debug_assert!(to <= self.filled());
        let _state = self.state.lock();
        self.flushed.store(to, Ordering::Release);
        self.space_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_fills_advance_watermark() {
        let rb = RingBuffer::new(1024, 0);
        assert_eq!(rb.capacity(), 1024);
        rb.write(0, &[1; 100]);
        assert_eq!(rb.filled(), 100);
        rb.write(100, &[2; 50]);
        assert_eq!(rb.filled(), 150);
    }

    #[test]
    fn out_of_order_fills_merge() {
        let rb = RingBuffer::new(1024, 0);
        rb.write(100, &[2; 50]);
        assert_eq!(rb.filled(), 0);
        rb.mark_filled(150, 10); // dead zone, also pending
        rb.write(0, &[1; 100]);
        assert_eq!(rb.filled(), 160);
    }

    #[test]
    fn read_range_sees_written_bytes_across_wrap() {
        let rb = RingBuffer::new(128, 0);
        rb.write(0, &[7; 100]);
        rb.read_range(0, 100, |s| assert!(s.iter().all(|&b| b == 7)));
        rb.mark_flushed(100);
        // This write wraps: positions 100..128 then 0..72.
        rb.write(100, &[9; 100]);
        let mut total = 0;
        let mut chunks = 0;
        rb.read_range(100, 200, |s| {
            assert!(s.iter().all(|&b| b == 9));
            total += s.len();
            chunks += 1;
        });
        assert_eq!(total, 100);
        assert_eq!(chunks, 2);
    }

    #[test]
    fn wait_for_space_blocks_until_flush() {
        let rb = std::sync::Arc::new(RingBuffer::new(100, 0));
        rb.write(0, &[1; 100]);
        let rb2 = std::sync::Arc::clone(&rb);
        let t = std::thread::spawn(move || {
            assert!(rb2.wait_for_space(200)); // needs flushed >= 100
            rb2.write(100, &[2; 100]);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rb.filled(), 100, "writer must not proceed before flush");
        rb.mark_flushed(100);
        t.join().unwrap();
        assert_eq!(rb.filled(), 200);
    }

    #[test]
    fn wait_filled_times_out() {
        let rb = RingBuffer::new(64, 0);
        let got = rb.wait_filled(0, Duration::from_millis(5));
        assert_eq!(got, 0);
    }

    #[test]
    fn space_waiter_wake_latency_is_precise() {
        // Regression: space waiters used to poll on a 10ms timeout, so a
        // blocked writer woke up to 10ms after space freed. With precise
        // notifications the median wake must sit far below that.
        const ROUNDS: usize = 15;
        let mut latencies = Vec::with_capacity(ROUNDS);
        for _ in 0..ROUNDS {
            let rb = std::sync::Arc::new(RingBuffer::new(100, 0));
            rb.write(0, &[1; 100]);
            let rb2 = std::sync::Arc::clone(&rb);
            let t = std::thread::spawn(move || {
                assert!(rb2.wait_for_space(200));
                std::time::Instant::now()
            });
            // Let the waiter park.
            std::thread::sleep(Duration::from_millis(2));
            let released = std::time::Instant::now();
            rb.mark_flushed(100);
            let woke = t.join().unwrap();
            latencies.push(woke.duration_since(released));
        }
        latencies.sort();
        let median = latencies[ROUNDS / 2];
        assert!(
            median < Duration::from_millis(5),
            "median wake latency {median:?} suggests polling, not precise wakeups"
        );
    }

    #[test]
    fn poison_unblocks_space_waiters() {
        let rb = std::sync::Arc::new(RingBuffer::new(100, 0));
        rb.write(0, &[1; 100]);
        let rb2 = std::sync::Arc::clone(&rb);
        let t = std::thread::spawn(move || rb2.wait_for_space(200));
        std::thread::sleep(Duration::from_millis(20));
        rb.poison();
        assert!(!t.join().unwrap(), "poisoned wait must report failure");
        assert!(!rb.wait_for_space(120), "fast path also observes poison");
        assert!(rb.is_poisoned());
    }
}
