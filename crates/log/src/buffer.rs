//! The centralized log ring buffer.
//!
//! Logical LSN offsets map directly onto ring positions (`offset % cap`),
//! so a reservation made with the global `fetch_add` already names its
//! buffer space — no further coordination is needed to find where to
//! copy. Writers copy their pre-serialized block and mark the range
//! *filled*; the flusher merges out-of-order fills into a contiguous
//! watermark it can drain. Dead-zone ranges (which map to no disk
//! location) are marked filled without a copy so they never stall the
//! watermark.
//!
//! # Lock-free completion tracking (the availability ring)
//!
//! `mark_filled` is on the commit hot path — once per transaction, plus
//! one per skip record and dead zone — and must not serialize committing
//! threads (§3.3: after the single `fetch_add`, a committer touches no
//! shared latches). Completion is therefore tracked by a fixed array of
//! per-slot atomic *generation stamps*, one [`u32`] per
//! [`MIN_BLOCK_LEN`] bytes of capacity:
//!
//! * Every reservation is a `MIN_BLOCK_LEN`-aligned range of the
//!   monotonic logical offset space, so a fill covers an exact run of
//!   slots. Logical slot number `s = offset / MIN_BLOCK_LEN` maps to
//!   array index `s % nslots` and wrap generation `s / nslots`.
//! * A writer marks its range filled by storing `generation + 1` into
//!   each covered slot with `Release` ordering (`+ 1` so the initial
//!   zero never matches). A handful of release stores — no lock, no
//!   allocation, no shared cache-line writes beyond slots adjacent to
//!   its own range.
//! * The flusher (the only consumer) advances the contiguous `filled`
//!   watermark by scanning forward from its last position while slot
//!   stamps equal the expected generation ([`RingBuffer::advance_filled`]).
//!   The `Acquire` load of a matching stamp synchronizes with the
//!   writer's `Release` store, which in turn was program-ordered after
//!   the byte copy — so everything below the watermark is safely
//!   readable by [`RingBuffer::read_range`].
//!
//! Soundness of the single stamp word per slot rests on two invariants:
//! reservations are disjoint (the `fetch_add` hands each offset out
//! once), and a slot's previous generation is already *flushed* before a
//! writer can stamp the next one (writers call
//! [`RingBuffer::wait_for_space`] first, and `flushed ≥` the slot's old
//! range implies the scan consumed the old stamp). A stamp is therefore
//! written exactly once per generation — enforced by a debug assertion —
//! and the scanner can never confuse generations: a stale stamp simply
//! stops the scan.
//!
//! # Parked-waiter condvar protocol
//!
//! The remaining mutex guards only the two condvars and is touched
//! *only when someone is actually parked*. Wakers run a Dekker-style
//! handshake: publish state (slot stamps / `flushed`) with a `SeqCst`
//! fence, then check an atomic waiter count and lock + notify only if it
//! is non-zero. Sleepers register their count (and re-check the
//! condition) while holding the mutex, separated from the re-check by a
//! `SeqCst` fence. Either the waker observes the registered sleeper and
//! notifies under the mutex (no lost wakeup: notification happens while
//! the sleeper holds the mutex), or the sleeper's re-check observes the
//! waker's published state and never sleeps. On the uncontended path,
//! `mark_filled` and `mark_flushed` never touch the mutex at all.

use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::records::MIN_BLOCK_LEN;

/// Bytes tracked per availability-ring slot.
const SLOT: u64 = MIN_BLOCK_LEN as u64;

pub struct RingBuffer {
    cap: u64,
    data: Box<[u8]>,
    /// Per-slot fill stamps: slot `s % nslots` holds `s / nslots + 1`
    /// once logical bytes `[s*SLOT, (s+1)*SLOT)` are filled.
    slots: Box<[AtomicU32]>,
    nslots: u64,
    /// Contiguous prefix of the LSN space that has been filled.
    /// Advanced only by the consumer (the flusher) via the slot scan.
    filled: AtomicU64,
    /// Prefix that the flusher has drained to stable storage (or
    /// discarded, for dead zones / in-memory logs).
    flushed: AtomicU64,
    /// Lowest logical offset a durability waiter is parked on
    /// (`u64::MAX` when nobody waits). Maintained by the log manager's
    /// waiter registry; `mark_filled` wakes the flusher the moment a
    /// fill lands below it, regardless of batch size.
    demand: AtomicU64,
    /// Set when the flusher dies on an unrecoverable I/O error: space
    /// will never free up again, so waiters must give up.
    poisoned: AtomicBool,
    /// 1 while the consumer is parked on `filled_cv`. Writers check it
    /// (after a `SeqCst` fence) before touching the mutex.
    consumer_parked: AtomicU32,
    /// Number of writers parked on `space_cv`.
    space_waiters: AtomicU32,
    /// Cumulative count of reservations that had to park for space — the
    /// "log buffer too small / flusher too slow" back-pressure signal.
    space_waits: AtomicU64,
    /// Guards only the condvars below; never held while filling,
    /// flushing, or scanning outside the park paths.
    wake_mx: Mutex<()>,
    /// Signaled when new fills may let the consumer make progress.
    filled_cv: Condvar,
    /// Signaled when `flushed` advances (writers waiting for space).
    space_cv: Condvar,
    /// Single-consumer discipline check (debug builds only).
    #[cfg(debug_assertions)]
    consumer: Mutex<Option<std::thread::ThreadId>>,
}

// The data array is written through a raw pointer by concurrent writers
// holding disjoint reservations and read by the flusher only below the
// filled watermark; see `write_range` / `read_range` for the argument.
unsafe impl Sync for RingBuffer {}

impl RingBuffer {
    /// `cap` bytes of buffer, beginning life with watermarks at `start`
    /// (the initial LSN offset). Both must be multiples of
    /// [`MIN_BLOCK_LEN`], matching the alignment of every reservation.
    pub fn new(cap: u64, start: u64) -> RingBuffer {
        assert!(cap > 0 && cap.is_multiple_of(SLOT), "capacity must be a multiple of MIN_BLOCK_LEN");
        assert!(start.is_multiple_of(SLOT), "start offset must be block-aligned");
        let nslots = cap / SLOT;
        let slots: Vec<AtomicU32> = (0..nslots).map(|_| AtomicU32::new(0)).collect();
        RingBuffer {
            cap,
            data: vec![0u8; cap as usize].into_boxed_slice(),
            slots: slots.into_boxed_slice(),
            nslots,
            filled: AtomicU64::new(start),
            flushed: AtomicU64::new(start),
            demand: AtomicU64::new(u64::MAX),
            poisoned: AtomicBool::new(false),
            consumer_parked: AtomicU32::new(0),
            space_waiters: AtomicU32::new(0),
            space_waits: AtomicU64::new(0),
            wake_mx: Mutex::new(()),
            filled_cv: Condvar::new(),
            space_cv: Condvar::new(),
            #[cfg(debug_assertions)]
            consumer: Mutex::new(None),
        }
    }

    pub fn capacity(&self) -> u64 {
        self.cap
    }

    /// Cumulative number of slow-path space waits (telemetry).
    #[inline]
    pub fn space_waits(&self) -> u64 {
        self.space_waits.load(Ordering::Relaxed)
    }

    /// The contiguous filled watermark as last advanced by the consumer.
    /// May lag freshly stamped fills until the consumer's next scan; see
    /// [`RingBuffer::scan_tip`] for the stamp-inclusive view.
    #[inline]
    pub fn filled(&self) -> u64 {
        self.filled.load(Ordering::Acquire)
    }

    #[inline]
    pub fn flushed(&self) -> u64 {
        self.flushed.load(Ordering::Acquire)
    }

    /// Mark the buffer dead: the flusher will never drain it again. Wakes
    /// every waiter so they can observe the failure instead of blocking
    /// forever.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        let _guard = self.wake_mx.lock();
        self.space_cv.notify_all();
        self.filled_cv.notify_one();
    }

    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Publish the lowest durability target anyone is waiting on
    /// (`u64::MAX` when the waiter list is empty). Owned by the log
    /// manager's waiter registry, which updates it under its own lock.
    #[inline]
    pub fn set_demand(&self, lowest_target: u64) {
        self.demand.store(lowest_target, Ordering::Release);
    }

    /// Wake the consumer on behalf of a durability waiter whose target
    /// the watermark has not yet covered. A waiter calls this right
    /// after registering its demand: the fills that should satisfy it
    /// (typically the waiter's own, completed just before) may have
    /// happened before the demand was visible, in which case
    /// `mark_filled` stayed quiet. If `filled` already covers the
    /// target, the consumer has scanned past it and the flush covering
    /// it is already underway — no wake needed.
    pub fn kick_if_filled(&self, target: u64) {
        fence(Ordering::SeqCst);
        if self.filled.load(Ordering::Acquire) < target {
            self.wake_consumer();
        }
    }

    /// Notify the consumer if (and only if) it is parked. Callers must
    /// have published the state the consumer will re-check *before* a
    /// `SeqCst` fence that precedes this call.
    fn wake_consumer(&self) {
        if self.consumer_parked.load(Ordering::Relaxed) != 0 {
            let _guard = self.wake_mx.lock();
            self.filled_cv.notify_one();
        }
    }

    /// Block until the ring can hold bytes up to logical offset `end`
    /// (i.e. `end - flushed <= cap`). Called once per reservation; in the
    /// common case (log buffer not full) this is a single atomic load.
    /// Returns `false` if the buffer was poisoned while (or before)
    /// waiting — the space will never become available.
    ///
    /// Parks on precise `space_cv` notifications: `mark_flushed`
    /// publishes the watermark, fences, and notifies when the waiter
    /// count is non-zero; `poison` wakes everyone. No poll timeout.
    #[must_use]
    pub fn wait_for_space(&self, end: u64) -> bool {
        if end.saturating_sub(self.flushed()) <= self.cap {
            return !self.is_poisoned();
        }
        let mut guard = self.wake_mx.lock();
        self.space_waiters.fetch_add(1, Ordering::Relaxed);
        self.space_waits.fetch_add(1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let ok = loop {
            if self.is_poisoned() {
                break false;
            }
            if end.saturating_sub(self.flushed()) <= self.cap {
                break true;
            }
            self.space_cv.wait(&mut guard);
        };
        self.space_waiters.fetch_sub(1, Ordering::Relaxed);
        ok
    }

    /// Copy `bytes` into the ring at logical offset `offset` and mark the
    /// range filled. The caller must own the reservation for
    /// `offset..offset+bytes.len()` and have waited for space.
    pub fn write(&self, offset: u64, bytes: &[u8]) {
        let len = bytes.len() as u64;
        debug_assert!(len <= self.cap);
        debug_assert!(
            offset + len <= self.flushed() + self.cap,
            "writer skipped wait_for_space: copying outside the space window \
             overwrites unflushed bytes"
        );
        let pos = (offset % self.cap) as usize;
        let first = std::cmp::min(bytes.len(), self.cap as usize - pos);
        // SAFETY: reservations hand out disjoint logical ranges, and a
        // range's ring bytes are not read by the flusher until the writer
        // publishes them via mark_filled (Release). So this region is
        // exclusively ours for the duration of the copy.
        unsafe {
            let base = self.data.as_ptr() as *mut u8;
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), base.add(pos), first);
            if first < bytes.len() {
                std::ptr::copy_nonoverlapping(bytes.as_ptr().add(first), base, bytes.len() - first);
            }
        }
        self.mark_filled(offset, len);
    }

    /// Copy `header` into the ring at logical offset `offset`, then mark
    /// the whole `offset..offset+len` range filled in a *single* stamping
    /// pass. Used for skip blocks: the bytes past the header are padding
    /// nobody decodes, but header and padding must become visible to the
    /// consumer atomically — a two-step fill would let the durable
    /// watermark freeze between the header and its padding, leaving a
    /// skip header on disk whose advertised length was never covered.
    pub fn write_prefix_and_fill(&self, offset: u64, header: &[u8], len: u64) {
        debug_assert!(header.len() as u64 <= len && len <= self.cap);
        debug_assert!(
            offset + len <= self.flushed() + self.cap,
            "writer skipped wait_for_space"
        );
        let pos = (offset % self.cap) as usize;
        let first = std::cmp::min(header.len(), self.cap as usize - pos);
        // SAFETY: same argument as `write` — the reservation owns this
        // range and nothing reads it until the mark_filled below.
        unsafe {
            let base = self.data.as_ptr() as *mut u8;
            std::ptr::copy_nonoverlapping(header.as_ptr(), base.add(pos), first);
            if first < header.len() {
                std::ptr::copy_nonoverlapping(
                    header.as_ptr().add(first),
                    base,
                    header.len() - first,
                );
            }
        }
        self.mark_filled(offset, len);
    }

    /// Reset the ring to begin a new life at logical offset `start`,
    /// clearing the poison flag: every slot stamp is zeroed and both
    /// watermarks jump to `start`. Only sound when fully quiesced — no
    /// outstanding reservations, no running consumer (the resume path
    /// joins the flusher and drains writers first).
    pub fn reset(&self, start: u64) {
        assert!(start.is_multiple_of(SLOT), "reset offset must be block-aligned");
        for s in self.slots.iter() {
            s.store(0, Ordering::Relaxed);
        }
        self.filled.store(start, Ordering::Release);
        self.flushed.store(start, Ordering::Release);
        self.demand.store(u64::MAX, Ordering::Release);
        self.poisoned.store(false, Ordering::Release);
        // The next flusher incarnation is a fresh thread; let it claim
        // the single-consumer role.
        #[cfg(debug_assertions)]
        {
            *self.consumer.lock() = None;
        }
        fence(Ordering::SeqCst);
    }

    /// Mark `offset..offset+len` filled (without copying, for dead
    /// zones). Lock-free: a release store per covered slot, one `SeqCst`
    /// fence, and a mutex touch only when the consumer is parked *and*
    /// this fill matters to it (a durability target lies at or above
    /// `offset`, or a drain-worthy batch has accumulated).
    ///
    /// The caller must have won [`RingBuffer::wait_for_space`] for the
    /// *entire* range: a slot may carry generation `g+1` only after its
    /// generation-`g` occupant was flushed, so stamping outside the
    /// space window overwrites an unconsumed stamp and stalls the
    /// watermark permanently.
    pub fn mark_filled(&self, offset: u64, len: u64) {
        debug_assert!(offset.is_multiple_of(SLOT) && len.is_multiple_of(SLOT), "fills are block-aligned");
        debug_assert!(len > 0 && len <= self.cap);
        // `flushed` only advances, so a writer that legitimately waited
        // can never trip this; a writer that skipped the wait almost
        // always will.
        debug_assert!(
            offset + len <= self.flushed.load(Ordering::Relaxed) + self.cap,
            "mark_filled outside the space window: [{:#x}, {:#x}) with flushed {:#x}, cap {:#x}",
            offset,
            offset + len,
            self.flushed.load(Ordering::Relaxed),
            self.cap
        );
        let first = offset / SLOT;
        let last = (offset + len) / SLOT;
        // Stamp in *reverse* order: the consumer's forward scan admits a
        // range only once its first slot is stamped, and that stamp is
        // release-ordered after every later slot's — so one fill call is
        // all-or-nothing to the scan. The filled (and hence durable)
        // watermark can therefore freeze only between fills, never
        // inside a block, which the degraded-mode resume path relies on
        // when it writes skip blocks from the durable frontier.
        for s in (first..last).rev() {
            let idx = (s % self.nslots) as usize;
            let generation = s / self.nslots + 1;
            debug_assert!(generation <= u64::from(u32::MAX), "slot generation overflow");
            let stamp = generation as u32;
            if cfg!(debug_assertions) {
                // Double-fill detector: a slot is stamped exactly once
                // per wrap generation (reservations are disjoint and the
                // previous generation was flushed before ours started).
                let prev = self.slots[idx].swap(stamp, Ordering::Release);
                debug_assert!(
                    prev < stamp,
                    "double fill at offset {:#x} (generation {stamp}, slot already {prev})",
                    s * SLOT
                );
            } else {
                self.slots[idx].store(stamp, Ordering::Release);
            }
        }
        // Wake the consumer *immediately* when this fill lands below a
        // registered durability target: a synchronous committer is
        // parked on a range this fill may complete, and every
        // microsecond of flusher sleep is added commit latency. (Any
        // fill at or above the target cannot be the one that completes
        // the contiguous prefix up to it.) Without demand, wake only
        // when a meaningful batch accumulated — the periodic timeout
        // drains the idle tail (group commit); a wake per commit would
        // cost a scheduler round trip per transaction.
        fence(Ordering::SeqCst);
        let end = offset + len;
        let demand = self.demand.load(Ordering::Relaxed);
        if (demand != u64::MAX && offset < demand)
            || end.saturating_sub(self.flushed.load(Ordering::Relaxed)) >= self.cap / 4
        {
            self.wake_consumer();
        }
    }

    /// Consumer side: advance the contiguous `filled` watermark over
    /// every slot stamped with its expected generation, starting from
    /// the last position. Returns the (possibly unchanged) watermark.
    pub fn advance_filled(&self) -> u64 {
        self.assert_single_consumer();
        // Relaxed: only the consumer stores `filled`.
        let start = self.filled.load(Ordering::Relaxed);
        let mut cur = start;
        loop {
            let s = cur / SLOT;
            let idx = (s % self.nslots) as usize;
            let stamp = (s / self.nslots + 1) as u32;
            if self.slots[idx].load(Ordering::Acquire) != stamp {
                break;
            }
            cur += SLOT;
        }
        if cur != start {
            self.filled.store(cur, Ordering::Release);
        }
        cur
    }

    /// Stamp-inclusive watermark estimate for *non-consumer* threads: a
    /// read-only scan from `filled` that does not publish its result
    /// (the consumer owns `filled`). Used by `LogManager::sync` to name
    /// "everything filled so far" without racing the flusher.
    pub fn scan_tip(&self) -> u64 {
        let mut cur = self.filled.load(Ordering::Acquire);
        loop {
            let s = cur / SLOT;
            let idx = (s % self.nslots) as usize;
            let stamp = (s / self.nslots + 1) as u32;
            if self.slots[idx].load(Ordering::Acquire) != stamp {
                break;
            }
            cur += SLOT;
        }
        cur
    }

    /// Consumer side: wait until the watermark scan passes `from` or the
    /// timeout elapses; returns the current filled watermark.
    pub fn wait_filled(&self, from: u64, timeout: Duration) -> u64 {
        let cur = self.advance_filled();
        if cur > from {
            return cur;
        }
        let mut guard = self.wake_mx.lock();
        self.consumer_parked.store(1, Ordering::Relaxed);
        // Dekker handshake with `mark_filled`: publish that we are
        // parked, then re-scan. Either the re-scan sees the stamps of
        // any fill whose wake-check preceded our registration, or the
        // filler sees `consumer_parked == 1` and notifies under the
        // mutex we hold.
        fence(Ordering::SeqCst);
        let cur = self.advance_filled();
        if cur > from {
            self.consumer_parked.store(0, Ordering::Relaxed);
            return cur;
        }
        self.filled_cv.wait_for(&mut guard, timeout);
        self.consumer_parked.store(0, Ordering::Relaxed);
        drop(guard);
        self.advance_filled()
    }

    /// Flusher side: hand the bytes of `range` (all below the filled
    /// watermark) to `sink` in at most two slices (ring wrap).
    ///
    /// # Panics
    /// If the range is not entirely filled or longer than the capacity.
    pub fn read_range(&self, start: u64, end: u64, mut sink: impl FnMut(&[u8])) {
        assert!(end <= self.filled());
        assert!(end - start <= self.cap);
        if start == end {
            return;
        }
        let pos = (start % self.cap) as usize;
        let len = (end - start) as usize;
        let first = std::cmp::min(len, self.cap as usize - pos);
        // SAFETY: below the filled watermark no writer touches these
        // bytes (reservations are monotonic and disjoint, and their next
        // wrap generation waits for `flushed` to pass this one), and the
        // watermark scan's Acquire loads of the slot stamps synchronized
        // with the writers' Release publication of the copied bytes.
        unsafe {
            let base = self.data.as_ptr();
            sink(std::slice::from_raw_parts(base.add(pos), first));
            if first < len {
                sink(std::slice::from_raw_parts(base, len - first));
            }
        }
    }

    /// Flusher side: advance the flushed watermark and wake space
    /// waiters. Publishes the watermark, fences, then notifies only if a
    /// waiter registered itself — the Dekker handshake mirrored in
    /// [`RingBuffer::wait_for_space`] makes the wakeup precise without
    /// an unconditional mutex acquisition per flush batch.
    pub fn mark_flushed(&self, to: u64) {
        debug_assert!(to <= self.filled());
        self.flushed.store(to, Ordering::Release);
        fence(Ordering::SeqCst);
        if self.space_waiters.load(Ordering::Relaxed) != 0 {
            let _guard = self.wake_mx.lock();
            self.space_cv.notify_all();
        }
    }

    /// Debug check that exactly one thread ever consumes (advances the
    /// watermark / parks on `filled_cv`): the availability ring's plain
    /// `filled` store and the `notify_one` wake both assume it.
    #[inline]
    fn assert_single_consumer(&self) {
        #[cfg(debug_assertions)]
        {
            let me = std::thread::current().id();
            let mut owner = self.consumer.lock();
            match *owner {
                None => *owner = Some(me),
                Some(t) => debug_assert_eq!(
                    t, me,
                    "RingBuffer has a single consumer; a second thread ran the watermark scan"
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test helper: scan, then report the watermark (the consumer role).
    fn filled_now(rb: &RingBuffer) -> u64 {
        rb.advance_filled()
    }

    #[test]
    fn in_order_fills_advance_watermark() {
        let rb = RingBuffer::new(1024, 0);
        assert_eq!(rb.capacity(), 1024);
        rb.write(0, &[1; 96]);
        assert_eq!(filled_now(&rb), 96);
        rb.write(96, &[2; 64]);
        assert_eq!(filled_now(&rb), 160);
    }

    #[test]
    fn out_of_order_fills_merge() {
        let rb = RingBuffer::new(1024, 0);
        rb.write(96, &[2; 64]);
        assert_eq!(filled_now(&rb), 0);
        rb.mark_filled(160, 32); // dead zone, also pending
        rb.write(0, &[1; 96]);
        assert_eq!(filled_now(&rb), 192);
    }

    #[test]
    fn scan_tip_sees_stamps_without_publishing() {
        let rb = RingBuffer::new(1024, 0);
        rb.write(0, &[3; 64]);
        assert_eq!(rb.scan_tip(), 64);
        // The consumer-owned watermark is untouched by the read-only scan.
        assert_eq!(rb.filled(), 0);
        assert_eq!(filled_now(&rb), 64);
    }

    #[test]
    fn read_range_sees_written_bytes_across_wrap() {
        let rb = RingBuffer::new(128, 0);
        rb.write(0, &[7; 96]);
        assert_eq!(filled_now(&rb), 96);
        rb.read_range(0, 96, |s| assert!(s.iter().all(|&b| b == 7)));
        rb.mark_flushed(96);
        // This write wraps: positions 96..128 then 0..64.
        rb.write(96, &[9; 96]);
        assert_eq!(filled_now(&rb), 192);
        let mut total = 0;
        let mut chunks = 0;
        rb.read_range(96, 192, |s| {
            assert!(s.iter().all(|&b| b == 9));
            total += s.len();
            chunks += 1;
        });
        assert_eq!(total, 96);
        assert_eq!(chunks, 2);
    }

    #[test]
    fn wait_for_space_blocks_until_flush() {
        let rb = std::sync::Arc::new(RingBuffer::new(96, 0));
        rb.write(0, &[1; 96]);
        assert_eq!(filled_now(&rb), 96);
        let rb2 = std::sync::Arc::clone(&rb);
        let t = std::thread::spawn(move || {
            assert!(rb2.wait_for_space(192)); // needs flushed >= 96
            rb2.write(96, &[2; 96]);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rb.scan_tip(), 96, "writer must not proceed before flush");
        rb.mark_flushed(96);
        t.join().unwrap();
        assert_eq!(filled_now(&rb), 192);
    }

    #[test]
    fn wait_filled_times_out() {
        let rb = RingBuffer::new(64, 0);
        let got = rb.wait_filled(0, Duration::from_millis(5));
        assert_eq!(got, 0);
    }

    #[test]
    fn space_waiter_wake_latency_is_precise() {
        // Regression: space waiters used to poll on a 10ms timeout, so a
        // blocked writer woke up to 10ms after space freed. With precise
        // notifications the median wake must sit far below that — and
        // the waiter-count-gated protocol must not have reintroduced a
        // lost-wakeup window.
        const ROUNDS: usize = 15;
        let mut latencies = Vec::with_capacity(ROUNDS);
        for _ in 0..ROUNDS {
            let rb = std::sync::Arc::new(RingBuffer::new(96, 0));
            rb.write(0, &[1; 96]);
            rb.advance_filled();
            let rb2 = std::sync::Arc::clone(&rb);
            let t = std::thread::spawn(move || {
                assert!(rb2.wait_for_space(192));
                std::time::Instant::now()
            });
            // Let the waiter park.
            std::thread::sleep(Duration::from_millis(2));
            let released = std::time::Instant::now();
            rb.mark_flushed(96);
            let woke = t.join().unwrap();
            latencies.push(woke.duration_since(released));
        }
        latencies.sort();
        let median = latencies[ROUNDS / 2];
        assert!(
            median < Duration::from_millis(5),
            "median wake latency {median:?} suggests polling, not precise wakeups"
        );
    }

    #[test]
    fn parked_consumer_woken_by_demand_covering_fill() {
        // The filled-side analogue of the space-waiter latency test: a
        // consumer parked with a long timeout must be woken promptly by
        // a fill below the registered demand — the precise-wakeup
        // guarantee that survived the lock removal.
        const ROUNDS: usize = 10;
        let mut latencies = Vec::with_capacity(ROUNDS);
        for round in 0..ROUNDS {
            let rb = std::sync::Arc::new(RingBuffer::new(1024, 0));
            rb.set_demand(32);
            let rb2 = std::sync::Arc::clone(&rb);
            let t = std::thread::spawn(move || {
                let got = rb2.wait_filled(0, Duration::from_secs(5));
                (got, std::time::Instant::now())
            });
            // Let the consumer park.
            std::thread::sleep(Duration::from_millis(2));
            let released = std::time::Instant::now();
            rb.mark_filled(0, 32);
            let (got, woke) = t.join().unwrap();
            assert_eq!(got, 32, "round {round}: consumer must observe the fill");
            latencies.push(woke.duration_since(released));
        }
        latencies.sort();
        let median = latencies[ROUNDS / 2];
        assert!(
            median < Duration::from_millis(50),
            "median consumer wake latency {median:?}: demand-covering fill failed to wake"
        );
    }

    #[test]
    fn idle_fill_does_not_wake_parked_consumer() {
        // Without demand and below the batch threshold, a fill leaves
        // the consumer parked until its timeout — group-commit batching.
        let rb = std::sync::Arc::new(RingBuffer::new(1024, 0));
        let rb2 = std::sync::Arc::clone(&rb);
        let t = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            let got = rb2.wait_filled(0, Duration::from_millis(80));
            (got, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(5));
        rb.mark_filled(0, 32); // 32 < cap/4, demand = MAX
        let (got, waited) = t.join().unwrap();
        assert_eq!(got, 32, "the timeout scan still observes the fill");
        assert!(
            waited >= Duration::from_millis(60),
            "consumer woke after {waited:?}: an idle fill should not have notified"
        );
    }

    #[test]
    fn poison_unblocks_space_waiters() {
        let rb = std::sync::Arc::new(RingBuffer::new(96, 0));
        rb.write(0, &[1; 96]);
        rb.advance_filled();
        let rb2 = std::sync::Arc::clone(&rb);
        let t = std::thread::spawn(move || rb2.wait_for_space(192));
        std::thread::sleep(Duration::from_millis(20));
        rb.poison();
        assert!(!t.join().unwrap(), "poisoned wait must report failure");
        assert!(!rb.wait_for_space(128), "fast path also observes poison");
        assert!(rb.is_poisoned());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double fill")]
    fn double_fill_is_detected() {
        let rb = RingBuffer::new(1024, 0);
        rb.mark_filled(64, 32);
        rb.mark_filled(64, 32); // second stamp of the same generation
    }

    #[test]
    fn generation_stamps_survive_many_wraps() {
        // Fill → drain the ring several times over; the watermark must
        // keep advancing (wrap generations never collide) and bytes must
        // read back correctly on the last lap.
        let rb = RingBuffer::new(128, 0);
        let mut off = 0u64;
        for lap in 0..9u8 {
            for _ in 0..4 {
                assert!(rb.wait_for_space(off + 32));
                rb.write(off, &[lap; 32]);
                off += 32;
            }
            assert_eq!(rb.advance_filled(), off);
            if lap == 8 {
                rb.read_range(off - 128, off, |s| assert!(s.iter().all(|&b| b == 8)));
            }
            rb.mark_flushed(off);
        }
        assert_eq!(off, 9 * 128);
    }
}
