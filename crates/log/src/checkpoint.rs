//! Checkpoint storage (§3.7).
//!
//! OID arrays are periodically copied (non-atomically — a *fuzzy*
//! checkpoint) to secondary storage. The engine serializes its snapshot
//! payload; this module stores it beside the log and records the location
//! of the most recent checkpoint in the name of an empty *marker file*,
//! exactly as the paper describes, so recovery can find it without
//! reading the log first.

use std::io::{self, Write};
use std::path::PathBuf;

use ermia_common::Lsn;

use crate::records::checksum32;

/// Magic prefix of a checkpoint payload file.
const CHECKPOINT_MAGIC: [u8; 4] = *b"ECHK";
/// magic + u64 payload length + u32 checksum.
const CHECKPOINT_HEADER_LEN: usize = 4 + 8 + 4;

/// Metadata identifying a checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// LSN at which the fuzzy snapshot began: recovery replays the log
    /// from here.
    pub begin: Lsn,
}

/// Reads and writes checkpoint payloads + marker files in a directory.
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<CheckpointStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        // A leftover `chk-tmp` means a checkpoint died mid-write (before
        // its rename); it is garbage from a previous incarnation.
        let tmp = dir.join("chk-tmp");
        if tmp.exists() {
            std::fs::remove_file(&tmp)?;
        }
        Ok(CheckpointStore { dir })
    }

    fn payload_path(&self, begin: Lsn) -> PathBuf {
        self.dir.join(format!("chk-{:016x}.bin", begin.raw()))
    }

    fn marker_path(&self, begin: Lsn) -> PathBuf {
        self.dir.join(format!("chk-marker-{:016x}", begin.raw()))
    }

    /// Persist a checkpoint: payload first (framed with a magic, length
    /// and checksum so a torn or bit-rotted file is detectable), then the
    /// marker (the marker's existence implies a complete payload).
    pub fn write(&self, meta: CheckpointMeta, payload: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join("chk-tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&CHECKPOINT_MAGIC)?;
            f.write_all(&(payload.len() as u64).to_le_bytes())?;
            f.write_all(&checksum32(payload).to_le_bytes())?;
            f.write_all(payload)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.payload_path(meta.begin))?;
        std::fs::File::create(self.marker_path(meta.begin))?.sync_data()?;
        Ok(())
    }

    /// Decode and verify one framed payload file; `None` if the file is
    /// missing, truncated, or fails its checksum.
    fn read_verified(&self, begin: Lsn) -> Option<Vec<u8>> {
        let raw = std::fs::read(self.payload_path(begin)).ok()?;
        if raw.len() < CHECKPOINT_HEADER_LEN || raw[..4] != CHECKPOINT_MAGIC {
            return None;
        }
        let len = u64::from_le_bytes(raw[4..12].try_into().unwrap()) as usize;
        let sum = u32::from_le_bytes(raw[12..16].try_into().unwrap());
        let body = &raw[CHECKPOINT_HEADER_LEN..];
        if body.len() != len || checksum32(body) != sum {
            return None;
        }
        Some(body.to_vec())
    }

    /// Find the most recent checkpoint whose payload verifies. A corrupt
    /// or incomplete newest checkpoint falls back to the next-older one —
    /// recovery then simply replays more of the log.
    pub fn latest(&self) -> io::Result<Option<(CheckpointMeta, Vec<u8>)>> {
        let mut marked: Vec<Lsn> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(hex) = name.strip_prefix("chk-marker-") {
                if let Ok(raw) = u64::from_str_radix(hex, 16) {
                    marked.push(Lsn::from_raw(raw));
                }
            }
        }
        marked.sort_unstable();
        for &begin in marked.iter().rev() {
            if let Some(payload) = self.read_verified(begin) {
                return Ok(Some((CheckpointMeta { begin }, payload)));
            }
        }
        Ok(None)
    }

    /// Drop all but the most recent checkpoint (background housekeeping).
    pub fn prune(&self) -> io::Result<usize> {
        let Some((latest, _)) = self.latest()? else { return Ok(0) };
        let mut removed = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = name
                .strip_prefix("chk-marker-")
                .or_else(|| name.strip_prefix("chk-").map(|s| s.trim_end_matches(".bin")))
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .is_some_and(|raw| Lsn::from_raw(raw) < latest.begin);
            if stale {
                std::fs::remove_file(entry.path())?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ermia-chk-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_then_latest() {
        let dir = tmpdir("roundtrip");
        let store = CheckpointStore::new(&dir).unwrap();
        assert!(store.latest().unwrap().is_none());
        store.write(CheckpointMeta { begin: Lsn::from_parts(100, 0) }, b"snapshot-a").unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(200, 0) }, b"snapshot-b").unwrap();
        let (meta, payload) = store.latest().unwrap().unwrap();
        assert_eq!(meta.begin, Lsn::from_parts(200, 0));
        assert_eq!(payload, b"snapshot-b");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = tmpdir("corrupt");
        let store = CheckpointStore::new(&dir).unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(100, 0) }, b"good-old").unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(200, 0) }, b"bad-new").unwrap();
        // Flip a payload byte in the newest checkpoint: checksum mismatch.
        let path = store.payload_path(Lsn::from_parts(200, 0));
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let (meta, payload) = store.latest().unwrap().unwrap();
        assert_eq!(meta.begin, Lsn::from_parts(100, 0), "must fall back past the corrupt one");
        assert_eq!(payload, b"good-old");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_or_missing_payload_falls_back() {
        let dir = tmpdir("truncated");
        let store = CheckpointStore::new(&dir).unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(10, 0) }, b"intact").unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(20, 0) }, b"torn-payload").unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(30, 0) }, b"gone").unwrap();
        // Truncate one payload mid-body, delete another outright (marker
        // survives in both cases — the failure modes of a dying disk).
        let torn = store.payload_path(Lsn::from_parts(20, 0));
        let raw = std::fs::read(&torn).unwrap();
        std::fs::write(&torn, &raw[..raw.len() - 4]).unwrap();
        std::fs::remove_file(store.payload_path(Lsn::from_parts(30, 0))).unwrap();
        let (meta, payload) = store.latest().unwrap().unwrap();
        assert_eq!(meta.begin, Lsn::from_parts(10, 0));
        assert_eq!(payload, b"intact");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_checkpoints_corrupt_means_none() {
        let dir = tmpdir("allbad");
        let store = CheckpointStore::new(&dir).unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(5, 0) }, b"x").unwrap();
        std::fs::write(store.payload_path(Lsn::from_parts(5, 0)), b"junk").unwrap();
        assert!(store.latest().unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_is_cleaned_on_open() {
        let dir = tmpdir("tmpclean");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("chk-tmp"), b"half-written checkpoint").unwrap();
        let store = CheckpointStore::new(&dir).unwrap();
        assert!(!dir.join("chk-tmp").exists(), "stale tmp must be removed");
        assert!(store.latest().unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_latest() {
        let dir = tmpdir("prune");
        let store = CheckpointStore::new(&dir).unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(1, 0) }, b"a").unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(2, 0) }, b"b").unwrap();
        let removed = store.prune().unwrap();
        assert_eq!(removed, 2); // old payload + old marker
        let (meta, payload) = store.latest().unwrap().unwrap();
        assert_eq!(meta.begin, Lsn::from_parts(2, 0));
        assert_eq!(payload, b"b");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
