//! Checkpoint storage (§3.7).
//!
//! OID arrays are periodically copied (non-atomically — a *fuzzy*
//! checkpoint) to secondary storage. The engine serializes its snapshot
//! payload; this module stores it beside the log and records the location
//! of the most recent checkpoint in the name of an empty *marker file*,
//! exactly as the paper describes, so recovery can find it without
//! reading the log first.

use std::io::{self, Write};
use std::path::PathBuf;

use ermia_common::Lsn;

/// Metadata identifying a checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// LSN at which the fuzzy snapshot began: recovery replays the log
    /// from here.
    pub begin: Lsn,
}

/// Reads and writes checkpoint payloads + marker files in a directory.
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<CheckpointStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    fn payload_path(&self, begin: Lsn) -> PathBuf {
        self.dir.join(format!("chk-{:016x}.bin", begin.raw()))
    }

    fn marker_path(&self, begin: Lsn) -> PathBuf {
        self.dir.join(format!("chk-marker-{:016x}", begin.raw()))
    }

    /// Persist a checkpoint: payload first, then the marker (the marker's
    /// existence implies a complete payload).
    pub fn write(&self, meta: CheckpointMeta, payload: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join("chk-tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(payload)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.payload_path(meta.begin))?;
        std::fs::File::create(self.marker_path(meta.begin))?.sync_data()?;
        Ok(())
    }

    /// Find the most recent complete checkpoint, if any.
    pub fn latest(&self) -> io::Result<Option<(CheckpointMeta, Vec<u8>)>> {
        let mut best: Option<Lsn> = None;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(hex) = name.strip_prefix("chk-marker-") {
                if let Ok(raw) = u64::from_str_radix(hex, 16) {
                    let lsn = Lsn::from_raw(raw);
                    if best.is_none_or(|b| lsn > b) {
                        best = Some(lsn);
                    }
                }
            }
        }
        match best {
            Some(begin) => {
                let payload = std::fs::read(self.payload_path(begin))?;
                Ok(Some((CheckpointMeta { begin }, payload)))
            }
            None => Ok(None),
        }
    }

    /// Drop all but the most recent checkpoint (background housekeeping).
    pub fn prune(&self) -> io::Result<usize> {
        let Some((latest, _)) = self.latest()? else { return Ok(0) };
        let mut removed = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = name
                .strip_prefix("chk-marker-")
                .or_else(|| name.strip_prefix("chk-").map(|s| s.trim_end_matches(".bin")))
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .is_some_and(|raw| Lsn::from_raw(raw) < latest.begin);
            if stale {
                std::fs::remove_file(entry.path())?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ermia-chk-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_then_latest() {
        let dir = tmpdir("roundtrip");
        let store = CheckpointStore::new(&dir).unwrap();
        assert!(store.latest().unwrap().is_none());
        store.write(CheckpointMeta { begin: Lsn::from_parts(100, 0) }, b"snapshot-a").unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(200, 0) }, b"snapshot-b").unwrap();
        let (meta, payload) = store.latest().unwrap().unwrap();
        assert_eq!(meta.begin, Lsn::from_parts(200, 0));
        assert_eq!(payload, b"snapshot-b");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_latest() {
        let dir = tmpdir("prune");
        let store = CheckpointStore::new(&dir).unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(1, 0) }, b"a").unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(2, 0) }, b"b").unwrap();
        let removed = store.prune().unwrap();
        assert_eq!(removed, 2); // old payload + old marker
        let (meta, payload) = store.latest().unwrap().unwrap();
        assert_eq!(meta.begin, Lsn::from_parts(2, 0));
        assert_eq!(payload, b"b");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
