//! Checkpoint storage (§3.7).
//!
//! OID arrays are periodically copied (non-atomically — a *fuzzy*
//! checkpoint) to secondary storage. The engine serializes its snapshot
//! payload; this module stores it beside the log and records the location
//! of the most recent checkpoint in the name of an empty *marker file*,
//! exactly as the paper describes, so recovery can find it without
//! reading the log first.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use ermia_common::Lsn;

use crate::io::{FileBackend, SegmentIoFactory};
use crate::records::checksum32;

/// Magic prefix of a checkpoint payload file.
const CHECKPOINT_MAGIC: [u8; 4] = *b"ECHK";
/// magic + u64 payload length + u32 checksum.
const CHECKPOINT_HEADER_LEN: usize = 4 + 8 + 4;

/// Metadata identifying a checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// LSN at which the fuzzy snapshot began: recovery replays the log
    /// from here.
    pub begin: Lsn,
}

/// Reads and writes checkpoint payloads + marker files in a directory.
pub struct CheckpointStore {
    dir: PathBuf,
    io: Arc<dyn SegmentIoFactory>,
}

impl CheckpointStore {
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<CheckpointStore> {
        CheckpointStore::with_backend(dir, Arc::new(FileBackend))
    }

    /// Open the store with an injectable write backend ([`FaultInjector`]
    /// (crate::FaultInjector) in crash tests). Only the *write* path goes
    /// through the backend; reads use plain `std::fs`, since a recovery
    /// read never needs fault coverage beyond what corrupt files provide.
    pub fn with_backend(
        dir: impl Into<PathBuf>,
        io: Arc<dyn SegmentIoFactory>,
    ) -> io::Result<CheckpointStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        // A leftover `chk-tmp` means a checkpoint died mid-write (before
        // its rename); it is garbage from a previous incarnation.
        let tmp = dir.join("chk-tmp");
        if tmp.exists() {
            std::fs::remove_file(&tmp)?;
        }
        Ok(CheckpointStore { dir, io })
    }

    fn payload_path(&self, begin: Lsn) -> PathBuf {
        self.dir.join(format!("chk-{:016x}.bin", begin.raw()))
    }

    fn marker_path(&self, begin: Lsn) -> PathBuf {
        self.dir.join(format!("chk-marker-{:016x}", begin.raw()))
    }

    /// Persist a checkpoint: payload first (framed with a magic, length
    /// and checksum so a torn or bit-rotted file is detectable), then the
    /// marker (the marker's existence implies a complete payload).
    pub fn write(&self, meta: CheckpointMeta, payload: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join("chk-tmp");
        {
            let f = self.io.open(&tmp)?;
            // Truncate first: a reused tmp from a failed earlier attempt
            // must not leave trailing junk past this image.
            f.set_len(0)?;
            // One positional write for header + payload, so a fault plan
            // addresses the whole checkpoint image as a single write.
            let mut framed = Vec::with_capacity(CHECKPOINT_HEADER_LEN + payload.len());
            framed.extend_from_slice(&CHECKPOINT_MAGIC);
            framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            framed.extend_from_slice(&checksum32(payload).to_le_bytes());
            framed.extend_from_slice(payload);
            f.write_all_at(&framed, 0)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.payload_path(meta.begin))?;
        self.io.open(&self.marker_path(meta.begin))?.sync_data()?;
        Ok(())
    }

    /// Decode and verify one framed payload file; `None` if the file is
    /// missing, truncated, or fails its checksum.
    fn read_verified(&self, begin: Lsn) -> Option<Vec<u8>> {
        let raw = std::fs::read(self.payload_path(begin)).ok()?;
        if raw.len() < CHECKPOINT_HEADER_LEN || raw[..4] != CHECKPOINT_MAGIC {
            return None;
        }
        let len = u64::from_le_bytes(raw[4..12].try_into().unwrap()) as usize;
        let sum = u32::from_le_bytes(raw[12..16].try_into().unwrap());
        let body = &raw[CHECKPOINT_HEADER_LEN..];
        if body.len() != len || checksum32(body) != sum {
            return None;
        }
        Some(body.to_vec())
    }

    /// Find the most recent checkpoint whose payload verifies. A corrupt
    /// or incomplete newest checkpoint falls back to the next-older one —
    /// recovery then simply replays more of the log.
    pub fn latest(&self) -> io::Result<Option<(CheckpointMeta, Vec<u8>)>> {
        let mut marked: Vec<Lsn> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(hex) = name.strip_prefix("chk-marker-") {
                if let Ok(raw) = u64::from_str_radix(hex, 16) {
                    marked.push(Lsn::from_raw(raw));
                }
            }
        }
        marked.sort_unstable();
        for &begin in marked.iter().rev() {
            if let Some(payload) = self.read_verified(begin) {
                return Ok(Some((CheckpointMeta { begin }, payload)));
            }
        }
        Ok(None)
    }

    /// Drop all but the most recent checkpoint (background housekeeping).
    pub fn prune(&self) -> io::Result<usize> {
        let Some((latest, _)) = self.latest()? else { return Ok(0) };
        let mut removed = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = name
                .strip_prefix("chk-marker-")
                .or_else(|| name.strip_prefix("chk-").map(|s| s.trim_end_matches(".bin")))
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .is_some_and(|raw| Lsn::from_raw(raw) < latest.begin);
            if stale {
                std::fs::remove_file(entry.path())?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ermia-chk-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_then_latest() {
        let dir = tmpdir("roundtrip");
        let store = CheckpointStore::new(&dir).unwrap();
        assert!(store.latest().unwrap().is_none());
        store.write(CheckpointMeta { begin: Lsn::from_parts(100, 0) }, b"snapshot-a").unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(200, 0) }, b"snapshot-b").unwrap();
        let (meta, payload) = store.latest().unwrap().unwrap();
        assert_eq!(meta.begin, Lsn::from_parts(200, 0));
        assert_eq!(payload, b"snapshot-b");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = tmpdir("corrupt");
        let store = CheckpointStore::new(&dir).unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(100, 0) }, b"good-old").unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(200, 0) }, b"bad-new").unwrap();
        // Flip a payload byte in the newest checkpoint: checksum mismatch.
        let path = store.payload_path(Lsn::from_parts(200, 0));
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let (meta, payload) = store.latest().unwrap().unwrap();
        assert_eq!(meta.begin, Lsn::from_parts(100, 0), "must fall back past the corrupt one");
        assert_eq!(payload, b"good-old");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_or_missing_payload_falls_back() {
        let dir = tmpdir("truncated");
        let store = CheckpointStore::new(&dir).unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(10, 0) }, b"intact").unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(20, 0) }, b"torn-payload").unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(30, 0) }, b"gone").unwrap();
        // Truncate one payload mid-body, delete another outright (marker
        // survives in both cases — the failure modes of a dying disk).
        let torn = store.payload_path(Lsn::from_parts(20, 0));
        let raw = std::fs::read(&torn).unwrap();
        std::fs::write(&torn, &raw[..raw.len() - 4]).unwrap();
        std::fs::remove_file(store.payload_path(Lsn::from_parts(30, 0))).unwrap();
        let (meta, payload) = store.latest().unwrap().unwrap();
        assert_eq!(meta.begin, Lsn::from_parts(10, 0));
        assert_eq!(payload, b"intact");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_checkpoints_corrupt_means_none() {
        let dir = tmpdir("allbad");
        let store = CheckpointStore::new(&dir).unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(5, 0) }, b"x").unwrap();
        std::fs::write(store.payload_path(Lsn::from_parts(5, 0)), b"junk").unwrap();
        assert!(store.latest().unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_is_cleaned_on_open() {
        let dir = tmpdir("tmpclean");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("chk-tmp"), b"half-written checkpoint").unwrap();
        let store = CheckpointStore::new(&dir).unwrap();
        assert!(!dir.join("chk-tmp").exists(), "stale tmp must be removed");
        assert!(store.latest().unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_checkpoint_write_fails_and_falls_back() {
        use crate::io::{FaultInjector, FaultPlan, TornWrite};
        let dir = tmpdir("chk-torn");
        // A good checkpoint first, through the plain backend.
        CheckpointStore::new(&dir)
            .unwrap()
            .write(CheckpointMeta { begin: Lsn::from_parts(10, 0) }, b"good")
            .unwrap();
        // Now a checkpoint writer that tears its very first image write.
        let inj = FaultInjector::new(FaultPlan {
            torn_write: Some(TornWrite { at_write: 0, keep_bytes: 7 }),
            ..FaultPlan::default()
        });
        let store = CheckpointStore::with_backend(&dir, Arc::new(inj.clone())).unwrap();
        let err =
            store.write(CheckpointMeta { begin: Lsn::from_parts(20, 0) }, b"newer").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert!(inj.crashed());
        // The torn image died as `chk-tmp`: no marker, no payload file.
        assert!(dir.join("chk-tmp").exists(), "torn image is left behind as tmp");
        // A restarted store cleans the tmp and still serves the old one.
        let store = CheckpointStore::new(&dir).unwrap();
        assert!(!dir.join("chk-tmp").exists());
        let (meta, payload) = store.latest().unwrap().unwrap();
        assert_eq!(meta.begin, Lsn::from_parts(10, 0));
        assert_eq!(payload, b"good");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn silently_torn_checkpoint_with_marker_falls_back() {
        use crate::io::{FaultInjector, FaultPlan, TornWrite};
        let dir = tmpdir("chk-silent");
        CheckpointStore::new(&dir)
            .unwrap()
            .write(CheckpointMeta { begin: Lsn::from_parts(10, 0) }, b"good")
            .unwrap();
        // The storage persists only 9 bytes of the image but reports
        // success: the rename happens, the *marker is written* — the
        // worst case, a marker pointing at a corrupt payload.
        let inj = FaultInjector::new(FaultPlan {
            silent_torn_write: Some(TornWrite { at_write: 0, keep_bytes: 9 }),
            ..FaultPlan::default()
        });
        let store = CheckpointStore::with_backend(&dir, Arc::new(inj.clone())).unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(20, 0) }, b"newer").unwrap();
        assert_eq!(inj.faults_injected(), 1);
        assert!(store.marker_path(Lsn::from_parts(20, 0)).exists(), "marker exists");
        // `latest()` must catch the truncation and fall back past it.
        let (meta, payload) = store.latest().unwrap().unwrap();
        assert_eq!(meta.begin, Lsn::from_parts(10, 0), "corrupt-but-marked must be skipped");
        assert_eq!(payload, b"good");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_fsync_failure_surfaces_before_any_rename() {
        use crate::io::{FaultInjector, FaultPlan};
        let dir = tmpdir("chk-sync");
        let inj =
            FaultInjector::new(FaultPlan { fail_sync_at: Some(0), ..FaultPlan::default() });
        let store = CheckpointStore::with_backend(&dir, Arc::new(inj)).unwrap();
        assert!(store.write(CheckpointMeta { begin: Lsn::from_parts(5, 0) }, b"x").is_err());
        assert!(store.latest().unwrap().is_none(), "nothing was published");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_latest() {
        let dir = tmpdir("prune");
        let store = CheckpointStore::new(&dir).unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(1, 0) }, b"a").unwrap();
        store.write(CheckpointMeta { begin: Lsn::from_parts(2, 0) }, b"b").unwrap();
        let removed = store.prune().unwrap();
        assert_eq!(removed, 2); // old payload + old marker
        let (meta, payload) = store.latest().unwrap().unwrap();
        assert_eq!(meta.begin, Lsn::from_parts(2, 0));
        assert_eq!(payload, b"b");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
