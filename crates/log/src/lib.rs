//! Scalable centralized log manager (paper §3.3, Fig. 4).
//!
//! ERMIA's log retains the benefits of a serial "history of the world"
//! while largely avoiding the contention that normally accompanies a
//! centralized log. The four properties the paper calls out:
//!
//! 1. **Sparse communication.** Most update transactions issue exactly one
//!    global atomic `fetch_add` before committing — even across corner
//!    cases such as a full log buffer or a log file rotation.
//! 2. **Private log buffers.** Transactions maintain log records privately
//!    while in flight ([`TxLogBuffer`]) and aggregate them into one large
//!    block before inserting it into the centralized ring buffer.
//! 3. **Early commit LSNs.** A transaction acquires its commit LSN at the
//!    start of pre-commit, so all committing transactions agree on their
//!    relative commit order before any validation work happens.
//! 4. **Decoupled LSN space.** The LSN space is monotonic but not
//!    contiguous: aborted reservations become skip records, and segment
//!    races leave *dead zones* that map to no disk location.
//!
//! The key observation is that sequence numbers need only translate
//! *efficiently* to physical locations, not contiguously: an LSN packs a
//! logical offset with a modulo segment number (see [`ermia_common::Lsn`]),
//! and a constant-time segment-table lookup validates and converts LSNs to
//! file offsets.
//!
//! Durability is group commit: a background flusher drains the contiguous
//! filled prefix of the ring buffer to the segment files and advances the
//! durable-LSN watermark.
//!
//! # Storage backends and failure handling
//!
//! All segment I/O is routed through the [`SegmentIo`] trait (positional
//! `write_all_at` / `read_exact_at` plus `sync_data`), opened per segment
//! file by the [`SegmentIoFactory`] carried in [`LogConfig::io_factory`].
//! Production uses [`FileBackend`]; crash tests plug in [`FaultInjector`]
//! with a deterministic [`FaultPlan`] (fail the Nth write, tear a write
//! after K bytes, fail an fsync, exhaust a byte budget, or crash outright).
//!
//! The flusher retries transient write errors with bounded exponential
//! backoff; an unrecoverable error *poisons* the log. A poisoned log
//! freezes its durable watermark, wakes every [`LogManager::wait_durable`]
//! waiter with [`ermia_common::LogError::Poisoned`], and rejects further
//! allocations. From there the system takes one of two exits: restart and
//! recover — which truncates the log at the first hole — or degrade to
//! read-only service and later call [`LogManager::resume`], which
//! re-probes the backend, papers the never-durable gap with on-disk skip
//! blocks, and re-arms a fresh flusher. `wait_durable` is bounded by
//! [`LogConfig::wait_durable_timeout`]. The durability contract is: every
//! acknowledged commit survives recovery; unacknowledged blocks may or may
//! not, but never past the first hole.

mod blob;
mod buffer;
mod checkpoint;
mod flusher;
mod io;
mod manager;
mod records;
mod recovery;
mod segment;
mod txlog;

pub use blob::{BlobRef, BlobStore};
pub use checkpoint::{CheckpointMeta, CheckpointStore};
pub use io::{FaultInjector, FaultPlan, FileBackend, SegmentIo, SegmentIoFactory, TornWrite};
pub use manager::{LogConfig, LogManager, LogStats, Reservation};
pub use records::{
    checksum32, checksum64, BlockKind, DecideRecord, LogBlockHeader, LogRecord, LogRecordKind,
    PrepareMarker, BLOCK_HEADER_LEN, BLOCK_MAGIC, DECIDE_RECORD_LEN, MIN_BLOCK_LEN,
    PREPARE_MARKER_LEN, RECORD_HEADER_LEN,
};
pub use recovery::{LogScanner, ScannedBlock};
pub use segment::{Segment, SegmentTable};
pub use txlog::TxLogBuffer;

#[cfg(test)]
mod ring_stress;
#[cfg(test)]
mod tests;
