//! The log manager front end: LSN allocation and the commit data path.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::utils::CachePadded;
use ermia_common::{LogError, Lsn};
use parking_lot::{Condvar, Mutex};

use crate::buffer::RingBuffer;
use crate::flusher;
use crate::io::{FileBackend, SegmentIoFactory};
use crate::records::{BlockKind, LogBlockHeader, BLOCK_HEADER_LEN, MIN_BLOCK_LEN};
use crate::segment::{Segment, SegmentTable};

/// Log manager configuration.
#[derive(Clone, Debug)]
pub struct LogConfig {
    /// Directory for segment files; `None` keeps the log in memory only
    /// (useful for CC-only experiments — the paper writes to tmpfs).
    pub dir: Option<PathBuf>,
    /// Size of each segment file in bytes (multiple of 32).
    pub segment_size: u64,
    /// Centralized ring buffer capacity in bytes.
    pub buffer_size: u64,
    /// `fsync` segment files on every flush batch.
    pub fsync: bool,
    /// Flusher wakeup interval when idle.
    pub flush_interval: Duration,
    /// Storage backend opened for each segment file: [`FileBackend`] in
    /// production, a [`crate::io::FaultInjector`] in crash tests.
    pub io_factory: Arc<dyn SegmentIoFactory>,
    /// Overall cap on how long [`LogManager::wait_durable`] blocks before
    /// giving up with [`LogError::Timeout`].
    pub wait_durable_timeout: Duration,
}

impl Default for LogConfig {
    fn default() -> LogConfig {
        LogConfig {
            dir: None,
            segment_size: 256 << 20,
            buffer_size: 64 << 20,
            fsync: false,
            flush_interval: Duration::from_micros(200),
            io_factory: Arc::new(FileBackend),
            wait_durable_timeout: Duration::from_secs(30),
        }
    }
}

impl LogConfig {
    /// In-memory log with small sizes, for tests.
    pub fn in_memory() -> LogConfig {
        LogConfig { dir: None, segment_size: 16 << 20, buffer_size: 4 << 20, ..LogConfig::default() }
    }
}

/// Counters exposed for the evaluation (Fig. 10/11 instrumentation).
///
/// The per-commit counters (`allocations`, `flush_batches`,
/// `flushed_bytes`) are cache-padded: every committing worker bumps
/// `allocations`, and before padding all eight counters shared one cache
/// line, so each bump invalidated the line under every other worker and
/// the flusher. The cold counters (rotation, skip, failure paths) stay
/// unpadded.
#[derive(Debug, Default)]
pub struct LogStats {
    pub allocations: CachePadded<AtomicU64>,
    pub rotations: AtomicU64,
    pub skip_blocks: AtomicU64,
    pub dead_zone_bytes: AtomicU64,
    pub flush_batches: CachePadded<AtomicU64>,
    pub flushed_bytes: CachePadded<AtomicU64>,
    /// Transient write errors the flusher retried.
    pub flush_retries: AtomicU64,
    /// 1 once the log has been poisoned by an unrecoverable I/O error.
    pub log_poisoned: AtomicU64,
    /// Bytes of the most recent flush batch — the instantaneous
    /// group-commit batch size (flusher-owned, telemetry gauge).
    pub last_batch_bytes: AtomicU64,
}

/// One parked durability waiter. Thread-local and reused across waits, so
/// the synchronous-commit path allocates it once per thread, ever.
pub(crate) struct WaiterSlot {
    /// `true` once a flusher batch (or poison) decided this waiter's fate
    /// and notified it. Written under `mx` so the wake cannot be missed.
    woken: Mutex<bool>,
    cv: Condvar,
}

impl WaiterSlot {
    fn new() -> WaiterSlot {
        WaiterSlot { woken: Mutex::new(false), cv: Condvar::new() }
    }
}

thread_local! {
    /// Reused waiter slot: registering for durability is allocation-free
    /// after a thread's first synchronous commit.
    static WAITER_SLOT: Arc<WaiterSlot> = Arc::new(WaiterSlot::new());
}

/// Registry of parked durability waiters, min-ordered by target offset.
///
/// The map key pairs the target with a unique sequence number so multiple
/// waiters on the same offset coexist. The lowest target is mirrored into
/// [`RingBuffer::set_demand`] whenever the front of the map changes, which
/// is what lets `mark_filled` wake the flusher the instant a waiter's
/// block is completely in the buffer.
#[derive(Default)]
pub(crate) struct WaiterRegistry {
    map: Mutex<std::collections::BTreeMap<(u64, u64), Arc<WaiterSlot>>>,
    seq: AtomicU64,
}

pub(crate) struct LogInner {
    pub(crate) cfg: LogConfig,
    /// The single global allocation point: the logical LSN offset.
    pub(crate) next: CachePadded<AtomicU64>,
    pub(crate) segments: SegmentTable,
    pub(crate) buffer: RingBuffer,
    /// Offset up to which the log is durable (flusher-owned).
    pub(crate) durable: AtomicU64,
    pub(crate) waiters: WaiterRegistry,
    pub(crate) stats: LogStats,
    pub(crate) stop: AtomicBool,
    /// Set by the flusher when it dies on an unrecoverable I/O error.
    pub(crate) poisoned: AtomicBool,
    pub(crate) poison_cause: Mutex<Option<LogError>>,
    /// Reservations currently alive (claimed but not yet dropped). The
    /// resume path drains this to zero — while `poisoned` is still up —
    /// before it rewrites the allocation frontier: any allocator either
    /// observed the poison (and never touched `next`) or joined this set
    /// first, so an empty set with the poison flag raised freezes `next`.
    pub(crate) outstanding: AtomicU64,
    /// Invoked from the flusher thread at the moment the log poisons; the
    /// database layer hooks its transition to degraded read-only mode here.
    pub(crate) poison_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
    /// Offset ranges `(lo, hi]` a degraded-mode resume overwrote with
    /// on-disk skip blocks. Durability targets inside them can never be
    /// honored even though the watermark has moved past them.
    pub(crate) resume_gaps: Mutex<Vec<(u64, u64)>>,
    /// Highest `hi` of any resume gap (0 = none): one load keeps the
    /// common `wait_durable` path off the gap lock entirely.
    pub(crate) resume_gap_hi: AtomicU64,
}

impl LogInner {
    /// Register `slot` as waiting for the durable watermark to reach
    /// `target`; returns the registration key for deregistration. Resets
    /// the slot's woken flag and republishes the lowest demand.
    fn register_waiter(&self, target: u64, slot: &Arc<WaiterSlot>) -> (u64, u64) {
        let key = (target, self.waiters.seq.fetch_add(1, Ordering::Relaxed));
        let mut map = self.waiters.map.lock();
        *slot.woken.lock() = false;
        map.insert(key, Arc::clone(slot));
        let lowest = map.first_key_value().map(|(k, _)| k.0).unwrap_or(u64::MAX);
        self.buffer.set_demand(lowest);
        key
    }

    /// Remove a registration (timeout / poison / fast-path exit). The
    /// flusher may already have popped it — that is fine.
    fn deregister_waiter(&self, key: (u64, u64)) {
        let mut map = self.waiters.map.lock();
        map.remove(&key);
        let lowest = map.first_key_value().map(|(k, _)| k.0).unwrap_or(u64::MAX);
        self.buffer.set_demand(lowest);
    }

    /// Flusher side: pop every waiter whose target the new durable
    /// watermark covers and wake exactly those (no thundering herd).
    pub(crate) fn notify_durable(&self, durable: u64) {
        let ready: Vec<Arc<WaiterSlot>> = {
            let mut map = self.waiters.map.lock();
            let mut ready = Vec::new();
            while let Some((&key, _)) = map.first_key_value() {
                if key.0 > durable {
                    break;
                }
                ready.push(map.remove(&key).expect("checked front"));
            }
            let lowest = map.first_key_value().map(|(k, _)| k.0).unwrap_or(u64::MAX);
            self.buffer.set_demand(lowest);
            ready
        };
        for slot in ready {
            *slot.woken.lock() = true;
            slot.cv.notify_one();
        }
    }

    /// Poison side: wake *every* parked waiter so it can observe the
    /// terminal error instead of sleeping to its deadline.
    pub(crate) fn notify_all_waiters(&self) {
        let all: Vec<Arc<WaiterSlot>> = {
            let mut map = self.waiters.map.lock();
            self.buffer.set_demand(u64::MAX);
            let drained = std::mem::take(&mut *map);
            drained.into_values().collect()
        };
        for slot in all {
            *slot.woken.lock() = true;
            slot.cv.notify_one();
        }
    }
}

/// The scalable centralized log manager (§3.3).
///
/// A transaction with a reasonably small write footprint acquires a
/// totally-ordered commit timestamp *and* reserves all needed log space
/// with a single global atomic `fetch_add` ([`LogManager::allocate`]).
pub struct LogManager {
    inner: Arc<LogInner>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl LogManager {
    /// Open (or create) a log under `cfg`. If the directory already holds
    /// segment files, the segment table is reconstructed from their names
    /// and allocation resumes after the existing tail.
    pub fn open(cfg: LogConfig) -> io::Result<LogManager> {
        assert_eq!(cfg.segment_size % MIN_BLOCK_LEN as u64, 0, "segment size must be 32-aligned");
        assert_eq!(cfg.buffer_size % MIN_BLOCK_LEN as u64, 0, "buffer size must be 32-aligned");
        assert!(cfg.buffer_size >= 4096, "log buffer too small");
        if let Some(dir) = &cfg.dir {
            std::fs::create_dir_all(dir)?;
        }
        let backend = Arc::clone(&cfg.io_factory);
        let (segments, start) = match &cfg.dir {
            Some(dir) => match SegmentTable::reopen(dir, Arc::clone(&backend), cfg.segment_size)? {
                Some(table) => {
                    let tail = crate::recovery::find_tail(&table)?;
                    (table, tail)
                }
                None => (SegmentTable::create(Some(dir), backend, cfg.segment_size, 0)?, 0),
            },
            None => (SegmentTable::create(None, backend, cfg.segment_size, 0)?, 0),
        };
        let inner = Arc::new(LogInner {
            next: CachePadded::new(AtomicU64::new(start)),
            buffer: RingBuffer::new(cfg.buffer_size, start),
            segments,
            durable: AtomicU64::new(start),
            waiters: WaiterRegistry::default(),
            stats: LogStats::default(),
            stop: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            poison_cause: Mutex::new(None),
            outstanding: AtomicU64::new(0),
            poison_hook: Mutex::new(None),
            resume_gaps: Mutex::new(Vec::new()),
            resume_gap_hi: AtomicU64::new(0),
            cfg,
        });
        let flusher = flusher::spawn(Arc::clone(&inner));
        let mgr = LogManager { inner, flusher: Mutex::new(Some(flusher)) };
        if start == 0 {
            // Burn offset 0 with a skip block: LSN 0 stays the "null"
            // sentinel (begin stamps, SSN η initialization) and never
            // names a real commit.
            mgr.allocate(MIN_BLOCK_LEN)?.fill_skip();
        }
        Ok(mgr)
    }

    /// Current tail of the LSN space, used as a begin timestamp: every
    /// commit stamp allocated after this call compares greater.
    #[inline]
    pub fn tail_lsn(&self) -> Lsn {
        Lsn::from_parts(self.inner.next.load(Ordering::SeqCst), 0)
    }

    /// Reserve `len` bytes of log space and acquire the corresponding
    /// totally-ordered LSN. One `fetch_add` in the common case; corner
    /// cases (segment full, between segments, buffer full) are handled
    /// exactly as §3.3 describes.
    pub fn allocate(&self, len: usize) -> io::Result<Reservation<'_>> {
        let inner = &*self.inner;
        let len = (len.max(BLOCK_HEADER_LEN)).div_ceil(MIN_BLOCK_LEN) * MIN_BLOCK_LEN;
        let len64 = len as u64;
        assert!(len64 <= inner.cfg.segment_size, "block exceeds segment size");
        assert!(len64 <= inner.cfg.buffer_size, "block exceeds log buffer");
        // Join the outstanding set *before* checking for poison: resume
        // drains the set to zero while the poison flag is still raised, so
        // every allocator that touches `next` either saw a healthy log or
        // finished before resume rewrote the frontier (see `resume`). The
        // guard's drop covers every early exit; the success path forgets
        // it and hands the decrement to `Reservation::drop`.
        struct Outstanding<'g>(&'g LogInner);
        impl Drop for Outstanding<'_> {
            fn drop(&mut self) {
                self.0.outstanding.fetch_sub(1, Ordering::AcqRel);
            }
        }
        inner.outstanding.fetch_add(1, Ordering::AcqRel);
        let guard = Outstanding(inner);
        if inner.poisoned.load(Ordering::Acquire) {
            return Err(poisoned_error(inner));
        }
        inner.stats.allocations.fetch_add(1, Ordering::Relaxed);
        loop {
            let off = inner.next.fetch_add(len64, Ordering::SeqCst);
            let seg = inner.segments.current();
            if seg.contains(off, len64) {
                // Common case: the claimed block lies in the open segment.
                if !inner.buffer.wait_for_space(off + len64) {
                    // The flusher died while we waited; the claimed range
                    // will never reach disk. Leave it unfilled — nothing
                    // will ever drain past the poison point anyway.
                    return Err(poisoned_error(inner));
                }
                std::mem::forget(guard);
                return Ok(Reservation {
                    mgr: self,
                    lsn: seg.lsn(off),
                    offset: off,
                    len,
                    filled: false,
                });
            }
            if off >= seg.start && off < seg.end {
                // Our block straddles the end of the segment: it cannot be
                // used; write a skip record to "close" the segment, then
                // compete to open the next one.
                let pad = seg.end - off;
                self.write_skip(&seg, off, pad);
                let new_start = inner.next.load(Ordering::SeqCst).max(seg.end);
                inner.segments.open_next(seg.index, new_start)?;
                inner.stats.rotations.fetch_add(1, Ordering::Relaxed);
                // The remainder of our claim lies beyond the old segment;
                // retire it now that the rotation is visible.
                self.retire_range(seg.end, off + len64 - seg.end);
                continue;
            }
            if off >= seg.end {
                // Between segments: compete to open the next segment;
                // blocks preceding the winner's start do not correspond to
                // a valid location on disk and must be discarded.
                let new_start = inner.next.load(Ordering::SeqCst).max(seg.end);
                inner.segments.open_next(seg.index, new_start)?;
                inner.stats.rotations.fetch_add(1, Ordering::Relaxed);
            }
            // `off < seg.start` (stale claim) or post-rotation loser:
            // retire the whole claim and retry.
            self.retire_range(off, len64);
        }
    }

    /// Write a skip block at `off` covering `pad` bytes of `seg`.
    fn write_skip(&self, seg: &Segment, off: u64, pad: u64) {
        debug_assert!(pad >= BLOCK_HEADER_LEN as u64 && pad.is_multiple_of(MIN_BLOCK_LEN as u64));
        debug_assert!(pad <= self.inner.cfg.buffer_size, "skip pad exceeds the ring");
        let inner = &*self.inner;
        // The *whole* pad gets stamped in the availability ring, so the
        // whole pad must lie inside the space window first: stamping a
        // slot whose previous-generation fill is still unflushed would
        // overwrite the unconsumed stamp and stall the watermark forever
        // (see the ring invariant in `buffer.rs`). Reservation skips have
        // already waited in `allocate`, making this a single atomic load;
        // rotation losers genuinely block here until the flusher catches
        // up. No deadlock: a blocked range needs `flushed` to reach only
        // offsets below its own start, which are owned by earlier,
        // independently completable claims.
        if !inner.buffer.wait_for_space(off + pad) {
            // Poisoned: the skip record can never reach disk, and recovery
            // treats the unfilled range as the first hole. Nothing to do.
            return;
        }
        let header = LogBlockHeader {
            kind: BlockKind::Skip,
            nrec: 0,
            len: pad as u32,
            checksum: 0,
            cstamp: seg.lsn(off),
            prev: 0,
        };
        let mut buf = [0u8; BLOCK_HEADER_LEN];
        header.encode_into(&mut buf);
        // Header and padding are published in a single stamping pass
        // (bytes after a skip header are never examined, so only the
        // header is copied): the filled — and hence durable — watermark
        // can never freeze between a skip header and its padding.
        inner.buffer.write_prefix_and_fill(off, &buf, pad);
        inner.stats.skip_blocks.fetch_add(1, Ordering::Relaxed);
    }

    /// Retire a claimed range that will never carry a transaction block:
    /// subranges that map to a real segment get skip records (so recovery
    /// can hop over them); subranges in dead zones are published without
    /// content — they map to no location on disk and are never referenced.
    fn retire_range(&self, mut off: u64, len: u64) {
        let inner = &*self.inner;
        // Every retired range derives from a single claim, so it (and
        // every chunk below) fits the ring — `allocate` rejects larger
        // blocks up front. The per-chunk space waits therefore always
        // name a reachable window.
        debug_assert!(len <= inner.cfg.buffer_size, "retired range exceeds the ring");
        let end = off + len;
        while off < end {
            match inner.segments.lookup(off) {
                Some(seg) => {
                    let stop = end.min(seg.end);
                    self.write_skip(&seg, off, stop - off);
                    off = stop;
                }
                None => {
                    let next_start = inner
                        .segments
                        .all()
                        .iter()
                        .map(|s| s.start)
                        .filter(|&s| s > off)
                        .min()
                        .unwrap_or(end)
                        .min(end);
                    // Dead zones are stamped like any other fill, so the
                    // ring's generation invariant applies: the space
                    // window must cover the range before its slots are
                    // touched. A rotation loser can hold a claim well
                    // beyond `flushed + cap` while the buffer is full —
                    // stamping it early would clobber the previous
                    // generation's unconsumed stamps (watermark stall).
                    if !inner.buffer.wait_for_space(next_start) {
                        // Poisoned: nothing drains past the poison point,
                        // so publishing the dead zone is moot.
                        return;
                    }
                    inner.stats.dead_zone_bytes.fetch_add(next_start - off, Ordering::Relaxed);
                    inner.buffer.mark_filled(off, next_start - off);
                    off = next_start;
                }
            }
        }
    }

    /// The durable watermark: all log bytes below this logical offset
    /// have been handed to stable storage.
    #[inline]
    pub fn durable_offset(&self) -> u64 {
        self.inner.durable.load(Ordering::Acquire)
    }

    /// Block until the block ending at logical offset `end` is durable
    /// (group commit), up to the configured `wait_durable_timeout`.
    ///
    /// Demand-driven: the waiter registers its target in the min-ordered
    /// waiter registry (which republishes the lowest target to the ring
    /// buffer so `mark_filled` wakes the flusher the moment the target is
    /// in the buffer), kicks the flusher if the target is already filled,
    /// and then parks on its own private condvar. It is woken precisely —
    /// by the flush batch whose durable watermark covers its target, or by
    /// poison — instead of polling a shared condvar in 10ms steps.
    ///
    /// Fails with [`LogError::Poisoned`] when the flusher has died on an
    /// unrecoverable I/O error (all pending waiters are woken immediately
    /// when that happens) and [`LogError::Timeout`] if the watermark does
    /// not reach `end` in time.
    pub fn wait_durable(&self, end: u64) -> Result<(), LogError> {
        self.wait_durable_for(end, self.inner.cfg.wait_durable_timeout)
    }

    /// [`Self::wait_durable`] with an explicit overall timeout.
    pub fn wait_durable_for(&self, end: u64, timeout: Duration) -> Result<(), LogError> {
        let inner = &*self.inner;
        let deadline = std::time::Instant::now() + timeout;
        // Targets inside a resume gap were overwritten with skip blocks:
        // the watermark has moved past them, but the commit bytes are
        // gone for good — reporting `Ok` here would acknowledge a commit
        // that can never be recovered.
        if self.lost_to_resume_gap(end) {
            return Err(LogError::Poisoned {
                kind: std::io::ErrorKind::Other,
                detail: "commit block was discarded by a degraded-mode resume; \
                         it never became durable"
                    .into(),
            });
        }
        if self.durable_offset() >= end {
            return Ok(());
        }
        if inner.poisoned.load(Ordering::Acquire) {
            return Err(self.poison_cause_or_default());
        }
        let slot = WAITER_SLOT.with(Arc::clone);
        let key = inner.register_waiter(end, &slot);
        // Ordering handshake: the flusher stores `durable` *before* it
        // locks the registry to pop ready waiters, so after inserting
        // ourselves a re-check of the watermark catches any batch that
        // completed concurrently — either we see it durable here, or the
        // flusher saw our registration and will wake us.
        if inner.durable.load(Ordering::Acquire) >= end {
            inner.deregister_waiter(key);
            return Ok(());
        }
        // Likewise the fill covering our target may have happened before
        // our demand was published; wake the flusher ourselves then.
        inner.buffer.kick_if_filled(end);
        let mut woken = slot.woken.lock();
        loop {
            if inner.durable.load(Ordering::Acquire) >= end {
                drop(woken);
                inner.deregister_waiter(key);
                return Ok(());
            }
            if inner.poisoned.load(Ordering::Acquire) {
                drop(woken);
                inner.deregister_waiter(key);
                return Err(self.poison_cause_or_default());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                drop(woken);
                inner.deregister_waiter(key);
                // A poison landing between the loop's check above and this
                // exit must still win: `Timeout` claims the commit's fate
                // is indeterminate, but a poisoned log has settled it —
                // the block will never become durable.
                if inner.poisoned.load(Ordering::Acquire) {
                    return Err(self.poison_cause_or_default());
                }
                return Err(LogError::Timeout);
            }
            // A stale wake from a previous registration on this reused
            // slot re-arms and keeps waiting; real wakes re-check above.
            *woken = false;
            slot.cv.wait_for(&mut woken, deadline - now);
        }
    }

    /// True once the log has entered the terminal poisoned state.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.inner.poisoned.load(Ordering::Acquire)
    }

    /// The error that poisoned the log, if it is poisoned.
    pub fn poison_cause(&self) -> Option<LogError> {
        self.inner.poison_cause.lock().clone()
    }

    fn poison_cause_or_default(&self) -> LogError {
        self.poison_cause().unwrap_or(LogError::Poisoned {
            kind: std::io::ErrorKind::Other,
            detail: "log poisoned".into(),
        })
    }

    /// True when `end` falls inside a range a degraded-mode resume
    /// overwrote with on-disk skip blocks: those commit bytes are gone
    /// even though the durable watermark has moved past them.
    fn lost_to_resume_gap(&self, end: u64) -> bool {
        let inner = &*self.inner;
        if end > inner.resume_gap_hi.load(Ordering::Acquire) {
            return false;
        }
        inner.resume_gaps.lock().iter().any(|&(lo, hi)| end > lo && end <= hi)
    }

    /// Register a callback invoked — from the flusher thread, exactly
    /// once per poisoning — at the moment the log poisons. The database
    /// layer hooks its transition to degraded read-only mode here.
    pub fn set_poison_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        *self.inner.poison_hook.lock() = Some(Box::new(hook));
    }

    /// Set the poison flag and cause *without* waking any waiter or
    /// stopping the ring — a test seam for racing durability timeouts
    /// against a concurrent poisoning.
    #[doc(hidden)]
    pub fn poison_quietly_for_test(&self, cause: LogError) {
        *self.inner.poison_cause.lock() = Some(cause);
        self.inner.poisoned.store(true, Ordering::Release);
    }

    /// Attempt to bring a poisoned log back into service without a
    /// process restart — the operator-triggered half of degraded
    /// read-only mode. No-op on a healthy log.
    ///
    /// The poisoned flusher froze the durable watermark at some offset
    /// `D` while the allocation frontier `next` kept (briefly) moving;
    /// the range `[D, next)` holds blocks that never reached disk and
    /// must never be reported durable. Resume:
    ///
    /// 1. reaps the dead flusher thread;
    /// 2. quiesces: waits for the outstanding-reservation set to drain
    ///    while the poison flag is still up, which freezes `next` (any
    ///    new allocator observes the poison before touching it);
    /// 3. overwrites `[D, next)` on disk with skip blocks and fsyncs the
    ///    touched segments — the fsync doubles as the backend re-probe:
    ///    if storage is still broken the error is returned and the log
    ///    stays poisoned, so resume is safely retryable;
    /// 4. records `(D, next]` as a *resume gap*: durability waits on
    ///    targets inside it keep failing with [`LogError::Poisoned`]
    ///    rather than being absorbed by the advanced watermark;
    /// 5. resets the watermarks and ring to `next`, clears the poison
    ///    state, and re-arms a fresh flusher. The poison flag falls
    ///    last, so nobody allocates into a half-reset log.
    ///
    /// Commits in the gap were never acknowledged (their waiters got
    /// `Poisoned` or `Timeout`), so discarding them cannot violate the
    /// durability contract; their in-memory effects survive until the
    /// next restart, which is the documented indeterminacy of
    /// unacknowledged commits.
    pub fn resume(&self) -> io::Result<()> {
        let inner = &*self.inner;
        // Holding the flusher handle lock for the whole walk serializes
        // concurrent resumes.
        let mut flusher = self.flusher.lock();
        if !inner.poisoned.load(Ordering::Acquire) {
            return Ok(());
        }
        if let Some(handle) = flusher.take() {
            let _ = handle.join();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while inner.outstanding.load(Ordering::Acquire) != 0 {
            if std::time::Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "log resume: outstanding reservations did not drain",
                ));
            }
            std::thread::yield_now();
        }
        let durable = inner.durable.load(Ordering::Acquire);
        let next = inner.next.load(Ordering::SeqCst);
        self.write_gap_skips(durable, next)?;
        if next > durable {
            let mut gaps = inner.resume_gaps.lock();
            gaps.push((durable, next));
            let hi = gaps.iter().map(|&(_, hi)| hi).max().unwrap_or(0);
            inner.resume_gap_hi.store(hi, Ordering::Release);
        }
        inner.durable.store(next, Ordering::Release);
        inner.buffer.reset(next);
        *inner.poison_cause.lock() = None;
        inner.stats.log_poisoned.store(0, Ordering::Release);
        inner.stop.store(false, Ordering::Release);
        *flusher = Some(flusher::spawn(Arc::clone(&self.inner)));
        inner.poisoned.store(false, Ordering::Release);
        Ok(())
    }

    /// Overwrite `[lo, hi)` on disk with one skip block per contiguous
    /// segment chunk (dead zones map to no storage and need nothing),
    /// then fsync every touched segment. Even when the range is empty
    /// the current segment is synced, as a storage health probe.
    fn write_gap_skips(&self, lo: u64, hi: u64) -> io::Result<()> {
        let inner = &*self.inner;
        let mut off = lo;
        let mut touched: Vec<Arc<Segment>> = Vec::new();
        while off < hi {
            match inner.segments.lookup(off) {
                Some(seg) => {
                    // A skip block's length field is u32: split giant
                    // chunks (only reachable with multi-GB segments).
                    let stop = hi.min(seg.end).min(off + (1u64 << 30));
                    if let Some(io) = &seg.io {
                        let header = LogBlockHeader {
                            kind: BlockKind::Skip,
                            nrec: 0,
                            len: (stop - off) as u32,
                            checksum: 0,
                            cstamp: seg.lsn(off),
                            prev: 0,
                        };
                        let mut buf = [0u8; BLOCK_HEADER_LEN];
                        header.encode_into(&mut buf);
                        io.write_all_at(&buf, seg.file_pos(off))?;
                        touched.push(Arc::clone(&seg));
                    }
                    off = stop;
                }
                None => {
                    off = inner
                        .segments
                        .all()
                        .iter()
                        .map(|s| s.start)
                        .filter(|&s| s > off)
                        .min()
                        .unwrap_or(hi)
                        .min(hi);
                }
            }
        }
        if touched.is_empty() {
            let seg = inner.segments.current();
            if seg.io.is_some() {
                touched.push(seg);
            }
        }
        touched.dedup_by_key(|s| s.index);
        for seg in &touched {
            if let Some(io) = &seg.io {
                io.sync_data()?;
            }
        }
        Ok(())
    }

    /// Access the segment table (recovery, tests).
    pub fn segments(&self) -> &SegmentTable {
        &self.inner.segments
    }

    pub fn stats(&self) -> &LogStats {
        &self.inner.stats
    }

    /// Logical offset of the allocation tip (one past the last claimed
    /// byte). `next_offset() - durable_offset()` is the durable-LSN lag.
    #[inline]
    pub fn next_offset(&self) -> u64 {
        self.inner.next.load(Ordering::Relaxed)
    }

    /// Bytes sitting in the ring buffer between the flushed and filled
    /// watermarks — how much contiguous work the flusher has pending.
    #[inline]
    pub fn ring_occupancy(&self) -> u64 {
        let b = &self.inner.buffer;
        b.filled().saturating_sub(b.flushed())
    }

    /// Ring buffer capacity in bytes.
    #[inline]
    pub fn ring_capacity(&self) -> u64 {
        self.inner.buffer.capacity()
    }

    /// Cumulative count of reservations that blocked waiting for ring
    /// space (the log back-pressure signal).
    #[inline]
    pub fn ring_space_waits(&self) -> u64 {
        self.inner.buffer.space_waits()
    }

    pub fn config(&self) -> &LogConfig {
        &self.inner.cfg
    }

    /// Translate an LSN to its segment and file position, per Fig. 4(a).
    /// Returns `None` for LSNs in dead zones or with a stale/mismatched
    /// segment number ("invalid, too old").
    pub fn lsn_to_file(&self, lsn: Lsn) -> Option<(Arc<Segment>, u64)> {
        let seg = self.inner.segments.lookup(lsn.offset())?;
        if seg.segno() != lsn.segment() {
            return None;
        }
        let pos = seg.file_pos(lsn.offset());
        Some((seg, pos))
    }

    /// Flush everything currently filled and wait until durable.
    pub fn sync(&self) -> Result<(), LogError> {
        // `scan_tip` includes fills that are stamped in the availability
        // ring but not yet folded into the flusher-owned watermark.
        let target = self.inner.buffer.scan_tip();
        self.wait_durable(target)
    }

    /// Stop and join the flusher thread without touching the rest of the
    /// log state. Test hook: lets durability waits run against a log
    /// whose flusher is gone (they must time out, not hang).
    #[doc(hidden)]
    pub fn halt_flusher_for_test(&self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(handle) = self.flusher.lock().take() {
            let _ = handle.join();
        }
        self.inner.stop.store(false, Ordering::Release);
    }

    /// Truncate the log: retire every segment entirely below `offset`
    /// (typically a durable checkpoint's begin offset — "the log can be
    /// truncated at the first hole without losing any committed work",
    /// §2). Only durable prefixes may be truncated.
    pub fn truncate_before(&self, offset: u64) -> io::Result<usize> {
        let durable = self.durable_offset();
        let bound = offset.min(durable);
        self.inner.segments.retire_below(bound)
    }
}

/// The `io::Error` surfaced by [`LogManager::allocate`] on a poisoned log.
fn poisoned_error(inner: &LogInner) -> io::Error {
    let detail = match &*inner.poison_cause.lock() {
        Some(cause) => cause.to_string(),
        None => "log poisoned".to_string(),
    };
    io::Error::other(detail)
}

impl Drop for LogManager {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(handle) = self.flusher.lock().take() {
            let _ = handle.join();
        }
    }
}

/// A claimed block of log space: the commit LSN plus the right to fill
/// the corresponding ring-buffer bytes exactly once.
///
/// Dropping an unfilled reservation writes a skip record — the abort
/// path "simply writes a skip record" (§3.3).
pub struct Reservation<'a> {
    mgr: &'a LogManager,
    lsn: Lsn,
    offset: u64,
    len: usize,
    filled: bool,
}

impl Reservation<'_> {
    /// The totally-ordered LSN this reservation fixed — the commit
    /// timestamp.
    #[inline]
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }

    /// Logical offset one past this block (pass to
    /// [`LogManager::wait_durable`] for synchronous commit).
    #[inline]
    pub fn end_offset(&self) -> u64 {
        self.offset + self.len as u64
    }

    /// Reserved length in bytes (already rounded to block granularity).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copy the serialized block into the centralized buffer. `block`
    /// must be exactly the reserved length.
    pub fn fill(mut self, block: &[u8]) {
        assert_eq!(block.len(), self.len, "block length must match reservation");
        self.mgr.inner.buffer.write(self.offset, block);
        self.filled = true;
    }

    /// Abort path: turn the whole reservation into a skip record.
    pub fn fill_skip(mut self) {
        self.do_skip();
        self.filled = true;
    }

    fn do_skip(&self) {
        let seg = self
            .mgr
            .inner
            .segments
            .lookup(self.offset)
            .expect("reservation was validated against a segment");
        self.mgr.write_skip(&seg, self.offset, self.len as u64);
    }
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        if !self.filled {
            self.do_skip();
        }
        // Leave the outstanding set only after the skip (or fill) is in
        // the ring: resume must never observe zero while a stamp is still
        // in flight.
        self.mgr.inner.outstanding.fetch_sub(1, Ordering::AcqRel);
    }
}
