//! Private per-transaction log buffers (paper §3.1, §3.3 feature 2).
//!
//! Each transaction accumulates the descriptors of its inserts, updates
//! and deletes privately to avoid log-buffer contention, then serializes
//! them as one block into the space reserved by its single commit-time
//! `fetch_add`.

use ermia_common::{Lsn, Oid, TableId};

use crate::records::{
    checksum32, BlockKind, LogBlockHeader, LogRecord, LogRecordKind, BLOCK_HEADER_LEN,
    MIN_BLOCK_LEN,
};

/// A transaction's private log buffer.
///
/// Reused across transactions by the worker thread ([`TxLogBuffer::clear`])
/// so steady-state operation allocates only for record payload copies.
#[derive(Default)]
pub struct TxLogBuffer {
    records: Vec<LogRecord>,
    payload_bytes: usize,
    scratch: Vec<u8>,
}

impl TxLogBuffer {
    pub fn new() -> TxLogBuffer {
        TxLogBuffer::default()
    }

    pub fn add_insert(&mut self, table: TableId, oid: Oid, key: &[u8], value: &[u8]) {
        self.push(LogRecordKind::Insert, table, oid, key, value);
    }

    pub fn add_update(&mut self, table: TableId, oid: Oid, key: &[u8], value: &[u8]) {
        self.push(LogRecordKind::Update, table, oid, key, value);
    }

    pub fn add_delete(&mut self, table: TableId, oid: Oid, key: &[u8]) {
        self.push(LogRecordKind::Delete, table, oid, key, &[]);
    }

    /// Record a secondary-index entry so recovery can rebuild the index.
    pub fn add_secondary_insert(&mut self, table: TableId, index_raw: u32, oid: Oid, key: &[u8]) {
        self.push(LogRecordKind::SecondaryInsert, table, oid, key, &index_raw.to_le_bytes());
    }

    /// Log an insert/update whose value was diverted to the blob store;
    /// `blob_ref` is the encoded [`crate::BlobRef`].
    pub fn add_indirect(
        &mut self,
        kind: LogRecordKind,
        table: TableId,
        oid: Oid,
        key: &[u8],
        blob_ref: &[u8],
    ) {
        let rec = LogRecord {
            kind,
            table,
            oid,
            key: key.to_vec(),
            value: blob_ref.to_vec(),
            indirect: true,
        };
        self.payload_bytes += rec.encoded_len();
        self.records.push(rec);
    }

    fn push(&mut self, kind: LogRecordKind, table: TableId, oid: Oid, key: &[u8], value: &[u8]) {
        let rec =
            LogRecord { kind, table, oid, key: key.to_vec(), value: value.to_vec(), indirect: false };
        self.payload_bytes += rec.encoded_len();
        self.records.push(rec);
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate the buffered records (post-commit walks them to re-stamp
    /// versions; tests inspect them).
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// The block length a commit must reserve: header + records, rounded
    /// up to the minimum block granularity so segment tails always fit a
    /// skip header.
    pub fn block_len(&self) -> usize {
        let raw = BLOCK_HEADER_LEN + self.payload_bytes;
        raw.div_ceil(MIN_BLOCK_LEN) * MIN_BLOCK_LEN
    }

    /// Serialize the block with commit stamp `cstamp` into an internal
    /// scratch buffer and return it. Length equals [`TxLogBuffer::block_len`].
    pub fn serialize(&mut self, cstamp: Lsn) -> &[u8] {
        let total = self.block_len();
        self.scratch.clear();
        self.scratch.resize(BLOCK_HEADER_LEN, 0);
        for rec in &self.records {
            rec.encode_into(&mut self.scratch);
        }
        self.scratch.resize(total, 0); // zero pad to block granularity
        let checksum = checksum32(&self.scratch[BLOCK_HEADER_LEN..]);
        let header = LogBlockHeader {
            kind: BlockKind::Txn,
            nrec: self.records.len() as u16,
            len: total as u32,
            checksum,
            cstamp,
            prev: 0,
        };
        let mut head = [0u8; BLOCK_HEADER_LEN];
        header.encode_into(&mut head);
        self.scratch[..BLOCK_HEADER_LEN].copy_from_slice(&head);
        &self.scratch
    }

    /// Reset for the next transaction, keeping buffer capacity.
    pub fn clear(&mut self) {
        self.records.clear();
        self.payload_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::LogBlockHeader;

    #[test]
    fn block_len_is_padded() {
        let mut b = TxLogBuffer::new();
        assert_eq!(b.block_len(), BLOCK_HEADER_LEN);
        b.add_insert(TableId(1), Oid(1), b"k", b"v");
        assert_eq!(b.block_len() % MIN_BLOCK_LEN, 0);
        assert!(b.block_len() >= BLOCK_HEADER_LEN + 18);
    }

    #[test]
    fn serialize_roundtrips_records() {
        let mut b = TxLogBuffer::new();
        b.add_insert(TableId(1), Oid(10), b"alpha", b"AAAA");
        b.add_update(TableId(2), Oid(20), b"beta", b"BBBBBB");
        b.add_delete(TableId(1), Oid(10), b"alpha");
        let cstamp = Lsn::from_parts(0x99, 2);
        let bytes = b.serialize(cstamp).to_vec();

        let header = LogBlockHeader::decode(&bytes).unwrap();
        assert_eq!(header.kind, BlockKind::Txn);
        assert_eq!(header.nrec, 3);
        assert_eq!(header.len as usize, bytes.len());
        assert_eq!(header.cstamp, cstamp);
        assert_eq!(header.checksum, checksum32(&bytes[BLOCK_HEADER_LEN..]));

        let mut pos = BLOCK_HEADER_LEN;
        let (r1, p) = LogRecord::decode(&bytes, pos).unwrap();
        assert_eq!(r1.kind, LogRecordKind::Insert);
        assert_eq!(r1.key, b"alpha");
        pos = p;
        let (r2, p) = LogRecord::decode(&bytes, pos).unwrap();
        assert_eq!(r2.kind, LogRecordKind::Update);
        assert_eq!(r2.value, b"BBBBBB");
        pos = p;
        let (r3, _) = LogRecord::decode(&bytes, pos).unwrap();
        assert_eq!(r3.kind, LogRecordKind::Delete);
        assert!(r3.value.is_empty());
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut b = TxLogBuffer::new();
        b.add_insert(TableId(1), Oid(1), b"k", b"v");
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.block_len(), BLOCK_HEADER_LEN);
    }
}
