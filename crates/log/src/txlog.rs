//! Private per-transaction log buffers (paper §3.1, §3.3 feature 2).
//!
//! Each transaction accumulates the descriptors of its inserts, updates
//! and deletes privately to avoid log-buffer contention, then serializes
//! them as one block into the space reserved by its single commit-time
//! `fetch_add`.
//!
//! The buffer is **allocation-free in the steady state**: record metadata
//! lives in a reused `Vec<RecordMeta>` and key/value bytes are bump-
//! copied into a reused flat arena, so a worker that recycles one
//! `TxLogBuffer` across transactions stops touching the allocator once
//! the high-water capacity is reached (the previous design allocated two
//! `Vec<u8>`s per logged record).

use ermia_common::{Lsn, Oid, TableId};

use crate::records::{
    checksum32, encode_record_into, BlockKind, LogBlockHeader, LogRecordKind, PrepareMarker,
    BLOCK_HEADER_LEN, MIN_BLOCK_LEN, PREPARE_MARKER_LEN, RECORD_HEADER_LEN,
};

/// Metadata for one buffered record; its key/value bytes live in the
/// shared arena at the recorded ranges.
#[derive(Clone, Copy)]
struct RecordMeta {
    kind: LogRecordKind,
    table: TableId,
    oid: Oid,
    indirect: bool,
    key_start: u32,
    key_len: u32,
    val_len: u32,
}

/// A borrowed view of one buffered record (tests, post-commit walks).
#[derive(Clone, Copy, Debug)]
pub struct TxRecordView<'a> {
    pub kind: LogRecordKind,
    pub table: TableId,
    pub oid: Oid,
    pub indirect: bool,
    pub key: &'a [u8],
    pub value: &'a [u8],
}

/// A transaction's private log buffer.
///
/// Reused across transactions by the worker thread ([`TxLogBuffer::clear`])
/// so steady-state operation performs no heap allocation at all.
#[derive(Default)]
pub struct TxLogBuffer {
    metas: Vec<RecordMeta>,
    /// Bump arena: each record's key bytes immediately followed by its
    /// value bytes.
    arena: Vec<u8>,
    payload_bytes: usize,
    scratch: Vec<u8>,
}

impl TxLogBuffer {
    pub fn new() -> TxLogBuffer {
        TxLogBuffer::default()
    }

    pub fn add_insert(&mut self, table: TableId, oid: Oid, key: &[u8], value: &[u8]) {
        self.push(LogRecordKind::Insert, table, oid, key, value, false);
    }

    pub fn add_update(&mut self, table: TableId, oid: Oid, key: &[u8], value: &[u8]) {
        self.push(LogRecordKind::Update, table, oid, key, value, false);
    }

    pub fn add_delete(&mut self, table: TableId, oid: Oid, key: &[u8]) {
        self.push(LogRecordKind::Delete, table, oid, key, &[], false);
    }

    /// Record a secondary-index entry so recovery can rebuild the index.
    pub fn add_secondary_insert(&mut self, table: TableId, index_raw: u32, oid: Oid, key: &[u8]) {
        self.push(LogRecordKind::SecondaryInsert, table, oid, key, &index_raw.to_le_bytes(), false);
    }

    /// Log an insert/update whose value was diverted to the blob store;
    /// `blob_ref` is the encoded [`crate::BlobRef`].
    pub fn add_indirect(
        &mut self,
        kind: LogRecordKind,
        table: TableId,
        oid: Oid,
        key: &[u8],
        blob_ref: &[u8],
    ) {
        self.push(kind, table, oid, key, blob_ref, true);
    }

    fn push(
        &mut self,
        kind: LogRecordKind,
        table: TableId,
        oid: Oid,
        key: &[u8],
        value: &[u8],
        indirect: bool,
    ) {
        let key_start = self.arena.len() as u32;
        self.arena.extend_from_slice(key);
        self.arena.extend_from_slice(value);
        self.metas.push(RecordMeta {
            kind,
            table,
            oid,
            indirect,
            key_start,
            key_len: key.len() as u32,
            val_len: value.len() as u32,
        });
        self.payload_bytes += RECORD_HEADER_LEN + key.len() + value.len();
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Visit the buffered records in order (tests inspect them).
    pub fn for_each_record(&self, mut f: impl FnMut(TxRecordView<'_>)) {
        for m in &self.metas {
            let ks = m.key_start as usize;
            let vs = ks + m.key_len as usize;
            f(TxRecordView {
                kind: m.kind,
                table: m.table,
                oid: m.oid,
                indirect: m.indirect,
                key: &self.arena[ks..vs],
                value: &self.arena[vs..vs + m.val_len as usize],
            });
        }
    }

    /// The block length a commit must reserve: header + records, rounded
    /// up to the minimum block granularity so segment tails always fit a
    /// skip header.
    pub fn block_len(&self) -> usize {
        let raw = BLOCK_HEADER_LEN + self.payload_bytes;
        raw.div_ceil(MIN_BLOCK_LEN) * MIN_BLOCK_LEN
    }

    /// The block length a 2PC *prepare* must reserve: like
    /// [`TxLogBuffer::block_len`] plus the [`PrepareMarker`] prefix.
    pub fn prepare_block_len(&self) -> usize {
        let raw = BLOCK_HEADER_LEN + PREPARE_MARKER_LEN + self.payload_bytes;
        raw.div_ceil(MIN_BLOCK_LEN) * MIN_BLOCK_LEN
    }

    /// Serialize the block with commit stamp `cstamp` into an internal
    /// scratch buffer and return it. Length equals [`TxLogBuffer::block_len`].
    pub fn serialize(&mut self, cstamp: Lsn) -> &[u8] {
        self.serialize_inner(BlockKind::Txn, cstamp, None)
    }

    /// Serialize the same records as a [`BlockKind::TxnPrepare`] block:
    /// the payload leads with `marker` so recovery can find the
    /// coordinator's verdict. Length equals
    /// [`TxLogBuffer::prepare_block_len`].
    pub fn serialize_prepare(&mut self, cstamp: Lsn, marker: PrepareMarker) -> &[u8] {
        self.serialize_inner(BlockKind::TxnPrepare, cstamp, Some(marker))
    }

    fn serialize_inner(
        &mut self,
        kind: BlockKind,
        cstamp: Lsn,
        marker: Option<PrepareMarker>,
    ) -> &[u8] {
        let total =
            if marker.is_some() { self.prepare_block_len() } else { self.block_len() };
        self.scratch.clear();
        self.scratch.resize(BLOCK_HEADER_LEN, 0);
        if let Some(m) = marker {
            let start = self.scratch.len();
            self.scratch.resize(start + PREPARE_MARKER_LEN, 0);
            m.encode_into(&mut self.scratch[start..]);
        }
        for m in &self.metas {
            let ks = m.key_start as usize;
            let vs = ks + m.key_len as usize;
            encode_record_into(
                &mut self.scratch,
                m.kind,
                m.table,
                m.oid,
                m.indirect,
                &self.arena[ks..vs],
                &self.arena[vs..vs + m.val_len as usize],
            );
        }
        self.scratch.resize(total, 0); // zero pad to block granularity
        let checksum = checksum32(&self.scratch[BLOCK_HEADER_LEN..]);
        let header = LogBlockHeader {
            kind,
            nrec: self.metas.len() as u16,
            len: total as u32,
            checksum,
            cstamp,
            prev: 0,
        };
        let mut head = [0u8; BLOCK_HEADER_LEN];
        header.encode_into(&mut head);
        self.scratch[..BLOCK_HEADER_LEN].copy_from_slice(&head);
        &self.scratch
    }

    /// Reset for the next transaction, keeping all buffer capacity.
    pub fn clear(&mut self) {
        self.metas.clear();
        self.arena.clear();
        self.payload_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{LogBlockHeader, LogRecord};

    #[test]
    fn block_len_is_padded() {
        let mut b = TxLogBuffer::new();
        assert_eq!(b.block_len(), BLOCK_HEADER_LEN);
        b.add_insert(TableId(1), Oid(1), b"k", b"v");
        assert_eq!(b.block_len() % MIN_BLOCK_LEN, 0);
        assert!(b.block_len() >= BLOCK_HEADER_LEN + 18);
    }

    #[test]
    fn serialize_roundtrips_records() {
        let mut b = TxLogBuffer::new();
        b.add_insert(TableId(1), Oid(10), b"alpha", b"AAAA");
        b.add_update(TableId(2), Oid(20), b"beta", b"BBBBBB");
        b.add_delete(TableId(1), Oid(10), b"alpha");
        let cstamp = Lsn::from_parts(0x99, 2);
        let bytes = b.serialize(cstamp).to_vec();

        let header = LogBlockHeader::decode(&bytes).unwrap();
        assert_eq!(header.kind, BlockKind::Txn);
        assert_eq!(header.nrec, 3);
        assert_eq!(header.len as usize, bytes.len());
        assert_eq!(header.cstamp, cstamp);
        assert_eq!(header.checksum, checksum32(&bytes[BLOCK_HEADER_LEN..]));

        let mut pos = BLOCK_HEADER_LEN;
        let (r1, p) = LogRecord::decode(&bytes, pos).unwrap();
        assert_eq!(r1.kind, LogRecordKind::Insert);
        assert_eq!(r1.key, b"alpha");
        pos = p;
        let (r2, p) = LogRecord::decode(&bytes, pos).unwrap();
        assert_eq!(r2.kind, LogRecordKind::Update);
        assert_eq!(r2.value, b"BBBBBB");
        pos = p;
        let (r3, _) = LogRecord::decode(&bytes, pos).unwrap();
        assert_eq!(r3.kind, LogRecordKind::Delete);
        assert!(r3.value.is_empty());
    }

    #[test]
    fn serialize_prepare_leads_with_marker() {
        let mut b = TxLogBuffer::new();
        b.add_insert(TableId(4), Oid(40), b"gamma", b"CCCC");
        let cstamp = Lsn::from_parts(0x77, 1);
        let marker =
            PrepareMarker { coord_shard: 3, coord_lsn: 0xDEAD_BEEF, trace_hi: 0, trace_lo: 0 };
        let bytes = b.serialize_prepare(cstamp, marker).to_vec();
        assert_eq!(bytes.len(), b.prepare_block_len());
        assert!(b.prepare_block_len() >= b.block_len());

        let header = LogBlockHeader::decode(&bytes).unwrap();
        assert_eq!(header.kind, BlockKind::TxnPrepare);
        assert_eq!(header.nrec, 1);
        assert_eq!(header.len as usize, bytes.len());
        assert_eq!(header.cstamp, cstamp);
        assert_eq!(header.checksum, checksum32(&bytes[BLOCK_HEADER_LEN..]));

        let got = PrepareMarker::decode(&bytes[BLOCK_HEADER_LEN..]).unwrap();
        assert_eq!(got.coord_shard, 3);
        assert_eq!(got.coord_lsn, 0xDEAD_BEEF);

        let (r, _) =
            LogRecord::decode(&bytes, BLOCK_HEADER_LEN + PREPARE_MARKER_LEN).unwrap();
        assert_eq!(r.kind, LogRecordKind::Insert);
        assert_eq!(r.key, b"gamma");
        assert_eq!(r.value, b"CCCC");
    }

    #[test]
    fn record_views_expose_buffered_contents() {
        let mut b = TxLogBuffer::new();
        b.add_update(TableId(3), Oid(7), b"key7", b"val7");
        b.add_indirect(LogRecordKind::Update, TableId(3), Oid(8), b"key8", b"blobref");
        let mut seen = Vec::new();
        b.for_each_record(|r| seen.push((r.oid, r.key.to_vec(), r.value.to_vec(), r.indirect)));
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (Oid(7), b"key7".to_vec(), b"val7".to_vec(), false));
        assert_eq!(seen[1], (Oid(8), b"key8".to_vec(), b"blobref".to_vec(), true));
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut b = TxLogBuffer::new();
        b.add_insert(TableId(1), Oid(1), b"k", b"v");
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.block_len(), BLOCK_HEADER_LEN);
    }

    #[test]
    fn steady_state_reuse_does_not_grow() {
        let mut b = TxLogBuffer::new();
        for round in 0..50u32 {
            b.clear();
            for i in 0..8u32 {
                b.add_update(TableId(1), Oid(i), &i.to_le_bytes(), &round.to_le_bytes());
            }
            let _ = b.serialize(Lsn::from_parts(round as u64 + 1, 0));
            if round == 0 {
                // Capture high-water capacities after the first round.
                let caps = (b.metas.capacity(), b.arena.capacity(), b.scratch.capacity());
                b.clear();
                for i in 0..8u32 {
                    b.add_update(TableId(1), Oid(i), &i.to_le_bytes(), &round.to_le_bytes());
                }
                let _ = b.serialize(Lsn::from_parts(2, 0));
                assert_eq!(
                    caps,
                    (b.metas.capacity(), b.arena.capacity(), b.scratch.capacity()),
                    "reuse must not grow the buffers"
                );
            }
        }
    }
}
