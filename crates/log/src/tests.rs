use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ermia_common::{Oid, TableId};

use crate::{
    BlockKind, LogConfig, LogManager, LogScanner, TxLogBuffer, MIN_BLOCK_LEN,
};

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ermia-log-{}-{}-{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_cfg(dir: Option<PathBuf>) -> LogConfig {
    LogConfig {
        dir,
        segment_size: 4096,
        buffer_size: 1 << 20,
        fsync: false,
        flush_interval: std::time::Duration::from_micros(100),
        ..LogConfig::default()
    }
}

fn commit_block(log: &LogManager, table: u32, oid: u32, val: &[u8]) -> ermia_common::Lsn {
    let mut tx = TxLogBuffer::new();
    tx.add_update(TableId(table), Oid(oid), b"key", val);
    let res = log.allocate(tx.block_len()).unwrap();
    let lsn = res.lsn();
    let block = tx.serialize(lsn);
    res.fill(block);
    lsn
}

#[test]
fn allocate_fill_scan_roundtrip() {
    let dir = tmpdir("roundtrip");
    let log = LogManager::open(small_cfg(Some(dir.clone()))).unwrap();
    let l1 = commit_block(&log, 1, 10, b"hello");
    let l2 = commit_block(&log, 2, 20, b"world");
    assert!(l1 < l2);
    log.sync().unwrap();

    let mut scanner = LogScanner::new(log.segments(), 0);
    let b1 = scanner.next_block().unwrap().expect("first block");
    assert_eq!(b1.lsn, l1);
    assert_eq!(b1.header.kind, BlockKind::Txn);
    let recs = b1.records();
    assert_eq!(recs.len(), 1);
    assert_eq!(recs[0].oid, Oid(10));
    assert_eq!(recs[0].value, b"hello");
    let b2 = scanner.next_block().unwrap().expect("second block");
    assert_eq!(b2.records()[0].value, b"world");
    assert!(scanner.next_block().unwrap().is_none());
    drop(log);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn dropped_reservation_becomes_skip() {
    let dir = tmpdir("skip");
    let log = LogManager::open(small_cfg(Some(dir.clone()))).unwrap();
    let l1 = commit_block(&log, 1, 1, b"a");
    {
        let _res = log.allocate(64).unwrap();
        // dropped unfilled: aborted transaction
    }
    let l3 = commit_block(&log, 1, 2, b"b");
    assert!(l1 < l3);
    log.sync().unwrap();

    let mut scanner = LogScanner::new(log.segments(), 0);
    let vals: Vec<Vec<u8>> = std::iter::from_fn(|| scanner.next_block().unwrap())
        .map(|b| b.records()[0].value.clone())
        .collect();
    assert_eq!(vals, vec![b"a".to_vec(), b"b".to_vec()]);
    drop(log);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn segment_rotation_preserves_blocks() {
    let dir = tmpdir("rotate");
    let log = LogManager::open(small_cfg(Some(dir.clone()))).unwrap();
    // Each block is ~64 bytes; a 4 KiB segment rotates every ~60 commits.
    let n = 400;
    let mut lsns = Vec::new();
    for i in 0..n {
        lsns.push(commit_block(&log, 1, i, format!("value-{i}").as_bytes()));
    }
    assert!(log.stats().rotations.load(Ordering::Relaxed) >= 4, "expected several rotations");
    log.sync().unwrap();

    let mut scanner = LogScanner::new(log.segments(), 0);
    let mut seen = Vec::new();
    while let Some(block) = scanner.next_block().unwrap() {
        for rec in block.records() {
            seen.push(rec.value);
        }
    }
    assert_eq!(seen.len(), n as usize);
    for (i, v) in seen.iter().enumerate() {
        assert_eq!(v, format!("value-{i}").as_bytes());
    }
    // LSNs are strictly increasing.
    assert!(lsns.windows(2).all(|w| w[0] < w[1]));
    drop(log);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopen_resumes_after_tail() {
    let dir = tmpdir("reopen");
    {
        let log = LogManager::open(small_cfg(Some(dir.clone()))).unwrap();
        for i in 0..50 {
            commit_block(&log, 1, i, b"first-run");
        }
        log.sync().unwrap();
    }
    let log = LogManager::open(small_cfg(Some(dir.clone()))).unwrap();
    let resumed_tail = log.tail_lsn();
    assert!(resumed_tail.offset() > 0, "tail must resume after existing blocks");
    commit_block(&log, 1, 999, b"second-run");
    log.sync().unwrap();

    let mut scanner = LogScanner::new(log.segments(), 0);
    let mut count = 0;
    let mut last = None;
    while let Some(block) = scanner.next_block().unwrap() {
        count += 1;
        last = Some(block.records()[0].value.clone());
    }
    assert_eq!(count, 51);
    assert_eq!(last.unwrap(), b"second-run");
    drop(log);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wait_durable_blocks_until_flushed() {
    let dir = tmpdir("durable");
    let log = LogManager::open(small_cfg(Some(dir.clone()))).unwrap();
    let mut tx = TxLogBuffer::new();
    tx.add_insert(TableId(1), Oid(1), b"k", b"v");
    let res = log.allocate(tx.block_len()).unwrap();
    let end = res.end_offset();
    let block = tx.serialize(res.lsn());
    res.fill(block);
    log.wait_durable(end).unwrap();
    assert!(log.durable_offset() >= end);
    drop(log);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lsn_to_file_validates_segment_number() {
    let dir = tmpdir("lookup");
    let log = LogManager::open(small_cfg(Some(dir.clone()))).unwrap();
    let lsn = commit_block(&log, 1, 1, b"x");
    let (seg, pos) = log.lsn_to_file(lsn).expect("valid lsn");
    assert_eq!(seg.segno(), lsn.segment());
    assert_eq!(pos, lsn.offset() - seg.start);
    // An LSN with a mismatched segment number is rejected.
    let bogus = ermia_common::Lsn::from_parts(lsn.offset(), (lsn.segment() + 1) % 16);
    assert!(log.lsn_to_file(bogus).is_none());
    drop(log);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn in_memory_mode_allocates_and_recycles_buffer() {
    let log = LogManager::open(LogConfig {
        dir: None,
        segment_size: 1 << 20,
        buffer_size: 64 << 10,
        ..LogConfig::default()
    })
    .unwrap();
    // Write far more than the buffer capacity; the flusher must recycle.
    for i in 0..5_000 {
        commit_block(&log, 1, i, &[0xAB; 100]);
    }
    assert!(log.tail_lsn().offset() > 64 << 10);
}

#[test]
fn concurrent_commits_all_recovered_in_order() {
    const THREADS: u32 = 4;
    const PER_THREAD: u32 = 300;
    let dir = tmpdir("concurrent");
    let log = LogManager::open(small_cfg(Some(dir.clone()))).unwrap();

    crossbeam::scope(|s| {
        for t in 0..THREADS {
            let log = &log;
            s.spawn(move |_| {
                for i in 0..PER_THREAD {
                    let payload = format!("t{t}-i{i}");
                    commit_block(log, t, i, payload.as_bytes());
                }
            });
        }
    })
    .unwrap();
    log.sync().unwrap();

    let mut scanner = LogScanner::new(log.segments(), 0);
    let mut seen = std::collections::HashSet::new();
    let mut last_lsn = None;
    while let Some(block) = scanner.next_block().unwrap() {
        if let Some(prev) = last_lsn {
            assert!(block.lsn > prev, "scan order must follow LSN order");
        }
        last_lsn = Some(block.lsn);
        for rec in block.records() {
            assert!(seen.insert(String::from_utf8(rec.value).unwrap()), "duplicate block");
        }
    }
    assert_eq!(seen.len(), (THREADS * PER_THREAD) as usize);
    drop(log);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rotation_with_full_ring_converges() {
    // Regression for an availability-ring invariant violation: the skip
    // and dead-zone publication paths used to stamp slots without first
    // waiting for the space window to cover them. With a minimum-size
    // ring and segment-sized churn the buffer is full nearly all the
    // time, so rotation losers routinely hold claims beyond
    // `flushed + cap`; stamping those early clobbered the previous
    // generation's unconsumed stamps and stalled the watermark forever
    // (flusher deadlock, wait_durable timeouts). The fixed paths block
    // for space first — this hammer must converge, and in debug builds
    // the window assert in `mark_filled` polices every stamp.
    const THREADS: u32 = 4;
    const PER_THREAD: u32 = 400;
    let log = LogManager::open(LogConfig {
        dir: None,
        segment_size: 4096, // a rotation roughly every ring's worth
        buffer_size: 4096,  // the minimum: writers outrun the flusher
        flush_interval: std::time::Duration::from_micros(50),
        ..LogConfig::default()
    })
    .unwrap();
    crossbeam::scope(|s| {
        for t in 0..THREADS {
            let log = &log;
            s.spawn(move |_| {
                for i in 0..PER_THREAD {
                    let mut tx = TxLogBuffer::new();
                    tx.add_update(TableId(t), Oid(i), b"key", b"rotation-payload");
                    let res = log.allocate(tx.block_len()).unwrap();
                    let end = res.end_offset();
                    let block = tx.serialize(res.lsn());
                    res.fill(block);
                    // Park on durability now and then so demand-driven
                    // wakes interleave with the full-ring churn.
                    if i % 32 == 0 {
                        log.wait_durable(end).unwrap();
                    }
                }
            });
        }
    })
    .unwrap();
    log.sync().unwrap();
    let rotations = log.stats().rotations.load(Ordering::Relaxed);
    assert!(rotations >= 8, "only {rotations} rotations: the hammer missed its target");
}

#[test]
fn per_operation_allocation_is_slower_shape() {
    // Sanity for the Fig. 10 experiment plumbing: allocating per record
    // costs more fetch_adds than one block per transaction.
    let log = LogManager::open(LogConfig::in_memory()).unwrap();
    let before = log.stats().allocations.load(Ordering::Relaxed);
    // per-transaction: 1 allocation for 10 records
    let mut tx = TxLogBuffer::new();
    for i in 0..10 {
        tx.add_update(TableId(1), Oid(i), b"k", b"v");
    }
    let res = log.allocate(tx.block_len()).unwrap();
    let block = tx.serialize(res.lsn());
    res.fill(block);
    // per-operation: 10 allocations
    for i in 0..10u32 {
        commit_block(&log, 1, i, b"v");
    }
    let after = log.stats().allocations.load(Ordering::Relaxed);
    assert_eq!(after - before, 11);
}

#[test]
fn block_len_rounding_matches_reservation() {
    let log = LogManager::open(LogConfig::in_memory()).unwrap();
    let mut tx = TxLogBuffer::new();
    tx.add_insert(TableId(1), Oid(1), b"odd-key", b"odd-value-bytes");
    let res = log.allocate(tx.block_len()).unwrap();
    assert_eq!(res.len() % MIN_BLOCK_LEN, 0);
    let block = tx.serialize(res.lsn());
    assert_eq!(block.len(), res.len());
    res.fill(block);
}

#[test]
fn wait_durable_times_out_when_flusher_is_dead() {
    let log = LogManager::open(LogConfig::in_memory()).unwrap();
    // Kill the flusher: durability can no longer advance.
    log.halt_flusher_for_test();
    let mut tx = TxLogBuffer::new();
    tx.add_insert(TableId(1), Oid(1), b"key", b"value");
    let res = log.allocate(tx.block_len()).unwrap();
    let end = res.end_offset();
    let block = tx.serialize(res.lsn());
    res.fill(block);
    let start = std::time::Instant::now();
    let err = log
        .wait_durable_for(end, std::time::Duration::from_millis(50))
        .expect_err("no flusher, no durability");
    assert_eq!(err, ermia_common::LogError::Timeout);
    assert!(start.elapsed() >= std::time::Duration::from_millis(50));
    assert!(!log.is_poisoned(), "a timeout is not a poisoned log");
}

#[test]
fn wait_durable_timeout_config_is_honored() {
    let cfg = LogConfig {
        wait_durable_timeout: std::time::Duration::from_millis(30),
        ..LogConfig::in_memory()
    };
    let log = LogManager::open(cfg).unwrap();
    log.halt_flusher_for_test();
    let mut tx = TxLogBuffer::new();
    tx.add_insert(TableId(1), Oid(2), b"key", b"value");
    let res = log.allocate(tx.block_len()).unwrap();
    let end = res.end_offset();
    let block = tx.serialize(res.lsn());
    res.fill(block);
    // The default-entry wait_durable picks up the configured cap.
    assert_eq!(log.wait_durable(end), Err(ermia_common::LogError::Timeout));
}

#[test]
fn sync_commit_latency_is_demand_driven_not_interval_driven() {
    // With a deliberately glacial flush interval, a synchronous commit
    // must still complete almost immediately: the committer's registered
    // durability target wakes the flusher on fill, so latency tracks the
    // actual flush cost rather than the group-commit timer.
    let cfg = LogConfig {
        flush_interval: std::time::Duration::from_millis(500),
        ..LogConfig::in_memory()
    };
    let log = LogManager::open(cfg).unwrap();
    for i in 0..5u32 {
        let mut tx = TxLogBuffer::new();
        tx.add_update(TableId(1), Oid(i), b"key", b"value");
        let res = log.allocate(tx.block_len()).unwrap();
        let end = res.end_offset();
        let block = tx.serialize(res.lsn());
        let start = std::time::Instant::now();
        res.fill(block);
        log.wait_durable(end).unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed < std::time::Duration::from_millis(100),
            "commit {i} took {elapsed:?}: flusher is sleeping through demand"
        );
    }
}

#[test]
fn idle_batching_preserved_when_nobody_waits() {
    // Without a registered durability target the flusher keeps its lazy
    // group-commit cadence: a small fill does not force an eager flush.
    let cfg = LogConfig {
        flush_interval: std::time::Duration::from_millis(200),
        ..LogConfig::in_memory()
    };
    let log = LogManager::open(cfg).unwrap();
    let mut tx = TxLogBuffer::new();
    tx.add_update(TableId(1), Oid(1), b"key", b"value");
    let res = log.allocate(tx.block_len()).unwrap();
    let end = res.end_offset();
    let block = tx.serialize(res.lsn());
    res.fill(block);
    // Immediately after the fill the watermark should (almost certainly)
    // still be behind: nobody demanded durability, so the flusher is
    // parked on its interval. Allow a scheduling-noise grace window.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let eager = log.durable_offset() >= end;
    if eager {
        // A flush this early is only legitimate right after open (the
        // flusher's first pass) — tolerate it rather than flake, but the
        // demand-driven test above is the one that guards the contract.
        eprintln!("note: flusher drained without demand (startup pass)");
    }
    log.wait_durable(end).unwrap();
}
