//! Log segments and the segment table (paper Fig. 4a).
//!
//! There are a fixed number of *modulo segment numbers* (16); each is
//! assigned a physical log segment with a start offset, end offset, and a
//! backing file whose name encodes all three — so the table can be
//! reconstructed at startup even if the configured segment size has since
//! changed: `log-<segno:02x>-<start:x>-<end:x>`.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ermia_common::lsn::{NUM_SEGMENTS, SEGMENT_BITS};
use ermia_common::Lsn;
use parking_lot::{Mutex, RwLock};

use crate::io::{SegmentIo, SegmentIoFactory};

/// One physical log segment.
#[derive(Debug)]
pub struct Segment {
    /// Monotonic segment index; `index % 16` is the modulo segment number.
    pub index: u64,
    /// First logical offset mapped by this segment.
    pub start: u64,
    /// One past the last logical offset mapped by this segment.
    pub end: u64,
    /// Storage backend (positional I/O; `None` for in-memory logs).
    pub io: Option<Arc<dyn SegmentIo>>,
    pub path: Option<PathBuf>,
}

impl Segment {
    /// The modulo segment number stored in LSN low bits.
    #[inline]
    pub fn segno(&self) -> u64 {
        self.index % NUM_SEGMENTS
    }

    /// True if `offset..offset+len` lies entirely inside this segment.
    #[inline]
    pub fn contains(&self, offset: u64, len: u64) -> bool {
        offset >= self.start && offset + len <= self.end
    }

    /// Byte position within the segment file for a logical offset.
    #[inline]
    pub fn file_pos(&self, offset: u64) -> u64 {
        debug_assert!(offset >= self.start && offset < self.end);
        offset - self.start
    }

    /// Compose the LSN for a logical offset within this segment.
    #[inline]
    pub fn lsn(&self, offset: u64) -> Lsn {
        Lsn::from_parts(offset, self.segno())
    }

    fn file_name(index: u64, start: u64, end: u64) -> String {
        format!("log-{:02x}-{:x}-{:x}", index % NUM_SEGMENTS, start, end)
    }

    /// Parse a segment file name back into (segno, start, end).
    pub fn parse_file_name(name: &str) -> Option<(u64, u64, u64)> {
        let rest = name.strip_prefix("log-")?;
        let mut it = rest.split('-');
        let segno = u64::from_str_radix(it.next()?, 16).ok()?;
        let start = u64::from_str_radix(it.next()?, 16).ok()?;
        let end = u64::from_str_radix(it.next()?, 16).ok()?;
        if it.next().is_some() || segno >= NUM_SEGMENTS {
            return None;
        }
        Some((segno, start, end))
    }
}

/// The set of segments, past and current.
///
/// Allocation reads only the `current` pointer (one `RwLock` read — the
/// lock is uncontended except during the rare segment rotation); the
/// flusher and recovery consult the full history.
pub struct SegmentTable {
    dir: Option<PathBuf>,
    segment_size: u64,
    backend: Arc<dyn SegmentIoFactory>,
    current: RwLock<Arc<Segment>>,
    history: Mutex<Vec<Arc<Segment>>>,
    /// Serializes segment rotation ("threads compete to open the next
    /// segment"; the mutex is the race arbiter).
    rotate: Mutex<()>,
}

impl SegmentTable {
    /// Create the table with its first segment starting at offset
    /// `start`, opening segment storage through `backend`. `dir = None`
    /// keeps segments purely in memory (tests).
    pub fn create(
        dir: Option<&Path>,
        backend: Arc<dyn SegmentIoFactory>,
        segment_size: u64,
        start: u64,
    ) -> io::Result<SegmentTable> {
        let first = Arc::new(Self::open_segment(dir, &*backend, 0, start, start + segment_size)?);
        Ok(SegmentTable {
            dir: dir.map(|d| d.to_owned()),
            segment_size,
            backend,
            current: RwLock::new(Arc::clone(&first)),
            history: Mutex::new(vec![first]),
            rotate: Mutex::new(()),
        })
    }

    fn open_segment(
        dir: Option<&Path>,
        backend: &dyn SegmentIoFactory,
        index: u64,
        start: u64,
        end: u64,
    ) -> io::Result<Segment> {
        let (io, path) = match dir {
            Some(dir) => {
                let path = dir.join(Segment::file_name(index, start, end));
                let io = backend.open(&path)?;
                // Size the (sparse) file up front so unwritten tail regions
                // read as zeros — a zero magic is how the scanner detects
                // the first hole.
                io.set_len(end - start)?;
                (Some(io), Some(path))
            }
            None => (None, None),
        };
        Ok(Segment { index, start, end, io, path })
    }

    /// Snapshot of the segment currently accepting allocations.
    #[inline]
    pub fn current(&self) -> Arc<Segment> {
        Arc::clone(&self.current.read())
    }

    pub fn segment_size(&self) -> u64 {
        self.segment_size
    }

    /// Open the segment following `old` (identified by its index), with
    /// the new segment's start at `new_start`. Threads that allocated
    /// offsets past the old segment's end race here; the mutex picks the
    /// winner and losers observe the rotation already done. Returns the
    /// now-current segment.
    pub fn open_next(&self, old_index: u64, new_start: u64) -> io::Result<Arc<Segment>> {
        let _g = self.rotate.lock();
        let cur = self.current();
        if cur.index != old_index {
            // Lost the race; the winner already rotated.
            return Ok(cur);
        }
        debug_assert!(new_start >= cur.end);
        let next = Arc::new(Self::open_segment(
            self.dir.as_deref(),
            &*self.backend,
            cur.index + 1,
            new_start,
            new_start + self.segment_size,
        )?);
        self.history.lock().push(Arc::clone(&next));
        *self.current.write() = Arc::clone(&next);
        Ok(next)
    }

    /// Find the segment that maps logical offset `offset`, if any (dead
    /// zones map to no segment).
    pub fn lookup(&self, offset: u64) -> Option<Arc<Segment>> {
        let history = self.history.lock();
        // Segments are sorted by start; binary search the last with
        // start <= offset.
        let idx = history.partition_point(|s| s.start <= offset);
        if idx == 0 {
            return None;
        }
        let seg = &history[idx - 1];
        (offset < seg.end).then(|| Arc::clone(seg))
    }

    /// All segments, oldest first.
    pub fn all(&self) -> Vec<Arc<Segment>> {
        self.history.lock().clone()
    }

    /// Drop (and delete the files of) all segments whose range lies
    /// entirely below `offset`. Returns how many segments were retired.
    /// The caller must guarantee no reader needs them (i.e. a checkpoint
    /// at or above `offset` exists and is durable).
    pub fn retire_below(&self, offset: u64) -> io::Result<usize> {
        let mut history = self.history.lock();
        let mut retired = 0;
        history.retain(|seg| {
            if seg.end <= offset {
                if let Some(path) = &seg.path {
                    let _ = std::fs::remove_file(path);
                }
                retired += 1;
                false
            } else {
                true
            }
        });
        Ok(retired)
    }

    /// Rebuild a table by scanning `dir` for segment files (recovery /
    /// restart path; paper: "the file name is chosen so the segment table
    /// can be reconstructed easily at start-up").
    pub fn reopen(
        dir: &Path,
        backend: Arc<dyn SegmentIoFactory>,
        segment_size: u64,
    ) -> io::Result<Option<SegmentTable>> {
        let mut found: Vec<(u64, u64, u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some((segno, start, end)) = Segment::parse_file_name(name) {
                found.push((segno, start, end, entry.path()));
            }
        }
        if found.is_empty() {
            return Ok(None);
        }
        found.sort_by_key(|&(_, start, _, _)| start);
        let mut history = Vec::with_capacity(found.len());
        // The oldest segments may have been truncated away, so monotonic
        // indices restart from the first survivor's modulo number and
        // must advance consecutively from there.
        let base = found[0].0;
        for (i, (segno, start, end, path)) in found.iter().enumerate() {
            let index = base + i as u64;
            if index % NUM_SEGMENTS != *segno {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("segment file {} has inconsistent modulo number", path.display()),
                ));
            }
            let io = backend.open(path)?;
            history.push(Arc::new(Segment {
                index,
                start: *start,
                end: *end,
                io: Some(io),
                path: Some(path.clone()),
            }));
        }
        let current = Arc::clone(history.last().expect("non-empty"));
        Ok(Some(SegmentTable {
            dir: Some(dir.to_owned()),
            segment_size,
            backend,
            current: RwLock::new(current),
            history: Mutex::new(history),
            rotate: Mutex::new(()),
        }))
    }
}

// Keep SEGMENT_BITS referenced so the encoding contract is visible here.
const _: () = assert!(SEGMENT_BITS == 4);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::FileBackend;

    fn files() -> Arc<dyn SegmentIoFactory> {
        Arc::new(FileBackend)
    }

    #[test]
    fn file_name_roundtrip() {
        let name = Segment::file_name(18, 0x121a0, 0x131a0);
        assert_eq!(name, "log-02-121a0-131a0");
        assert_eq!(Segment::parse_file_name(&name), Some((2, 0x121a0, 0x131a0)));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Segment::parse_file_name("checkpoint-3").is_none());
        assert!(Segment::parse_file_name("log-zz-1-2").is_none());
        assert!(Segment::parse_file_name("log-1f-1-2").is_none()); // segno >= 16
    }

    #[test]
    fn rotation_and_lookup() {
        let t = SegmentTable::create(None, files(), 1024, 0).unwrap();
        let first = t.current();
        assert_eq!(first.segno(), 0);
        assert!(first.contains(0, 1024));
        assert!(!first.contains(1000, 100));

        // Rotate with a dead zone 1024..2048.
        let next = t.open_next(first.index, 2048).unwrap();
        assert_eq!(next.segno(), 1);
        assert_eq!(next.start, 2048);

        assert!(t.lookup(100).is_some());
        assert!(t.lookup(1500).is_none()); // dead zone
        assert_eq!(t.lookup(2100).unwrap().index, 1);
        assert!(t.lookup(5000).is_none());
    }

    #[test]
    fn open_next_is_idempotent_for_losers() {
        let t = SegmentTable::create(None, files(), 1024, 0).unwrap();
        let first = t.current();
        let a = t.open_next(first.index, 1024).unwrap();
        // Loser passes the stale index; gets the winner's segment back.
        let b = t.open_next(first.index, 9999).unwrap();
        assert_eq!(a.index, b.index);
        assert_eq!(b.start, 1024);
    }

    #[test]
    fn reopen_reconstructs_table() {
        let dir = std::env::temp_dir().join(format!("ermia-seg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        {
            let t = SegmentTable::create(Some(&dir), files(), 4096, 0).unwrap();
            let cur = t.current();
            t.open_next(cur.index, 4096).unwrap();
        }
        let t = SegmentTable::reopen(&dir, files(), 4096).unwrap().expect("segments exist");
        let all = t.all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].start, 0);
        assert_eq!(all[1].start, 4096);
        assert_eq!(t.current().index, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
