//! Stress and convergence tests for the lock-free availability ring.
//!
//! These drive `RingBuffer` directly (it is crate-internal) through the
//! access patterns the log manager produces — out-of-order aligned
//! fills, dead zones published without content, ring wrap, and many
//! writers stamping concurrently — and check the two properties the
//! lock-free rewrite must preserve:
//!
//! 1. **Convergence**: the flusher-owned watermark reaches exactly the
//!    total filled footprint no matter the fill order or interleaving,
//!    and bytes below it read back intact.
//! 2. **No serialization**: `mark_filled` from N threads sustains
//!    aggregate throughput comparable to one thread — a shared lock on
//!    the hot path would show up as a collapse here.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::buffer::RingBuffer;

/// One reservation in a precomputed layout: `dead` ranges are published
/// without content (segment-rotation losers), the rest are written with
/// a derivable pattern.
#[derive(Clone, Copy, Debug)]
struct Chunk {
    offset: u64,
    len: u64,
    dead: bool,
}

fn pattern_byte(offset: u64) -> u8 {
    (offset / 32 % 251) as u8
}

/// Lay out `total` bytes of mixed-size reservations starting at 0.
fn layout(total: u64) -> Vec<Chunk> {
    let lens = [32u64, 64, 96, 32, 128, 32, 64];
    let mut chunks = Vec::new();
    let mut off = 0;
    let mut i = 0usize;
    while off < total {
        let len = lens[i % lens.len()].min(total - off);
        // Every 7th reservation is a dead zone / skip remainder.
        chunks.push(Chunk { offset: off, len, dead: i % 7 == 3 });
        off += len;
        i += 1;
    }
    chunks
}

/// N producer threads fill a permuted partition of a multi-wrap layout
/// (dead zones included) while a consumer thread advances the watermark,
/// verifies the bytes below it, and recycles space. The watermark must
/// converge to the exact total.
#[test]
fn permuted_concurrent_fills_converge_across_wrap() {
    const THREADS: usize = 4;
    const CAP: u64 = 4096; // 128 slots
    const TOTAL: u64 = 4 * CAP; // four full wrap generations

    let chunks = layout(TOTAL);
    let rb = Arc::new(RingBuffer::new(CAP, 0));

    // Scatter chunks across threads with a coprime stride, then give each
    // thread its subset in ascending offset order. Disjoint ownership plus
    // per-thread ascending order guarantees progress: the globally lowest
    // unfilled chunk is always at the front of some thread's queue, and
    // its `wait_for_space` is satisfiable once the consumer has flushed
    // everything below it.
    let mut partitions: Vec<Vec<Chunk>> = vec![Vec::new(); THREADS];
    for (i, c) in chunks.iter().enumerate() {
        partitions[(i * 13) % THREADS].push(*c);
    }
    for p in &mut partitions {
        p.sort_by_key(|c| c.offset);
    }

    let converged = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for part in partitions {
            let rb = Arc::clone(&rb);
            s.spawn(move || {
                let mut buf = Vec::new();
                for c in part {
                    assert!(rb.wait_for_space(c.offset + c.len), "unexpected poison");
                    if c.dead {
                        rb.mark_filled(c.offset, c.len);
                    } else {
                        buf.clear();
                        buf.resize(c.len as usize, pattern_byte(c.offset));
                        rb.write(c.offset, &buf);
                    }
                }
            });
        }

        // Consumer: advance, verify everything newly below the watermark,
        // then release the space so writers can wrap.
        let rb = Arc::clone(&rb);
        let converged = Arc::clone(&converged);
        let chunks = chunks.clone();
        s.spawn(move || {
            let mut next = 0usize; // first chunk not yet verified
            let mut watermark = 0;
            while watermark < TOTAL {
                let w = rb.advance_filled();
                if w == watermark {
                    std::thread::yield_now();
                    continue;
                }
                while next < chunks.len() && chunks[next].offset + chunks[next].len <= w {
                    let c = chunks[next];
                    if !c.dead {
                        let want = pattern_byte(c.offset);
                        rb.read_range(c.offset, c.offset + c.len, |slice| {
                            assert!(
                                slice.iter().all(|&b| b == want),
                                "chunk at {:#x} corrupted",
                                c.offset
                            );
                        });
                    }
                    next += 1;
                }
                rb.mark_flushed(w);
                watermark = w;
            }
            converged.store(watermark, Ordering::Release);
        });
    });

    assert_eq!(converged.load(Ordering::Acquire), TOTAL, "watermark failed to converge");
    assert_eq!(rb.flushed(), TOTAL);
}

/// Aggregate `mark_filled` throughput from N threads must not collapse
/// against the single-thread rate. The old tracker funneled every call
/// through a `Mutex<BTreeMap>` — under concurrent stamping that
/// serializes (and convoy-collapses) while the availability ring's
/// release stores proceed independently.
#[test]
fn concurrent_mark_filled_has_no_serialization_collapse() {
    const CAP: u64 = 1 << 20; // 32768 slots
    const THREADS: usize = 4;
    const ROUNDS: usize = 6;

    // Each round stamps every slot of a fresh ring exactly once (one
    // wrap generation), in 32-byte calls — the worst case for per-call
    // overhead. Threads take interleaved chunks so neighboring stamps
    // land on shared cache lines, as they do in a real commit storm.
    let stamp_partition = |rb: &RingBuffer, lane: usize, lanes: usize| {
        let mut n = 0u64;
        let mut off = (lane as u64) * 32;
        while off < CAP {
            rb.mark_filled(off, 32);
            n += 1;
            off += (lanes as u64) * 32;
        }
        n
    };

    let mut single_ops = 0u64;
    let single_start = Instant::now();
    for _ in 0..ROUNDS {
        let rb = RingBuffer::new(CAP, 0);
        single_ops += stamp_partition(&rb, 0, 1);
    }
    let single_rate = single_ops as f64 / single_start.elapsed().as_secs_f64();

    let mut multi_ops = 0u64;
    let multi_start = Instant::now();
    for _ in 0..ROUNDS {
        let rb = Arc::new(RingBuffer::new(CAP, 0));
        let done: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|lane| {
                    let rb = Arc::clone(&rb);
                    s.spawn(move || stamp_partition(&rb, lane, THREADS))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(done, CAP / 32, "every slot stamped exactly once");
        multi_ops += done;
    }
    let multi_rate = multi_ops as f64 / multi_start.elapsed().as_secs_f64();

    eprintln!(
        "mark_filled throughput: 1 thread {:.1} Mops/s, {} threads aggregate {:.1} Mops/s",
        single_rate / 1e6,
        THREADS,
        multi_rate / 1e6
    );
    // Lenient bound that still catches a shared-lock convoy: aggregate
    // multi-thread throughput staying within 4x of single-thread covers
    // single-core machines (pure timeslicing) while a contended mutex +
    // BTreeMap typically lands an order of magnitude down.
    assert!(
        multi_rate >= single_rate * 0.25,
        "aggregate {multi_rate:.0} ops/s vs single-thread {single_rate:.0} ops/s: \
         mark_filled is serializing"
    );
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Single-consumer oracle check: fills applied in an arbitrary
        /// permutation (per wrap generation) advance the watermark to
        /// exactly the contiguous filled prefix after every step.
        #[test]
        fn permuted_fills_match_prefix_oracle(
            keys in proptest::collection::vec(any::<u64>(), 96..97),
            dead_mask in any::<u64>(),
        ) {
            const CAP: u64 = 1024; // 32 slots
            const LAPS: u64 = 3;
            let rb = RingBuffer::new(CAP, 0);
            let mut key_iter = keys.iter().copied().chain(std::iter::repeat(0));

            for lap in 0..LAPS {
                let base = lap * CAP;
                let mut chunks: Vec<Chunk> = layout(CAP)
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| Chunk {
                        offset: base + c.offset,
                        len: c.len,
                        dead: dead_mask >> (i % 64) & 1 == 1,
                    })
                    .collect();
                // Permute this lap's fill order by the generated keys.
                let mut keyed: Vec<(u64, Chunk)> =
                    chunks.drain(..).map(|c| (key_iter.next().unwrap(), c)).collect();
                keyed.sort_by_key(|&(k, c)| (k, c.offset));

                // Oracle: contiguous prefix over a bool map of filled slots.
                let mut filled = vec![false; (CAP / 32) as usize];
                let mut buf = Vec::new();
                for &(_, c) in &keyed {
                    prop_assert!(rb.wait_for_space(c.offset + c.len));
                    if c.dead {
                        rb.mark_filled(c.offset, c.len);
                    } else {
                        buf.clear();
                        buf.resize(c.len as usize, pattern_byte(c.offset));
                        rb.write(c.offset, &buf);
                    }
                    for s in (c.offset - base) / 32..(c.offset - base + c.len) / 32 {
                        filled[s as usize] = true;
                    }
                    let prefix = filled.iter().take_while(|&&f| f).count() as u64;
                    prop_assert_eq!(rb.advance_filled(), base + prefix * 32);
                    prop_assert_eq!(rb.scan_tip(), base + prefix * 32);
                }
                prop_assert_eq!(rb.advance_filled(), base + CAP);
                rb.mark_flushed(base + CAP);
            }
        }
    }
}
