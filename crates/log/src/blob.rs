//! Large-object side storage (paper §3.3, log feature 4).
//!
//! "Large object writes can be diverted to secondary storage, requiring
//! only an indirect pointer in the actual log." Oversized record values
//! are appended to a blob file and the transaction's log record carries a
//! fixed-size [`BlobRef`] instead, keeping commit-time log reservations
//! small and the central buffer free of megabyte payloads.

use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// A pointer into the blob store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlobRef {
    pub offset: u64,
    pub len: u32,
}

impl BlobRef {
    pub const ENCODED_LEN: usize = 12;

    pub fn encode(&self) -> [u8; Self::ENCODED_LEN] {
        let mut out = [0u8; Self::ENCODED_LEN];
        out[0..8].copy_from_slice(&self.offset.to_le_bytes());
        out[8..12].copy_from_slice(&self.len.to_le_bytes());
        out
    }

    pub fn decode(bytes: &[u8]) -> Option<BlobRef> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        Some(BlobRef {
            offset: u64::from_le_bytes(bytes[0..8].try_into().ok()?),
            len: u32::from_le_bytes(bytes[8..12].try_into().ok()?),
        })
    }
}

enum Backing {
    File(std::fs::File),
    Memory(Mutex<Vec<u8>>),
}

/// Append-only blob storage beside the log.
pub struct BlobStore {
    backing: Backing,
    next: AtomicU64,
}

impl BlobStore {
    /// Open (or create) the blob file in `dir`; appends resume at the
    /// current end.
    pub fn open(dir: &Path) -> io::Result<BlobStore> {
        let path = dir.join("blobs.dat");
        let file = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        let end = file.metadata()?.len();
        Ok(BlobStore { backing: Backing::File(file), next: AtomicU64::new(end) })
    }

    /// Purely in-memory store (tests / in-memory databases).
    pub fn in_memory() -> BlobStore {
        BlobStore { backing: Backing::Memory(Mutex::new(Vec::new())), next: AtomicU64::new(0) }
    }

    /// Append a payload; concurrent appends are ordered by a single
    /// `fetch_add`, mirroring the log's allocation discipline.
    pub fn append(&self, bytes: &[u8]) -> io::Result<BlobRef> {
        let len = bytes.len() as u64;
        let offset = self.next.fetch_add(len, Ordering::SeqCst);
        match &self.backing {
            Backing::File(file) => file.write_all_at(bytes, offset)?,
            Backing::Memory(buf) => {
                let mut buf = buf.lock();
                let end = (offset + len) as usize;
                if buf.len() < end {
                    buf.resize(end, 0);
                }
                buf[offset as usize..end].copy_from_slice(bytes);
            }
        }
        Ok(BlobRef { offset, len: bytes.len() as u32 })
    }

    /// Read a payload back.
    pub fn read(&self, blob: BlobRef) -> io::Result<Vec<u8>> {
        let mut out = vec![0u8; blob.len as usize];
        match &self.backing {
            Backing::File(file) => file.read_exact_at(&mut out, blob.offset)?,
            Backing::Memory(buf) => {
                let buf = buf.lock();
                let end = blob.offset as usize + blob.len as usize;
                if end > buf.len() {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "blob out of range"));
                }
                out.copy_from_slice(&buf[blob.offset as usize..end]);
            }
        }
        Ok(out)
    }

    /// Bytes appended so far.
    pub fn size(&self) -> u64 {
        self.next.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobref_roundtrip() {
        let r = BlobRef { offset: 0xDEAD_BEEF, len: 4096 };
        assert_eq!(BlobRef::decode(&r.encode()), Some(r));
        assert!(BlobRef::decode(&[0u8; 3]).is_none());
    }

    #[test]
    fn memory_append_read() {
        let store = BlobStore::in_memory();
        let a = store.append(b"hello").unwrap();
        let b = store.append(&[9u8; 10_000]).unwrap();
        assert_eq!(store.read(a).unwrap(), b"hello");
        assert_eq!(store.read(b).unwrap(), vec![9u8; 10_000]);
        assert_eq!(store.size(), 5 + 10_000);
    }

    #[test]
    fn file_append_read_reopen() {
        let dir = std::env::temp_dir().join(format!("ermia-blob-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let first;
        {
            let store = BlobStore::open(&dir).unwrap();
            first = store.append(b"persistent-blob").unwrap();
        }
        {
            let store = BlobStore::open(&dir).unwrap();
            assert_eq!(store.read(first).unwrap(), b"persistent-blob");
            // Appends resume at the end.
            let second = store.append(b"more").unwrap();
            assert_eq!(second.offset, first.offset + first.len as u64);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_appends_are_disjoint() {
        let store = std::sync::Arc::new(BlobStore::in_memory());
        crossbeam::scope(|s| {
            for t in 0..4u8 {
                let store = std::sync::Arc::clone(&store);
                s.spawn(move |_| {
                    for i in 0..100 {
                        let payload = vec![t.wrapping_mul(31).wrapping_add(i); 64];
                        let r = store.append(&payload).unwrap();
                        assert_eq!(store.read(r).unwrap(), payload);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(store.size(), 4 * 100 * 64);
    }
}
