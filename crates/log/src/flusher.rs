//! Background group-commit flusher.
//!
//! Drains the contiguous filled prefix of the ring buffer into the
//! segment files, skipping dead zones, then advances the durable
//! watermark and wakes committers waiting in
//! [`crate::LogManager::wait_durable`].

use std::os::unix::fs::FileExt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::manager::LogInner;

pub(crate) fn spawn(inner: Arc<LogInner>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("log-flusher".into())
        .spawn(move || run(&inner))
        .expect("spawn log flusher")
}

fn run(inner: &LogInner) {
    let mut flushed = inner.buffer.flushed();
    loop {
        let hi = inner.buffer.wait_filled(flushed, inner.cfg.flush_interval);
        if hi == flushed {
            if inner.stop.load(Ordering::Acquire) && inner.buffer.filled() == flushed {
                return;
            }
            continue;
        }
        flush_range(inner, flushed, hi);
        inner.buffer.mark_flushed(hi);
        inner.durable.store(hi, Ordering::Release);
        inner.stats.flush_batches.fetch_add(1, Ordering::Relaxed);
        inner.stats.flushed_bytes.fetch_add(hi - flushed, Ordering::Relaxed);
        // Wake group-commit waiters.
        let _g = inner.durable_mx.lock();
        inner.durable_cv.notify_all();
        flushed = hi;
    }
}

/// Write `[lo, hi)` to the segment files. Dead zones map to no file and
/// are skipped; in-memory segments (no file) are drained without I/O.
fn flush_range(inner: &LogInner, lo: u64, hi: u64) {
    let mut pos = lo;
    let mut touched: Vec<Arc<crate::segment::Segment>> = Vec::new();
    while pos < hi {
        match inner.segments.lookup(pos) {
            Some(seg) => {
                let stop = hi.min(seg.end);
                if let Some(file) = &seg.file {
                    let mut file_pos = seg.file_pos(pos);
                    inner.buffer.read_range(pos, stop, |chunk| {
                        file.write_all_at(chunk, file_pos).expect("log write failed");
                        file_pos += chunk.len() as u64;
                    });
                    if inner.cfg.fsync {
                        touched.push(Arc::clone(&seg));
                    }
                }
                pos = stop;
            }
            None => {
                // Dead zone: hop to the next segment start (or the end of
                // the batch).
                let next = inner
                    .segments
                    .all()
                    .iter()
                    .map(|s| s.start)
                    .filter(|&s| s > pos)
                    .min()
                    .unwrap_or(hi)
                    .min(hi);
                pos = next;
            }
        }
    }
    touched.dedup_by_key(|s| s.index);
    for seg in touched {
        if let Some(file) = &seg.file {
            file.sync_data().expect("log fsync failed");
        }
    }
}
