//! Background group-commit flusher.
//!
//! Drains the contiguous filled prefix of the ring buffer into the
//! segment files, skipping dead zones, then advances the durable
//! watermark and wakes committers waiting in
//! [`crate::LogManager::wait_durable`].
//!
//! # Demand-driven batching
//!
//! The flusher is woken two ways: by `mark_filled` once a quarter of the
//! ring has accumulated (throughput batching when nobody is waiting), or
//! *immediately* when the filled watermark covers the lowest registered
//! durability target (latency when someone is). Each batch drains the
//! whole filled prefix, so one pass always covers every waiter whose
//! block is in the buffer; after the batch, exactly the waiters whose
//! targets the new durable watermark covers are woken — each on its own
//! condvar, no thundering herd.
//!
//! # Failure handling
//!
//! Segment writes that fail with a *transient* error (`Interrupted`,
//! `WouldBlock`, `TimedOut`) are retried with bounded exponential
//! backoff. Anything else — and any `sync_data` failure, which is never
//! retryable (a failed fsync says nothing about which dirty pages were
//! lost) — *poisons* the log: the durable watermark freezes, every
//! current and future durability waiter is woken with
//! [`ermia_common::LogError::Poisoned`], the ring buffer stops accepting
//! writers, and the flusher thread exits. An operator can later bring
//! the log back without a restart via [`crate::LogManager::resume`],
//! which re-probes the backend and re-arms a fresh flusher.

use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use ermia_common::LogError;

use crate::manager::LogInner;

/// Transient-error retry budget: 6 attempts, 100µs..=3.2ms backoff.
const MAX_WRITE_RETRIES: u32 = 6;
const BACKOFF_BASE_MICROS: u64 = 100;

pub(crate) fn spawn(inner: Arc<LogInner>) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("log-flusher".into())
        .spawn(move || run(&inner))
        .expect("spawn log flusher")
}

fn run(inner: &LogInner) {
    let mut flushed = inner.buffer.flushed();
    loop {
        let hi = inner.buffer.wait_filled(flushed, inner.cfg.flush_interval);
        if hi == flushed {
            // Re-scan on the way out: fills stamped after the wait's last
            // scan must still be drained before shutdown.
            if inner.stop.load(Ordering::Acquire) && inner.buffer.advance_filled() == flushed {
                return;
            }
            continue;
        }
        if let Err(err) = flush_range(inner, flushed, hi) {
            poison(inner, &err);
            return;
        }
        inner.buffer.mark_flushed(hi);
        inner.durable.store(hi, Ordering::Release);
        inner.stats.flush_batches.fetch_add(1, Ordering::Relaxed);
        inner.stats.flushed_bytes.fetch_add(hi - flushed, Ordering::Relaxed);
        inner.stats.last_batch_bytes.store(hi - flushed, Ordering::Relaxed);
        // Wake exactly the group-commit waiters this batch satisfied.
        inner.notify_durable(hi);
        flushed = hi;
    }
}

/// Enter the poisoned-log state: record the cause, stop the ring buffer,
/// and wake every durability waiter so they observe the error instead of
/// blocking until their timeout.
fn poison(inner: &LogInner, err: &io::Error) {
    *inner.poison_cause.lock() =
        Some(LogError::Poisoned { kind: err.kind(), detail: err.to_string() });
    inner.poisoned.store(true, Ordering::Release);
    inner.stats.log_poisoned.store(1, Ordering::Release);
    inner.buffer.poison();
    inner.notify_all_waiters();
    // Last, after every waiter can already observe the poison: let the
    // database layer flip itself into degraded read-only mode.
    if let Some(hook) = &*inner.poison_hook.lock() {
        hook();
    }
}

fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Positional write with bounded retry on transient errors. Retrying the
/// whole chunk is idempotent: positional writes to the same offset simply
/// overwrite any partial progress.
fn write_with_retry(
    inner: &LogInner,
    io: &dyn crate::io::SegmentIo,
    chunk: &[u8],
    pos: u64,
) -> io::Result<()> {
    let mut attempt = 0;
    loop {
        match io.write_all_at(chunk, pos) {
            Ok(()) => return Ok(()),
            Err(e) if is_transient(e.kind()) && attempt < MAX_WRITE_RETRIES => {
                inner.stats.flush_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(BACKOFF_BASE_MICROS << attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Write `[lo, hi)` to the segment files. Dead zones map to no file and
/// are skipped; in-memory segments (no backend) are drained without I/O.
fn flush_range(inner: &LogInner, lo: u64, hi: u64) -> io::Result<()> {
    let mut pos = lo;
    let mut touched: Vec<Arc<crate::segment::Segment>> = Vec::new();
    while pos < hi {
        match inner.segments.lookup(pos) {
            Some(seg) => {
                let stop = hi.min(seg.end);
                if let Some(io) = &seg.io {
                    let mut file_pos = seg.file_pos(pos);
                    let mut result = Ok(());
                    inner.buffer.read_range(pos, stop, |chunk| {
                        if result.is_ok() {
                            result = write_with_retry(inner, &**io, chunk, file_pos);
                            file_pos += chunk.len() as u64;
                        }
                    });
                    result?;
                    if inner.cfg.fsync {
                        touched.push(Arc::clone(&seg));
                    }
                }
                pos = stop;
            }
            None => {
                // Dead zone: hop to the next segment start (or the end of
                // the batch).
                let next = inner
                    .segments
                    .all()
                    .iter()
                    .map(|s| s.start)
                    .filter(|&s| s > pos)
                    .min()
                    .unwrap_or(hi)
                    .min(hi);
                pos = next;
            }
        }
    }
    touched.dedup_by_key(|s| s.index);
    for seg in touched {
        if let Some(io) = &seg.io {
            // fsync failures are terminal: after a failed fsync the kernel
            // may have dropped the dirty pages, so "retry and succeed"
            // would lie about durability.
            io.sync_data()?;
        }
    }
    Ok(())
}
