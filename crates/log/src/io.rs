//! Pluggable segment storage backends.
//!
//! All log-segment I/O goes through the [`SegmentIo`] trait: positional
//! reads/writes plus `sync_data`. Production uses [`FileBackend`]
//! (ordinary files, positional I/O); tests use [`FaultInjector`], a
//! deterministic wrapper that executes a [`FaultPlan`] — fail the Nth
//! write, tear a write after K bytes, fail an fsync, run out of space,
//! or "crash" (all subsequent I/O errors) — so crash-recovery behavior
//! can be exercised without real hardware faults.
//!
//! A [`SegmentIoFactory`] travels in [`crate::LogConfig`] and opens one
//! `SegmentIo` per segment file; injector state is shared across all
//! segments it opens, so fault counters are global to the log.

use std::fmt;
use std::fs::OpenOptions;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Positional I/O on one log segment file.
///
/// Implementations must be safe for concurrent use: the flusher writes
/// while recovery or the version reader may read.
pub trait SegmentIo: Send + Sync + fmt::Debug {
    /// Write all of `buf` at byte `offset` within the segment.
    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()>;
    /// Fill `buf` from byte `offset` within the segment.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()>;
    /// Force written data to stable storage.
    fn sync_data(&self) -> io::Result<()>;
    /// Size the segment file (sparse; unwritten regions read as zeros).
    fn set_len(&self, len: u64) -> io::Result<()>;
}

/// Opens the [`SegmentIo`] backend for each segment file.
pub trait SegmentIoFactory: Send + Sync + fmt::Debug {
    fn open(&self, path: &Path) -> io::Result<Arc<dyn SegmentIo>>;
}

/// The production backend: one `std::fs::File` per segment, positional
/// I/O, `fdatasync` for durability.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileBackend;

#[derive(Debug)]
struct FileIo(std::fs::File);

impl SegmentIo for FileIo {
    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        FileExt::write_all_at(&self.0, buf, offset)
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        FileExt::read_exact_at(&self.0, buf, offset)
    }

    fn sync_data(&self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
}

impl SegmentIoFactory for FileBackend {
    fn open(&self, path: &Path) -> io::Result<Arc<dyn SegmentIo>> {
        let file =
            OpenOptions::new().create(true).truncate(false).read(true).write(true).open(path)?;
        Ok(Arc::new(FileIo(file)))
    }
}

/// What the [`FaultInjector`] should break, counted across every segment
/// it opens (write/sync indices are 0-based and global).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// Fail the Nth write call without persisting anything.
    pub fail_write_at: Option<u64>,
    /// Kind of the injected write error. Transient kinds
    /// (`Interrupted`, `WouldBlock`, `TimedOut`) let the flusher's
    /// bounded retry succeed on the next attempt; anything else poisons
    /// the log.
    pub write_error_kind: Option<io::ErrorKind>,
    /// On the Nth write, persist only the first K bytes, then crash.
    pub torn_write: Option<TornWrite>,
    /// On the Nth write, persist only the first K bytes but *report
    /// success* and keep running — a firmware-style lost write with no
    /// visible error. Checksum verification on the read path is the only
    /// thing that can catch it.
    pub silent_torn_write: Option<TornWrite>,
    /// Fail the Nth `sync_data` call (fsync errors are never retried).
    pub fail_sync_at: Option<u64>,
    /// Total byte budget; writes that would exceed it fail with
    /// `StorageFull` (ENOSPC). Partial chunks are not written.
    pub enospc_after_bytes: Option<u64>,
    /// Crash point: after this many successful writes, every subsequent
    /// read, write, and sync fails — the silent-stop model of a machine
    /// losing power mid-run.
    pub crash_after_writes: Option<u64>,
}

/// Parameters of an injected torn write.
#[derive(Clone, Copy, Debug)]
pub struct TornWrite {
    /// Which write call (0-based, global across segments) to tear.
    pub at_write: u64,
    /// How many leading bytes of that write reach the file.
    pub keep_bytes: usize,
}

#[derive(Debug)]
struct InjectorState {
    plan: FaultPlan,
    writes: AtomicU64,
    syncs: AtomicU64,
    bytes_written: AtomicU64,
    crashed: AtomicBool,
    faults_injected: AtomicU64,
    /// Set by [`FaultInjector::repair`]: every planned fault is disabled
    /// from then on; counters keep their history.
    disarmed: AtomicBool,
}

/// Deterministic fault-injecting backend. Clones share state, so the
/// copy kept by a test observes the faults the log triggered.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    state: Arc<InjectorState>,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            state: Arc::new(InjectorState {
                plan,
                writes: AtomicU64::new(0),
                syncs: AtomicU64::new(0),
                bytes_written: AtomicU64::new(0),
                crashed: AtomicBool::new(false),
                faults_injected: AtomicU64::new(0),
                disarmed: AtomicBool::new(false),
            }),
        }
    }

    /// The operator replaced the disk: clear the crash flag and disable
    /// every planned fault from here on. Handles opened before the
    /// repair work again (they share this state); fault counters keep
    /// their history. This is what a degraded-mode resume test calls
    /// before [`crate::LogManager::resume`].
    pub fn repair(&self) {
        self.state.disarmed.store(true, Ordering::Release);
        self.state.crashed.store(false, Ordering::Release);
    }

    /// True once the crash point (or a torn write) has fired.
    pub fn crashed(&self) -> bool {
        self.state.crashed.load(Ordering::Acquire)
    }

    /// Trigger the crash point immediately (as if power was cut now).
    pub fn crash_now(&self) {
        self.state.crashed.store(true, Ordering::Release);
    }

    /// Successful write calls so far.
    pub fn writes(&self) -> u64 {
        self.state.writes.load(Ordering::Acquire)
    }

    /// How many faults the plan has actually injected.
    pub fn faults_injected(&self) -> u64 {
        self.state.faults_injected.load(Ordering::Acquire)
    }
}

impl SegmentIoFactory for FaultInjector {
    fn open(&self, path: &Path) -> io::Result<Arc<dyn SegmentIo>> {
        if self.state.crashed.load(Ordering::Acquire) {
            return Err(crash_error());
        }
        let file =
            OpenOptions::new().create(true).truncate(false).read(true).write(true).open(path)?;
        Ok(Arc::new(FaultyIo { file, state: Arc::clone(&self.state) }))
    }
}

fn crash_error() -> io::Error {
    io::Error::new(io::ErrorKind::NotConnected, "injected crash: storage is gone")
}

#[derive(Debug)]
struct FaultyIo {
    file: std::fs::File,
    state: Arc<InjectorState>,
}

impl FaultyIo {
    fn inject(&self, err: io::Error) -> io::Error {
        self.state.faults_injected.fetch_add(1, Ordering::AcqRel);
        err
    }
}

impl SegmentIo for FaultyIo {
    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        let state = &self.state;
        if state.crashed.load(Ordering::Acquire) {
            return Err(crash_error());
        }
        let n = state.writes.fetch_add(1, Ordering::AcqRel);
        if state.disarmed.load(Ordering::Acquire) {
            FileExt::write_all_at(&self.file, buf, offset)?;
            state.bytes_written.fetch_add(buf.len() as u64, Ordering::AcqRel);
            return Ok(());
        }
        if let Some(torn) = state.plan.torn_write {
            if n == torn.at_write {
                let keep = torn.keep_bytes.min(buf.len());
                FileExt::write_all_at(&self.file, &buf[..keep], offset)?;
                state.crashed.store(true, Ordering::Release);
                return Err(self.inject(io::Error::new(
                    io::ErrorKind::WriteZero,
                    format!("injected torn write: {keep}/{} bytes persisted", buf.len()),
                )));
            }
        }
        if let Some(torn) = state.plan.silent_torn_write {
            if n == torn.at_write {
                let keep = torn.keep_bytes.min(buf.len());
                FileExt::write_all_at(&self.file, &buf[..keep], offset)?;
                state.faults_injected.fetch_add(1, Ordering::AcqRel);
                state.bytes_written.fetch_add(keep as u64, Ordering::AcqRel);
                return Ok(());
            }
        }
        if state.plan.fail_write_at == Some(n) {
            let kind = state.plan.write_error_kind.unwrap_or(io::ErrorKind::Other);
            return Err(self.inject(io::Error::new(kind, "injected write failure")));
        }
        if let Some(budget) = state.plan.enospc_after_bytes {
            let used = state.bytes_written.load(Ordering::Acquire);
            if used + buf.len() as u64 > budget {
                return Err(self.inject(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected ENOSPC: segment byte budget exhausted",
                )));
            }
        }
        FileExt::write_all_at(&self.file, buf, offset)?;
        state.bytes_written.fetch_add(buf.len() as u64, Ordering::AcqRel);
        if let Some(limit) = state.plan.crash_after_writes {
            if n + 1 >= limit {
                state.crashed.store(true, Ordering::Release);
            }
        }
        Ok(())
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        if self.state.crashed.load(Ordering::Acquire) {
            return Err(crash_error());
        }
        FileExt::read_exact_at(&self.file, buf, offset)
    }

    fn sync_data(&self) -> io::Result<()> {
        let state = &self.state;
        if state.crashed.load(Ordering::Acquire) {
            return Err(crash_error());
        }
        let s = state.syncs.fetch_add(1, Ordering::AcqRel);
        if state.plan.fail_sync_at == Some(s) && !state.disarmed.load(Ordering::Acquire) {
            return Err(self.inject(io::Error::other("injected fsync failure")));
        }
        self.file.sync_data()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        if self.state.crashed.load(Ordering::Acquire) {
            return Err(crash_error());
        }
        self.file.set_len(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("ermia-io-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn file_backend_roundtrip() {
        let path = tmpfile("file");
        let io = FileBackend.open(&path).unwrap();
        io.set_len(64).unwrap();
        io.write_all_at(b"hello", 10).unwrap();
        io.sync_data().unwrap();
        let mut buf = [0u8; 5];
        io.read_exact_at(&mut buf, 10).unwrap();
        assert_eq!(&buf, b"hello");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn nth_write_fails_once() {
        let path = tmpfile("nth");
        let inj = FaultInjector::new(FaultPlan {
            fail_write_at: Some(1),
            write_error_kind: Some(io::ErrorKind::Interrupted),
            ..FaultPlan::default()
        });
        let io = inj.open(&path).unwrap();
        io.write_all_at(b"a", 0).unwrap(); // write 0 ok
        let err = io.write_all_at(b"b", 1).unwrap_err(); // write 1 fails
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        io.write_all_at(b"b", 1).unwrap(); // retry (write 2) succeeds
        assert_eq!(inj.faults_injected(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_write_persists_prefix_then_crashes() {
        let path = tmpfile("torn");
        let inj = FaultInjector::new(FaultPlan {
            torn_write: Some(TornWrite { at_write: 0, keep_bytes: 3 }),
            ..FaultPlan::default()
        });
        let io = inj.open(&path).unwrap();
        io.set_len(16).unwrap();
        assert!(io.write_all_at(b"abcdef", 0).is_err());
        assert!(inj.crashed());
        assert!(io.write_all_at(b"x", 8).is_err(), "post-crash writes fail");
        assert!(io.sync_data().is_err(), "post-crash syncs fail");
        // The prefix made it to the file; verify via a direct read.
        let data = std::fs::read(&path).unwrap();
        assert_eq!(&data[..6], b"abc\0\0\0");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn enospc_budget_is_enforced() {
        let path = tmpfile("enospc");
        let inj =
            FaultInjector::new(FaultPlan { enospc_after_bytes: Some(8), ..FaultPlan::default() });
        let io = inj.open(&path).unwrap();
        io.write_all_at(b"12345678", 0).unwrap();
        let err = io.write_all_at(b"9", 8).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_failure_and_crash_point() {
        let path = tmpfile("sync");
        let inj = FaultInjector::new(FaultPlan {
            fail_sync_at: Some(0),
            crash_after_writes: Some(2),
            ..FaultPlan::default()
        });
        let io = inj.open(&path).unwrap();
        assert!(io.sync_data().is_err());
        io.sync_data().unwrap(); // only the 0th sync fails
        io.write_all_at(b"a", 0).unwrap();
        io.write_all_at(b"b", 1).unwrap(); // crash point reached
        assert!(inj.crashed());
        assert!(io.write_all_at(b"c", 2).is_err());
        assert!(inj.open(&path).is_err(), "factory refuses to open after crash");
        std::fs::remove_file(&path).unwrap();
    }
}
