//! Log scanning for recovery (§3.7).
//!
//! Recovery is straightforward because the log contains only committed
//! work: the scanner walks block headers from a start LSN, hops over
//! skip records and dead zones using the segment table, verifies
//! checksums, and truncates at the first hole — no undo, no redo of
//! uncommitted state.

use std::io;
use std::sync::Arc;

use ermia_common::Lsn;

use crate::records::{
    BlockKind, LogBlockHeader, LogRecord, PrepareMarker, BLOCK_HEADER_LEN, PREPARE_MARKER_LEN,
};
use crate::segment::{Segment, SegmentTable};

/// One block yielded by the scanner (skip blocks are filtered out).
#[derive(Debug)]
pub struct ScannedBlock {
    pub lsn: Lsn,
    pub header: LogBlockHeader,
    /// Block payload (everything after the header).
    pub payload: Vec<u8>,
}

impl ScannedBlock {
    /// Decode the transaction records in a Txn or TxnPrepare block
    /// (skipping the prepare marker when present).
    pub fn records(&self) -> Vec<LogRecord> {
        let mut out = Vec::with_capacity(self.header.nrec as usize);
        let mut pos =
            if self.header.kind == BlockKind::TxnPrepare { PREPARE_MARKER_LEN } else { 0 };
        for _ in 0..self.header.nrec {
            match LogRecord::decode(&self.payload, pos) {
                Some((rec, next)) => {
                    out.push(rec);
                    pos = next;
                }
                None => break,
            }
        }
        out
    }

    /// The coordinator marker of a TxnPrepare block, if this is one.
    pub fn prepare_marker(&self) -> Option<PrepareMarker> {
        if self.header.kind != BlockKind::TxnPrepare {
            return None;
        }
        PrepareMarker::decode(&self.payload)
    }
}

/// Sequential scanner over the durable log.
pub struct LogScanner {
    segments: Vec<Arc<Segment>>,
    offset: u64,
}

impl LogScanner {
    /// Scan from logical offset `from` (e.g. the last checkpoint).
    pub fn new(table: &SegmentTable, from: u64) -> LogScanner {
        LogScanner { segments: table.all(), offset: from }
    }

    /// Current scan position. Only trustworthy as a resume point right
    /// after [`LogScanner::next_block`] returned `Some` — on `Ok(None)`
    /// the offset may already have advanced past a torn block.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    fn segment_for(&self, offset: u64) -> Option<&Arc<Segment>> {
        let idx = self.segments.partition_point(|s| s.start <= offset);
        if idx == 0 {
            return None;
        }
        let seg = &self.segments[idx - 1];
        (offset < seg.end).then_some(seg)
    }

    fn next_segment_start(&self, offset: u64) -> Option<u64> {
        self.segments.iter().map(|s| s.start).find(|&s| s > offset)
    }

    /// The next non-skip block, or `None` at the tail / first hole.
    pub fn next_block(&mut self) -> io::Result<Option<ScannedBlock>> {
        loop {
            let seg = match self.segment_for(self.offset) {
                Some(seg) => Arc::clone(seg),
                None => {
                    // Dead zone: hop to the next segment, or stop.
                    match self.next_segment_start(self.offset) {
                        Some(start) => {
                            self.offset = start;
                            continue;
                        }
                        None => return Ok(None),
                    }
                }
            };
            if seg.end - self.offset < BLOCK_HEADER_LEN as u64 {
                self.offset = seg.end;
                continue;
            }
            let Some(file) = &seg.io else {
                return Ok(None); // in-memory segments are not scannable
            };
            let mut head = [0u8; BLOCK_HEADER_LEN];
            file.read_exact_at(&mut head, seg.file_pos(self.offset))?;
            let Some(header) = LogBlockHeader::decode(&head) else {
                return Ok(None); // first hole: the log is truncated here
            };
            let len = header.len as u64;
            if len < BLOCK_HEADER_LEN as u64 || self.offset + len > seg.end {
                return Ok(None); // corrupt length: treat as a hole
            }
            let lsn = seg.lsn(self.offset);
            let block_offset = self.offset;
            self.offset += len;
            match header.kind {
                BlockKind::Skip => continue,
                BlockKind::Txn
                | BlockKind::TxnPrepare
                | BlockKind::TxnDecide
                | BlockKind::CheckpointBegin
                | BlockKind::CheckpointEnd => {
                    let mut payload = vec![0u8; header.len as usize - BLOCK_HEADER_LEN];
                    file.read_exact_at(
                        &mut payload,
                        seg.file_pos(block_offset) + BLOCK_HEADER_LEN as u64,
                    )?;
                    if matches!(
                        header.kind,
                        BlockKind::Txn | BlockKind::TxnPrepare | BlockKind::TxnDecide
                    ) {
                        let sum = crate::records::checksum32(&payload);
                        if sum != header.checksum {
                            return Ok(None); // torn block: truncate
                        }
                    }
                    return Ok(Some(ScannedBlock { lsn, header, payload }));
                }
            }
        }
    }
}

/// Locate the logical tail of an existing log: the offset just past the
/// last valid block. Used when reopening a log directory so allocation
/// resumes without overwriting committed work.
pub(crate) fn find_tail(table: &SegmentTable) -> io::Result<u64> {
    let segments = table.all();
    let Some(first) = segments.first() else { return Ok(0) };
    let mut scanner = LogScanner::new(table, first.start);
    // Walk all blocks (including skips, which next_block consumes
    // internally); the scanner's offset after exhaustion is the tail.
    while scanner.next_block()?.is_some() {}
    Ok(scanner.offset)
}
