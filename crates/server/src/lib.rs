//! # ermia-server — network service layer for the ERMIA engine
//!
//! Everything the embedded engine exposes in-process, over a socket:
//!
//! * [`protocol`] — the framed, checksummed wire format (length-prefixed
//!   payload + CRC-32), request/response codecs, and hardening against
//!   malformed input.
//! * [`Server`] — a TCP acceptor with one thread per session, a bounded
//!   [`WorkerPool`](ermia::WorkerPool) mapping sessions to engine
//!   workers per transaction, explicit `Busy` load shedding, pipelined
//!   replies through a per-connection writer thread, and graceful
//!   shutdown that drains in-flight commits.
//! * [`Client`] — a pipelined client library used by the loopback bench
//!   harness and the examples.
//!
//! The layer is std-only (plus the workspace's vendored `parking_lot`):
//! no async runtime, no serialization framework. Threads and blocking
//! sockets keep the latency path legible — the interesting concurrency
//! lives in the engine, not the front-end.

pub mod client;
pub mod protocol;
mod server;
mod session;

pub use client::{Client, ClientError, ClientResult, RetryPolicy};
pub use protocol::{BatchOp, ErrorCode, FrameError, Request, Response, WireIsolation};
pub use server::{Server, ServerConfig, StatsSnapshot};
