//! # ermia-server — network service layer for the ERMIA engine
//!
//! Everything the embedded engine exposes in-process, over a socket:
//!
//! * [`protocol`] — the framed, checksummed wire format (length-prefixed
//!   payload + CRC-32), request/response codecs, an incremental
//!   [`FrameAssembler`](protocol::FrameAssembler) for non-blocking
//!   transports, and hardening against malformed input.
//! * [`poll`] — a std-only epoll shim (raw syscalls against the libc
//!   std already links): readiness poller, cross-thread wake fd, and an
//!   `RLIMIT_NOFILE` helper for high-fan-in harnesses.
//! * [`Server`] — an event-driven TCP front end: N epoll shards each
//!   multiplexing thousands of non-blocking sessions, a bounded
//!   [`WorkerPool`](ermia::WorkerPool) mapping requests to engine
//!   workers per transaction, explicit `Busy` load shedding, in-order
//!   pipelined replies with write-interest-driven partial-write state,
//!   per-shard durability parkers for sync commits, and graceful
//!   shutdown that drains in-flight commits.
//! * [`Client`] — a pipelined client library used by the loopback bench
//!   harness and the examples.
//!
//! The layer is std-only (plus the workspace's vendored `parking_lot`):
//! no async runtime, no serialization framework, no `libc` crate.
//! Threads scale with shards + workers, never with connections — the
//! engine, not the front end, is meant to be the bottleneck.

pub mod client;
pub mod poll;
pub mod protocol;

mod conn;
mod server;
mod session;
mod sys;

pub use client::{Client, ClientError, ClientResult, HealthInfo, RetryPolicy};
pub use protocol::{
    BatchOp, ErrorCode, FrameError, ReplStatus, Request, Response, WireDdl, WireIsolation,
};
pub use server::{Server, ServerConfig, StatsSnapshot};
// Clients mint and install these; re-exported so callers don't need a
// direct ermia-telemetry dependency to trace a session.
pub use ermia_telemetry::TraceContext;
